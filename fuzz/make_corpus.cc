// Seed-corpus generator for decompress_fuzzer: writes a handful of small,
// structurally diverse containers (batch, streamed, and deliberately
// damaged variants) into the directory given as argv[1]. Seeding with
// real containers lets the fuzzer start past the magic/header checks
// instead of rediscovering the format one byte at a time.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "compressors/registry.h"
#include "core/isobar.h"
#include "core/stream.h"
#include "datagen/registry.h"
#include "io/fault_injection.h"
#include "io/sink.h"
#include "util/bytes.h"

namespace isobar {
namespace {

bool WriteFile(const std::filesystem::path& dir, const std::string& name,
               const Bytes& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "cannot write " << (dir / name) << "\n";
    return false;
  }
  return true;
}

Result<Bytes> BatchContainer(uint16_t container_version) {
  ISOBAR_ASSIGN_OR_RETURN(const DatasetSpec* spec,
                          FindDatasetSpec("s3d_vmag"));
  ISOBAR_ASSIGN_OR_RETURN(auto dataset, GenerateDataset(*spec, 3000));
  CompressOptions options;
  options.chunk_elements = 1000;
  options.eupa.sample_elements = 512;
  options.container_version = container_version;
  const IsobarCompressor compressor(options);
  return compressor.Compress(dataset.bytes(), dataset.width());
}

Result<Bytes> StreamedContainer() {
  ISOBAR_ASSIGN_OR_RETURN(const DatasetSpec* spec,
                          FindDatasetSpec("msg_sweep3d"));
  ISOBAR_ASSIGN_OR_RETURN(auto dataset, GenerateDataset(*spec, 2500));
  CompressOptions options;
  options.chunk_elements = 1000;
  options.eupa.sample_elements = 512;
  options.num_threads = 1;
  Bytes container;
  MemorySink sink(&container);
  IsobarStreamWriter writer(options, dataset.width(), &sink);
  ISOBAR_RETURN_NOT_OK(writer.Append(dataset.bytes()));
  ISOBAR_RETURN_NOT_OK(writer.Finish());
  return container;
}

// Codec-stream seeds for codec_roundtrip_fuzzer: real Huffman/LZSS/RLE/
// LZ+ANS streams prefixed with the fuzzer's selector byte (codec in the
// low two bits, decode mode), so exploration starts from well-formed
// bitstreams instead of rediscovering the framing.
Status WriteCodecSeeds(const std::filesystem::path& dir) {
  ISOBAR_ASSIGN_OR_RETURN(const DatasetSpec* spec,
                          FindDatasetSpec("msg_sppm"));
  ISOBAR_ASSIGN_OR_RETURN(auto dataset, GenerateDataset(*spec, 2048));
  struct CodecSeed {
    CodecId id;
    uint8_t selector;
    const char* name;
  };
  for (const CodecSeed& seed :
       {CodecSeed{CodecId::kHuffman, 0, "huffman-stream.bin"},
        CodecSeed{CodecId::kLzss, 1, "lzss-stream.bin"},
        CodecSeed{CodecId::kRle, 2, "rle-stream.bin"},
        CodecSeed{CodecId::kLzans, 3, "lzans-stream.bin"}}) {
    ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(seed.id));
    Bytes stream(1, seed.selector);
    Bytes compressed;
    ISOBAR_RETURN_NOT_OK(codec->Compress(dataset.bytes(), &compressed));
    stream.insert(stream.end(), compressed.begin(), compressed.end());
    if (!WriteFile(dir, seed.name, stream)) {
      return Status::IOError("cannot write codec seed");
    }
  }

  // Damaged lzans decode seeds: a corrupt tANS table header (counts no
  // longer sum to the table size), a truncated ANS bit-stream, and an
  // impossible match offset (block type smashed onto garbage). All must
  // fail closed in the fuzzer's decode mode; none should ever overread.
  ISOBAR_ASSIGN_OR_RETURN(const Codec* lzans, GetCodec(CodecId::kLzans));
  Bytes lz_stream;
  ISOBAR_RETURN_NOT_OK(lzans->Compress(dataset.bytes(), &lz_stream));

  Bytes table_smash(1, 3);  // selector 3, decode mode
  table_smash.insert(table_smash.end(), lz_stream.begin(), lz_stream.end());
  // Byte 0 is the block type, 1-4 raw_size; histogram headers follow the
  // literal section, so smear a window in the middle of the payload.
  SmashBytes(&table_smash, 1 + lz_stream.size() / 2, 6, 0xFF);
  if (!WriteFile(dir, "lzans-table-smash.bin", table_smash)) {
    return Status::IOError("cannot write codec seed");
  }

  Bytes lz_truncated(1, 3);
  lz_truncated.insert(lz_truncated.end(), lz_stream.begin(),
                      lz_stream.begin() + lz_stream.size() / 2);
  if (!WriteFile(dir, "lzans-truncated.bin", lz_truncated)) {
    return Status::IOError("cannot write codec seed");
  }

  Bytes lz_offsets(1, 3);
  lz_offsets.insert(lz_offsets.end(), lz_stream.begin(), lz_stream.end());
  // Flipping high bits late in the stream turns small offsets into
  // references before the start of output — the decoder must reject them.
  for (size_t i = lz_offsets.size() * 3 / 4; i < lz_offsets.size(); i += 7) {
    lz_offsets[i] ^= 0xE0;
  }
  if (!WriteFile(dir, "lzans-bad-offsets.bin", lz_offsets)) {
    return Status::IOError("cannot write codec seed");
  }
  return Status::OK();
}

int Run(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);

  auto batch = BatchContainer(container::kVersion);
  auto batch_v1 = BatchContainer(container::kVersionV1);
  auto streamed = StreamedContainer();
  if (!batch.ok() || !batch_v1.ok() || !streamed.ok()) {
    std::cerr << "corpus generation failed: "
              << (!batch.ok()
                      ? batch.status()
                      : (!batch_v1.ok() ? batch_v1.status() : streamed.status()))
                     .ToString()
              << "\n";
    return 1;
  }

  bool ok = WriteFile(dir, "batch.isbr", *batch) &&
            WriteFile(dir, "batch-v1.isbr", *batch_v1) &&
            WriteFile(dir, "streamed.isbr", *streamed);

  // Damaged variants exercising each salvage path: a flipped payload bit
  // (checksum stage), a smashed chunk header (header stage), and a
  // truncated tail (framing destroyed).
  Bytes flipped = *batch;
  FlipBits(&flipped, flipped.size() / 2, 0x20);
  ok = ok && WriteFile(dir, "payload-bitflip.isbr", flipped);

  Bytes smashed = *batch;
  SmashBytes(&smashed, 40, 8, 0xFF);  // First chunk header's element count.
  ok = ok && WriteFile(dir, "header-smash.isbr", smashed);

  Bytes truncated = *batch;
  TruncateBytes(&truncated, truncated.size() * 3 / 4);
  ok = ok && WriteFile(dir, "truncated.isbr", truncated);

  Bytes tiny;
  ok = ok && WriteFile(dir, "empty.isbr", tiny);

  // v2 index-footer damage, the two CRC domains separately: a smashed
  // trailer (footer rejected wholesale) and a smashed entry table (trailer
  // parses, entry CRC mismatch) — both must fall back to the sequential
  // walk under salvage and fail cleanly under kFail.
  Bytes trailer_smash = *batch;
  SmashBytes(&trailer_smash, trailer_smash.size() - container::kFooterTrailerSize,
             8, 0xA5);
  ok = ok && WriteFile(dir, "footer-trailer-smash.isbr", trailer_smash);

  Bytes entry_smash = *batch;
  SmashBytes(&entry_smash,
             entry_smash.size() - container::FooterBytes(3) +
                 container::kIndexEntrySize,
             8, 0x5A);
  ok = ok && WriteFile(dir, "footer-entry-smash.isbr", entry_smash);

  Status codec_seeds = WriteCodecSeeds(dir);
  if (!codec_seeds.ok()) {
    std::cerr << "codec seed generation failed: " << codec_seeds.ToString()
              << "\n";
    return 1;
  }

  if (ok) std::cout << "wrote 16 corpus seeds to " << dir << "\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace isobar

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <output-dir>\n";
    return 2;
  }
  return isobar::Run(argv[1]);
}
