// Fuzz entry point for the container decode path: every input is fed to
// IsobarCompressor::Decompress, DecompressRange, DecompressColumns, and
// IsobarStreamReader (sequential and SeekToChunk-driven) under all three
// ChunkErrorPolicy values — so v2 index-footer parsing and its sequential
// fallback are both explored. The invariant is bounded, crash-free
// behaviour for arbitrary bytes — any failure must surface as a clean
// Status.
//
// With clang the target links against libFuzzer (-fsanitize=fuzzer, see
// fuzz/CMakeLists.txt). Other toolchains build the same source as a
// standalone replay driver: each argument is a corpus file or directory,
// and every file runs through the fuzz body once — the CI smoke mode for
// containers without clang.
#include <cstddef>
#include <cstdint>

#include "core/container.h"
#include "core/isobar.h"
#include "core/stream.h"
#include "util/bytes.h"

namespace {

// Large inputs only slow exploration down, and a small container can
// legally declare huge chunks (or a huge element total, which salvage
// paths pad to) — cap what one iteration may allocate.
constexpr size_t kMaxInputBytes = 1 << 16;
constexpr uint64_t kMaxDeclaredChunkBytes = 1 << 20;
constexpr uint64_t kMaxDeclaredTotalBytes = 1 << 22;

void DecodeEveryPolicy(isobar::ByteSpan container) {
  using isobar::ChunkErrorPolicy;
  for (ChunkErrorPolicy policy : {ChunkErrorPolicy::kFail,
                                  ChunkErrorPolicy::kSkip,
                                  ChunkErrorPolicy::kZeroFill}) {
    isobar::DecompressOptions options;
    options.num_threads = 1;
    options.on_chunk_error = policy;
    isobar::SalvageReport report;
    options.salvage_report = &report;
    auto batch = isobar::IsobarCompressor::Decompress(container, options);
    (void)batch;

    // Range and column reads: the index-footer planner when the input
    // carries a valid v2 footer, the sequential-walk fallback otherwise.
    (void)isobar::IsobarCompressor::DecompressRange(container, 0, 1, options);
    (void)isobar::IsobarCompressor::DecompressRange(container, 500, 1700,
                                                    options);
    (void)isobar::IsobarCompressor::DecompressRange(container, 7, 7, options);
    (void)isobar::IsobarCompressor::DecompressColumns(container, 0x5, options);

    isobar::IsobarStreamReader reader(container, options);
    if (reader.Init().ok()) {
      isobar::Bytes chunk;
      for (;;) {
        auto more = reader.NextChunk(&chunk);
        if (!more.ok() || !*more) break;
      }
    }

    // Seek-driven access: forward past a record, decode, rewind to the
    // start — O(1) through the index, SkipChunk-driven without one.
    isobar::IsobarStreamReader seeker(container, options);
    if (seeker.Init().ok()) {
      isobar::Bytes chunk;
      if (seeker.SeekToChunk(1).ok()) (void)seeker.NextChunk(&chunk);
      if (seeker.SeekToChunk(0).ok()) (void)seeker.NextChunk(&chunk);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInputBytes) return 0;
  const isobar::ByteSpan container(data, size);
  // Skip inputs whose (validated) header still declares chunks big enough
  // to turn one iteration into an allocation benchmark.
  size_t offset = 0;
  auto header = isobar::container::ParseHeader(container, &offset);
  if (header.ok()) {
    uint64_t chunk_bytes = 0, total_bytes = 0;
    if (!isobar::container::CheckedMul64(header->chunk_elements,
                                         header->width, &chunk_bytes) ||
        chunk_bytes > kMaxDeclaredChunkBytes) {
      return 0;
    }
    if (header->element_count != isobar::container::kUnknownCount &&
        (!isobar::container::CheckedMul64(header->element_count,
                                          header->width, &total_bytes) ||
         total_bytes > kMaxDeclaredTotalBytes)) {
      return 0;
    }
  }
  DecodeEveryPolicy(container);
  return 0;
}

#ifndef ISOBAR_HAVE_LIBFUZZER

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

int RunOne(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <corpus-file-or-dir>...\n";
    return 2;
  }
  int failures = 0;
  size_t cases = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        failures += RunOne(entry.path());
        ++cases;
      }
    } else {
      failures += RunOne(arg);
      ++cases;
    }
  }
  std::cout << "replayed " << cases << " corpus case(s)\n";
  return failures == 0 ? 0 : 1;
}

#endif  // ISOBAR_HAVE_LIBFUZZER
