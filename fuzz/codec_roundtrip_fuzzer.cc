// Fuzz entry point for the solver codecs' hot paths (Huffman, LZSS, RLE,
// LZ+ANS): the table-driven Huffman decoder, the memcpy-run LZ copy-outs
// and the tANS bit-stream reader are exactly the kind of code where an
// off-by-one means a heap overflow, so they get their own target on top
// of the container-level fuzzer.
//
// The first input byte selects codec and mode; the rest is payload.
//  - decode mode: the payload is treated as a compressed stream and
//    decoded against several claimed output sizes. Arbitrary bytes must
//    produce a clean Status — never a crash, hang, or out-of-bounds
//    access (the sanitizer's job to prove).
//  - round-trip mode: the payload is treated as plaintext; encode must
//    succeed and decode must reproduce the payload bit for bit, or the
//    target traps.
//
// Build mirrors decompress_fuzzer.cc: libFuzzer under clang, a standalone
// corpus replay driver elsewhere.
#include <cstddef>
#include <cstdint>

#include "compressors/registry.h"
#include "util/bytes.h"

namespace {

constexpr size_t kMaxInputBytes = 1 << 16;
constexpr size_t kMaxClaimedOutput = 1 << 20;

const isobar::Codec* SelectCodec(uint8_t selector) {
  using isobar::CodecId;
  const CodecId id = selector == 0   ? CodecId::kHuffman
                     : selector == 1 ? CodecId::kLzss
                     : selector == 2 ? CodecId::kRle
                                     : CodecId::kLzans;
  auto codec = isobar::GetCodec(id);
  return codec.ok() ? *codec : nullptr;
}

void DecodeArbitrary(const isobar::Codec& codec, isobar::ByteSpan payload) {
  const size_t claims[] = {0, payload.size(), 3 * payload.size() + 128,
                           kMaxClaimedOutput};
  isobar::Bytes out;
  for (size_t claimed : claims) {
    auto status = codec.Decompress(payload, claimed, &out);
    (void)status;  // Any Status is fine; crashing or overreading is not.
  }
}

void RoundTrip(const isobar::Codec& codec, isobar::ByteSpan payload) {
  isobar::Bytes compressed;
  if (!codec.Compress(payload, &compressed).ok()) __builtin_trap();
  isobar::Bytes decoded;
  if (!codec.Decompress(compressed, payload.size(), &decoded).ok()) {
    __builtin_trap();
  }
  if (decoded.size() != payload.size()) __builtin_trap();
  for (size_t i = 0; i < payload.size(); ++i) {
    if (decoded[i] != payload[i]) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > kMaxInputBytes) return 0;
  const isobar::Codec* codec = SelectCodec(data[0] & 0x3);
  if (codec == nullptr) return 0;
  const isobar::ByteSpan payload(data + 1, size - 1);
  if ((data[0] >> 2) & 1) {
    RoundTrip(*codec, payload);
  } else {
    DecodeArbitrary(*codec, payload);
  }
  return 0;
}

#ifndef ISOBAR_HAVE_LIBFUZZER

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

int RunOne(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <corpus-file-or-dir>...\n";
    return 2;
  }
  int failures = 0;
  size_t cases = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        failures += RunOne(entry.path());
        ++cases;
      }
    } else {
      failures += RunOne(arg);
      ++cases;
    }
  }
  std::cout << "replayed " << cases << " corpus case(s)\n";
  return failures == 0 ? 0 : 1;
}

#endif  // ISOBAR_HAVE_LIBFUZZER
