#include "datagen/registry.h"

#include <array>
#include <string>

namespace isobar {
namespace {

using EType = ElementType;
using GKind = GeneratorKind;

constexpr GeneratorParams SmoothNoisy(int noise_bytes, double repeat) {
  return GeneratorParams{GKind::kSmoothNoisy, noise_bytes, /*smooth_bytes=*/2,
                         repeat, /*anchor_fraction=*/0.0};
}

// Noisy low bytes plus a recurring sentinel value: every column carries
// skew, so the analyzer reports nothing worth partitioning even though
// most bytes look random (the obs_error / obs_spitzer profile).
constexpr GeneratorParams SmoothNoisyAnchored(int noise_bytes, double repeat,
                                              double anchor) {
  return GeneratorParams{GKind::kSmoothNoisy, noise_bytes, /*smooth_bytes=*/2,
                         repeat, anchor};
}

constexpr GeneratorParams SmoothRepetitive(double repeat) {
  return GeneratorParams{GKind::kSmoothRepetitive, /*noise_bytes=*/0,
                         /*smooth_bytes=*/2, repeat, /*anchor_fraction=*/0.0};
}

constexpr GeneratorParams MildSkew(double repeat, double anchor) {
  return GeneratorParams{GKind::kMildSkew, /*noise_bytes=*/0,
                         /*smooth_bytes=*/2, repeat, anchor};
}

constexpr GeneratorParams ParticleIds(double repeat) {
  return GeneratorParams{GKind::kParticleIds, /*noise_bytes=*/3,
                         /*smooth_bytes=*/2, repeat, /*anchor_fraction=*/0.0};
}

// The 24 datasets of Table I/III, with generator profiles chosen so that
// the analyzer's verdict (Table IV) and the broad statistical shape
// (Table III) match the paper; see DESIGN.md "Substitutions".
const std::array<DatasetSpec, 24> kSpecs = {{
    {"gts_phi_l", "GTS", "linear potential fluctuation", EType::kFloat64,
     SmoothNoisy(6, 0.001), 101,
     {42, 5.5, 99.9, 12.05, 99.9}, {true, 75.0, true},
     {1.041, 1.020, 1.186, 1.160}},
    {"gts_phi_nl", "GTS", "nonlinear potential fluctuation", EType::kFloat64,
     SmoothNoisy(6, 0.001), 102,
     {42, 5.5, 99.9, 12.05, 99.9}, {true, 75.0, true},
     {1.045, 1.018, 1.180, 1.157}},
    {"gts_chkp_zeon", "GTS", "zeon checkpoint", EType::kFloat64,
     SmoothNoisy(6, 0.001), 103,
     {18, 2.4, 99.9, 14.68, 99.9}, {true, 75.0, true},
     {1.040, 1.022, 1.182, 1.140}},
    {"gts_chkp_zion", "GTS", "zion checkpoint", EType::kFloat64,
     SmoothNoisy(6, 0.001), 104,
     {18, 2.4, 99.9, 15.12, 99.9}, {true, 75.0, true},
     {1.044, 1.027, 1.187, 1.150}},
    {"xgc_igid", "XGC", "particle id", EType::kInt64,
     ParticleIds(0.774), 105,
     {146, 19.2, 22.6, 13.81, 100.0}, {true, 37.5, true},
     {3.003, 3.120, 3.368, 2.962}},
    // Repeat fraction kept at 0.5 (paper: 92.3%): exact whole-element
    // duplicates dense enough to fall inside an LZ window would hand the
    // standard solver a dedup advantage the paper's real records do not
    // show; see EXPERIMENTS.md.
    {"xgc_iphase", "XGC", "ion phase variables", EType::kFloat64,
     SmoothNoisy(6, 0.5), 106,
     {1170, 153.4, 7.7, 12.32, 76.4}, {true, 75.0, true},
     {1.362, 1.377, 1.589, 1.571}},
    // s3d repeat fractions kept at 0.25 (paper: 54.1% / 50.1% duplicate
    // elements): exact 4-byte duplicates inside bzip2's BWT block would
    // hand the standard solver a dedup edge the real data lacks.
    {"s3d_temp", "S3D", "temperature", EType::kFloat32,
     SmoothNoisy(1, 0.25), 107,
     {77, 20.2, 45.9, 12.21, 95.4}, {true, 25.0, true},
     {1.336, 1.452, 2.063, 1.831}},
    {"s3d_vmag", "S3D", "velocity magnitude", EType::kFloat32,
     SmoothNoisy(2, 0.25), 108,
     {77, 20.2, 49.9, 12.81, 99.9}, {true, 50.0, true},
     {1.190, 1.210, 1.774, 1.604}},
    {"flash_velx", "FLASH", "fluid velocity x", EType::kFloat64,
     SmoothNoisy(6, 0.0), 109,
     {520, 68.1, 100.0, 24.34, 100.0}, {true, 75.0, true},
     {1.113, 1.084, 1.319, 1.308}},
    {"flash_vely", "FLASH", "fluid velocity y", EType::kFloat64,
     SmoothNoisy(6, 0.0), 110,
     {520, 68.1, 100.0, 25.74, 100.0}, {true, 75.0, true},
     {1.135, 1.091, 1.319, 1.307}},
    {"flash_gamc", "FLASH", "fluid velocity gamc", EType::kFloat64,
     SmoothNoisy(5, 0.0), 111,
     {520, 68.1, 100.0, 11.26, 100.0}, {true, 62.5, true},
     {1.289, 1.281, 1.557, 1.532}},
    {"msg_bt", "MSG", "NPB bt messages", EType::kFloat64,
     MildSkew(0.04, 0.03), 112,
     {254, 33.3, 92.9, 23.67, 94.7}, {false, 0.0, false},
     {1.131, 1.102, 0.0, 0.0}},
    {"msg_lu", "MSG", "NPB lu messages", EType::kFloat64,
     SmoothNoisy(6, 0.008), 113,
     {185, 24.2, 99.2, 24.47, 99.7}, {true, 75.0, true},
     {1.057, 1.021, 1.298, 1.246}},
    {"msg_sp", "MSG", "NPB sp messages", EType::kFloat64,
     SmoothNoisy(5, 0.011), 114,
     {276, 36.2, 98.9, 25.03, 99.7}, {true, 62.5, true},
     {1.112, 1.075, 1.330, 1.304}},
    {"msg_sppm", "MSG", "ASCI Purple sppm", EType::kFloat64,
     SmoothRepetitive(0.898), 115,
     {266, 34.8, 10.2, 11.24, 44.9}, {false, 0.0, false},
     {7.436, 6.932, 0.0, 0.0}},
    {"msg_sweep3d", "MSG", "ASCI Purple sweep3d", EType::kFloat64,
     SmoothNoisy(4, 0.102), 116,
     {119, 15.7, 89.8, 23.41, 97.9}, {true, 50.0, true},
     {1.093, 1.277, 1.344, 1.287}},
    {"num_brain", "NUM", "brain impact velocity field", EType::kFloat64,
     SmoothNoisy(6, 0.051), 117,
     {135, 17.7, 94.9, 23.97, 99.5}, {true, 75.0, true},
     {1.064, 1.042, 1.276, 1.238}},
    {"num_comet", "NUM", "comet entry simulation", EType::kFloat64,
     SmoothNoisy(3, 0.111), 118,
     {102, 13.4, 88.9, 22.04, 93.1}, {true, 37.5, true},
     {1.160, 1.172, 1.236, 1.215}},
    {"num_control", "NUM", "assimilation control vector", EType::kFloat64,
     SmoothNoisy(6, 0.015), 119,
     {152, 19.9, 98.5, 24.14, 99.6}, {true, 75.0, true},
     {1.057, 1.029, 1.143, 1.126}},
    {"num_plasma", "NUM", "z-pinch plasma temperature", EType::kFloat64,
     SmoothRepetitive(0.997), 120,
     {33, 4.4, 0.3, 13.65, 61.9}, {false, 0.0, false},
     {1.608, 5.789, 0.0, 0.0}},
    {"obs_error", "OBS", "brightness temperature error", EType::kFloat64,
     SmoothNoisyAnchored(5, 0.82, 0.03), 121,
     {59, 7.7, 18.0, 17.80, 77.8}, {false, 0.0, false},
     {1.448, 1.338, 0.0, 0.0}},
    // Repeat fraction kept at 0.5 (paper: 76.1%) for the same reason as
    // xgc_iphase: exact-duplicate dedup inside bzip2's BWT block would
    // mask the partitioning gain the paper measures.
    {"obs_info", "OBS", "observation point coordinates", EType::kFloat64,
     SmoothNoisy(6, 0.5), 122,
     {18, 2.3, 23.9, 18.07, 85.3}, {true, 75.0, true},
     {1.157, 1.213, 1.292, 1.249}},
    {"obs_spitzer", "OBS", "Spitzer transit photometry", EType::kFloat64,
     SmoothNoisyAnchored(5, 0.943, 0.03), 123,
     {189, 24.7, 5.7, 17.36, 70.7}, {false, 0.0, false},
     {1.228, 1.721, 0.0, 0.0}},
    {"obs_temp", "OBS", "temperature analysis difference", EType::kFloat64,
     SmoothNoisy(6, 0.0), 124,
     {38, 4.9, 100.0, 22.25, 100.0}, {true, 75.0, true},
     {1.035, 1.024, 1.142, 1.125}},
}};

}  // namespace

std::span<const DatasetSpec> AllDatasetSpecs() { return kSpecs; }

Result<const DatasetSpec*> FindDatasetSpec(std::string_view name) {
  for (const DatasetSpec& spec : kSpecs) {
    if (spec.name == name) return &spec;
  }
  return Status::NotFound("no dataset profile named '" + std::string(name) +
                          "'");
}

Result<Dataset> GenerateDataset(const DatasetSpec& spec,
                                uint64_t element_count) {
  ISOBAR_ASSIGN_OR_RETURN(
      Dataset dataset,
      GenerateArray(spec.type, spec.params, element_count, spec.seed));
  dataset.name = spec.name;
  dataset.application = spec.application;
  return dataset;
}

Result<Dataset> GenerateDatasetMB(const DatasetSpec& spec, double megabytes) {
  if (megabytes <= 0.0) {
    return Status::InvalidArgument("megabytes must be positive");
  }
  const uint64_t count = static_cast<uint64_t>(
      megabytes * 1e6 / static_cast<double>(ElementWidth(spec.type)));
  return GenerateDataset(spec, std::max<uint64_t>(count, 1));
}

}  // namespace isobar
