#ifndef ISOBAR_DATAGEN_RECORDS_H_
#define ISOBAR_DATAGEN_RECORDS_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "datagen/generators.h"
#include "util/status.h"

namespace isobar {

/// Multi-variable record datasets: each element is a record of several
/// scalar *lanes*, each lane with its own statistical profile. This is
/// the true shape of xgc_iphase ("8 phase variables of each ion" — some
/// quantized coordinates, some noisy momenta): the byte matrix has ω =
/// lanes × scalar width, and the analyzer's per-column verdict resolves
/// structure lane by lane.
struct RecordSpec {
  /// One GeneratorParams per lane, at most 8 lanes of doubles (ω ≤ 64)
  /// or 16 lanes of floats.
  std::vector<GeneratorParams> lanes;
  ElementType lane_type = ElementType::kFloat64;
  uint64_t seed = 1;
};

/// Generates `record_count` records; lane j of every record follows
/// lanes[j]'s profile. The resulting Dataset has width() = lanes.size() *
/// scalar width and flows through the standard pipeline unchanged.
Result<Dataset> GenerateRecords(const RecordSpec& spec,
                                uint64_t record_count);

}  // namespace isobar

#endif  // ISOBAR_DATAGEN_RECORDS_H_
