#ifndef ISOBAR_DATAGEN_REGISTRY_H_
#define ISOBAR_DATAGEN_REGISTRY_H_

#include <span>
#include <string_view>

#include "datagen/dataset.h"
#include "datagen/generators.h"
#include "util/status.h"

namespace isobar {

/// Statistical characteristics the paper reports for a dataset
/// (Tables I and III); kept alongside each synthetic profile so the
/// benchmark harness can print paper-vs-measured comparisons.
struct PaperStats {
  double set_size_mb = 0.0;
  double million_elements = 0.0;
  double unique_percent = 0.0;
  double shannon_entropy = 0.0;
  double randomness_percent = 0.0;
};

/// The paper's analyzer verdict for a dataset (Table IV).
struct PaperVerdict {
  bool hard_to_compress = false;
  double htc_bytes_percent = 0.0;
  bool improvable = false;
};

/// The paper's measured compression ratios (Table V); 0 marks "NI"
/// (not identified as improvable, so no ISOBAR number exists).
struct PaperPerformance {
  double cr_zlib = 0.0;
  double cr_bzip2 = 0.0;
  double cr_isobar_ratio_pref = 0.0;
  double cr_isobar_speed_pref = 0.0;
};

/// One of the 24 scientific datasets of Table I, with the synthetic
/// generator profile that reproduces its byte-column entropy signature
/// and the paper's reference numbers.
struct DatasetSpec {
  std::string_view name;
  std::string_view application;
  std::string_view variable;
  ElementType type = ElementType::kFloat64;
  GeneratorParams params;
  uint64_t seed = 0;
  PaperStats paper_stats;
  PaperVerdict paper_verdict;
  PaperPerformance paper_perf;
};

/// All 24 dataset profiles, in the paper's Table III order.
std::span<const DatasetSpec> AllDatasetSpecs();

/// Looks up a profile by dataset name (e.g. "flash_velx").
Result<const DatasetSpec*> FindDatasetSpec(std::string_view name);

/// Materializes `element_count` elements of the profile.
Result<Dataset> GenerateDataset(const DatasetSpec& spec,
                                uint64_t element_count);

/// Materializes approximately `megabytes` MB (1e6 bytes) of the profile.
Result<Dataset> GenerateDatasetMB(const DatasetSpec& spec, double megabytes);

}  // namespace isobar

#endif  // ISOBAR_DATAGEN_REGISTRY_H_
