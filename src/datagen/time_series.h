#ifndef ISOBAR_DATAGEN_TIME_SERIES_H_
#define ISOBAR_DATAGEN_TIME_SERIES_H_

#include <cstdint>

#include "datagen/registry.h"
#include "util/status.h"

namespace isobar {

/// Generates the output of consecutive simulation time steps of one
/// dataset profile (§III.F: a single GTS run emits ~300,000 spatial
/// snapshots). Each step is a statistically identical draw of the profile
/// with a step-dependent seed: the field's structure (and therefore the
/// analyzer verdict and the EUPA choice) is stable across steps while the
/// actual noise bytes differ, which is exactly the property the paper's
/// consistency experiment measures.
class TimeSeriesGenerator {
 public:
  TimeSeriesGenerator(const DatasetSpec& spec, uint64_t elements_per_step);

  /// Dataset for time step `step` (deterministic in (spec, step)).
  Result<Dataset> Step(uint64_t step) const;

 private:
  const DatasetSpec& spec_;
  uint64_t elements_per_step_;
};

}  // namespace isobar

#endif  // ISOBAR_DATAGEN_TIME_SERIES_H_
