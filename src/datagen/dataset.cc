#include "datagen/dataset.h"

namespace isobar {

size_t ElementWidth(ElementType type) {
  switch (type) {
    case ElementType::kFloat32:
      return 4;
    case ElementType::kFloat64:
    case ElementType::kInt64:
      return 8;
  }
  return 8;
}

std::string_view ElementTypeToString(ElementType type) {
  switch (type) {
    case ElementType::kFloat32:
      return "single";
    case ElementType::kFloat64:
      return "double";
    case ElementType::kInt64:
      return "64-bit integer";
  }
  return "unknown";
}

}  // namespace isobar
