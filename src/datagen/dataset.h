#ifndef ISOBAR_DATAGEN_DATASET_H_
#define ISOBAR_DATAGEN_DATASET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Element type of a scientific dataset (Table I of the paper).
enum class ElementType : uint8_t {
  kFloat32 = 0,  ///< single-precision floating point (s3d_*)
  kFloat64 = 1,  ///< double-precision floating point (most datasets)
  kInt64 = 2,    ///< 64-bit integers (xgc_igid)
};

size_t ElementWidth(ElementType type);
std::string_view ElementTypeToString(ElementType type);

/// An in-memory dataset: a named, typed array of fixed-width elements.
/// An element is either one scalar of `type` or, for record datasets
/// (xgc_iphase-style), `lanes` interleaved scalars treated as one unit by
/// the byte-column analysis.
struct Dataset {
  std::string name;
  std::string application;
  ElementType type = ElementType::kFloat64;
  size_t lanes = 1;  ///< scalars per element (record width in scalars)
  Bytes data;

  size_t width() const { return ElementWidth(type) * lanes; }
  uint64_t element_count() const { return data.size() / width(); }
  ByteSpan bytes() const { return ByteSpan(data); }
};

}  // namespace isobar

#endif  // ISOBAR_DATAGEN_DATASET_H_
