#include "datagen/field.h"

#include <bit>
#include <cmath>

#include "util/random.h"

namespace isobar {
namespace {

constexpr double kTwoPi = 6.283185307179586;

}  // namespace

Result<Dataset> GenerateField(const FieldSpec& spec) {
  const size_t width = ElementWidth(spec.type);
  if (spec.dims.empty() || spec.dims.size() > 3) {
    return Status::InvalidArgument("field must have 1-3 dimensions");
  }
  uint64_t total = 1;
  for (uint32_t d : spec.dims) {
    if (d == 0) return Status::InvalidArgument("grid dimension must be > 0");
    total *= d;
  }
  if (spec.noise_bytes < 0 || spec.noise_bytes > static_cast<int>(width)) {
    return Status::InvalidArgument("noise_bytes out of range for type");
  }
  if (spec.smooth_bytes < 1 || spec.smooth_bytes > static_cast<int>(width)) {
    return Status::InvalidArgument("smooth_bytes out of range for type");
  }
  if (spec.wavelength <= 0.0) {
    return Status::InvalidArgument("wavelength must be positive");
  }

  Xoshiro256 rng(spec.seed);

  // Three plane waves with random orientations plus a radial bump give a
  // smooth, anisotropic field without grid-aligned artifacts.
  const int ndims = static_cast<int>(spec.dims.size());
  double wave_dir[3][3];
  double wave_phase[3];
  for (int w = 0; w < 3; ++w) {
    double norm = 0.0;
    for (int i = 0; i < ndims; ++i) {
      wave_dir[w][i] = rng.NextGaussian();
      norm += wave_dir[w][i] * wave_dir[w][i];
    }
    norm = std::sqrt(norm);
    const double k = kTwoPi / (spec.wavelength * (w == 0 ? 1.0 : 0.37 * (w + 1)));
    for (int i = 0; i < ndims; ++i) wave_dir[w][i] *= k / norm;
    wave_phase[w] = rng.NextDouble() * kTwoPi;
  }
  double center[3];
  for (int i = 0; i < ndims; ++i) {
    center[i] = rng.NextDouble() * static_cast<double>(spec.dims[i]);
  }

  Dataset dataset;
  dataset.type = spec.type;
  dataset.name = "field";
  dataset.data.reserve(total * width);

  const int zero_bytes =
      std::max(0, static_cast<int>(width) - spec.smooth_bytes);
  const uint64_t keep_mask = zero_bytes > 0 ? (~0ull << (8 * zero_bytes)) : ~0ull;
  const uint64_t noise_mask =
      spec.noise_bytes == 0
          ? 0
          : (spec.noise_bytes >= 8 ? ~0ull
                                   : ((1ull << (8 * spec.noise_bytes)) - 1));

  uint32_t coord[3] = {0, 0, 0};
  for (uint64_t linear = 0; linear < total; ++linear) {
    // Row-major coordinate decode (last dimension fastest).
    uint64_t rest = linear;
    for (int i = ndims - 1; i >= 0; --i) {
      coord[i] = static_cast<uint32_t>(rest % spec.dims[i]);
      rest /= spec.dims[i];
    }

    double v = 1.45;
    for (int w = 0; w < 3; ++w) {
      double phase = wave_phase[w];
      for (int i = 0; i < ndims; ++i) {
        phase += wave_dir[w][i] * static_cast<double>(coord[i]);
      }
      v += (w == 0 ? 0.20 : 0.08) * std::sin(phase);
    }
    double r2 = 0.0;
    for (int i = 0; i < ndims; ++i) {
      const double d = (static_cast<double>(coord[i]) - center[i]) /
                       static_cast<double>(spec.dims[i]);
      r2 += d * d;
    }
    v += 0.10 * std::exp(-8.0 * r2);
    if (v < 1.0) v = 1.0;
    if (v > 1.999) v = 1.999;

    uint64_t bits;
    if (spec.type == ElementType::kFloat32) {
      bits = std::bit_cast<uint32_t>(static_cast<float>(v));
    } else {
      bits = std::bit_cast<uint64_t>(v);
    }
    bits &= keep_mask;
    if (noise_mask != 0) {
      bits = (bits & ~noise_mask) | (rng.Next() & noise_mask);
    }
    if (width == 4) {
      AppendLE32(dataset.data, static_cast<uint32_t>(bits));
    } else {
      AppendLE64(dataset.data, bits);
    }
  }
  return dataset;
}

}  // namespace isobar
