#include "datagen/generators.h"

#include <bit>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace isobar {
namespace {

constexpr double kTwoPi = 6.283185307179586;

// Smooth bounded signal in [1, 2): two incommensurate sine components plus
// a slow mean-reverting random walk, mimicking the locality of simulation
// fields (potential fluctuations, velocities, temperatures). Confinement to
// one binade keeps sign and exponent bytes constant, as observed in Fig. 1.
class SmoothSignal {
 public:
  explicit SmoothSignal(Xoshiro256* rng) : rng_(rng) {
    phase1_ = rng_->NextDouble() * kTwoPi;
    phase2_ = rng_->NextDouble() * kTwoPi;
    period1_ = 20000.0 + rng_->NextDouble() * 40000.0;
    period2_ = 311.0 + rng_->NextDouble() * 700.0;
  }

  double Next(uint64_t i) {
    walk_ += 0.02 * rng_->NextGaussian() - 0.01 * walk_;
    double v = 1.45 + 0.25 * std::sin(kTwoPi * static_cast<double>(i) / period1_ + phase1_) +
               0.12 * std::sin(kTwoPi * static_cast<double>(i) / period2_ + phase2_) +
               0.08 * walk_;
    if (v < 1.0) v = 1.0;
    if (v > 1.999) v = 1.999;
    return v;
  }

 private:
  Xoshiro256* rng_;
  double phase1_, phase2_, period1_, period2_;
  double walk_ = 0.0;
};

// Encodes one fresh element as its little-endian bit pattern.
uint64_t FreshValue(ElementType type, const GeneratorParams& params,
                    uint64_t i, SmoothSignal* signal, Xoshiro256* rng) {
  const size_t width = ElementWidth(type);
  switch (params.kind) {
    case GeneratorKind::kParticleIds: {
      // 24-bit particle identifiers: three uniform low bytes, zero above.
      return rng->Next() & 0xFFFFFFull;
    }
    case GeneratorKind::kMildSkew: {
      if (rng->NextDouble() < params.anchor_fraction) {
        // Anchor element: a single recurring value that lends every
        // byte-column just enough skew to clear the analyzer tolerance.
        return 0x3FF8A0B1C2D3E4F5ull;
      }
      return rng->Next();
    }
    case GeneratorKind::kSmoothNoisy:
    case GeneratorKind::kSmoothRepetitive: {
      // An optional anchor spike gives *every* byte-column (including the
      // noise bytes) enough frequency skew to clear the analyzer
      // tolerance, modelling observational datasets whose noisy-looking
      // bytes still carry sentinel/fill values (obs_error, obs_spitzer).
      if (params.anchor_fraction > 0.0 &&
          rng->NextDouble() < params.anchor_fraction) {
        return 0x3FF8A0B1C2D3E4F5ull;
      }
      const double v = signal->Next(i);
      uint64_t bits;
      if (type == ElementType::kFloat32) {
        bits = std::bit_cast<uint32_t>(static_cast<float>(v));
      } else {
        bits = std::bit_cast<uint64_t>(v);
      }
      // Quantize: keep only the top smooth_bytes bytes of the element so
      // every byte below the signal region is structurally zero.
      const int zero_bytes =
          std::max(0, static_cast<int>(width) - params.smooth_bytes);
      if (zero_bytes > 0) {
        bits &= ~0ull << (8 * zero_bytes);
      }
      // Inject uniform noise into the lowest noise_bytes bytes, recreating
      // the unpredictable mantissa tail of hard-to-compress data.
      const int noise = std::min<int>(params.noise_bytes,
                                      static_cast<int>(width));
      if (noise > 0) {
        const uint64_t noise_mask =
            noise >= 8 ? ~0ull : ((1ull << (8 * noise)) - 1);
        bits = (bits & ~noise_mask) | (rng->Next() & noise_mask);
      }
      return bits;
    }
  }
  return rng->Next();
}

}  // namespace

Result<Dataset> GenerateArray(ElementType type, GeneratorParams params,
                              uint64_t element_count, uint64_t seed) {
  const size_t width = ElementWidth(type);
  if (params.noise_bytes < 0 ||
      params.noise_bytes > static_cast<int>(width)) {
    return Status::InvalidArgument("noise_bytes out of range for type");
  }
  if (params.smooth_bytes < 1 ||
      params.smooth_bytes > static_cast<int>(width)) {
    return Status::InvalidArgument("smooth_bytes out of range for type");
  }
  if (params.repeat_fraction < 0.0 || params.repeat_fraction >= 1.0) {
    return Status::InvalidArgument("repeat_fraction must be in [0, 1)");
  }

  Dataset dataset;
  dataset.type = type;
  dataset.data.reserve(element_count * width);

  Xoshiro256 rng(seed);
  SmoothSignal signal(&rng);

  // Distinct values are drawn from a pre-generated pool of the target
  // cardinality; duplicates sample the pool uniformly. Uniform sampling
  // keeps per-value multiplicities tightly concentrated (Poisson), so the
  // byte-column frequency profile of the noise bytes stays statistically
  // flat — duplicated *elements* must not manufacture byte-level skew the
  // paper's real datasets do not have.
  const uint64_t pool_size = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             (1.0 - params.repeat_fraction) * static_cast<double>(element_count) +
             0.5));
  std::vector<uint64_t> pool(pool_size);
  for (uint64_t i = 0; i < pool_size; ++i) {
    pool[i] = FreshValue(type, params, i, &signal, &rng);
  }

  uint64_t next_fresh = 0;
  for (uint64_t i = 0; i < element_count; ++i) {
    uint64_t index;
    if (next_fresh < pool_size &&
        rng.NextDouble() >= params.repeat_fraction) {
      // Next unseen pool value. Once the pool is exhausted (the number of
      // fresh draws fluctuates around pool_size), surplus draws fall
      // through to uniform copies — re-emitting any *fixed* value instead
      // would concentrate hundreds of duplicates on one byte pattern and
      // fabricate skew in the noise columns.
      index = next_fresh++;
    } else {
      index = rng.NextBounded(pool_size);
    }
    const uint64_t bits = pool[index];
    if (width == 4) {
      AppendLE32(dataset.data, static_cast<uint32_t>(bits));
    } else {
      AppendLE64(dataset.data, bits);
    }
  }
  return dataset;
}

}  // namespace isobar
