#include "datagen/records.h"

namespace isobar {

Result<Dataset> GenerateRecords(const RecordSpec& spec,
                                uint64_t record_count) {
  const size_t lane_width = ElementWidth(spec.lane_type);
  if (spec.lanes.empty() || spec.lanes.size() * lane_width > 64) {
    return Status::InvalidArgument(
        "records must have 1 lane up to 64 bytes total");
  }

  // Generate each lane as an independent scalar stream, then interleave.
  std::vector<Bytes> lane_data;
  lane_data.reserve(spec.lanes.size());
  for (size_t lane = 0; lane < spec.lanes.size(); ++lane) {
    ISOBAR_ASSIGN_OR_RETURN(
        Dataset scalar,
        GenerateArray(spec.lane_type, spec.lanes[lane], record_count,
                      spec.seed * 131 + lane));
    lane_data.push_back(std::move(scalar.data));
  }

  Dataset dataset;
  dataset.type = spec.lane_type;
  dataset.lanes = spec.lanes.size();
  dataset.name = "records";
  dataset.data.resize(record_count * dataset.width());
  uint8_t* out = dataset.data.data();
  for (uint64_t r = 0; r < record_count; ++r) {
    for (size_t lane = 0; lane < spec.lanes.size(); ++lane) {
      const uint8_t* src = lane_data[lane].data() + r * lane_width;
      std::copy(src, src + lane_width, out);
      out += lane_width;
    }
  }
  return dataset;
}

}  // namespace isobar
