#ifndef ISOBAR_DATAGEN_GENERATORS_H_
#define ISOBAR_DATAGEN_GENERATORS_H_

#include <cstdint>

#include "datagen/dataset.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Family of synthetic generators. Each family reproduces the byte-column
/// entropy signature of one class of the paper's scientific datasets; see
/// DESIGN.md (Substitutions) for the paper-data → synthetic mapping.
enum class GeneratorKind : uint8_t {
  /// Smooth bounded field whose low-order mantissa bytes are replaced by
  /// uniform noise: the classic hard-to-compress profile of Fig. 1
  /// (gts_*, flash_*, msg_lu/sp/sweep3d, num_*, obs_info/temp, s3d_*,
  /// xgc_iphase).
  kSmoothNoisy = 0,

  /// Smooth quantized field with element repetition and no injected
  /// noise: every byte-column has exploitable skew, so the dataset is
  /// easy to compress and non-improvable (msg_sppm, num_plasma,
  /// obs_error, obs_spitzer).
  kSmoothRepetitive = 1,

  /// Near-uniform bytes with a small fraction of "anchor" elements that
  /// give every column mild skew: hard to compress yet non-improvable,
  /// reproducing the odd msg_bt profile (HTC-looking entropy, all columns
  /// above tolerance).
  kMildSkew = 2,

  /// 64-bit particle identifiers: low bytes uniform, high bytes zero,
  /// heavy repetition (xgc_igid).
  kParticleIds = 3,
};

/// Tunable parameters of the synthetic generators.
struct GeneratorParams {
  GeneratorKind kind = GeneratorKind::kSmoothNoisy;

  /// Low-order bytes per element overwritten with uniform noise; sets the
  /// hard-to-compress byte fraction (Table IV) to noise_bytes/width.
  int noise_bytes = 6;

  /// High-order bytes carrying the smooth signal; bytes between the noise
  /// and signal regions are zero (quantization), so they always carry
  /// compressible structure.
  int smooth_bytes = 2;

  /// Probability that an element repeats a previously generated value;
  /// tunes the unique-value percentage of Table III (unique ≈ 1 - repeat).
  double repeat_fraction = 0.0;

  /// Probability of emitting the fixed anchor element instead of a fresh
  /// value (kMildSkew and the anchored smooth profiles). 0 disables it.
  double anchor_fraction = 0.0;
};

/// Generates `element_count` elements of `type` with the byte-level
/// structure described by `params`, deterministically from `seed`.
Result<Dataset> GenerateArray(ElementType type, GeneratorParams params,
                              uint64_t element_count, uint64_t seed);

}  // namespace isobar

#endif  // ISOBAR_DATAGEN_GENERATORS_H_
