#include "datagen/time_series.h"

#include <string>

namespace isobar {
namespace {

// SplitMix64-style mix of (seed, step) so consecutive steps decorrelate.
uint64_t MixSeed(uint64_t seed, uint64_t step) {
  uint64_t z = seed + step * 0x9E3779B97F4A7C15ull + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

TimeSeriesGenerator::TimeSeriesGenerator(const DatasetSpec& spec,
                                         uint64_t elements_per_step)
    : spec_(spec), elements_per_step_(elements_per_step) {}

Result<Dataset> TimeSeriesGenerator::Step(uint64_t step) const {
  ISOBAR_ASSIGN_OR_RETURN(
      Dataset dataset,
      GenerateArray(spec_.type, spec_.params, elements_per_step_,
                    MixSeed(spec_.seed, step)));
  dataset.name = std::string(spec_.name) + "@t" + std::to_string(step);
  dataset.application = spec_.application;
  return dataset;
}

}  // namespace isobar
