#ifndef ISOBAR_DATAGEN_FIELD_H_
#define ISOBAR_DATAGEN_FIELD_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "util/status.h"

namespace isobar {

/// A multi-dimensional scalar field on a row-major grid: spatially smooth
/// structure (superposed plane waves plus a radial component) with the
/// same byte-level quantize-and-noise treatment as the 1-D profiles.
///
/// This is the data shape behind §III.G: simulation output is a 2-D/3-D
/// mesh that I/O layers re-linearize (row-major, Hilbert, ...); a grid
/// field generated here keeps *spatial* locality, so reorderings change
/// the solver's view while the byte-column statistics stay fixed. It is
/// also what the n-dimensional Lorenzo predictor of fpzip is built for.
struct FieldSpec {
  ElementType type = ElementType::kFloat64;

  /// Row-major grid shape, 1-3 dimensions, each > 0.
  std::vector<uint32_t> dims;

  /// As in GeneratorParams: low bytes randomized / signal byte count.
  int noise_bytes = 6;
  int smooth_bytes = 2;

  /// Spatial wavelength of the dominant mode, in grid cells.
  double wavelength = 48.0;

  uint64_t seed = 1;
};

/// Materializes the field; dataset.data holds prod(dims) elements in
/// row-major order.
Result<Dataset> GenerateField(const FieldSpec& spec);

}  // namespace isobar

#endif  // ISOBAR_DATAGEN_FIELD_H_
