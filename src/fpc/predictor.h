#ifndef ISOBAR_FPC_PREDICTOR_H_
#define ISOBAR_FPC_PREDICTOR_H_

#include <cstdint>
#include <vector>

namespace isobar {

/// Finite Context Method predictor (Sazeides & Smith, MICRO 1997), as used
/// by FPC (Burtscher & Ratanaworabhan, IEEE TC 2009): a hash of the recent
/// value history indexes a table of the values that followed that history
/// last time.
class FcmPredictor {
 public:
  /// Table has 2^table_bits entries (each 8 bytes).
  explicit FcmPredictor(int table_bits);

  /// Predicted next value under the current context.
  uint64_t Predict() const { return table_[hash_]; }

  /// Records the actually observed value and advances the context.
  void Update(uint64_t actual) {
    table_[hash_] = actual;
    hash_ = ((hash_ << 6) ^ (actual >> 48)) & mask_;
  }

  void Reset();

 private:
  std::vector<uint64_t> table_;
  uint64_t mask_;
  uint64_t hash_ = 0;
};

/// Differential FCM predictor (Goeman et al., HPCA 2001): like FCM but the
/// table stores strides (value deltas), capturing arithmetic sequences that
/// absolute-value contexts miss.
class DfcmPredictor {
 public:
  explicit DfcmPredictor(int table_bits);

  uint64_t Predict() const { return table_[hash_] + last_; }

  void Update(uint64_t actual) {
    const uint64_t delta = actual - last_;
    table_[hash_] = delta;
    hash_ = ((hash_ << 2) ^ (delta >> 40)) & mask_;
    last_ = actual;
  }

  void Reset();

 private:
  std::vector<uint64_t> table_;
  uint64_t mask_;
  uint64_t hash_ = 0;
  uint64_t last_ = 0;
};

}  // namespace isobar

#endif  // ISOBAR_FPC_PREDICTOR_H_
