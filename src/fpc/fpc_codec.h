#ifndef ISOBAR_FPC_FPC_CODEC_H_
#define ISOBAR_FPC_FPC_CODEC_H_

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Reimplementation of FPC, the high-speed double-precision floating-point
/// compressor of Burtscher & Ratanaworabhan (IEEE Trans. Computers 2009),
/// used by the paper as a Table X comparator.
///
/// Per value: an FCM and a DFCM predictor each guess the next 64-bit word;
/// the closer prediction (more leading zero bytes after XOR) is selected,
/// and the value is coded as a 4-bit header (1 selector bit + 3-bit
/// leading-zero-byte count) plus the non-zero residual tail. Headers are
/// packed two per byte.
///
/// Stream layout: [u8 table_bits][pairs of 4-bit headers][residual bytes
/// interleaved per value]. Operates on any array of 8-byte elements
/// (doubles or 64-bit integers).
class FpcCodec {
 public:
  /// Each predictor table has 2^table_bits 8-byte entries; 16 (512 KiB per
  /// table) is a good single-core default, 20+ matches the original
  /// paper's large-memory configuration.
  explicit FpcCodec(int table_bits = 16);

  /// input.size() must be a multiple of 8.
  Status Compress(ByteSpan input, Bytes* out) const;

  /// `original_size` is the exact pre-compression byte count.
  Status Decompress(ByteSpan input, size_t original_size, Bytes* out) const;

 private:
  int table_bits_;
};

}  // namespace isobar

#endif  // ISOBAR_FPC_FPC_CODEC_H_
