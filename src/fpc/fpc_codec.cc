#include "fpc/fpc_codec.h"

#include <algorithm>
#include <bit>

#include "fpc/predictor.h"

namespace isobar {
namespace {

// FPC's 3-bit leading-zero-byte code covers {0,1,2,3,5,6,7,8}: an actual
// count of 4 (rare in practice) is rounded down to 3, spending one extra
// zero byte, so that a fully predicted value (count 8) costs no tail bytes.
int LzbCodeFromResidual(uint64_t residual) {
  const int lzb = residual == 0 ? 8 : std::countl_zero(residual) / 8;
  if (lzb >= 5) return lzb - 1;  // codes 4..7 mean 5..8
  return std::min(lzb, 3);       // codes 0..3 mean 0..3 (4 rounds down)
}

int LzbFromCode(int code) { return code >= 4 ? code + 1 : code; }

}  // namespace

FpcCodec::FpcCodec(int table_bits)
    : table_bits_(std::clamp(table_bits, 4, 24)) {}

Status FpcCodec::Compress(ByteSpan input, Bytes* out) const {
  if (input.size() % 8 != 0) {
    return Status::InvalidArgument("FPC input must be 8-byte elements");
  }
  const size_t n = input.size() / 8;
  out->clear();
  out->reserve(input.size() / 2 + 16);
  out->push_back(static_cast<uint8_t>(table_bits_));

  FcmPredictor fcm(table_bits_);
  DfcmPredictor dfcm(table_bits_);

  size_t i = 0;
  while (i < n) {
    const size_t pair = std::min<size_t>(2, n - i);
    uint8_t header = 0;
    uint8_t tails[16];
    size_t tail_len = 0;
    for (size_t k = 0; k < pair; ++k) {
      const uint64_t actual = LoadLE64(input.data() + (i + k) * 8);
      const uint64_t res_fcm = actual ^ fcm.Predict();
      const uint64_t res_dfcm = actual ^ dfcm.Predict();
      fcm.Update(actual);
      dfcm.Update(actual);

      // Prefer the predictor whose residual has more leading zero bytes;
      // ties go to FCM, matching the reference implementation.
      const bool use_dfcm = res_dfcm < res_fcm;
      const uint64_t residual = use_dfcm ? res_dfcm : res_fcm;
      const int code = LzbCodeFromResidual(residual);
      const uint8_t nibble =
          static_cast<uint8_t>((use_dfcm ? 8 : 0) | code);
      header |= static_cast<uint8_t>(nibble << (4 * k));

      const int tail_bytes = 8 - LzbFromCode(code);
      for (int b = 0; b < tail_bytes; ++b) {
        tails[tail_len++] = static_cast<uint8_t>(residual >> (8 * b));
      }
    }
    out->push_back(header);
    out->insert(out->end(), tails, tails + tail_len);
    i += pair;
  }
  return Status::OK();
}

Status FpcCodec::Decompress(ByteSpan input, size_t original_size,
                            Bytes* out) const {
  if (original_size % 8 != 0) {
    return Status::InvalidArgument("FPC output size must be 8-byte aligned");
  }
  if (input.empty()) {
    if (original_size != 0) return Status::Corruption("fpc: empty stream");
    out->clear();
    return Status::OK();
  }
  const int table_bits = input[0];
  if (table_bits < 4 || table_bits > 24) {
    return Status::Corruption("fpc: invalid table size in stream");
  }
  const size_t n = original_size / 8;
  out->clear();
  out->reserve(original_size);

  FcmPredictor fcm(table_bits);
  DfcmPredictor dfcm(table_bits);

  size_t pos = 1;
  size_t i = 0;
  while (i < n) {
    if (pos >= input.size()) return Status::Corruption("fpc: truncated header");
    const uint8_t header = input[pos++];
    const size_t pair = std::min<size_t>(2, n - i);
    for (size_t k = 0; k < pair; ++k) {
      const uint8_t nibble = (header >> (4 * k)) & 0x0F;
      const bool use_dfcm = (nibble & 8) != 0;
      const int tail_bytes = 8 - LzbFromCode(nibble & 7);
      if (pos + static_cast<size_t>(tail_bytes) > input.size()) {
        return Status::Corruption("fpc: truncated residual");
      }
      uint64_t residual = 0;
      for (int b = 0; b < tail_bytes; ++b) {
        residual |= static_cast<uint64_t>(input[pos++]) << (8 * b);
      }
      const uint64_t pred = use_dfcm ? dfcm.Predict() : fcm.Predict();
      const uint64_t actual = pred ^ residual;
      fcm.Update(actual);
      dfcm.Update(actual);
      AppendLE64(*out, actual);
    }
    i += pair;
  }
  if (pos != input.size()) {
    return Status::Corruption("fpc: trailing bytes in stream");
  }
  return Status::OK();
}

}  // namespace isobar
