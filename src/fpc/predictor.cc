#include "fpc/predictor.h"

#include <algorithm>
#include <cassert>

namespace isobar {

FcmPredictor::FcmPredictor(int table_bits) {
  assert(table_bits >= 1 && table_bits <= 26);
  table_.assign(1ull << table_bits, 0);
  mask_ = table_.size() - 1;
}

void FcmPredictor::Reset() {
  std::fill(table_.begin(), table_.end(), 0);
  hash_ = 0;
}

DfcmPredictor::DfcmPredictor(int table_bits) {
  assert(table_bits >= 1 && table_bits <= 26);
  table_.assign(1ull << table_bits, 0);
  mask_ = table_.size() - 1;
}

void DfcmPredictor::Reset() {
  std::fill(table_.begin(), table_.end(), 0);
  hash_ = 0;
  last_ = 0;
}

}  // namespace isobar
