#include "stats/summary.h"

#include <cmath>
#include <unordered_map>

namespace isobar {
namespace {

// FNV-1a over one element's bytes; used as the distinct-value key.
uint64_t HashElement(const uint8_t* p, size_t width) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < width; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Result<DataSummary> Summarize(ByteSpan data, size_t width) {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.size() % width != 0) {
    return Status::InvalidArgument("data size is not a multiple of width");
  }

  DataSummary summary;
  summary.set_size_bytes = data.size();
  summary.element_count = data.size() / width;
  if (summary.element_count == 0) return summary;

  std::unordered_map<uint64_t, uint64_t> counts;
  counts.reserve(summary.element_count / 2 + 8);
  const uint8_t* p = data.data();
  for (uint64_t i = 0; i < summary.element_count; ++i, p += width) {
    ++counts[HashElement(p, width)];
  }

  const double n = static_cast<double>(summary.element_count);
  summary.unique_value_percent =
      static_cast<double>(counts.size()) / n * 100.0;

  double entropy = 0.0;
  for (const auto& [hash, count] : counts) {
    const double prob = static_cast<double>(count) / n;
    entropy -= prob * std::log2(prob);
  }
  summary.shannon_entropy = entropy;

  // A truly random vector of N all-unique elements has entropy log2(N).
  const double reference = std::log2(n);
  summary.randomness_percent =
      reference > 0.0 ? entropy / reference * 100.0 : 100.0;
  return summary;
}

}  // namespace isobar
