#include "stats/bit_frequency.h"

namespace isobar {

Result<BitFrequencyProfile> ComputeBitFrequency(ByteSpan data, size_t width) {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.size() % width != 0) {
    return Status::InvalidArgument("data size is not a multiple of width");
  }

  BitFrequencyProfile profile;
  const size_t bits = width * 8;
  profile.ones.assign(bits, 0);
  profile.element_count = data.size() / width;

  const uint8_t* p = data.data();
  for (uint64_t i = 0; i < profile.element_count; ++i) {
    for (size_t j = 0; j < width; ++j) {
      const uint8_t byte = p[j];
      // Bit position j*8 is the MSB of byte j *in memory order*. For
      // little-endian IEEE data, callers that want the paper's
      // sign-exponent-mantissa reading order (Fig. 1) should reverse the
      // byte groups for presentation; the analysis itself is order-free.
      for (int b = 0; b < 8; ++b) {
        profile.ones[j * 8 + b] += (byte >> (7 - b)) & 1u;
      }
    }
    p += width;
  }

  profile.probability.resize(bits);
  const double n = static_cast<double>(profile.element_count);
  for (size_t k = 0; k < bits; ++k) {
    if (profile.element_count == 0) {
      profile.probability[k] = 1.0;
      continue;
    }
    const double p1 = static_cast<double>(profile.ones[k]) / n;
    profile.probability[k] = p1 >= 0.5 ? p1 : 1.0 - p1;
  }
  return profile;
}

}  // namespace isobar
