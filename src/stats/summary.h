#ifndef ISOBAR_STATS_SUMMARY_H_
#define ISOBAR_STATS_SUMMARY_H_

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Element-level statistical characteristics of a dataset, as reported in
/// Table III of the paper.
struct DataSummary {
  uint64_t element_count = 0;
  uint64_t set_size_bytes = 0;

  /// Eq. 4: |V_unique| / |V| * 100, in percent.
  double unique_value_percent = 0.0;

  /// Eq. 5: Shannon entropy of the element-value distribution, bits/element.
  double shannon_entropy = 0.0;

  /// Eq. 6: H(V) / H(Random(|V|)) * 100, in percent, where the reference is
  /// a same-length vector of all-unique elements (entropy log2(N)).
  double randomness_percent = 0.0;
};

/// Computes Table III statistics for `data` interpreted as elements of
/// `width` bytes. Distinct elements are tracked via a 64-bit hash of their
/// byte representation; for the dataset sizes used here the collision bias
/// on the entropy estimate is far below the reporting precision.
Result<DataSummary> Summarize(ByteSpan data, size_t width);

}  // namespace isobar

#endif  // ISOBAR_STATS_SUMMARY_H_
