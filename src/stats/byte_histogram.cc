#include "stats/byte_histogram.h"

#include <cmath>

#include "simd/dispatch.h"

namespace isobar {

ColumnHistogramSet::ColumnHistogramSet(size_t width) : histograms_(width) {
  for (auto& h : histograms_) h.fill(0);
}

Status ColumnHistogramSet::Update(ByteSpan data) {
  const size_t width = histograms_.size();
  if (width == 0) return Status::InvalidArgument("element width must be > 0");
  if (data.size() % width != 0) {
    return Status::InvalidArgument(
        "data size " + std::to_string(data.size()) +
        " is not a multiple of element width " + std::to_string(width));
  }
  const size_t n = data.size() / width;
  if (n != 0) {
    // The dispatch tiers only differ in how the accumulator dependency
    // chains are broken; every tier produces bit-identical counts.
    simd::Kernels().histogram_update(data.data(), n, width,
                                     histograms_.data()->data());
  }
  element_count_ += n;
  return Status::OK();
}

uint64_t ColumnHistogramSet::MaxFrequency(size_t column) const {
  uint64_t max = 0;
  for (uint64_t f : histograms_[column]) {
    if (f > max) max = f;
  }
  return max;
}

double ColumnHistogramSet::ColumnEntropy(size_t column) const {
  if (element_count_ == 0) return 0.0;
  const double n = static_cast<double>(element_count_);
  double h = 0.0;
  for (uint64_t f : histograms_[column]) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / n;
    h -= p * std::log2(p);
  }
  return h;
}

void ColumnHistogramSet::Reset() {
  for (auto& h : histograms_) h.fill(0);
  element_count_ = 0;
}

void ColumnHistogramSet::ResetWidth(size_t width) {
  histograms_.resize(width);
  Reset();
}

}  // namespace isobar
