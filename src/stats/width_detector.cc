#include "stats/width_detector.h"

#include <algorithm>

#include "stats/byte_histogram.h"

namespace isobar {
namespace {

constexpr size_t kMaxScanBytes = 4 * 1024 * 1024;
constexpr uint64_t kMinElements = 1024;

// Scores within this fraction of the minimum count as ties, resolved
// toward the smaller width (so plain doubles read as 8, not 16 or 24).
constexpr double kTieTolerance = 0.02;

// Below this entropy spread across candidates, the data shows no
// periodic byte structure and no width can be inferred.
constexpr double kConfidenceSpread = 0.05;

}  // namespace

Result<WidthDetection> DetectElementWidth(ByteSpan data, size_t max_width) {
  if (max_width == 0 || max_width > 64) {
    return Status::InvalidArgument("max_width must be in [1, 64]");
  }
  if (data.size() < kMinElements) {
    return Status::InvalidArgument(
        "need at least " + std::to_string(kMinElements) +
        " bytes to infer an element width");
  }
  const size_t scan = std::min(data.size(), kMaxScanBytes);

  WidthDetection detection;
  for (size_t width = 1; width <= max_width; ++width) {
    // The element width must tile the whole input, and the scanned
    // prefix must hold enough elements for stable statistics.
    if (data.size() % width != 0) continue;
    const size_t usable = scan / width * width;
    if (usable / width < kMinElements) continue;

    ColumnHistogramSet histograms(width);
    ISOBAR_RETURN_NOT_OK(histograms.Update(data.subspan(0, usable)));
    double mean = 0.0;
    for (size_t j = 0; j < width; ++j) {
      mean += histograms.ColumnEntropy(j);
    }
    mean /= static_cast<double>(width);
    detection.candidates.push_back({width, mean});
  }
  if (detection.candidates.empty()) {
    return Status::InvalidArgument(
        "no candidate width divides the data size");
  }

  double best = detection.candidates.front().mean_column_entropy;
  double worst = best;
  for (const WidthCandidate& candidate : detection.candidates) {
    best = std::min(best, candidate.mean_column_entropy);
    worst = std::max(worst, candidate.mean_column_entropy);
  }
  const double band = best + std::max(kTieTolerance * best, kTieTolerance);
  for (const WidthCandidate& candidate : detection.candidates) {
    if (candidate.mean_column_entropy <= band) {
      detection.width = candidate.width;  // smallest in band: sorted order
      break;
    }
  }
  detection.confident = (worst - best) > kConfidenceSpread;
  if (!detection.confident) detection.width = 1;
  return detection;
}

}  // namespace isobar
