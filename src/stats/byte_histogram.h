#ifndef ISOBAR_STATS_BYTE_HISTOGRAM_H_
#define ISOBAR_STATS_BYTE_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Frequency distribution of the 256 possible byte values within one
/// byte-column (Fig. 3/4 of the paper: column j holds byte j of every
/// element).
using ByteHistogram = std::array<uint64_t, 256>;

/// Per-column byte-value frequency counters for an array of fixed-width
/// elements. This is the statistical core of the ISOBAR-analyzer: one
/// histogram per byte-column, filled in a single streaming pass.
class ColumnHistogramSet {
 public:
  /// `width` = ω, the element size in bytes (1..64).
  explicit ColumnHistogramSet(size_t width);

  /// Accumulates `data` (size must be a multiple of width). May be called
  /// repeatedly to stream a large input.
  Status Update(ByteSpan data);

  size_t width() const { return histograms_.size(); }

  /// Elements accumulated so far.
  uint64_t element_count() const { return element_count_; }

  /// Histogram of byte-column `column` (0-based).
  const ByteHistogram& column(size_t column) const {
    return histograms_[column];
  }

  /// Largest single byte-value frequency in `column`; the analyzer compares
  /// this against the tolerance τ·N/256.
  uint64_t MaxFrequency(size_t column) const;

  /// Shannon entropy (bits/byte, 0..8) of the byte-value distribution in
  /// `column`.
  double ColumnEntropy(size_t column) const;

  void Reset();

  /// Re-targets the set to `width` columns and clears every counter —
  /// equivalent to constructing a fresh set, but reusing the existing
  /// allocation (the analyzer recycles one set per worker this way).
  void ResetWidth(size_t width);

 private:
  std::vector<ByteHistogram> histograms_;
  uint64_t element_count_ = 0;
};

}  // namespace isobar

#endif  // ISOBAR_STATS_BYTE_HISTOGRAM_H_
