#ifndef ISOBAR_STATS_WIDTH_DETECTOR_H_
#define ISOBAR_STATS_WIDTH_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Evidence for one candidate element width.
struct WidthCandidate {
  size_t width = 0;
  /// Mean byte-column entropy (bits/byte) when the data is viewed as
  /// elements of this width. Structured data scores lowest at its true
  /// width (and its multiples), because only there do the quiet bytes
  /// line up into pure columns instead of mixing with noise bytes.
  double mean_column_entropy = 0.0;
};

struct WidthDetection {
  /// Smallest width whose score is within tolerance of the best score.
  size_t width = 0;
  /// True when the data showed any periodic byte structure at all; false
  /// for featureless (fully random or constant) inputs, where `width`
  /// falls back to 1.
  bool confident = false;
  /// All candidates, ordered by width, for diagnostics.
  std::vector<WidthCandidate> candidates;
};

/// Infers the element width of a raw binary array from its byte-column
/// statistics alone — the preprocessing question every tool in this
/// repository otherwise asks the user ("is this file doubles? floats?
/// 8-double records?").
///
/// Candidates are 1..max_width (default 16, up to 64); widths that do not
/// divide the data size are skipped. At most ~4 MB of the input is
/// scanned. A width is chosen as the smallest candidate scoring within 2%
/// of the global entropy minimum, which makes the detector return 8 (not
/// 16, 24, ...) for plain doubles while still resolving genuine record
/// widths.
Result<WidthDetection> DetectElementWidth(ByteSpan data,
                                          size_t max_width = 16);

}  // namespace isobar

#endif  // ISOBAR_STATS_WIDTH_DETECTOR_H_
