#ifndef ISOBAR_STATS_BIT_FREQUENCY_H_
#define ISOBAR_STATS_BIT_FREQUENCY_H_

#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Per-bit-position statistics of an array of fixed-width elements,
/// reproducing the analysis behind Fig. 1 of the paper.
struct BitFrequencyProfile {
  /// probability[k], k in [0, 8*width): probability of the *more common*
  /// bit value at bit position k, in [0.5, 1.0]. Position 0 is the most
  /// significant bit of byte 0 (the paper plots positions 1..64 of a
  /// double, sign bit first).
  std::vector<double> probability;

  /// ones[k]: raw count of set bits at position k.
  std::vector<uint64_t> ones;

  uint64_t element_count = 0;
};

/// Computes the bit-position probability profile of `data` interpreted as
/// elements of `width` bytes. A value of 1.0 at a position means the bit is
/// constant across the dataset; 0.5 means it is maximally unpredictable
/// (noise-like, the signature of a hard-to-compress dataset).
Result<BitFrequencyProfile> ComputeBitFrequency(ByteSpan data, size_t width);

}  // namespace isobar

#endif  // ISOBAR_STATS_BIT_FREQUENCY_H_
