#ifndef ISOBAR_IO_FILE_IO_H_
#define ISOBAR_IO_FILE_IO_H_

#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Reads an entire file (or pipe/fifo — non-seekable inputs are streamed)
/// into memory.
Result<Bytes> ReadFileToBytes(const std::string& path);

/// Writes `data` to `path`, truncating any existing file.
Status WriteBytesToFile(const std::string& path, ByteSpan data);

}  // namespace isobar

#endif  // ISOBAR_IO_FILE_IO_H_
