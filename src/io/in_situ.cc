#include "io/in_situ.h"

#include <algorithm>

#include "compressors/registry.h"
#include "core/chunker.h"
#include "core/stream.h"
#include "io/sink.h"
#include "util/stopwatch.h"

namespace isobar {

std::string_view WriteStrategyToString(WriteStrategy strategy) {
  switch (strategy) {
    case WriteStrategy::kRaw:
      return "raw";
    case WriteStrategy::kZlib:
      return "zlib";
    case WriteStrategy::kBzip2:
      return "bzip2";
    case WriteStrategy::kIsobar:
      return "isobar";
  }
  return "unknown";
}

Result<InSituReport> SimulateInSituWrite(WriteStrategy strategy,
                                         const CompressOptions& options,
                                         ByteSpan data, size_t width,
                                         double bandwidth_mbps) {
  if (bandwidth_mbps <= 0.0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  if (width == 0 || width > 64 || data.size() % width != 0) {
    return Status::InvalidArgument("invalid element geometry");
  }
  if (options.chunk_elements == 0) {
    return Status::InvalidArgument("chunk_elements must be > 0");
  }

  InSituReport report;
  report.raw_bytes = data.size();

  const Chunker chunker(data, width, options.chunk_elements);

  // Per-strategy chunk state.
  CountingSink counter;
  IsobarStreamWriter isobar_writer(options, width, &counter);
  const Codec* standard_codec = nullptr;
  if (strategy == WriteStrategy::kZlib || strategy == WriteStrategy::kBzip2) {
    ISOBAR_ASSIGN_OR_RETURN(
        standard_codec,
        GetCodec(strategy == WriteStrategy::kZlib ? CodecId::kZlib
                                                  : CodecId::kBzip2));
  }

  // Two-stage pipeline makespan: chunk i+1 compresses while chunk i is on
  // the storage link.
  double compute_finish = 0.0;
  double transfer_finish = 0.0;
  Bytes scratch;

  for (uint64_t ci = 0; ci < chunker.chunk_count(); ++ci) {
    const ByteSpan chunk = chunker.chunk(ci);
    const bool last = ci + 1 == chunker.chunk_count();

    double compute = 0.0;
    uint64_t stored = 0;
    switch (strategy) {
      case WriteStrategy::kRaw:
        stored = chunk.size();
        break;
      case WriteStrategy::kZlib:
      case WriteStrategy::kBzip2: {
        Stopwatch timer;
        ISOBAR_RETURN_NOT_OK(standard_codec->Compress(chunk, &scratch));
        compute = timer.ElapsedSeconds();
        stored = scratch.size();
        break;
      }
      case WriteStrategy::kIsobar: {
        const uint64_t before = counter.bytes_written();
        Stopwatch timer;
        ISOBAR_RETURN_NOT_OK(isobar_writer.Append(chunk));
        if (last) ISOBAR_RETURN_NOT_OK(isobar_writer.Finish());
        compute = timer.ElapsedSeconds();
        stored = counter.bytes_written() - before;
        break;
      }
    }

    report.compute_seconds += compute;
    report.stored_bytes += stored;
    const double transfer = static_cast<double>(stored) / 1e6 / bandwidth_mbps;
    report.transfer_seconds += transfer;
    compute_finish += compute;
    transfer_finish = std::max(compute_finish, transfer_finish) + transfer;
  }

  if (strategy == WriteStrategy::kIsobar && !isobar_writer.finished()) {
    // Zero-chunk input: still emit the (empty) container header.
    ISOBAR_RETURN_NOT_OK(isobar_writer.Finish());
    report.stored_bytes += counter.bytes_written();
    report.transfer_seconds +=
        static_cast<double>(counter.bytes_written()) / 1e6 / bandwidth_mbps;
    transfer_finish += report.transfer_seconds;
  }

  report.overlapped_seconds = transfer_finish;
  return report;
}

}  // namespace isobar
