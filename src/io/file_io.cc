#include "io/file_io.h"

#include <fstream>

namespace isobar {

Result<Bytes> ReadFileToBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  Bytes data;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size > 0) {
    // Seekable with a known size.
    in.seekg(0, std::ios::beg);
    data.resize(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!in) {
      return Status::IOError("short read from '" + path + "'");
    }
    return data;
  }
  // Non-seekable (pipe, fifo, process substitution) or size-0 special
  // files (/proc): stream in blocks.
  in.clear();
  in.seekg(0, std::ios::beg);
  in.clear();
  char block[64 * 1024];
  while (in.read(block, sizeof(block)) || in.gcount() > 0) {
    data.insert(data.end(), block, block + in.gcount());
  }
  if (in.bad()) {
    return Status::IOError("read error on '" + path + "'");
  }
  return data;
}

Status WriteBytesToFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    return Status::IOError("write failed on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace isobar
