#ifndef ISOBAR_IO_SINK_H_
#define ISOBAR_IO_SINK_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Destination for streamed container bytes (a file, a memory buffer, or
/// a simulated storage link). Implementations must accept writes of any
/// size and preserve ordering.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual Status Write(ByteSpan data) = 0;
};

/// Appends everything to a caller-owned buffer.
class MemorySink final : public ByteSink {
 public:
  /// `target` must outlive the sink.
  explicit MemorySink(Bytes* target) : target_(target) {}

  Status Write(ByteSpan data) override {
    target_->insert(target_->end(), data.begin(), data.end());
    return Status::OK();
  }

 private:
  Bytes* target_;
};

/// Writes to a file via buffered stdio-style streams.
class FileSink final : public ByteSink {
 public:
  explicit FileSink(const std::string& path);

  /// IOError if the file could not be opened.
  Status status() const { return status_; }

  Status Write(ByteSpan data) override;

  /// Flushes and closes; further writes fail.
  Status Close();

 private:
  std::ofstream out_;
  Status status_;
};

/// Decorator counting the bytes that pass through.
class CountingSink final : public ByteSink {
 public:
  /// `next` may be null (count-only mode); otherwise must outlive this.
  explicit CountingSink(ByteSink* next = nullptr) : next_(next) {}

  uint64_t bytes_written() const { return bytes_; }

  Status Write(ByteSpan data) override {
    bytes_ += data.size();
    return next_ == nullptr ? Status::OK() : next_->Write(data);
  }

 private:
  ByteSink* next_;
  uint64_t bytes_ = 0;
};

/// Models a storage link of fixed bandwidth with a *simulated* clock: each
/// write advances simulated time by bytes / bandwidth without sleeping.
/// Used by the in-situ pipeline benchmarks to study the paper's
/// motivating FLOPS-vs-filesystem imbalance at arbitrary link speeds.
class ThrottledSink final : public ByteSink {
 public:
  /// `bandwidth_mbps` in MB/s (1 MB = 1e6 bytes); must be positive.
  /// `next` may be null (discard data, keep the clock).
  explicit ThrottledSink(double bandwidth_mbps, ByteSink* next = nullptr)
      : bandwidth_mbps_(bandwidth_mbps), next_(next) {}

  double simulated_seconds() const { return simulated_seconds_; }
  uint64_t bytes_written() const { return bytes_; }

  Status Write(ByteSpan data) override {
    if (bandwidth_mbps_ <= 0.0) {
      return Status::InvalidArgument("sink bandwidth must be positive");
    }
    bytes_ += data.size();
    simulated_seconds_ += static_cast<double>(data.size()) / 1e6 / bandwidth_mbps_;
    return next_ == nullptr ? Status::OK() : next_->Write(data);
  }

 private:
  double bandwidth_mbps_;
  ByteSink* next_;
  double simulated_seconds_ = 0.0;
  uint64_t bytes_ = 0;
};

}  // namespace isobar

#endif  // ISOBAR_IO_SINK_H_
