#ifndef ISOBAR_IO_FAULT_INJECTION_H_
#define ISOBAR_IO_FAULT_INJECTION_H_

#include <cstdint>

#include "io/sink.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Decorator that fails deterministically once `fail_at_byte` total bytes
/// have passed through, forwarding everything before that point. Drives
/// the streaming writer's error paths in tests: a write that straddles the
/// fault boundary forwards the prefix (a torn record on storage) and then
/// fails, which is how a full filesystem or a dying link actually behaves.
class FaultInjectionSink final : public ByteSink {
 public:
  /// `next` may be null (discard forwarded bytes); otherwise must outlive
  /// this sink. The first write reaching byte `fail_at_byte` (0 = fail
  /// immediately) returns IOError; every later write fails too.
  FaultInjectionSink(uint64_t fail_at_byte, ByteSink* next = nullptr)
      : fail_at_byte_(fail_at_byte), next_(next) {}

  uint64_t bytes_written() const { return bytes_; }
  bool tripped() const { return tripped_; }

  Status Write(ByteSpan data) override;

 private:
  uint64_t fail_at_byte_;
  ByteSink* next_;
  uint64_t bytes_ = 0;
  bool tripped_ = false;
};

/// Deterministic byte-level mutations for corruption tests and fuzz corpus
/// seeding. All are in-place on a caller-owned buffer and no-ops when the
/// requested offset falls outside it.

/// XORs `mask` into the byte at `offset` (mask 0 picks 0x01 so the call
/// always changes the buffer).
void FlipBits(Bytes* data, size_t offset, uint8_t mask = 0x01);

/// Overwrites `count` bytes starting at `offset` with `value`, clamped to
/// the buffer's end.
void SmashBytes(Bytes* data, size_t offset, size_t count, uint8_t value);

/// Truncates the buffer to `new_size` (no-op when already shorter).
void TruncateBytes(Bytes* data, size_t new_size);

}  // namespace isobar

#endif  // ISOBAR_IO_FAULT_INJECTION_H_
