#ifndef ISOBAR_IO_IN_SITU_H_
#define ISOBAR_IO_IN_SITU_H_

#include <cstdint>
#include <string_view>

#include "core/isobar.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// What a simulation does with a checkpoint before it hits the storage
/// link.
enum class WriteStrategy : uint8_t {
  kRaw = 0,     ///< Write the elements untouched.
  kZlib = 1,    ///< Standard zlib on the whole buffer.
  kBzip2 = 2,   ///< Standard bzip2 on the whole buffer.
  kIsobar = 3,  ///< ISOBAR-compress pipeline (options-controlled).
};

std::string_view WriteStrategyToString(WriteStrategy strategy);

/// Outcome of writing one dataset through a bandwidth-limited storage
/// link under a given strategy. Compression cost is *measured* wall time;
/// transfer cost is *simulated* from the link bandwidth, so arbitrarily
/// slow or fast file systems can be studied on one machine.
struct InSituReport {
  uint64_t raw_bytes = 0;
  uint64_t stored_bytes = 0;
  double compute_seconds = 0.0;   ///< Total per-chunk compression time.
  double transfer_seconds = 0.0;  ///< Total simulated link time.

  /// Naive model: compress everything, then ship it.
  double serial_seconds() const { return compute_seconds + transfer_seconds; }

  /// Two-stage pipeline: chunk i+1 compresses while chunk i is on the
  /// wire (the "hybrid" interleaving the paper's in-situ setting implies).
  double overlapped_seconds = 0.0;

  /// End-to-end checkpoint throughput in raw MB/s for each model.
  double serial_mbps() const {
    return serial_seconds() <= 0.0 ? 0.0
                                   : static_cast<double>(raw_bytes) / 1e6 /
                                         serial_seconds();
  }
  double overlapped_mbps() const {
    return overlapped_seconds <= 0.0 ? 0.0
                                     : static_cast<double>(raw_bytes) / 1e6 /
                                           overlapped_seconds;
  }
};

/// Simulates one checkpoint write of `data` (elements of `width` bytes)
/// through a `bandwidth_mbps` storage link under `strategy`, processing
/// the data in `options.chunk_elements`-sized chunks. The per-chunk
/// compute time is measured, the per-chunk transfer time simulated, and
/// both the serial and compute/transfer-overlapped makespans reported.
Result<InSituReport> SimulateInSituWrite(WriteStrategy strategy,
                                         const CompressOptions& options,
                                         ByteSpan data, size_t width,
                                         double bandwidth_mbps);

}  // namespace isobar

#endif  // ISOBAR_IO_IN_SITU_H_
