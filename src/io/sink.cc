#include "io/sink.h"

namespace isobar {

FileSink::FileSink(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    status_ = Status::IOError("cannot open '" + path + "' for writing");
  }
}

Status FileSink::Write(ByteSpan data) {
  ISOBAR_RETURN_NOT_OK(status_);
  out_.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  if (!out_) {
    status_ = Status::IOError("write failed");
  }
  return status_;
}

Status FileSink::Close() {
  ISOBAR_RETURN_NOT_OK(status_);
  out_.close();
  if (!out_) {
    status_ = Status::IOError("close failed");
  } else {
    status_ = Status::IOError("sink closed");
    return Status::OK();
  }
  return status_;
}

}  // namespace isobar
