#include "io/fault_injection.h"

#include <algorithm>
#include <string>

namespace isobar {

Status FaultInjectionSink::Write(ByteSpan data) {
  if (tripped_ || bytes_ >= fail_at_byte_) {
    tripped_ = true;
    return Status::IOError("fault injection: sink failed at byte " +
                           std::to_string(fail_at_byte_));
  }
  const uint64_t room = fail_at_byte_ - bytes_;
  if (data.size() <= room) {
    bytes_ += data.size();
    if (next_ != nullptr) return next_->Write(data);
    return Status::OK();
  }
  // Torn write: forward the prefix that "made it to storage", then fail.
  tripped_ = true;
  bytes_ += room;
  if (next_ != nullptr) {
    ISOBAR_RETURN_NOT_OK(next_->Write(data.subspan(0, room)));
  }
  return Status::IOError("fault injection: sink failed at byte " +
                         std::to_string(fail_at_byte_));
}

void FlipBits(Bytes* data, size_t offset, uint8_t mask) {
  if (offset >= data->size()) return;
  (*data)[offset] ^= mask == 0 ? uint8_t{0x01} : mask;
}

void SmashBytes(Bytes* data, size_t offset, size_t count, uint8_t value) {
  if (offset >= data->size()) return;
  const size_t end = std::min(data->size(), offset + count);
  std::fill(data->begin() + offset, data->begin() + end, value);
}

void TruncateBytes(Bytes* data, size_t new_size) {
  if (new_size < data->size()) data->resize(new_size);
}

}  // namespace isobar
