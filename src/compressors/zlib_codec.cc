#include "compressors/zlib_codec.h"

#include <zlib.h>

#include <algorithm>

namespace isobar {

ZlibCodec::ZlibCodec(int level) : level_(std::clamp(level, 1, 9)) {}

Status ZlibCodec::Compress(ByteSpan input, Bytes* out) const {
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  out->resize(bound);
  int rc = compress2(out->data(), &bound, input.data(),
                     static_cast<uLong>(input.size()), level_);
  if (rc != Z_OK) {
    return Status::IOError("zlib compress2 failed with code " +
                           std::to_string(rc));
  }
  out->resize(bound);
  return Status::OK();
}

Status ZlibCodec::Decompress(ByteSpan input, size_t original_size,
                             Bytes* out) const {
  out->resize(original_size);
  uLongf dest_len = static_cast<uLongf>(original_size);
  int rc = uncompress(out->data(), &dest_len, input.data(),
                      static_cast<uLong>(input.size()));
  if (rc != Z_OK) {
    return Status::Corruption("zlib uncompress failed with code " +
                              std::to_string(rc));
  }
  if (dest_len != original_size) {
    return Status::Corruption("zlib stream decoded to " +
                              std::to_string(dest_len) + " bytes, expected " +
                              std::to_string(original_size));
  }
  return Status::OK();
}

}  // namespace isobar
