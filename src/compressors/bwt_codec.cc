#include "compressors/bwt_codec.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "compressors/huffman_codec.h"
#include "simd/dispatch.h"

namespace isobar {
namespace {

constexpr size_t kBlockSize = 256 * 1024;
constexpr size_t kMaxZeroRun = 256;

// --- Burrows–Wheeler transform of one block (cyclic rotations), via
// radix prefix doubling on rotation ranks: each round is one stable
// counting sort, so the whole transform is O(n log n) with no comparator
// in sight — worst-case inputs (long repeats) cost the same as random
// ones. No sentinel needed. Returns the index of the original rotation
// ("primary index").
uint32_t BwtForward(ByteSpan block, Bytes* last_column) {
  const size_t n = block.size();
  if (n == 0) {
    last_column->clear();
    return 0;
  }
  std::vector<uint32_t> sa(n), rank(n), next_rank(n), tmp(n);
  // Ranks are < n after the first re-rank but start as raw byte values,
  // so the bucket array covers both key spaces.
  const size_t buckets = std::max<size_t>(n, 256) + 1;
  std::vector<uint32_t> cnt(buckets);

  // Stable counting sort of the positions listed in `src` by rank[],
  // into sa. Stability is what lets one pass per round suffice: `src`
  // arrives ordered by the secondary (k-offset) key.
  auto sort_by_rank = [&](const std::vector<uint32_t>& src) {
    std::fill(cnt.begin(), cnt.end(), 0);
    for (size_t i = 0; i < n; ++i) ++cnt[rank[src[i]]];
    uint32_t sum = 0;
    for (size_t c = 0; c < buckets; ++c) {
      const uint32_t count = cnt[c];
      cnt[c] = sum;
      sum += count;
    }
    for (size_t i = 0; i < n; ++i) sa[cnt[rank[src[i]]]++] = src[i];
  };

  // Round 0: order by first byte.
  for (size_t i = 0; i < n; ++i) rank[i] = block[i];
  std::iota(tmp.begin(), tmp.end(), 0);
  sort_by_rank(tmp);
  uint32_t max_rank = 0;
  next_rank[sa[0]] = 0;
  for (size_t j = 1; j < n; ++j) {
    if (block[sa[j]] != block[sa[j - 1]]) ++max_rank;
    next_rank[sa[j]] = max_rank;
  }
  rank.swap(next_rank);

  for (size_t k = 1; k < n && max_rank + 1 < n; k *= 2) {
    // sa is ordered by rank, i.e. by the k-prefix starting at each
    // position; shifting every entry back k positions (cyclically) lists
    // the positions in order of their *second* sort key, rank[(i+k)%n].
    for (size_t j = 0; j < n; ++j) {
      tmp[j] = sa[j] >= k ? sa[j] - static_cast<uint32_t>(k)
                          : sa[j] + static_cast<uint32_t>(n - k);
    }
    sort_by_rank(tmp);
    auto second = [&](uint32_t i) {
      return rank[i + k < n ? i + k : i + k - n];
    };
    max_rank = 0;
    next_rank[sa[0]] = 0;
    for (size_t j = 1; j < n; ++j) {
      if (rank[sa[j]] != rank[sa[j - 1]] ||
          second(sa[j]) != second(sa[j - 1])) {
        ++max_rank;
      }
      next_rank[sa[j]] = max_rank;
    }
    rank.swap(next_rank);
  }
  // Ties can remain for periodic blocks (e.g. all-equal bytes): identical
  // rotations are interchangeable, so any stable order decodes correctly.

  uint32_t primary = 0;
  last_column->resize(n);
  for (size_t j = 0; j < n; ++j) {
    if (sa[j] == 0) primary = static_cast<uint32_t>(j);
    (*last_column)[j] = block[(sa[j] + n - 1) % n];
  }
  return primary;
}

// Inverse BWT via LF-mapping, reconstructing the block back to front.
Status BwtInverse(ByteSpan last_column, uint32_t primary,
                  MutableByteSpan block) {
  const size_t n = last_column.size();
  if (primary >= n) return Status::Corruption("bwt: primary index out of range");

  std::array<uint32_t, 256> count{};
  for (uint8_t c : last_column) ++count[c];
  std::array<uint32_t, 256> base{};
  uint32_t total = 0;
  for (int c = 0; c < 256; ++c) {
    base[c] = total;
    total += count[c];
  }
  std::vector<uint32_t> lf(n);
  std::array<uint32_t, 256> seen{};
  for (size_t j = 0; j < n; ++j) {
    lf[j] = base[last_column[j]] + seen[last_column[j]]++;
  }
  uint32_t row = primary;
  for (size_t i = n; i-- > 0;) {
    block[i] = last_column[row];
    row = lf[row];
  }
  return Status::OK();
}

// --- Move-to-front transform (in place over a buffer). The rank scan is
// the tier-dispatched SIMD kernel (bit-identical across tiers).
void MtfForward(MutableByteSpan data) {
  std::array<uint8_t, 256> order;
  std::iota(order.begin(), order.end(), 0);
  simd::Kernels().mtf_encode(data.data(), data.size(), order.data());
}

void MtfInverse(MutableByteSpan data) {
  std::array<uint8_t, 256> order;
  std::iota(order.begin(), order.end(), 0);
  for (auto& byte : data) {
    const uint8_t position = byte;
    const uint8_t value = order[position];
    byte = value;
    std::copy_backward(order.begin(), order.begin() + position,
                       order.begin() + position + 1);
    order[0] = value;
  }
}

// --- Zero-run-length coding: MTF output is dominated by zeros. A zero
// byte is always followed by one byte holding (run length - 1), so runs
// of 1..256 zeros cost two bytes; nonzero bytes pass through.
void ZeroRleEncode(ByteSpan data, Bytes* out) {
  const auto& kernels = simd::Kernels();
  size_t i = 0;
  while (i < data.size()) {
    if (data[i] != 0) {
      out->push_back(data[i++]);
      continue;
    }
    const size_t cap = std::min(kMaxZeroRun, data.size() - i);
    const size_t run = kernels.run_scan(data.data() + i, cap);
    out->push_back(0);
    out->push_back(static_cast<uint8_t>(run - 1));
    i += run;
  }
}

Status ZeroRleDecode(ByteSpan data, size_t expected_size, Bytes* out) {
  size_t i = 0;
  while (i < data.size()) {
    if (data[i] != 0) {
      out->push_back(data[i++]);
    } else {
      if (i + 1 >= data.size()) {
        return Status::Corruption("bwt: truncated zero run");
      }
      out->insert(out->end(), static_cast<size_t>(data[i + 1]) + 1, 0);
      i += 2;
    }
    if (out->size() > expected_size) {
      return Status::Corruption("bwt: run coding decodes past block");
    }
  }
  return Status::OK();
}

}  // namespace

Status BwtCodec::Compress(ByteSpan input, Bytes* out) const {
  out->clear();
  const size_t block_count = (input.size() + kBlockSize - 1) / kBlockSize;
  AppendLE32(*out, static_cast<uint32_t>(kBlockSize));
  AppendLE32(*out, static_cast<uint32_t>(block_count));

  Bytes transformed;
  transformed.reserve(input.size() + input.size() / 16 + 16);
  std::vector<std::pair<uint32_t, uint32_t>> block_meta;  // primary, rle size
  Bytes last_column;
  for (size_t start = 0; start < input.size(); start += kBlockSize) {
    const size_t len = std::min(kBlockSize, input.size() - start);
    const uint32_t primary =
        BwtForward(input.subspan(start, len), &last_column);
    MtfForward(MutableByteSpan(last_column));
    const size_t before = transformed.size();
    ZeroRleEncode(last_column, &transformed);
    block_meta.emplace_back(primary,
                            static_cast<uint32_t>(transformed.size() - before));
  }
  for (const auto& [primary, rle_size] : block_meta) {
    AppendLE32(*out, primary);
    AppendLE32(*out, rle_size);
  }

  Bytes entropy_coded;
  ISOBAR_RETURN_NOT_OK(HuffmanCodec().Compress(transformed, &entropy_coded));
  out->insert(out->end(), entropy_coded.begin(), entropy_coded.end());
  return Status::OK();
}

Status BwtCodec::Decompress(ByteSpan input, size_t original_size,
                            Bytes* out) const {
  out->clear();
  if (input.size() < 8) return Status::Corruption("bwt: truncated header");
  const uint32_t block_size = LoadLE32(input.data());
  const uint32_t block_count = LoadLE32(input.data() + 4);
  if (block_size == 0) return Status::Corruption("bwt: zero block size");
  const size_t expected_blocks =
      (original_size + block_size - 1) / block_size;
  if (block_count != expected_blocks) {
    return Status::Corruption("bwt: block count does not match output size");
  }
  size_t pos = 8;
  if (input.size() - pos < static_cast<size_t>(block_count) * 8) {
    return Status::Corruption("bwt: truncated block table");
  }
  std::vector<std::pair<uint32_t, uint32_t>> block_meta(block_count);
  uint64_t transformed_size = 0;
  for (auto& [primary, rle_size] : block_meta) {
    primary = LoadLE32(input.data() + pos);
    rle_size = LoadLE32(input.data() + pos + 4);
    pos += 8;
    transformed_size += rle_size;
  }
  // Worst legitimate case: every zero isolated, costing two bytes each.
  if (transformed_size > 2 * original_size + 2 * block_count) {
    return Status::Corruption("bwt: implausible transformed size");
  }

  Bytes transformed;
  ISOBAR_RETURN_NOT_OK(HuffmanCodec().Decompress(
      input.subspan(pos), transformed_size, &transformed));

  out->reserve(original_size);
  Bytes block;
  size_t offset = 0;
  size_t remaining = original_size;
  for (const auto& [primary, rle_size] : block_meta) {
    if (offset + rle_size > transformed.size()) {
      return Status::Corruption("bwt: block table exceeds payload");
    }
    const size_t block_len =
        std::min(static_cast<size_t>(block_size), remaining);
    block.clear();
    ISOBAR_RETURN_NOT_OK(ZeroRleDecode(
        ByteSpan(transformed).subspan(offset, rle_size), block_len, &block));
    if (block.size() != block_len) {
      return Status::Corruption("bwt: block decodes to wrong size");
    }
    MtfInverse(MutableByteSpan(block));
    const size_t out_base = out->size();
    out->resize(out_base + block_len);
    ISOBAR_RETURN_NOT_OK(
        BwtInverse(block, primary,
                   MutableByteSpan(out->data() + out_base, block_len)));
    offset += rle_size;
    remaining -= block_len;
  }
  if (remaining != 0 || offset != transformed.size()) {
    return Status::Corruption("bwt: stream does not cover output");
  }
  return Status::OK();
}

}  // namespace isobar
