#include "compressors/codec.h"

namespace isobar {

std::string_view CodecIdToString(CodecId id) {
  switch (id) {
    case CodecId::kStored:
      return "stored";
    case CodecId::kZlib:
      return "zlib";
    case CodecId::kBzip2:
      return "bzip2";
    case CodecId::kRle:
      return "rle";
    case CodecId::kLzss:
      return "lzss";
    case CodecId::kHuffman:
      return "huffman";
    case CodecId::kBwt:
      return "bwt";
    case CodecId::kLzans:
      return "lzans";
  }
  return "unknown";
}

bool IsKnownCodecId(uint8_t raw) {
  return CodecIdToString(static_cast<CodecId>(raw)) != "unknown";
}

Status StoredCodec::Compress(ByteSpan input, Bytes* out) const {
  out->assign(input.begin(), input.end());
  return Status::OK();
}

Status StoredCodec::Decompress(ByteSpan input, size_t original_size,
                               Bytes* out) const {
  if (input.size() != original_size) {
    return Status::Corruption("stored codec: size mismatch");
  }
  out->assign(input.begin(), input.end());
  return Status::OK();
}

}  // namespace isobar
