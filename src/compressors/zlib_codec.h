#ifndef ISOBAR_COMPRESSORS_ZLIB_CODEC_H_
#define ISOBAR_COMPRESSORS_ZLIB_CODEC_H_

#include "compressors/codec.h"

namespace isobar {

/// DEFLATE solver backed by the system zlib, the paper's default
/// general-purpose compressor.
class ZlibCodec final : public Codec {
 public:
  /// `level` follows zlib semantics: 1 (fastest) .. 9 (best); 6 is the
  /// library default and what the paper's "standard zlib" baseline uses.
  explicit ZlibCodec(int level = 6);

  CodecId id() const override { return CodecId::kZlib; }
  int level() const { return level_; }

  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;

 private:
  int level_;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_ZLIB_CODEC_H_
