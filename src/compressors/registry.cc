#include "compressors/registry.h"

#include <string>

#include "compressors/bwt_codec.h"
#include "compressors/bzip2_codec.h"
#include "compressors/huffman_codec.h"
#include "compressors/lzss_codec.h"
#include "compressors/rle_codec.h"
#include "compressors/zlib_codec.h"

namespace isobar {

Result<const Codec*> GetCodec(CodecId id) {
  // Function-local static references: constructed on first use, never
  // destroyed (trivial-destruction rule for static storage duration).
  switch (id) {
    case CodecId::kStored: {
      static const StoredCodec& codec = *new StoredCodec();
      return &codec;
    }
    case CodecId::kZlib: {
      static const ZlibCodec& codec = *new ZlibCodec();
      return &codec;
    }
    case CodecId::kBzip2: {
      static const Bzip2Codec& codec = *new Bzip2Codec();
      return &codec;
    }
    case CodecId::kRle: {
      static const RleCodec& codec = *new RleCodec();
      return &codec;
    }
    case CodecId::kLzss: {
      static const LzssCodec& codec = *new LzssCodec();
      return &codec;
    }
    case CodecId::kHuffman: {
      static const HuffmanCodec& codec = *new HuffmanCodec();
      return &codec;
    }
    case CodecId::kBwt: {
      static const BwtCodec& codec = *new BwtCodec();
      return &codec;
    }
  }
  return Status::NotFound("unknown codec id " +
                          std::to_string(static_cast<int>(id)));
}

Result<const Codec*> GetCodecByName(std::string_view name) {
  for (CodecId id : AllCodecIds()) {
    if (CodecIdToString(id) == name) return GetCodec(id);
  }
  return Status::NotFound("unknown codec name '" + std::string(name) + "'");
}

std::vector<CodecId> AllCodecIds() {
  return {CodecId::kStored,  CodecId::kZlib, CodecId::kBzip2, CodecId::kRle,
          CodecId::kLzss,    CodecId::kHuffman, CodecId::kBwt};
}

}  // namespace isobar
