#include "compressors/registry.h"

#include <string>

#include "compressors/bwt_codec.h"
#include "compressors/bzip2_codec.h"
#include "compressors/huffman_codec.h"
#include "compressors/lzans_codec.h"
#include "compressors/lzss_codec.h"
#include "compressors/rle_codec.h"
#include "compressors/zlib_codec.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/timeline.h"

namespace isobar {
namespace {

/// Decorates a codec with per-codec telemetry: call, byte, and time
/// counters named `codec.<name>.{compress,decompress}_*` plus a latency
/// histogram per direction. With telemetry disabled the wrapper costs one
/// relaxed atomic load per call on top of the virtual dispatch it already
/// shares with the wrapped codec.
class InstrumentedCodec final : public Codec {
 public:
  explicit InstrumentedCodec(const Codec& inner)
      : inner_(inner),
        prefix_("codec." + std::string(inner.name())),
        compress_calls_(telemetry::GetCounter(prefix_ + ".compress_calls")),
        compress_input_bytes_(
            telemetry::GetCounter(prefix_ + ".compress_input_bytes")),
        compress_output_bytes_(
            telemetry::GetCounter(prefix_ + ".compress_output_bytes")),
        compress_errors_(telemetry::GetCounter(prefix_ + ".compress_errors")),
        compress_nanos_(
            telemetry::GetHistogram(prefix_ + ".compress_nanos")),
        decompress_calls_(
            telemetry::GetCounter(prefix_ + ".decompress_calls")),
        decompress_input_bytes_(
            telemetry::GetCounter(prefix_ + ".decompress_input_bytes")),
        decompress_output_bytes_(
            telemetry::GetCounter(prefix_ + ".decompress_output_bytes")),
        decompress_errors_(
            telemetry::GetCounter(prefix_ + ".decompress_errors")),
        decompress_nanos_(
            telemetry::GetHistogram(prefix_ + ".decompress_nanos")) {}

  CodecId id() const override { return inner_.id(); }

  Status Compress(ByteSpan input, Bytes* out) const override {
    if (!telemetry::Enabled()) return inner_.Compress(input, out);
    compress_calls_.Increment();
    compress_input_bytes_.Add(input.size());
    const int64_t start = telemetry::MonotonicNanos();
    Status status = inner_.Compress(input, out);
    const int64_t elapsed = telemetry::MonotonicNanos() - start;
    compress_nanos_.Observe(static_cast<uint64_t>(elapsed));
    // One slice per solver call on the worker's track, nested inside
    // chunk.solve — the trace shows which codec the time went to.
    // prefix_ outlives the process (the registry never destroys codecs).
    telemetry::Timeline::Emit(prefix_, telemetry::TimelinePhase::kComplete,
                              start, elapsed);
    if (status.ok()) {
      compress_output_bytes_.Add(out->size());
    } else {
      compress_errors_.Increment();
    }
    return status;
  }

  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override {
    if (!telemetry::Enabled()) {
      return inner_.Decompress(input, original_size, out);
    }
    decompress_calls_.Increment();
    decompress_input_bytes_.Add(input.size());
    const int64_t start = telemetry::MonotonicNanos();
    Status status = inner_.Decompress(input, original_size, out);
    const int64_t elapsed = telemetry::MonotonicNanos() - start;
    decompress_nanos_.Observe(static_cast<uint64_t>(elapsed));
    telemetry::Timeline::Emit(prefix_, telemetry::TimelinePhase::kComplete,
                              start, elapsed);
    if (status.ok()) {
      decompress_output_bytes_.Add(out->size());
    } else {
      decompress_errors_.Increment();
    }
    return status;
  }

 private:
  const Codec& inner_;
  const std::string prefix_;
  telemetry::Counter& compress_calls_;
  telemetry::Counter& compress_input_bytes_;
  telemetry::Counter& compress_output_bytes_;
  telemetry::Counter& compress_errors_;
  telemetry::Histogram& compress_nanos_;
  telemetry::Counter& decompress_calls_;
  telemetry::Counter& decompress_input_bytes_;
  telemetry::Counter& decompress_output_bytes_;
  telemetry::Counter& decompress_errors_;
  telemetry::Histogram& decompress_nanos_;
};

template <typename CodecT>
const Codec* Instrumented() {
  // Function-local static references: constructed on first use, never
  // destroyed (trivial-destruction rule for static storage duration).
  static const Codec& codec = []() -> const Codec& {
    const CodecT& raw = *new CodecT();
    if constexpr (telemetry::kCompiledIn) {
      return *new InstrumentedCodec(raw);
    } else {
      return raw;
    }
  }();
  return &codec;
}

}  // namespace

Result<const Codec*> GetCodec(CodecId id) {
  switch (id) {
    case CodecId::kStored:
      return Instrumented<StoredCodec>();
    case CodecId::kZlib:
      return Instrumented<ZlibCodec>();
    case CodecId::kBzip2:
      return Instrumented<Bzip2Codec>();
    case CodecId::kRle:
      return Instrumented<RleCodec>();
    case CodecId::kLzss:
      return Instrumented<LzssCodec>();
    case CodecId::kHuffman:
      return Instrumented<HuffmanCodec>();
    case CodecId::kBwt:
      return Instrumented<BwtCodec>();
    case CodecId::kLzans:
      return Instrumented<LzAnsCodec>();
  }
  return Status::NotFound("unknown codec id " +
                          std::to_string(static_cast<int>(id)));
}

Result<const Codec*> GetCodecByName(std::string_view name) {
  for (CodecId id : AllCodecIds()) {
    if (CodecIdToString(id) == name) return GetCodec(id);
  }
  return Status::NotFound("unknown codec name '" + std::string(name) + "'");
}

std::vector<CodecId> AllCodecIds() {
  return {CodecId::kStored, CodecId::kZlib,    CodecId::kBzip2,
          CodecId::kRle,    CodecId::kLzss,    CodecId::kHuffman,
          CodecId::kBwt,    CodecId::kLzans};
}

std::string CodecNameList(std::string_view sep) {
  std::string out;
  for (CodecId id : AllCodecIds()) {
    if (!out.empty()) out += sep;
    out += CodecIdToString(id);
  }
  return out;
}

}  // namespace isobar
