#include "compressors/huffman_codec.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <queue>
#include <vector>

namespace isobar {
namespace {

constexpr uint8_t kFlagEmpty = 0x01;
constexpr uint8_t kFlagSingleSymbol = 0x02;
constexpr int kMaxCodeLength = 63;
constexpr size_t kHeaderSize = 1 + 256;  // flags byte + length table

// Width of the primary decode table: one lookup resolves any code of at
// most this many bits (the overwhelmingly common case); longer codes fall
// back to the canonical per-bit walk.
constexpr int kTableBits = 11;
constexpr size_t kTableSize = 1u << kTableBits;

// Computes Huffman code lengths for the 256 byte symbols from their
// frequencies (0 for absent symbols). At least two symbols must be
// present.
std::array<uint8_t, 256> BuildCodeLengths(
    const std::array<uint64_t, 256>& freq) {
  struct Node {
    uint64_t weight;
    int index;  // < 256: leaf symbol; >= 256: internal node
  };
  struct Heavier {
    bool operator()(const Node& a, const Node& b) const {
      // Tie-break on index for full determinism of the tree shape.
      return a.weight != b.weight ? a.weight > b.weight : a.index > b.index;
    }
  };

  std::vector<int> parent(512, -1);
  std::priority_queue<Node, std::vector<Node>, Heavier> heap;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) heap.push({freq[s], s});
  }
  int next_internal = 256;
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    parent[a.index] = next_internal;
    parent[b.index] = next_internal;
    heap.push({a.weight + b.weight, next_internal});
    ++next_internal;
  }

  std::array<uint8_t, 256> lengths{};
  for (int s = 0; s < 256; ++s) {
    if (freq[s] == 0) continue;
    int depth = 0;
    for (int n = s; parent[n] != -1; n = parent[n]) ++depth;
    lengths[s] = static_cast<uint8_t>(std::min(depth, kMaxCodeLength));
  }
  return lengths;
}

// Canonical codebook derived from code lengths alone.
struct Codebook {
  // Per symbol: code value (right-aligned) and length; length 0 = absent.
  std::array<uint64_t, 256> code{};
  std::array<uint8_t, 256> length{};
  // Decoder side: per length, the first canonical code value, the number
  // of codes, and the offset into `ordered` of its first symbol.
  std::array<uint64_t, kMaxCodeLength + 1> first_code{};
  std::array<uint32_t, kMaxCodeLength + 1> count{};
  std::array<uint32_t, kMaxCodeLength + 1> offset{};
  std::array<uint8_t, 256> ordered{};  // symbols sorted by (length, symbol)
};

Status BuildCodebook(const std::array<uint8_t, 256>& lengths, Codebook* book) {
  book->length = lengths;
  uint64_t kraft = 0;  // in units of 2^-kMaxCodeLength
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > kMaxCodeLength) {
      return Status::Corruption("huffman: code length out of range");
    }
    if (lengths[s] > 0) {
      ++book->count[lengths[s]];
      kraft += 1ull << (kMaxCodeLength - lengths[s]);
    }
  }
  // A Huffman code is complete: the Kraft sum must be exactly 1. Anything
  // else would let crafted streams walk the decoder out of bounds.
  if (kraft != 1ull << kMaxCodeLength) {
    return Status::Corruption("huffman: invalid code length table");
  }

  uint64_t code = 0;
  uint32_t symbols_seen = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code <<= 1;
    book->first_code[len] = code;
    book->offset[len] = symbols_seen;
    code += book->count[len];
    symbols_seen += book->count[len];
  }
  uint32_t next_of_length[kMaxCodeLength + 1];
  for (int len = 0; len <= kMaxCodeLength; ++len) {
    next_of_length[len] = book->offset[len];
  }
  for (int s = 0; s < 256; ++s) {
    const int len = lengths[s];
    if (len == 0) continue;
    const uint32_t pos = next_of_length[len]++;
    book->ordered[pos] = static_cast<uint8_t>(s);
    book->code[s] = book->first_code[len] + (pos - book->offset[len]);
  }
  return Status::OK();
}

// One slot of the primary decode table. length 0 marks a code longer than
// kTableBits (overflow path); the Kraft-complete codebook guarantees every
// slot is covered by exactly one code prefix.
struct TableEntry {
  uint8_t symbol;
  uint8_t length;
};

void BuildDecodeTable(const Codebook& book,
                      std::array<TableEntry, kTableSize>* table) {
  table->fill(TableEntry{0, 0});
  for (int s = 0; s < 256; ++s) {
    const int len = book.length[s];
    if (len == 0 || len > kTableBits) continue;
    // Every table index whose top `len` bits equal the code decodes to s.
    const size_t base = static_cast<size_t>(book.code[s])
                        << (kTableBits - len);
    const size_t span = kTableSize >> len;
    const TableEntry entry{static_cast<uint8_t>(s),
                           static_cast<uint8_t>(len)};
    for (size_t j = 0; j < span; ++j) (*table)[base + j] = entry;
  }
}

// One slot of the multi-symbol table: as many whole codes as fit in the
// same kTableBits window, so skewed codebooks (1-3 bit codes) decode
// several symbols per lookup instead of paying the load latency each.
// count 0 marks the overflow path. `syms` is stored four-wide so the
// decoder can blindly copy one 32-bit word and advance by `count`.
struct alignas(8) MultiEntry {
  uint8_t bits;
  uint8_t count;
  uint8_t syms[4];
};

void BuildMultiTable(const std::array<TableEntry, kTableSize>& table,
                     std::array<MultiEntry, kTableSize>* multi) {
  for (size_t idx = 0; idx < kTableSize; ++idx) {
    MultiEntry m{};
    const TableEntry first = table[idx];
    if (first.length != 0) {
      m.bits = first.length;
      m.count = 1;
      m.syms[0] = first.symbol;
      while (m.count < 4) {
        // Shifting the window left zero-fills the unknown bits, so a
        // follow-up code counts only when it lies entirely inside the
        // known prefix.
        const TableEntry next = table[(idx << m.bits) & (kTableSize - 1)];
        if (next.length == 0 || m.bits + next.length > kTableBits) break;
        m.syms[m.count++] = next.symbol;
        m.bits = static_cast<uint8_t>(m.bits + next.length);
      }
    }
    (*multi)[idx] = m;
  }
}

// MSB-first bit writer: bits accumulate in a 64-bit register and spill in
// 32-bit words into a local buffer that is bulk-appended, so the hot path
// touches the output vector once per few kilobytes instead of per byte.
class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  void Write(uint64_t code, int bits) {
    if (bits > 32) {
      Push(code >> 32, bits - 32);
      Push(code, 32);
    } else {
      Push(code, bits);
    }
  }

  void Flush() {
    while (filled_ >= 8) {
      filled_ -= 8;
      ByteOut(static_cast<uint8_t>(acc_ >> filled_));
    }
    if (filled_ > 0) {
      ByteOut(static_cast<uint8_t>(acc_ << (8 - filled_)));
      filled_ = 0;
    }
    acc_ = 0;
    Spill();
  }

 private:
  static constexpr size_t kBufSize = 4096;

  void Push(uint64_t code, int bits) {  // bits in [1, 32]
    acc_ = (acc_ << bits) | (code & ((1ull << bits) - 1));
    filled_ += bits;
    if (filled_ >= 32) {
      filled_ -= 32;
      const uint32_t word = static_cast<uint32_t>(acc_ >> filled_);
      if (buf_used_ + 4 > kBufSize) Spill();
      buf_[buf_used_] = static_cast<uint8_t>(word >> 24);
      buf_[buf_used_ + 1] = static_cast<uint8_t>(word >> 16);
      buf_[buf_used_ + 2] = static_cast<uint8_t>(word >> 8);
      buf_[buf_used_ + 3] = static_cast<uint8_t>(word);
      buf_used_ += 4;
    }
  }

  void ByteOut(uint8_t byte) {
    if (buf_used_ == kBufSize) Spill();
    buf_[buf_used_++] = byte;
  }

  void Spill() {
    out_->insert(out_->end(), buf_.data(), buf_.data() + buf_used_);
    buf_used_ = 0;
  }

  Bytes* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;  // bits in acc_, < 32 between Push calls
  std::array<uint8_t, kBufSize> buf_;
  size_t buf_used_ = 0;
};

}  // namespace

Status HuffmanCodec::Compress(ByteSpan input, Bytes* out) const {
  out->clear();
  if (input.empty()) {
    out->push_back(kFlagEmpty);
    return Status::OK();
  }

  std::array<uint64_t, 256> freq{};
  for (uint8_t byte : input) ++freq[byte];
  int distinct = 0;
  int only = 0;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      ++distinct;
      only = s;
    }
  }
  if (distinct == 1) {
    out->push_back(kFlagSingleSymbol);
    out->push_back(static_cast<uint8_t>(only));
    return Status::OK();
  }

  const std::array<uint8_t, 256> lengths = BuildCodeLengths(freq);
  Codebook book;
  ISOBAR_RETURN_NOT_OK(BuildCodebook(lengths, &book));

  out->reserve(input.size() / 2 + 260);
  out->push_back(0);  // flags
  out->insert(out->end(), lengths.begin(), lengths.end());

  BitWriter writer(out);
  for (uint8_t byte : input) {
    writer.Write(book.code[byte], book.length[byte]);
  }
  writer.Flush();
  return Status::OK();
}

Status HuffmanCodec::Decompress(ByteSpan input, size_t original_size,
                                Bytes* out) const {
  out->clear();
  if (input.empty()) return Status::Corruption("huffman: empty stream");
  const uint8_t flags = input[0];

  if (flags & kFlagEmpty) {
    if (original_size != 0 || input.size() != 1) {
      return Status::Corruption("huffman: malformed empty stream");
    }
    return Status::OK();
  }
  if (flags & kFlagSingleSymbol) {
    // The encoder emits kFlagEmpty for empty input, never a single-symbol
    // stream claiming zero bytes — such a stream is forged or damaged.
    if (input.size() != 2 || original_size == 0) {
      return Status::Corruption("huffman: malformed single-symbol stream");
    }
    out->assign(original_size, input[1]);
    return Status::OK();
  }
  if (flags != 0) return Status::Corruption("huffman: unknown flags");
  if (input.size() < kHeaderSize) {
    return Status::Corruption("huffman: truncated length table");
  }

  std::array<uint8_t, 256> lengths;
  std::copy(input.begin() + 1, input.begin() + kHeaderSize, lengths.begin());
  Codebook book;
  ISOBAR_RETURN_NOT_OK(BuildCodebook(lengths, &book));
  std::array<TableEntry, kTableSize> table;
  BuildDecodeTable(book, &table);
  std::array<MultiEntry, kTableSize> multi;
  BuildMultiTable(table, &multi);

  out->resize(original_size);
  uint8_t* op = out->data();
  uint8_t* const oend = op + original_size;

  // MSB-first bit buffer with word-at-a-time refill. `buf` holds at least
  // `avail` valid bits left-aligned; any bits beyond `avail` are either
  // zero or the stream's true next bits, so the refill OR is idempotent.
  // Reads past the end yield zero bits while `used` keeps counting, which
  // lets the post-loop checks detect both truncation (more bits consumed
  // than the stream holds) and trailing garbage (fewer bytes spanned).
  const uint8_t* const payload = input.data() + kHeaderSize;
  const size_t payload_size = input.size() - kHeaderSize;
  uint64_t buf = 0;
  int avail = 0;  // goes negative only once the stream is exhausted
  size_t pos = 0;
  uint64_t used = 0;

  const auto refill = [&] {
    if (avail >= 56) return;
    if (pos + 8 <= payload_size) {
      // `avail` is non-negative here: it only drains below zero once the
      // tail path has exhausted the payload.
      uint64_t word;
      std::memcpy(&word, payload + pos, 8);
      buf |= __builtin_bswap64(word) >> avail;
      pos += static_cast<size_t>(63 - avail) >> 3;
      avail |= 56;  // same value as avail + 8 * ((63 - avail) >> 3)
    } else {
      while (avail <= 56 && pos < payload_size) {
        buf |= static_cast<uint64_t>(payload[pos++]) << (56 - avail);
        avail += 8;
      }
    }
  };

  // Code longer than the table: extend it one bit at a time until it
  // lands in some length's canonical range. Phantom zero bits past the
  // end of the stream are caught by the consumed-bits check below.
  // Returns false for a pattern no code matches (corrupt stream).
  const auto decode_overflow = [&]() -> bool {
    uint64_t code = 0;
    int len = 0;
    for (;;) {
      refill();
      code = (code << 1) | (buf >> 63);
      buf <<= 1;
      --avail;
      ++used;
      if (++len > kMaxCodeLength) return false;
      if (book.count[len] != 0 && code >= book.first_code[len] &&
          code - book.first_code[len] < book.count[len]) {
        *op++ = book.ordered[book.offset[len] +
                             static_cast<uint32_t>(code -
                                                   book.first_code[len])];
        return true;
      }
    }
  };

  // Fast region: each multi-entry blindly stores a 4-byte word and
  // advances by its symbol count, so stay 8 bytes clear of the end. A
  // full buffer covers five table-width windows, so the memory refill
  // amortizes over a burst of pure-register decodes.
  while (op + 8 <= oend) {
    refill();
    int burst = 5;  // 5 * kTableBits <= 56 refilled bits
    do {
      const MultiEntry entry = multi[buf >> (64 - kTableBits)];
      if (entry.count == 0) {
        if (!decode_overflow()) {
          return Status::Corruption("huffman: invalid code in bitstream");
        }
        break;
      }
      uint32_t word;
      std::memcpy(&word, entry.syms, 4);
      std::memcpy(op, &word, 4);
      op += entry.count;
      buf <<= entry.bits;
      avail -= entry.bits;
      used += static_cast<uint64_t>(entry.bits);
    } while (--burst && op + 8 <= oend);
  }

  // Tail: one symbol per lookup, no overstores.
  while (op < oend) {
    refill();
    const TableEntry entry = table[buf >> (64 - kTableBits)];
    if (entry.length == 0) {
      if (!decode_overflow()) {
        return Status::Corruption("huffman: invalid code in bitstream");
      }
      continue;
    }
    buf <<= entry.length;
    avail -= entry.length;
    used += static_cast<uint64_t>(entry.length);
    *op++ = entry.symbol;
  }
  if (used > 8 * static_cast<uint64_t>(payload_size)) {
    return Status::Corruption("huffman: truncated bitstream");
  }
  // All remaining bits must be padding within the current byte.
  const size_t consumed = kHeaderSize + static_cast<size_t>((used + 7) / 8);
  if (consumed != input.size()) {
    return Status::Corruption("huffman: trailing bytes in stream");
  }
  return Status::OK();
}

}  // namespace isobar
