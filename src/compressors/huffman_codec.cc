#include "compressors/huffman_codec.h"

#include <algorithm>
#include <array>
#include <queue>
#include <vector>

namespace isobar {
namespace {

constexpr uint8_t kFlagEmpty = 0x01;
constexpr uint8_t kFlagSingleSymbol = 0x02;
constexpr int kMaxCodeLength = 63;

// Computes Huffman code lengths for the 256 byte symbols from their
// frequencies (0 for absent symbols). At least two symbols must be
// present.
std::array<uint8_t, 256> BuildCodeLengths(
    const std::array<uint64_t, 256>& freq) {
  struct Node {
    uint64_t weight;
    int index;  // < 256: leaf symbol; >= 256: internal node
  };
  struct Heavier {
    bool operator()(const Node& a, const Node& b) const {
      // Tie-break on index for full determinism of the tree shape.
      return a.weight != b.weight ? a.weight > b.weight : a.index > b.index;
    }
  };

  std::vector<int> parent(512, -1);
  std::priority_queue<Node, std::vector<Node>, Heavier> heap;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) heap.push({freq[s], s});
  }
  int next_internal = 256;
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    parent[a.index] = next_internal;
    parent[b.index] = next_internal;
    heap.push({a.weight + b.weight, next_internal});
    ++next_internal;
  }

  std::array<uint8_t, 256> lengths{};
  for (int s = 0; s < 256; ++s) {
    if (freq[s] == 0) continue;
    int depth = 0;
    for (int n = s; parent[n] != -1; n = parent[n]) ++depth;
    lengths[s] = static_cast<uint8_t>(std::min(depth, kMaxCodeLength));
  }
  return lengths;
}

// Canonical codebook derived from code lengths alone.
struct Codebook {
  // Per symbol: code value (right-aligned) and length; length 0 = absent.
  std::array<uint64_t, 256> code{};
  std::array<uint8_t, 256> length{};
  // Decoder side: per length, the first canonical code value, the number
  // of codes, and the offset into `ordered` of its first symbol.
  std::array<uint64_t, kMaxCodeLength + 1> first_code{};
  std::array<uint32_t, kMaxCodeLength + 1> count{};
  std::array<uint32_t, kMaxCodeLength + 1> offset{};
  std::array<uint8_t, 256> ordered{};  // symbols sorted by (length, symbol)
};

Status BuildCodebook(const std::array<uint8_t, 256>& lengths, Codebook* book) {
  book->length = lengths;
  uint64_t kraft = 0;  // in units of 2^-kMaxCodeLength
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > kMaxCodeLength) {
      return Status::Corruption("huffman: code length out of range");
    }
    if (lengths[s] > 0) {
      ++book->count[lengths[s]];
      kraft += 1ull << (kMaxCodeLength - lengths[s]);
    }
  }
  // A Huffman code is complete: the Kraft sum must be exactly 1. Anything
  // else would let crafted streams walk the decoder out of bounds.
  if (kraft != 1ull << kMaxCodeLength) {
    return Status::Corruption("huffman: invalid code length table");
  }

  uint64_t code = 0;
  uint32_t symbols_seen = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code <<= 1;
    book->first_code[len] = code;
    book->offset[len] = symbols_seen;
    code += book->count[len];
    symbols_seen += book->count[len];
  }
  uint32_t next_of_length[kMaxCodeLength + 1];
  for (int len = 0; len <= kMaxCodeLength; ++len) {
    next_of_length[len] = book->offset[len];
  }
  for (int s = 0; s < 256; ++s) {
    const int len = lengths[s];
    if (len == 0) continue;
    const uint32_t pos = next_of_length[len]++;
    book->ordered[pos] = static_cast<uint8_t>(s);
    book->code[s] = book->first_code[len] + (pos - book->offset[len]);
  }
  return Status::OK();
}

// MSB-first bit writer over a Bytes buffer.
class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  void Write(uint64_t code, int bits) {
    for (int b = bits - 1; b >= 0; --b) {
      acc_ = static_cast<uint8_t>((acc_ << 1) | ((code >> b) & 1u));
      if (++filled_ == 8) {
        out_->push_back(acc_);
        acc_ = 0;
        filled_ = 0;
      }
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_ << (8 - filled_)));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  Bytes* out_;
  uint8_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace

Status HuffmanCodec::Compress(ByteSpan input, Bytes* out) const {
  out->clear();
  if (input.empty()) {
    out->push_back(kFlagEmpty);
    return Status::OK();
  }

  std::array<uint64_t, 256> freq{};
  for (uint8_t byte : input) ++freq[byte];
  int distinct = 0;
  int only = 0;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      ++distinct;
      only = s;
    }
  }
  if (distinct == 1) {
    out->push_back(kFlagSingleSymbol);
    out->push_back(static_cast<uint8_t>(only));
    return Status::OK();
  }

  const std::array<uint8_t, 256> lengths = BuildCodeLengths(freq);
  Codebook book;
  ISOBAR_RETURN_NOT_OK(BuildCodebook(lengths, &book));

  out->reserve(input.size() / 2 + 260);
  out->push_back(0);  // flags
  out->insert(out->end(), lengths.begin(), lengths.end());

  BitWriter writer(out);
  for (uint8_t byte : input) {
    writer.Write(book.code[byte], book.length[byte]);
  }
  writer.Flush();
  return Status::OK();
}

Status HuffmanCodec::Decompress(ByteSpan input, size_t original_size,
                                Bytes* out) const {
  out->clear();
  if (input.empty()) return Status::Corruption("huffman: empty stream");
  const uint8_t flags = input[0];

  if (flags & kFlagEmpty) {
    if (original_size != 0 || input.size() != 1) {
      return Status::Corruption("huffman: malformed empty stream");
    }
    return Status::OK();
  }
  if (flags & kFlagSingleSymbol) {
    // The encoder emits kFlagEmpty for empty input, never a single-symbol
    // stream claiming zero bytes — such a stream is forged or damaged.
    if (input.size() != 2 || original_size == 0) {
      return Status::Corruption("huffman: malformed single-symbol stream");
    }
    out->assign(original_size, input[1]);
    return Status::OK();
  }
  if (flags != 0) return Status::Corruption("huffman: unknown flags");
  if (input.size() < 1 + 256) {
    return Status::Corruption("huffman: truncated length table");
  }

  std::array<uint8_t, 256> lengths;
  std::copy(input.begin() + 1, input.begin() + 257, lengths.begin());
  Codebook book;
  ISOBAR_RETURN_NOT_OK(BuildCodebook(lengths, &book));

  out->reserve(original_size);
  size_t byte_pos = 257;
  int bit_pos = 7;
  while (out->size() < original_size) {
    uint64_t code = 0;
    int len = 0;
    // Canonical first-code decoding: extend the code one bit at a time
    // until it falls inside some length's code range.
    for (;;) {
      if (byte_pos >= input.size()) {
        return Status::Corruption("huffman: truncated bitstream");
      }
      code = (code << 1) | ((input[byte_pos] >> bit_pos) & 1u);
      if (--bit_pos < 0) {
        bit_pos = 7;
        ++byte_pos;
      }
      if (++len > kMaxCodeLength) {
        return Status::Corruption("huffman: invalid code in bitstream");
      }
      if (book.count[len] != 0 && code >= book.first_code[len] &&
          code - book.first_code[len] < book.count[len]) {
        out->push_back(
            book.ordered[book.offset[len] +
                         static_cast<uint32_t>(code - book.first_code[len])]);
        break;
      }
    }
  }
  // All remaining bits must be padding within the current byte.
  const size_t consumed = byte_pos + (bit_pos == 7 ? 0 : 1);
  if (consumed != input.size()) {
    return Status::Corruption("huffman: trailing bytes in stream");
  }
  return Status::OK();
}

}  // namespace isobar
