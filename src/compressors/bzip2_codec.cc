#include "compressors/bzip2_codec.h"

#include <bzlib.h>

#include <algorithm>

namespace isobar {

Bzip2Codec::Bzip2Codec(int block_size_100k)
    : block_size_100k_(std::clamp(block_size_100k, 1, 9)) {}

Status Bzip2Codec::Compress(ByteSpan input, Bytes* out) const {
  // libbzip2's documented worst case: input + 1% + 600 bytes.
  unsigned dest_len =
      static_cast<unsigned>(input.size() + input.size() / 100 + 600);
  out->resize(dest_len);
  int rc = BZ2_bzBuffToBuffCompress(
      reinterpret_cast<char*>(out->data()), &dest_len,
      const_cast<char*>(reinterpret_cast<const char*>(input.data())),
      static_cast<unsigned>(input.size()), block_size_100k_,
      /*verbosity=*/0, /*workFactor=*/0);
  if (rc != BZ_OK) {
    return Status::IOError("bzip2 compress failed with code " +
                           std::to_string(rc));
  }
  out->resize(dest_len);
  return Status::OK();
}

Status Bzip2Codec::Decompress(ByteSpan input, size_t original_size,
                              Bytes* out) const {
  out->resize(original_size);
  unsigned dest_len = static_cast<unsigned>(original_size);
  int rc = BZ2_bzBuffToBuffDecompress(
      reinterpret_cast<char*>(out->data()), &dest_len,
      const_cast<char*>(reinterpret_cast<const char*>(input.data())),
      static_cast<unsigned>(input.size()), /*small=*/0, /*verbosity=*/0);
  if (rc != BZ_OK) {
    return Status::Corruption("bzip2 decompress failed with code " +
                              std::to_string(rc));
  }
  if (dest_len != original_size) {
    return Status::Corruption("bzip2 stream decoded to " +
                              std::to_string(dest_len) + " bytes, expected " +
                              std::to_string(original_size));
  }
  return Status::OK();
}

}  // namespace isobar
