#ifndef ISOBAR_COMPRESSORS_BWT_CODEC_H_
#define ISOBAR_COMPRESSORS_BWT_CODEC_H_

#include "compressors/codec.h"

namespace isobar {

/// Homegrown block-sorting codec: the classic bzip2-family pipeline
/// (Burrows & Wheeler 1994) built from scratch —
///
///   per 256 KiB block: BWT (cyclic suffix sort via prefix doubling)
///   → move-to-front → zero-run-length coding → canonical Huffman.
///
/// Stream format:
///   [LE32 block_size][LE32 block_count]
///   [per block: LE32 primary_index][LE32 transformed-RLE size]
///   [canonical-Huffman stream of the concatenated MTF+RLE blocks]
///
/// It exists to demonstrate the preconditioner on a third solver family
/// (dictionary = LZSS, entropy = Huffman, block-sorting = this), with
/// ratios typically between zlib's and bzip2's at a fraction of bzip2's
/// code size. Not speed-tuned: the suffix sort is O(n log² n).
class BwtCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kBwt; }
  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_BWT_CODEC_H_
