#include "compressors/lzans_codec.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "compressors/match_finder.h"
#include "compressors/tans.h"

namespace isobar {
namespace {

constexpr size_t kBlockSize = 1u << 17;  // sequences never cross blocks
constexpr size_t kWindow = 1u << 17;     // but matches may reach back across
constexpr size_t kMinMatch = 4;
constexpr uint32_t kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChain = 48;

// Matches at least this long are taken immediately; the lazy probe of the
// next position only runs for shorter ones.
constexpr size_t kLazyThreshold = 32;

// Literal-run skip acceleration: after 2^kSkipStrength consecutive probe
// misses the parse starts striding, so incompressible planes cost far
// fewer chain walks (they end up as raw blocks anyway).
constexpr uint32_t kSkipStrength = 5;

constexpr uint8_t kBlockRaw = 0;
constexpr uint8_t kBlockRle = 1;
constexpr uint8_t kBlockLzans = 2;

constexpr uint8_t kLitNone = 0;
constexpr uint8_t kLitTans = 1;
constexpr uint8_t kLitRaw = 2;

constexpr uint32_t kLitStates = 4;  // interleaved ANS states, literals
constexpr uint32_t kLitMaxLog = 11;
constexpr uint32_t kLenMaxLog = 9;
constexpr uint32_t kOffMaxLog = 9;

// Length codes: values < 16 map to themselves; larger values v map to
// 12 + bit_width(v) with bit_width(v)-1 extra bits. Runs and matches are
// bounded by the block size (2^17), so codes stop at 30.
constexpr uint32_t kLenAlphabet = 31;
// Offset codes: floor(log2(dist)) with that many extra bits; the window
// bounds dist at 2^17, so codes stop at 17.
constexpr uint32_t kOffAlphabet = 18;

struct Seq {
  uint32_t ll;  // literal run before the match
  uint32_t ml;  // match length, >= kMinMatch
  uint32_t of;  // match offset, 1..kWindow
};

struct Match {
  size_t len = 0;
  size_t dist = 0;
};

struct PrefixCode {
  uint8_t code;
  uint8_t nb_bits;
  uint32_t extra;
};

PrefixCode MakeLenCode(uint32_t v) {
  if (v < 16) return {static_cast<uint8_t>(v), 0, 0};
  const uint32_t bw = static_cast<uint32_t>(std::bit_width(v));
  return {static_cast<uint8_t>(12 + bw), static_cast<uint8_t>(bw - 1),
          v - (1u << (bw - 1))};
}

PrefixCode MakeOffCode(uint32_t dist) {
  const uint32_t code = static_cast<uint32_t>(std::bit_width(dist)) - 1;
  return {static_cast<uint8_t>(code), static_cast<uint8_t>(code),
          dist - (1u << code)};
}

void AppendLE32(Bytes* out, uint32_t v) {
  const size_t o = out->size();
  out->resize(o + 4);
  StoreLE32(out->data() + o, v);
}

// Trims trailing zero counts so serialized headers don't pay for the
// unused top of a fixed alphabet.
size_t UsedAlphabet(const uint64_t* counts, size_t alphabet) {
  size_t used = 0;
  for (size_t s = 0; s < alphabet; ++s) {
    if (counts[s] != 0) used = s + 1;
  }
  return used;
}

// Order-0 entropy estimate in bytes, used to skip building literal tables
// for planes that clearly won't compress.
size_t EstimateEntropyBytes(const uint64_t* counts, size_t alphabet,
                            uint64_t total) {
  double bits = 0;
  size_t used = 0;
  for (size_t s = 0; s < alphabet; ++s) {
    if (counts[s] == 0) continue;
    ++used;
    bits += static_cast<double>(counts[s]) *
            std::log2(static_cast<double>(total) /
                      static_cast<double>(counts[s]));
  }
  // Header cost: ~2 bytes per used symbol plus fixed framing.
  return static_cast<size_t>(bits / 8.0) + 2 * used + 16;
}

// The overlap-safe LZ match copy shared with the LZSS decoder's logic:
// non-overlapping memcpy, memset for period 1, period doubling otherwise.
void CopyMatch(uint8_t* dst, size_t dist, size_t len) {
  const uint8_t* src = dst - dist;
  if (dist >= len) {
    std::memcpy(dst, src, len);
  } else if (dist == 1) {
    std::memset(dst, src[0], len);
  } else {
    std::memcpy(dst, src, dist);
    size_t copied = dist;
    while (copied < len) {
      const size_t chunk = std::min(copied, len - copied);
      std::memcpy(dst + copied, dst, chunk);
      copied += chunk;
    }
  }
}

// Stand-in literal source for kLitNone blocks: keeps lit_src non-null so
// the copy paths in Decompress never dereference (or do arithmetic on) a
// null pointer, with enough slack for the 16-byte fast-path read. Literal
// runs are provably empty then (num_lit == 0), so only zeros are copied.
constexpr uint8_t kEmptyLitPad[16] = {};

}  // namespace

Status LzAnsCodec::Compress(ByteSpan input, Bytes* out) const {
  out->clear();
  const size_t n = input.size();
  if (n == 0) return Status::OK();
  out->reserve(n / 2 + 64);
  const uint8_t* const data = input.data();

  // head[h] = most recent position with hash h; prev[i & (kWindow-1)] =
  // previous position in the same chain. Positions offset by one, 0 = empty.
  std::vector<uint32_t> head(kHashSize, 0);
  std::vector<uint32_t> prev(kWindow, 0);

  std::vector<Seq> seqs;
  Bytes literals;
  Bytes payload;
  Bytes lit_hdr;
  Bytes lit_stream;
  Bytes len_stream;
  Bytes off_stream;

  auto insert_pos = [&](size_t pos) {
    if (pos + kMinMatch > n) return;
    const uint32_t h = lz::Hash4(data + pos, kHashBits);
    prev[pos & (kWindow - 1)] = head[h];
    head[h] = static_cast<uint32_t>(pos + 1);
  };

  auto find_match = [&](size_t pos, size_t limit) {
    Match best;
    uint32_t candidate = head[lz::Hash4(data + pos, kHashBits)];
    int chain = 0;
    while (candidate != 0 && chain++ < kMaxChain) {
      const size_t cand = candidate - 1;
      if (pos - cand > kWindow) break;
      // Cheap reject: a strictly longer match must agree one byte past
      // the current best.
      if (best.len == 0 || data[cand + best.len] == data[pos + best.len]) {
        const size_t len = lz::MatchLength(data + cand, data + pos, limit);
        if (len > best.len) {
          best.len = len;
          best.dist = pos - cand;
          if (len == limit) break;
        }
      }
      candidate = prev[cand & (kWindow - 1)];
    }
    return best;
  };

  for (size_t bs = 0; bs < n; bs += kBlockSize) {
    const size_t be = std::min(bs + kBlockSize, n);
    const size_t raw_size = be - bs;

    // RLE escape: constant blocks cost 6 bytes and skip the parse.
    if (raw_size >= 2 &&
        std::memcmp(data + bs, data + bs + 1, raw_size - 1) == 0) {
      out->push_back(kBlockRle);
      AppendLE32(out, static_cast<uint32_t>(raw_size));
      out->push_back(data[bs]);
      continue;
    }

    // --- Parse: greedy hash-chain LZ77 with one-position lazy deferral.
    seqs.clear();
    literals.clear();
    size_t lit_start = bs;
    size_t i = bs;
    uint32_t misses = 0;
    while (i < be) {
      if (i + kMinMatch > n) break;  // tail joins the trailing literal run
      Match best = find_match(i, be - i);
      bool inserted = false;
      if (best.len >= kMinMatch && best.len < kLazyThreshold &&
          i + 1 + kMinMatch <= n && i + 1 < be) {
        // Lazy probe: when the next position holds a strictly longer
        // match, emit input[i] as a literal and take that one instead.
        insert_pos(i);
        inserted = true;
        if (find_match(i + 1, be - i - 1).len > best.len) best.len = 0;
      }
      if (best.len >= kMinMatch) {
        seqs.push_back({static_cast<uint32_t>(i - lit_start),
                        static_cast<uint32_t>(best.len),
                        static_cast<uint32_t>(best.dist)});
        literals.insert(literals.end(), data + lit_start, data + i);
        for (size_t k = inserted ? 1 : 0; k < best.len; ++k) {
          insert_pos(i + k);
        }
        i += best.len;
        lit_start = i;
        misses = 0;
      } else {
        if (!inserted) insert_pos(i);
        i += 1 + (misses++ >> kSkipStrength);
        if (i > be) i = be;
      }
    }
    literals.insert(literals.end(), data + lit_start, data + be);

    // --- Emit: build the lzans payload, fall back to raw if it loses.
    payload.clear();
    const uint32_t num_seq = static_cast<uint32_t>(seqs.size());
    const uint32_t num_lit = static_cast<uint32_t>(literals.size());
    AppendLE32(&payload, num_seq);
    AppendLE32(&payload, num_lit);

    uint8_t lit_mode = kLitNone;
    lit_hdr.clear();
    lit_stream.clear();
    if (num_lit > 0) {
      lit_mode = kLitRaw;
      std::array<uint64_t, 256> counts{};
      for (const uint8_t b : literals) ++counts[b];
      if (EstimateEntropyBytes(counts.data(), 256, num_lit) < num_lit) {
        tans::NormalizedHistogram hist;
        tans::EncodeTable table;
        if (tans::Normalize(counts.data(), UsedAlphabet(counts.data(), 256),
                            kLitMaxLog, &hist)
                .ok() &&
            table.Init(hist).ok()) {
          tans::AppendHistogram(hist, &lit_hdr);
          Status st = tans::EncodeInterleaved(
              literals.data(), num_lit, table, kLitStates, &lit_stream);
          if (st.ok() &&
              lit_hdr.size() + 4 + lit_stream.size() < num_lit) {
            lit_mode = kLitTans;
          }
        }
      }
    }
    payload.push_back(lit_mode);
    if (lit_mode == kLitTans) {
      payload.insert(payload.end(), lit_hdr.begin(), lit_hdr.end());
      AppendLE32(&payload, static_cast<uint32_t>(lit_stream.size()));
      payload.insert(payload.end(), lit_stream.begin(), lit_stream.end());
    } else if (lit_mode == kLitRaw) {
      payload.insert(payload.end(), literals.begin(), literals.end());
    }

    bool seq_ok = true;
    if (num_seq > 0) {
      std::array<uint64_t, kLenAlphabet> len_counts{};
      std::array<uint64_t, kOffAlphabet> off_counts{};
      for (const Seq& s : seqs) {
        ++len_counts[MakeLenCode(s.ll).code];
        ++len_counts[MakeLenCode(s.ml - kMinMatch).code];
        ++off_counts[MakeOffCode(s.of).code];
      }
      tans::NormalizedHistogram len_hist;
      tans::NormalizedHistogram off_hist;
      tans::EncodeTable len_table;
      tans::EncodeTable off_table;
      seq_ok =
          tans::Normalize(len_counts.data(),
                          UsedAlphabet(len_counts.data(), kLenAlphabet),
                          kLenMaxLog, &len_hist)
              .ok() &&
          tans::Normalize(off_counts.data(),
                          UsedAlphabet(off_counts.data(), kOffAlphabet),
                          kOffMaxLog, &off_hist)
              .ok() &&
          len_table.Init(len_hist).ok() && off_table.Init(off_hist).ok();
      if (seq_ok) {
        const uint32_t len_ts = len_table.table_size();
        const uint32_t off_ts = off_table.table_size();

        // Length stream: state 0 carries literal-run codes, state 1 match
        // lengths. Encoding walks the sequences backward and mirrors the
        // decoder's per-sequence read order exactly in reverse:
        // (ll code, ll extra, ml code, ml extra) reads become
        // (ml extra, ml code, ll extra, ll code) writes.
        len_stream.clear();
        tans::BitWriter lw(&len_stream);
        uint32_t l0 = len_ts;
        uint32_t l1 = len_ts;
        for (size_t idx = seqs.size(); idx-- > 0;) {
          const PrefixCode ml = MakeLenCode(seqs[idx].ml -
                                            static_cast<uint32_t>(kMinMatch));
          const PrefixCode ll = MakeLenCode(seqs[idx].ll);
          lw.AddBits(ml.extra, ml.nb_bits);
          l1 = len_table.EncodeSymbol(l1, ml.code, &lw);
          lw.AddBits(ll.extra, ll.nb_bits);
          l0 = len_table.EncodeSymbol(l0, ll.code, &lw);
          lw.FlushIfNeeded();
        }
        lw.AddBits(l1 - len_ts, len_table.table_log());
        lw.FlushIfNeeded();
        lw.AddBits(l0 - len_ts, len_table.table_log());
        lw.Finish();

        // Offset stream: two states round-robin over the sequence index.
        off_stream.clear();
        tans::BitWriter ow(&off_stream);
        std::array<uint32_t, 2> os{off_ts, off_ts};
        for (size_t idx = seqs.size(); idx-- > 0;) {
          const PrefixCode of = MakeOffCode(seqs[idx].of);
          ow.AddBits(of.extra, of.nb_bits);
          os[idx & 1] = off_table.EncodeSymbol(os[idx & 1], of.code, &ow);
          ow.FlushIfNeeded();
        }
        ow.AddBits(os[1] - off_ts, off_table.table_log());
        ow.FlushIfNeeded();
        ow.AddBits(os[0] - off_ts, off_table.table_log());
        ow.Finish();

        tans::AppendHistogram(len_hist, &payload);
        tans::AppendHistogram(off_hist, &payload);
        AppendLE32(&payload, static_cast<uint32_t>(len_stream.size()));
        payload.insert(payload.end(), len_stream.begin(), len_stream.end());
        AppendLE32(&payload, static_cast<uint32_t>(off_stream.size()));
        payload.insert(payload.end(), off_stream.begin(), off_stream.end());
      }
    }

    if (!seq_ok || payload.size() >= raw_size) {
      out->push_back(kBlockRaw);
      AppendLE32(out, static_cast<uint32_t>(raw_size));
      out->insert(out->end(), data + bs, data + be);
    } else {
      out->push_back(kBlockLzans);
      AppendLE32(out, static_cast<uint32_t>(raw_size));
      out->insert(out->end(), payload.begin(), payload.end());
    }
  }
  return Status::OK();
}

Status LzAnsCodec::Decompress(ByteSpan input, size_t original_size,
                              Bytes* out) const {
  out->clear();
  out->resize(original_size);
  uint8_t* const base = out->data();
  const uint8_t* const in = input.data();
  const size_t in_size = input.size();
  size_t ip = 0;
  size_t op = 0;
  Bytes lit_scratch;

  while (op < original_size) {
    if (ip + 5 > in_size) {
      return Status::Corruption("lzans: truncated block header");
    }
    const uint8_t type = in[ip];
    const size_t raw_size = LoadLE32(in + ip + 1);
    ip += 5;
    if (raw_size == 0 || raw_size > original_size - op) {
      return Status::Corruption("lzans: block size exceeds output");
    }

    if (type == kBlockRaw) {
      if (ip + raw_size > in_size) {
        return Status::Corruption("lzans: truncated raw block");
      }
      std::memcpy(base + op, in + ip, raw_size);
      ip += raw_size;
      op += raw_size;
      continue;
    }
    if (type == kBlockRle) {
      if (ip + 1 > in_size) {
        return Status::Corruption("lzans: truncated rle block");
      }
      std::memset(base + op, in[ip], raw_size);
      ip += 1;
      op += raw_size;
      continue;
    }
    if (type != kBlockLzans) {
      return Status::Corruption("lzans: unknown block type");
    }

    // --- lzans block.
    if (ip + 9 > in_size) {
      return Status::Corruption("lzans: truncated block prelude");
    }
    const uint32_t num_seq = LoadLE32(in + ip);
    const uint32_t num_lit = LoadLE32(in + ip + 4);
    const uint8_t lit_mode = in[ip + 8];
    ip += 9;
    if (num_lit > raw_size) {
      return Status::Corruption("lzans: literal count exceeds block");
    }
    if (num_seq > raw_size / kMinMatch) {
      return Status::Corruption("lzans: sequence count exceeds block");
    }

    const uint8_t* lit_src = nullptr;
    // True when reading a fixed 16 bytes from any valid literal position
    // stays inside the source buffer: the tANS scratch and the kLitNone
    // pad carry their own 16-byte slack; raw literals need 16 spare input
    // bytes past the literal section.
    bool lit_fast = true;
    if (lit_mode == kLitNone) {
      if (num_lit != 0) {
        return Status::Corruption("lzans: missing literal stream");
      }
      lit_src = kEmptyLitPad;
    } else if (lit_mode == kLitTans) {
      tans::NormalizedHistogram hist;
      Status st = tans::ParseHistogram(input, &ip, &hist);
      if (!st.ok()) return st;
      tans::DecodeTable table;
      st = table.Init(hist);
      if (!st.ok()) return st;
      if (ip + 4 > in_size) {
        return Status::Corruption("lzans: truncated literal stream size");
      }
      const size_t stream_bytes = LoadLE32(in + ip);
      ip += 4;
      if (stream_bytes > in_size - ip) {
        return Status::Corruption("lzans: truncated literal stream");
      }
      // +16 padding lets the sequence loop's short-copy fast path read a
      // fixed 16 bytes from any literal position without overrunning.
      lit_scratch.resize(num_lit + 16);
      st = tans::DecodeInterleaved(ByteSpan(in + ip, stream_bytes), table,
                                   kLitStates, num_lit, lit_scratch.data());
      if (!st.ok()) return st;
      ip += stream_bytes;
      lit_src = lit_scratch.data();
    } else if (lit_mode == kLitRaw) {
      if (num_lit > in_size - ip) {
        return Status::Corruption("lzans: truncated raw literals");
      }
      lit_src = in + ip;
      lit_fast = in_size - ip >= num_lit + 16;
      ip += num_lit;
    } else {
      return Status::Corruption("lzans: unknown literal mode");
    }

    size_t lit_pos = 0;
    const size_t block_end = op + raw_size;
    if (num_seq > 0) {
      tans::NormalizedHistogram len_hist;
      tans::NormalizedHistogram off_hist;
      Status st = tans::ParseHistogram(input, &ip, &len_hist);
      if (!st.ok()) return st;
      st = tans::ParseHistogram(input, &ip, &off_hist);
      if (!st.ok()) return st;
      // Alphabet caps bound every shift below (len codes <= 30 mean <= 17
      // extra bits; offset codes <= 17 likewise).
      if (len_hist.alphabet_size > kLenAlphabet ||
          off_hist.alphabet_size > kOffAlphabet) {
        return Status::Corruption("lzans: oversized code alphabet");
      }
      tans::DecodeTable len_table;
      tans::DecodeTable off_table;
      st = len_table.Init(len_hist);
      if (!st.ok()) return st;
      st = off_table.Init(off_hist);
      if (!st.ok()) return st;

      if (ip + 4 > in_size) {
        return Status::Corruption("lzans: truncated length stream size");
      }
      const size_t len_bytes = LoadLE32(in + ip);
      ip += 4;
      if (len_bytes > in_size - ip) {
        return Status::Corruption("lzans: truncated length stream");
      }
      const ByteSpan len_span(in + ip, len_bytes);
      ip += len_bytes;
      if (ip + 4 > in_size) {
        return Status::Corruption("lzans: truncated offset stream size");
      }
      const size_t off_bytes = LoadLE32(in + ip);
      ip += 4;
      if (off_bytes > in_size - ip) {
        return Status::Corruption("lzans: truncated offset stream");
      }
      const ByteSpan off_span(in + ip, off_bytes);
      ip += off_bytes;

      tans::BitReader lr;
      tans::BitReader orr;
      st = lr.Init(len_span);
      if (!st.ok()) return st;
      st = orr.Init(off_span);
      if (!st.ok()) return st;

      uint32_t l0 = static_cast<uint32_t>(
          lr.ReadBits(len_table.table_log()));
      lr.Reload();
      uint32_t l1 = static_cast<uint32_t>(
          lr.ReadBits(len_table.table_log()));
      lr.Reload();
      std::array<uint32_t, 2> os{};
      os[0] = static_cast<uint32_t>(orr.ReadBits(off_table.table_log()));
      orr.Reload();
      os[1] = static_cast<uint32_t>(orr.ReadBits(off_table.table_log()));
      orr.Reload();

      auto read_len_value = [&lr](uint32_t code) -> size_t {
        if (code < 16) return code;
        const uint32_t nb = code - 13;
        return (size_t{1} << nb) + static_cast<size_t>(lr.ReadBits(nb));
      };

      for (uint32_t s = 0; s < num_seq; ++s) {
        const tans::DecodeTable::Entry& le = len_table.entry(l0);
        l0 = le.new_state +
             static_cast<uint32_t>(lr.ReadBits(le.nb_bits));
        const size_t ll = read_len_value(le.symbol);
        const tans::DecodeTable::Entry& me = len_table.entry(l1);
        l1 = me.new_state +
             static_cast<uint32_t>(lr.ReadBits(me.nb_bits));
        const size_t ml = read_len_value(me.symbol) + kMinMatch;
        lr.Reload();

        const tans::DecodeTable::Entry& oe = off_table.entry(os[s & 1]);
        os[s & 1] = oe.new_state +
                    static_cast<uint32_t>(orr.ReadBits(oe.nb_bits));
        const size_t dist =
            (size_t{1} << oe.symbol) +
            static_cast<size_t>(orr.ReadBits(oe.symbol));
        orr.Reload();

        if (ll > num_lit - lit_pos) {
          return Status::Corruption("lzans: literal run exceeds stream");
        }
        if (ll > block_end - op || ml > block_end - op - ll) {
          return Status::Corruption("lzans: sequence exceeds block");
        }
        if (dist > op + ll) {
          return Status::Corruption("lzans: match offset exceeds output");
        }
        // Fast path for the common short sequence: two unconditional
        // 16-byte copies beat length-dispatched memcpy/CopyMatch calls.
        // Requires slack on every buffer touched and a non-overlapping
        // match; the bounds checks above already proved validity.
        if (lit_fast && ll <= 16 && ml <= 16 && dist >= 16 &&
            original_size - op >= 48) {
          std::memcpy(base + op, lit_src + lit_pos, 16);
          lit_pos += ll;
          op += ll;
          std::memcpy(base + op, base + op - dist, 16);
          op += ml;
        } else {
          std::memcpy(base + op, lit_src + lit_pos, ll);
          lit_pos += ll;
          op += ll;
          CopyMatch(base + op, dist, ml);
          op += ml;
        }
      }
      if (lr.overflowed() || orr.overflowed()) {
        return Status::Corruption("lzans: truncated sequence stream");
      }
      // Mirror the tANS decode-loop hardening: intact streams drain
      // exactly and every state returns to the encoder's initial value
      // (table_size, rebased to 0).
      if (!lr.fully_consumed() || !orr.fully_consumed() || l0 != 0 ||
          l1 != 0 || os[0] != 0 || os[1] != 0) {
        return Status::Corruption("lzans: corrupt sequence stream");
      }
    }

    const size_t tail = num_lit - lit_pos;
    if (tail != block_end - op) {
      return Status::Corruption("lzans: block does not fill its size");
    }
    std::memcpy(base + op, lit_src + lit_pos, tail);
    op += tail;
  }

  if (ip != in_size) {
    return Status::Corruption("lzans: trailing garbage after stream");
  }
  return Status::OK();
}

}  // namespace isobar
