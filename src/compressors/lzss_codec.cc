#include "compressors/lzss_codec.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "compressors/match_finder.h"

namespace isobar {
namespace {

constexpr size_t kWindow = 4096;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;
constexpr uint32_t kHashBits = 13;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChain = 32;

// Matches at least this long are taken immediately; the lazy probe of the
// next position only runs for shorter ones, where a one-byte deferral can
// still pay for itself.
constexpr size_t kLazyThreshold = 16;

struct Match {
  size_t len = 0;
  size_t dist = 0;
};

// Best match for position i over the hash chains. Chains hold positions
// offset by one so 0 = empty.
Match FindMatch(ByteSpan input, size_t i, const std::vector<uint32_t>& head,
                const std::vector<uint32_t>& prev) {
  Match best;
  if (i + kMinMatch > input.size()) return best;
  const size_t limit = std::min(kMaxMatch, input.size() - i);
  const uint8_t* const data = input.data();
  uint32_t candidate = head[lz::Hash3(data + i, kHashBits)];
  int chain = 0;
  while (candidate != 0 && chain++ < kMaxChain) {
    const size_t pos = candidate - 1;
    if (i - pos > kWindow) break;
    // Cheap reject: a strictly longer match must agree one byte past the
    // current best, so most chain entries never reach the full compare.
    if (best.len == 0 || data[pos + best.len] == data[i + best.len]) {
      const size_t len = lz::MatchLength(data + pos, data + i, limit);
      if (len > best.len) {
        best.len = len;
        best.dist = i - pos;
        if (len == limit) break;
      }
    }
    candidate = prev[pos % kWindow];
  }
  return best;
}

}  // namespace

Status LzssCodec::Compress(ByteSpan input, Bytes* out) const {
  out->clear();
  out->reserve(input.size() / 2 + 16);

  // head[h] = most recent position with hash h; prev[i % kWindow] = previous
  // position in the same chain. Positions are offset by one so 0 = empty.
  std::vector<uint32_t> head(kHashSize, 0);
  std::vector<uint32_t> prev(kWindow, 0);

  size_t i = 0;
  // Tokens are buffered per group of 8 so the flag byte can be emitted first.
  uint8_t flags = 0;
  int flag_count = 0;
  std::array<uint8_t, 16> group{};
  size_t group_len = 0;

  auto flush_group = [&]() {
    if (flag_count == 0) return;
    out->push_back(flags);
    out->insert(out->end(), group.begin(), group.begin() + group_len);
    flags = 0;
    flag_count = 0;
    group_len = 0;
  };

  auto insert_pos = [&](size_t pos) {
    if (pos + kMinMatch > input.size()) return;
    uint32_t h = lz::Hash3(input.data() + pos, kHashBits);
    prev[pos % kWindow] = head[h];
    head[h] = static_cast<uint32_t>(pos + 1);
  };

  while (i < input.size()) {
    Match match = FindMatch(input, i, head, prev);
    bool inserted_here = false;
    if (match.len >= kMinMatch && match.len < kLazyThreshold &&
        i + 1 + kMinMatch <= input.size()) {
      // Lazy probe: when the next position holds a strictly longer match,
      // emitting input[i] as a literal buys a better token. The deferred
      // match is re-found next iteration against unchanged chains.
      insert_pos(i);
      inserted_here = true;
      if (FindMatch(input, i + 1, head, prev).len > match.len) match.len = 0;
    }

    if (match.len >= kMinMatch) {
      // Match token: 12-bit distance (1..4096 stored as d-1), 4-bit length.
      uint16_t d = static_cast<uint16_t>(match.dist - 1);
      uint8_t l = static_cast<uint8_t>(match.len - kMinMatch);
      group[group_len++] = static_cast<uint8_t>(d & 0xFF);
      group[group_len++] = static_cast<uint8_t>((d >> 8) | (l << 4));
      for (size_t k = inserted_here ? 1 : 0; k < match.len; ++k) {
        insert_pos(i + k);
      }
      i += match.len;
    } else {
      flags |= static_cast<uint8_t>(1u << flag_count);
      group[group_len++] = input[i];
      if (!inserted_here) insert_pos(i);
      ++i;
    }
    if (++flag_count == 8) flush_group();
  }
  flush_group();
  return Status::OK();
}

Status LzssCodec::Decompress(ByteSpan input, size_t original_size,
                             Bytes* out) const {
  out->clear();
  out->resize(original_size);
  uint8_t* const base = out->data();
  const uint8_t* const in = input.data();
  const size_t in_size = input.size();
  size_t op = 0;
  size_t i = 0;
  while (i < in_size && op < original_size) {
    const uint8_t flags = in[i++];
    if (flags == 0xFF && i + 8 <= in_size && op + 8 <= original_size) {
      // All-literal group: one 8-byte copy instead of eight branches.
      std::memcpy(base + op, in + i, 8);
      i += 8;
      op += 8;
      continue;
    }
    for (int bit = 0; bit < 8 && op < original_size; ++bit) {
      if (flags & (1u << bit)) {
        if (i >= in_size) return Status::Corruption("lzss: truncated literal");
        base[op++] = in[i++];
      } else {
        if (i + 2 > in_size) return Status::Corruption("lzss: truncated match");
        const uint8_t b0 = in[i];
        const uint8_t b1 = in[i + 1];
        i += 2;
        const size_t dist = (static_cast<size_t>(b1 & 0x0F) << 8 | b0) + 1;
        const size_t len = static_cast<size_t>(b1 >> 4) + kMinMatch;
        if (dist > op) {
          return Status::Corruption("lzss: match distance exceeds output");
        }
        if (len > original_size - op) {
          return Status::Corruption(
              "lzss: stream decoded to " + std::to_string(op + len) +
              " bytes, expected " + std::to_string(original_size));
        }
        const uint8_t* src = base + op - dist;
        uint8_t* dst = base + op;
        if (dist >= len) {
          std::memcpy(dst, src, len);
        } else if (dist == 1) {
          std::memset(dst, src[0], len);
        } else {
          // Overlapping match: the output repeats with period `dist`, so
          // seed one period and widen it by doubling.
          std::memcpy(dst, src, dist);
          size_t copied = dist;
          while (copied < len) {
            const size_t chunk = std::min(copied, len - copied);
            std::memcpy(dst + copied, dst, chunk);
            copied += chunk;
          }
        }
        op += len;
      }
    }
  }
  if (op != original_size) {
    return Status::Corruption("lzss: stream decoded to " + std::to_string(op) +
                              " bytes, expected " +
                              std::to_string(original_size));
  }
  return Status::OK();
}

}  // namespace isobar
