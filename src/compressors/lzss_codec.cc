#include "compressors/lzss_codec.h"

#include <array>
#include <vector>

namespace isobar {
namespace {

constexpr size_t kWindow = 4096;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;
constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChain = 32;

uint32_t Hash3(const uint8_t* p) {
  uint32_t v = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
               static_cast<uint32_t>(p[2]) << 16;
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Status LzssCodec::Compress(ByteSpan input, Bytes* out) const {
  out->clear();
  out->reserve(input.size() / 2 + 16);

  // head[h] = most recent position with hash h; prev[i % kWindow] = previous
  // position in the same chain. Positions are offset by one so 0 = empty.
  std::vector<uint32_t> head(kHashSize, 0);
  std::vector<uint32_t> prev(kWindow, 0);

  size_t i = 0;
  // Tokens are buffered per group of 8 so the flag byte can be emitted first.
  uint8_t flags = 0;
  int flag_count = 0;
  std::array<uint8_t, 16> group{};
  size_t group_len = 0;

  auto flush_group = [&]() {
    if (flag_count == 0) return;
    out->push_back(flags);
    out->insert(out->end(), group.begin(), group.begin() + group_len);
    flags = 0;
    flag_count = 0;
    group_len = 0;
  };

  auto insert_pos = [&](size_t pos) {
    if (pos + kMinMatch > input.size()) return;
    uint32_t h = Hash3(input.data() + pos);
    prev[pos % kWindow] = head[h];
    head[h] = static_cast<uint32_t>(pos + 1);
  };

  while (i < input.size()) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= input.size()) {
      uint32_t candidate = head[Hash3(input.data() + i)];
      int chain = 0;
      while (candidate != 0 && chain++ < kMaxChain) {
        size_t pos = candidate - 1;
        if (i - pos > kWindow) break;
        size_t len = 0;
        size_t limit = std::min(kMaxMatch, input.size() - i);
        while (len < limit && input[pos + len] == input[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - pos;
          if (len == kMaxMatch) break;
        }
        candidate = prev[pos % kWindow];
      }
    }

    if (best_len >= kMinMatch) {
      // Match token: 12-bit distance (1..4096 stored as d-1), 4-bit length.
      uint16_t d = static_cast<uint16_t>(best_dist - 1);
      uint8_t l = static_cast<uint8_t>(best_len - kMinMatch);
      group[group_len++] = static_cast<uint8_t>(d & 0xFF);
      group[group_len++] = static_cast<uint8_t>((d >> 8) | (l << 4));
      for (size_t k = 0; k < best_len; ++k) insert_pos(i + k);
      i += best_len;
    } else {
      flags |= static_cast<uint8_t>(1u << flag_count);
      group[group_len++] = input[i];
      insert_pos(i);
      ++i;
    }
    if (++flag_count == 8) flush_group();
  }
  flush_group();
  return Status::OK();
}

Status LzssCodec::Decompress(ByteSpan input, size_t original_size,
                             Bytes* out) const {
  out->clear();
  out->reserve(original_size);
  size_t i = 0;
  while (i < input.size() && out->size() < original_size) {
    const uint8_t flags = input[i++];
    for (int bit = 0; bit < 8 && out->size() < original_size; ++bit) {
      if (flags & (1u << bit)) {
        if (i >= input.size()) return Status::Corruption("lzss: truncated literal");
        out->push_back(input[i++]);
      } else {
        if (i + 2 > input.size()) return Status::Corruption("lzss: truncated match");
        const uint8_t b0 = input[i];
        const uint8_t b1 = input[i + 1];
        i += 2;
        const size_t dist = (static_cast<size_t>(b1 & 0x0F) << 8 | b0) + 1;
        const size_t len = static_cast<size_t>(b1 >> 4) + kMinMatch;
        if (dist > out->size()) {
          return Status::Corruption("lzss: match distance exceeds output");
        }
        // Byte-at-a-time copy: matches may overlap their own output.
        size_t src = out->size() - dist;
        for (size_t k = 0; k < len; ++k) out->push_back((*out)[src + k]);
      }
    }
  }
  if (out->size() != original_size) {
    return Status::Corruption("lzss: stream decoded to " +
                              std::to_string(out->size()) +
                              " bytes, expected " +
                              std::to_string(original_size));
  }
  return Status::OK();
}

}  // namespace isobar
