#ifndef ISOBAR_COMPRESSORS_REGISTRY_H_
#define ISOBAR_COMPRESSORS_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "compressors/codec.h"
#include "util/status.h"

namespace isobar {

/// Returns the process-wide default-configured instance of a codec
/// (zlib level 6, bzip2 block size 9, ...). Instances are immutable and
/// live for the process lifetime.
Result<const Codec*> GetCodec(CodecId id);

/// Looks a codec up by its canonical name ("zlib", "bzip2", "rle", "lzss",
/// "stored").
Result<const Codec*> GetCodecByName(std::string_view name);

/// All registered codec ids, in stable order.
std::vector<CodecId> AllCodecIds();

/// The registered codec names joined with `sep` ("stored|zlib|...|lzans"):
/// the single source of truth for CLI usage strings and option docs, so
/// adding a codec never leaves a stale hardcoded list behind.
std::string CodecNameList(std::string_view sep = "|");

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_REGISTRY_H_
