#ifndef ISOBAR_COMPRESSORS_TANS_H_
#define ISOBAR_COMPRESSORS_TANS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar::tans {

/// Table-based asymmetric numeral system (tANS/FSE) entropy coder: the
/// entropy stage of the lzans codec, exposed on its own so the tables,
/// the bitstream, and the interleaved decode loop are testable (and
/// benchmarkable) in isolation.
///
/// The scheme is Duda's tANS as popularized by FSE/zstd: symbol
/// frequencies are normalized to a power-of-two total (the table size),
/// encoding walks a state machine backward through the input pushing
/// `tableLog - floor(log2(freq))`-ish bits per symbol, and decoding walks
/// forward reading the bitstream back to front. Decode states live in
/// `[0, table_size)` and every transition lands back inside the table, so
/// even a corrupt bitstream can only ever produce wrong symbols — never
/// an out-of-bounds table access.
///
/// Streams produced by Encode* are self-delimiting: the encoder appends a
/// single 1-bit sentinel and zero-pads to a byte boundary, and the
/// decoder locates the sentinel in the last byte. Decoders fail closed:
/// reading past the start of the stream sets an overflow flag that turns
/// into Corruption, it never reads out of bounds. DecodeInterleaved
/// additionally rejects streams that do not drain exactly (extra leading
/// bytes or leftover bits) or whose states do not return to the encoder's
/// initial values, so well-formed-but-corrupt streams are detected too.

inline constexpr uint32_t kMinTableLog = 5;
inline constexpr uint32_t kMaxTableLog = 12;
inline constexpr size_t kMaxAlphabet = 256;

/// Symbol counts normalized to sum exactly 1 << table_log, every symbol
/// that appeared keeping a count of at least 1.
struct NormalizedHistogram {
  uint32_t table_log = 0;
  uint32_t alphabet_size = 0;  ///< symbols are [0, alphabet_size)
  std::array<uint16_t, kMaxAlphabet> counts{};
};

/// Largest table log worth paying for `total` input symbols: roughly
/// total/4 states, clamped to [kMinTableLog, max_log] and to at least
/// enough states to give every used symbol one.
uint32_t OptimalTableLog(uint64_t total, size_t used_symbols,
                         uint32_t max_log);

/// Normalizes raw counts over [0, alphabet_size) to sum 1 << table_log
/// (table_log chosen by OptimalTableLog, capped at max_table_log).
/// Deterministic: correction steps always pick the lowest-index
/// most-misrepresented symbol. Fails on an all-zero histogram.
Status Normalize(const uint64_t* counts, size_t alphabet_size,
                 uint32_t max_table_log, NormalizedHistogram* out);

/// Serialized table header: table_log byte, max-symbol byte, then the
/// nonzero counts as LEB128 varints with zero-runs escaped as
/// 0 <run length>. A few dozen bytes for the lzans length/offset
/// alphabets, ~100-300 bytes for a 256-symbol literal table.
void AppendHistogram(const NormalizedHistogram& hist, Bytes* out);

/// Parses a serialized histogram, advancing *offset past it. Validates
/// everything it reads (table_log range, alphabet bound, counts summing
/// exactly to 1 << table_log) and fails closed on any violation.
Status ParseHistogram(ByteSpan data, size_t* offset,
                      NormalizedHistogram* out);

/// Encoding tables (FSE-style): per-symbol bit-count thresholds plus the
/// state transition table.
class EncodeTable {
 public:
  Status Init(const NormalizedHistogram& hist);

  uint32_t table_log() const { return table_log_; }
  uint32_t table_size() const { return 1u << table_log_; }

  /// Maximum bits one EncodeSymbol can push for `symbol`.
  uint32_t MaxBits(uint8_t symbol) const {
    return static_cast<uint32_t>(delta_nb_bits_[symbol] >> 16) + 1;
  }

  // Encode step, inlined into the hot loops. `state` must be in
  // [table_size, 2*table_size). Pushes the low bits of the old state,
  // returns the successor state.
  template <typename Writer>
  uint32_t EncodeSymbol(uint32_t state, uint8_t symbol,
                        Writer* writer) const {
    const uint32_t nb_bits =
        (state + delta_nb_bits_[symbol]) >> 16;
    writer->AddBits(state, nb_bits);
    return state_table_[(state >> nb_bits) +
                        static_cast<uint32_t>(delta_find_state_[symbol])];
  }

 private:
  uint32_t table_log_ = 0;
  std::vector<uint16_t> state_table_;
  std::array<uint32_t, kMaxAlphabet> delta_nb_bits_{};
  std::array<int32_t, kMaxAlphabet> delta_find_state_{};
};

/// Decoding table: one {symbol, nb_bits, next-state base} entry per
/// state. Transitions provably stay inside the table for any bit input.
class DecodeTable {
 public:
  Status Init(const NormalizedHistogram& hist);

  uint32_t table_log() const { return table_log_; }
  uint32_t table_size() const { return 1u << table_log_; }

  struct Entry {
    uint16_t new_state;  ///< successor base; add the nb_bits read bits
    uint8_t symbol;
    uint8_t nb_bits;
  };
  const Entry& entry(uint32_t state) const { return entries_[state]; }

 private:
  uint32_t table_log_ = 0;
  std::vector<Entry> entries_;
};

/// Forward bit writer: bits accumulate low-to-high in a 64-bit container
/// and flush to the output byte stream little-endian. Callers must
/// FlushIfNeeded often enough that at most 64 bits are pending (every
/// AddBits call site in this codebase flushes at least once per ~58
/// pushed bits).
class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  void AddBits(uint64_t value, uint32_t nb_bits) {
    // nb_bits == 0 must be a no-op; (1<<0)-1 masks everything away.
    acc_ |= (value & ((uint64_t{1} << nb_bits) - 1)) << filled_;
    filled_ += nb_bits;
  }

  void FlushIfNeeded() {
    if (filled_ < 8) return;
    uint8_t buf[8];
    uint64_t acc = acc_;
    for (int i = 0; i < 8; ++i) {  // compiles to one 64-bit LE store
      buf[i] = static_cast<uint8_t>(acc);
      acc >>= 8;
    }
    const uint32_t whole = filled_ >> 3;
    out_->insert(out_->end(), buf, buf + whole);
    acc_ >>= 8 * whole;
    filled_ &= 7;
  }

  /// Appends the 1-bit end-of-stream sentinel and pads to a byte.
  void Finish() {
    AddBits(1, 1);
    FlushIfNeeded();
    if (filled_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  Bytes* out_;
  uint64_t acc_ = 0;
  uint32_t filled_ = 0;
};

/// Backward bit reader (FSE BIT_DStream shape): initialized at the end
/// of the stream, it returns bits in the reverse order they were
/// written. All loads stay inside [stream.begin(), stream.end()];
/// exhausting the stream sets overflowed() instead of reading past it.
class BitReader {
 public:
  Status Init(ByteSpan stream);

  uint64_t ReadBits(uint32_t nb_bits) {
    // Branchless: an over-consume latches overflowed_ (the decode result
    // is discarded once it trips), `& 63` keeps the shift defined however
    // far past the end a corrupt stream pushes us, and the two-step right
    // shift makes nb_bits == 0 yield 0 without a special case.
    overflowed_ |= bits_consumed_ + nb_bits > 64;
    const uint64_t value =
        ((container_ << (bits_consumed_ & 63)) >> 1) >> (63 - nb_bits);
    bits_consumed_ += nb_bits;
    return value;
  }

  /// Rewinds the load pointer to refill the container. Call at least once
  /// per ~56 consumed bits.
  void Reload();

  bool overflowed() const { return overflowed_; }

  /// True once every stream bit has been consumed: the load pointer is
  /// back at the first byte and the container is drained to its limit.
  /// Only meaningful after the final Reload() of a decode loop; an intact
  /// stream drains exactly, so anything less means corruption.
  bool fully_consumed() const {
    return ptr_ == start_ && bits_consumed_ == bits_limit_;
  }

 private:
  const uint8_t* start_ = nullptr;
  const uint8_t* ptr_ = nullptr;
  uint64_t container_ = 0;
  uint32_t bits_consumed_ = 0;
  uint32_t bits_limit_ = 64;  ///< valid bits in container when ptr == start
  bool overflowed_ = false;
};

/// Encodes `count` symbols with `num_states` round-robin interleaved ANS
/// states over one bit-buffer, appending the stream to *out. The
/// interleave factor is baked into the stream: decode with the same one.
Status EncodeInterleaved(const uint8_t* symbols, size_t count,
                         const EncodeTable& table, uint32_t num_states,
                         Bytes* out);

/// Decodes exactly `count` symbols into `out`. Fails closed (Corruption)
/// on a truncated or trailing-garbage stream, on a stream that does not
/// drain exactly, and on final states that do not return to the
/// encoder's initial values.
Status DecodeInterleaved(ByteSpan stream, const DecodeTable& table,
                         uint32_t num_states, size_t count, uint8_t* out);

}  // namespace isobar::tans

#endif  // ISOBAR_COMPRESSORS_TANS_H_
