#ifndef ISOBAR_COMPRESSORS_LZANS_CODEC_H_
#define ISOBAR_COMPRESSORS_LZANS_CODEC_H_

#include "compressors/codec.h"

namespace isobar {

/// Homegrown zstd-class LZ77 + tANS codec: 128 KiB window, lazy hash-chain
/// parse, sequences entropy-coded with interleaved table-based ANS.
///
/// Stream format: a sequence of independent 128 KiB blocks, each
///   u8  block type (0 = raw, 1 = RLE, 2 = lzans)
///   u32 raw_size (decoded size of the block)
/// followed by the type-specific payload:
///   - raw : raw_size verbatim bytes (incompressible escape).
///   - RLE : one byte, repeated raw_size times.
///   - lzans:
///       u32 num_sequences, u32 num_literals, u8 literal mode
///       literal mode 1: tANS table header, u32 stream size, 4-way
///                       interleaved tANS literal stream
///       literal mode 2: num_literals verbatim bytes (high-entropy planes)
///       if num_sequences > 0: length + offset tANS table headers, then a
///       length stream (2 interleaved states: literal-run and match-length
///       codes with their extra bits) and an offset stream (2 interleaved
///       states, one offset code + extra bits per sequence).
///
/// A sequence is (literal_run, match_length ≥ 4, offset); matches never
/// cross a block boundary but may reference the previous block's output
/// (the window spans blocks). Decoding validates every count, offset, and
/// table header and fails closed on corrupt input without overreading.
///
/// This is the "zstd-class solver family" ROADMAP item: a first-class EUPA
/// candidate whose decode throughput comes from N-way interleaved ANS
/// states and long-match copies rather than per-token branching.
class LzAnsCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kLzans; }
  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_LZANS_CODEC_H_
