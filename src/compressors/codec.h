#ifndef ISOBAR_COMPRESSORS_CODEC_H_
#define ISOBAR_COMPRESSORS_CODEC_H_

#include <cstdint>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Stable on-disk identifier of a general-purpose lossless codec ("solver"
/// in the paper's preconditioner/solver terminology). Values are persisted
/// in the ISOBAR container format and must never be renumbered.
enum class CodecId : uint8_t {
  kStored = 0,  ///< Identity codec: bytes copied verbatim.
  kZlib = 1,    ///< DEFLATE via system zlib (paper's primary solver).
  kBzip2 = 2,   ///< Burrows-Wheeler via system libbzip2 (paper's "bzlib2").
  kRle = 3,     ///< Homegrown byte run-length codec (ablation/testing).
  kLzss = 4,    ///< Homegrown LZSS (4 KiB window) codec (ablation/testing).
  kHuffman = 5, ///< Homegrown order-0 canonical Huffman codec.
  kBwt = 6,     ///< Homegrown block-sorting (BWT+MTF+RLE+Huffman) codec.
  kLzans = 7,   ///< Homegrown LZ77+tANS (128 KiB window) zstd-class codec.
};

/// Returns the canonical name of a codec id ("zlib", "bzip2", ...).
std::string_view CodecIdToString(CodecId id);

/// True when `raw` is the wire value of a defined CodecId. The single
/// source of truth for validating codec bytes read from containers or the
/// server protocol; grows automatically with the enum via CodecIdToString.
bool IsKnownCodecId(uint8_t raw);

/// Abstract general-purpose lossless byte compressor.
///
/// ISOBAR is a *preconditioner*: it never entropy-codes bytes itself but
/// hands the compressible partition of the input to one of these solvers.
/// Implementations must be stateless and thread-compatible (const methods
/// may be called concurrently from different threads on different buffers).
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;

  /// Canonical lowercase name; matches CodecIdToString(id()).
  std::string_view name() const { return CodecIdToString(id()); }

  /// Compresses `input`, replacing the contents of `*out`.
  virtual Status Compress(ByteSpan input, Bytes* out) const = 0;

  /// Decompresses `input` into `*out`. `original_size` is the exact size of
  /// the data before compression (the ISOBAR container records it); the call
  /// fails with Corruption if the stream does not produce exactly that many
  /// bytes.
  virtual Status Decompress(ByteSpan input, size_t original_size,
                            Bytes* out) const = 0;
};

/// Identity codec used when a chunk turns out to be incompressible end to
/// end; also a convenient baseline in ablations.
class StoredCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kStored; }
  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_CODEC_H_
