#include "compressors/rle_codec.h"

#include <algorithm>

#include "simd/dispatch.h"

namespace isobar {
namespace {

constexpr size_t kMaxLiteralRun = 128;  // control 0..127
constexpr size_t kMinRepeatRun = 3;
constexpr size_t kMaxRepeatRun = 130;  // control 128..255

// Length of the run of identical bytes starting at `pos`, capped at the
// longest encodable repeat. The scan itself is the tier-dispatched SIMD
// kernel (bit-identical across tiers).
size_t RunLength(ByteSpan in, size_t pos) {
  const size_t cap = std::min(kMaxRepeatRun, in.size() - pos);
  return simd::Kernels().run_scan(in.data() + pos, cap);
}

}  // namespace

Status RleCodec::Compress(ByteSpan input, Bytes* out) const {
  out->clear();
  out->reserve(input.size() / 2 + 16);
  size_t i = 0;
  size_t literal_start = 0;

  auto flush_literals = [&](size_t end) {
    size_t pos = literal_start;
    while (pos < end) {
      size_t n = std::min(kMaxLiteralRun, end - pos);
      out->push_back(static_cast<uint8_t>(n - 1));
      out->insert(out->end(), input.begin() + pos, input.begin() + pos + n);
      pos += n;
    }
  };

  while (i < input.size()) {
    size_t run = RunLength(input, i);
    if (run >= kMinRepeatRun) {
      flush_literals(i);
      out->push_back(static_cast<uint8_t>(128 + (run - kMinRepeatRun)));
      out->push_back(input[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(input.size());
  return Status::OK();
}

Status RleCodec::Decompress(ByteSpan input, size_t original_size,
                            Bytes* out) const {
  out->clear();
  out->reserve(original_size);
  size_t i = 0;
  while (i < input.size()) {
    const uint8_t control = input[i++];
    if (control < 128) {
      const size_t n = static_cast<size_t>(control) + 1;
      if (i + n > input.size()) {
        return Status::Corruption("rle: truncated literal run");
      }
      out->insert(out->end(), input.begin() + i, input.begin() + i + n);
      i += n;
    } else {
      if (i >= input.size()) {
        return Status::Corruption("rle: truncated repeat run");
      }
      const size_t n = static_cast<size_t>(control - 128) + kMinRepeatRun;
      out->insert(out->end(), n, input[i++]);
    }
    if (out->size() > original_size) {
      return Status::Corruption("rle: stream decodes past expected size");
    }
  }
  if (out->size() != original_size) {
    return Status::Corruption("rle: stream decoded to " +
                              std::to_string(out->size()) +
                              " bytes, expected " +
                              std::to_string(original_size));
  }
  return Status::OK();
}

}  // namespace isobar
