#ifndef ISOBAR_COMPRESSORS_HUFFMAN_CODEC_H_
#define ISOBAR_COMPRESSORS_HUFFMAN_CODEC_H_

#include "compressors/codec.h"

namespace isobar {

/// Homegrown order-0 canonical Huffman codec.
///
/// Stream format:
///   [u8 flags]              bit0: empty stream, bit1: single-symbol stream
///   [u8 symbol]             (single-symbol streams only)
///   [256 x u8 code lengths] (general streams; 0 = symbol absent)
///   [MSB-first bitstream of canonical codes]
///
/// Codes are canonical: shorter codes numerically precede longer ones and
/// equal-length codes are ordered by symbol, so the lengths alone
/// reconstruct the codebook. The decoder walks the bitstream with the
/// canonical first-code method (O(1) table step per bit).
///
/// A pure entropy coder is the sharpest possible probe of the ISOBAR
/// hypothesis: it exploits *only* byte-frequency skew, exactly the
/// statistic the analyzer thresholds, so preconditioning helps it more
/// than any dictionary solver. Used by tests and the ablation benchmarks.
class HuffmanCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kHuffman; }
  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_HUFFMAN_CODEC_H_
