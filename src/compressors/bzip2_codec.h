#ifndef ISOBAR_COMPRESSORS_BZIP2_CODEC_H_
#define ISOBAR_COMPRESSORS_BZIP2_CODEC_H_

#include "compressors/codec.h"

namespace isobar {

/// Burrows–Wheeler solver backed by the system libbzip2 (the paper's
/// "bzlib2"). Slower than zlib but often a better ratio on skewed bytes.
class Bzip2Codec final : public Codec {
 public:
  /// `block_size_100k` follows bzip2 semantics: 1..9 hundred-kilobyte BWT
  /// blocks. 9 matches the bzip2 command-line default.
  explicit Bzip2Codec(int block_size_100k = 9);

  CodecId id() const override { return CodecId::kBzip2; }
  int block_size_100k() const { return block_size_100k_; }

  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;

 private:
  int block_size_100k_;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_BZIP2_CODEC_H_
