#include "compressors/tans.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace isobar::tans {
namespace {

// Symbol spread step: odd for every power-of-two table size, so the walk
// visits each slot exactly once before wrapping (same constant as FSE).
uint32_t SpreadStep(uint32_t table_size) {
  return (table_size >> 1) + (table_size >> 3) + 3;
}

// Scatters each symbol `count` times over the table in the canonical
// FSE order. Encoder and decoder must agree on this placement exactly.
void SpreadSymbols(const NormalizedHistogram& hist, uint8_t* spread) {
  const uint32_t table_size = 1u << hist.table_log;
  const uint32_t step = SpreadStep(table_size);
  const uint32_t mask = table_size - 1;
  uint32_t pos = 0;
  for (uint32_t s = 0; s < hist.alphabet_size; ++s) {
    for (uint32_t n = 0; n < hist.counts[s]; ++n) {
      spread[pos] = static_cast<uint8_t>(s);
      pos = (pos + step) & mask;
    }
  }
  // step is coprime with table_size, so the walk ends where it started.
}

void AppendVarint(uint32_t v, Bytes* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool ParseVarint(ByteSpan data, size_t* offset, uint32_t* v) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift < 35; shift += 7) {
    if (*offset >= data.size()) return false;
    const uint8_t byte = data[(*offset)++];
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

}  // namespace

uint32_t OptimalTableLog(uint64_t total, size_t used_symbols,
                         uint32_t max_log) {
  // total <= 4 would drive bit_width(total - 1) - 2 to (or below) zero —
  // unsigned wrap for total == 2 — so tiny inputs take the minimum table.
  uint32_t log = total > 4
                     ? static_cast<uint32_t>(std::bit_width(total - 1)) - 2
                     : kMinTableLog;
  // Every used symbol needs at least one state.
  const uint32_t min_log = static_cast<uint32_t>(
      std::bit_width(used_symbols > 1 ? used_symbols - 1 : size_t{1}));
  log = std::max(log, min_log);
  log = std::max(log, kMinTableLog);
  log = std::min(log, std::min(max_log, kMaxTableLog));
  return log;
}

Status Normalize(const uint64_t* counts, size_t alphabet_size,
                 uint32_t max_table_log, NormalizedHistogram* out) {
  if (alphabet_size == 0 || alphabet_size > kMaxAlphabet) {
    return Status::InvalidArgument("tans: bad alphabet size");
  }
  uint64_t total = 0;
  size_t used = 0;
  size_t last_used = 0;
  for (size_t s = 0; s < alphabet_size; ++s) {
    total += counts[s];
    if (counts[s] != 0) {
      ++used;
      last_used = s;
    }
  }
  if (used == 0) {
    return Status::InvalidArgument("tans: empty histogram");
  }

  out->alphabet_size = static_cast<uint32_t>(alphabet_size);
  out->counts.fill(0);

  if (used == 1) {
    // Degenerate single-symbol alphabet: the smallest table keeps the
    // header tiny and each symbol costs 0 bits.
    out->table_log = kMinTableLog;
    out->counts[last_used] = static_cast<uint16_t>(1u << kMinTableLog);
    return Status::OK();
  }

  out->table_log = OptimalTableLog(total, used, max_table_log);
  const uint32_t table_size = 1u << out->table_log;

  // First pass: scaled floor, bumped to 1 for every present symbol.
  int64_t assigned = 0;
  for (size_t s = 0; s < alphabet_size; ++s) {
    if (counts[s] == 0) continue;
    uint64_t n = (counts[s] * table_size) / total;
    if (n == 0) n = 1;
    out->counts[s] = static_cast<uint16_t>(n);
    assigned += static_cast<int64_t>(n);
  }

  // Correction: move the remaining slots to (or reclaim excess from) the
  // most misrepresented symbol. Cross-multiplied integer comparisons keep
  // the choice exact and deterministic; ties break on the lowest index.
  while (assigned != static_cast<int64_t>(table_size)) {
    size_t pick = alphabet_size;
    if (assigned < static_cast<int64_t>(table_size)) {
      // Most under-represented: maximize counts[s] / normalized[s].
      for (size_t s = 0; s < alphabet_size; ++s) {
        if (counts[s] == 0) continue;
        if (pick == alphabet_size ||
            counts[s] * out->counts[pick] >
                counts[pick] * out->counts[s]) {
          pick = s;
        }
      }
      out->counts[pick] += 1;
      assigned += 1;
    } else {
      // Most over-represented with slack: minimize counts[s]/normalized.
      for (size_t s = 0; s < alphabet_size; ++s) {
        if (out->counts[s] <= 1) continue;
        if (pick == alphabet_size ||
            counts[s] * out->counts[pick] <
                counts[pick] * out->counts[s]) {
          pick = s;
        }
      }
      if (pick == alphabet_size) {
        return Status::Internal("tans: normalization cannot converge");
      }
      out->counts[pick] -= 1;
      assigned -= 1;
    }
  }
  return Status::OK();
}

void AppendHistogram(const NormalizedHistogram& hist, Bytes* out) {
  out->push_back(static_cast<uint8_t>(hist.table_log));
  out->push_back(static_cast<uint8_t>(hist.alphabet_size - 1));
  uint32_t s = 0;
  while (s < hist.alphabet_size) {
    if (hist.counts[s] == 0) {
      uint32_t run = 1;
      while (s + run < hist.alphabet_size && hist.counts[s + run] == 0) {
        ++run;
      }
      AppendVarint(0, out);
      AppendVarint(run, out);
      s += run;
    } else {
      AppendVarint(hist.counts[s], out);
      ++s;
    }
  }
}

Status ParseHistogram(ByteSpan data, size_t* offset,
                      NormalizedHistogram* out) {
  if (*offset + 2 > data.size()) {
    return Status::Corruption("tans: truncated table header");
  }
  out->table_log = data[(*offset)++];
  out->alphabet_size = static_cast<uint32_t>(data[(*offset)++]) + 1;
  if (out->table_log < kMinTableLog || out->table_log > kMaxTableLog) {
    return Status::Corruption("tans: table log out of range");
  }
  out->counts.fill(0);
  const uint32_t table_size = 1u << out->table_log;
  uint64_t sum = 0;
  uint32_t s = 0;
  while (s < out->alphabet_size) {
    uint32_t v = 0;
    if (!ParseVarint(data, offset, &v)) {
      return Status::Corruption("tans: truncated table counts");
    }
    if (v == 0) {
      uint32_t run = 0;
      if (!ParseVarint(data, offset, &run)) {
        return Status::Corruption("tans: truncated zero run");
      }
      if (run == 0 || s + run > out->alphabet_size) {
        return Status::Corruption("tans: bad zero run");
      }
      s += run;
    } else {
      if (v > table_size) {
        return Status::Corruption("tans: count exceeds table");
      }
      out->counts[s] = static_cast<uint16_t>(v);
      sum += v;
      if (sum > table_size) {
        return Status::Corruption("tans: counts overflow table");
      }
      ++s;
    }
  }
  if (sum != table_size) {
    return Status::Corruption("tans: counts do not fill table");
  }
  return Status::OK();
}

Status EncodeTable::Init(const NormalizedHistogram& hist) {
  if (hist.table_log < kMinTableLog || hist.table_log > kMaxTableLog ||
      hist.alphabet_size == 0 || hist.alphabet_size > kMaxAlphabet) {
    return Status::InvalidArgument("tans: bad histogram");
  }
  table_log_ = hist.table_log;
  const uint32_t table_size = 1u << table_log_;

  std::vector<uint8_t> spread(table_size);
  SpreadSymbols(hist, spread.data());

  // cumul[s] = index of symbol s's first slot in its sorted state range.
  std::array<uint32_t, kMaxAlphabet + 1> cumul{};
  uint32_t running = 0;
  for (uint32_t s = 0; s < hist.alphabet_size; ++s) {
    cumul[s] = running;
    running += hist.counts[s];
  }

  state_table_.assign(table_size, 0);
  for (uint32_t i = 0; i < table_size; ++i) {
    const uint8_t s = spread[i];
    state_table_[cumul[s]++] = static_cast<uint16_t>(table_size + i);
  }

  uint32_t total = 0;
  for (uint32_t s = 0; s < hist.alphabet_size; ++s) {
    const uint32_t freq = hist.counts[s];
    if (freq == 0) {
      // Never encodable; poison so a bug trips the 64-bit add guard.
      delta_nb_bits_[s] = ((table_log_ + 1) << 16);
      delta_find_state_[s] = 0;
      continue;
    }
    const uint32_t max_bits =
        table_log_ - (static_cast<uint32_t>(std::bit_width(freq)) - 1);
    delta_nb_bits_[s] = (max_bits << 16) - (freq << max_bits);
    delta_find_state_[s] = static_cast<int32_t>(total) -
                           static_cast<int32_t>(freq);
    total += freq;
  }
  return Status::OK();
}

Status DecodeTable::Init(const NormalizedHistogram& hist) {
  if (hist.table_log < kMinTableLog || hist.table_log > kMaxTableLog ||
      hist.alphabet_size == 0 || hist.alphabet_size > kMaxAlphabet) {
    return Status::Corruption("tans: bad histogram");
  }
  table_log_ = hist.table_log;
  const uint32_t table_size = 1u << table_log_;

  std::vector<uint8_t> spread(table_size);
  SpreadSymbols(hist, spread.data());

  std::array<uint32_t, kMaxAlphabet> symbol_next{};
  for (uint32_t s = 0; s < hist.alphabet_size; ++s) {
    symbol_next[s] = hist.counts[s];
  }

  entries_.assign(table_size, Entry{});
  for (uint32_t i = 0; i < table_size; ++i) {
    const uint8_t s = spread[i];
    const uint32_t x = symbol_next[s]++;
    const uint32_t nb_bits =
        table_log_ - (static_cast<uint32_t>(std::bit_width(x)) - 1);
    Entry& e = entries_[i];
    e.symbol = s;
    e.nb_bits = static_cast<uint8_t>(nb_bits);
    // (x << nb_bits) lands in [table_size, 2*table_size); rebased to
    // [0, table_size) so state + read bits always stays in-table.
    e.new_state = static_cast<uint16_t>((x << nb_bits) - table_size);
  }
  return Status::OK();
}

Status BitReader::Init(ByteSpan stream) {
  if (stream.empty()) {
    return Status::Corruption("tans: empty bitstream");
  }
  start_ = stream.data();
  const size_t len = stream.size();
  const uint8_t last = stream[len - 1];
  if (last == 0) {
    return Status::Corruption("tans: missing stream sentinel");
  }
  overflowed_ = false;
  if (len >= 8) {
    ptr_ = start_ + len - 8;
    std::memcpy(&container_, ptr_, 8);
    if constexpr (std::endian::native == std::endian::big) {
      container_ = __builtin_bswap64(container_);
    }
    bits_limit_ = 64;
  } else {
    // Short stream: left-align the bytes at the top of the container so
    // the read expression is uniform; only the top 8*len bits are valid.
    ptr_ = start_;
    container_ = 0;
    for (size_t i = 0; i < len; ++i) {
      container_ |= static_cast<uint64_t>(start_[i]) << (8 * i);
    }
    container_ <<= 8 * (8 - len);
    bits_limit_ = static_cast<uint32_t>(8 * len);
  }
  // Skip the last byte's padding zeros plus the sentinel bit itself.
  bits_consumed_ =
      (8 - static_cast<uint32_t>(std::bit_width(last))) + 1;
  return Status::OK();
}

void BitReader::Reload() {
  if (ptr_ == start_) {
    if (bits_consumed_ > bits_limit_) overflowed_ = true;
    return;
  }
  const size_t whole_bytes = bits_consumed_ >> 3;
  const size_t step = std::min(
      whole_bytes, static_cast<size_t>(ptr_ - start_));
  ptr_ -= step;
  bits_consumed_ -= static_cast<uint32_t>(8 * step);
  std::memcpy(&container_, ptr_, 8);
  if constexpr (std::endian::native == std::endian::big) {
    container_ = __builtin_bswap64(container_);
  }
}

namespace {

// ANS encodes in reverse: walk the symbols backward so the decoder,
// reading the bitstream back-to-front, emits them forward. Item i uses
// state i % N on both sides; templating on N keeps the modulo and the
// group loop fully unrolled. With N <= 4 and table_log <= 12, one group
// pushes at most 48 bits, so one flush per group keeps the 64-bit
// accumulator safe.
template <uint32_t N>
void EncodeLoop(const uint8_t* symbols, size_t count,
                const EncodeTable& table, BitWriter* writer) {
  std::array<uint32_t, N> state;
  state.fill(table.table_size());

  // Peel the tail so the main loop sees whole groups of N.
  size_t i = count;
  while (i % N != 0) {
    --i;
    state[i % N] = table.EncodeSymbol(state[i % N], symbols[i], writer);
    writer->FlushIfNeeded();
  }
  while (i > 0) {
    for (uint32_t k = N; k-- > 0;) {
      --i;
      state[k] = table.EncodeSymbol(state[k], symbols[i], writer);
    }
    writer->FlushIfNeeded();
  }
  // Flush states high-to-low: the decoder reads most-recently-written
  // bits first, so it recovers state 0, 1, ... in order.
  for (uint32_t k = N; k-- > 0;) {
    writer->AddBits(state[k] - table.table_size(), table.table_log());
    writer->FlushIfNeeded();
  }
  writer->Finish();
}

template <uint32_t N>
Status DecodeLoop(ByteSpan stream, const DecodeTable& table, size_t count,
                  uint8_t* out) {
  BitReader reader;
  Status st = reader.Init(stream);
  if (!st.ok()) return st;

  std::array<uint32_t, N> state{};
  for (uint32_t k = 0; k < N; ++k) {
    state[k] = static_cast<uint32_t>(reader.ReadBits(table.table_log()));
    reader.Reload();
  }

  size_t i = 0;
  const size_t main_end = count - count % N;
  while (i < main_end) {
    for (uint32_t k = 0; k < N; ++k) {
      const DecodeTable::Entry& e = table.entry(state[k]);
      out[i + k] = e.symbol;
      state[k] =
          e.new_state + static_cast<uint32_t>(reader.ReadBits(e.nb_bits));
    }
    i += N;
    reader.Reload();
  }
  for (; i < count; ++i) {
    const DecodeTable::Entry& e = table.entry(state[i % N]);
    out[i] = e.symbol;
    state[i % N] =
        e.new_state + static_cast<uint32_t>(reader.ReadBits(e.nb_bits));
    reader.Reload();
  }
  if (reader.overflowed()) {
    return Status::Corruption("tans: truncated bitstream");
  }
  // An intact stream drains exactly and walks every state back to the
  // encoder's initial value (table_size, rebased to 0). Leftover bits,
  // extra leading bytes, or a stray final state all mean corruption even
  // when no read overflowed.
  if (!reader.fully_consumed()) {
    return Status::Corruption("tans: bitstream not fully consumed");
  }
  for (uint32_t k = 0; k < N; ++k) {
    if (state[k] != 0) {
      return Status::Corruption("tans: bad final decoder state");
    }
  }
  return Status::OK();
}

}  // namespace

Status EncodeInterleaved(const uint8_t* symbols, size_t count,
                         const EncodeTable& table, uint32_t num_states,
                         Bytes* out) {
  if (num_states < 1 || num_states > 4) {
    return Status::InvalidArgument("tans: bad interleave factor");
  }
  if (count == 0) return Status::OK();

  BitWriter writer(out);
  switch (num_states) {
    case 1: EncodeLoop<1>(symbols, count, table, &writer); break;
    case 2: EncodeLoop<2>(symbols, count, table, &writer); break;
    case 3: EncodeLoop<3>(symbols, count, table, &writer); break;
    default: EncodeLoop<4>(symbols, count, table, &writer); break;
  }
  return Status::OK();
}

Status DecodeInterleaved(ByteSpan stream, const DecodeTable& table,
                         uint32_t num_states, size_t count, uint8_t* out) {
  if (num_states < 1 || num_states > 4) {
    return Status::InvalidArgument("tans: bad interleave factor");
  }
  if (count == 0) {
    return stream.empty()
               ? Status::OK()
               : Status::Corruption("tans: trailing stream bytes");
  }
  switch (num_states) {
    case 1: return DecodeLoop<1>(stream, table, count, out);
    case 2: return DecodeLoop<2>(stream, table, count, out);
    case 3: return DecodeLoop<3>(stream, table, count, out);
    default: return DecodeLoop<4>(stream, table, count, out);
  }
}

}  // namespace isobar::tans
