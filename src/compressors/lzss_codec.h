#ifndef ISOBAR_COMPRESSORS_LZSS_CODEC_H_
#define ISOBAR_COMPRESSORS_LZSS_CODEC_H_

#include "compressors/codec.h"

namespace isobar {

/// Homegrown LZSS codec: 4 KiB sliding window, matches of 3..18 bytes.
///
/// Stream format: groups of up to 8 tokens, each group preceded by a flag
/// byte whose bit i (LSB first) describes token i:
///   - bit = 1 : literal; one raw byte follows.
///   - bit = 0 : match; two bytes follow encoding a 12-bit backward
///               distance d (1..4096) and a 4-bit length field l with
///               match length l + 3.
///
/// The encoder uses a 3-byte hash chain with a bounded search depth, which
/// keeps it within roughly an order of magnitude of zlib's speed while
/// remaining ~200 lines of dependency-free code. It exists to demonstrate
/// the preconditioner's solver-independence (§I of the paper: "a user can
/// specify a preference in compressor with little to no change") and to
/// serve the ablation benchmarks.
class LzssCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kLzss; }
  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_LZSS_CODEC_H_
