#ifndef ISOBAR_COMPRESSORS_RLE_CODEC_H_
#define ISOBAR_COMPRESSORS_RLE_CODEC_H_

#include "compressors/codec.h"

namespace isobar {

/// Homegrown byte run-length codec.
///
/// Stream format is a sequence of packets, each introduced by a control
/// byte `c`:
///   - c in [0, 127]   : literal run; the next c+1 bytes are copied verbatim.
///   - c in [128, 255] : repeat run; the next byte is repeated (c - 128) + 3
///                       times (run lengths 3..130).
///
/// Used as a zero-dependency solver in tests and as the "trivial solver"
/// arm of the ablation benchmarks; it compresses only data with literal
/// byte repetition, which is exactly what most hard-to-compress scientific
/// arrays lack.
class RleCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kRle; }
  Status Compress(ByteSpan input, Bytes* out) const override;
  Status Decompress(ByteSpan input, size_t original_size,
                    Bytes* out) const override;
};

}  // namespace isobar

#endif  // ISOBAR_COMPRESSORS_RLE_CODEC_H_
