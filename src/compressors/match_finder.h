#ifndef ISOBAR_COMPRESSORS_MATCH_FINDER_H_
#define ISOBAR_COMPRESSORS_MATCH_FINDER_H_

#include <bit>
#include <cstdint>
#include <cstring>

namespace isobar::lz {

/// Shared LZ match machinery used by the LZSS and lzans parsers: the
/// multiplicative window hashes and the word-at-a-time common-prefix
/// compare from the PR 5 LZSS rewrite. Header-only so both codecs inline
/// the hot paths.

/// Multiplicative hash of the 3 bytes at `p`, folded to `bits` bits.
inline uint32_t Hash3(const uint8_t* p, uint32_t bits) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     static_cast<uint32_t>(p[1]) << 8 |
                     static_cast<uint32_t>(p[2]) << 16;
  return (v * 2654435761u) >> (32 - bits);
}

/// Multiplicative hash of the 4 bytes at `p`, folded to `bits` bits. The
/// wider window halves chain pollution on low-entropy byte-planes, where
/// 3-byte windows collide constantly.
inline uint32_t Hash4(const uint8_t* p, uint32_t bits) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return (v * 2654435761u) >> (32 - bits);
}

/// Length of the common prefix of `a` and `b`, at most `limit`, compared
/// 8 bytes at a time: one XOR + countr_zero locates the first differing
/// byte without a per-byte branch.
inline size_t MatchLength(const uint8_t* a, const uint8_t* b, size_t limit) {
  size_t len = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (len + 8 <= limit) {
      uint64_t va;
      uint64_t vb;
      std::memcpy(&va, a + len, 8);
      std::memcpy(&vb, b + len, 8);
      const uint64_t diff = va ^ vb;
      if (diff != 0) {
        return len + (static_cast<size_t>(std::countr_zero(diff)) >> 3);
      }
      len += 8;
    }
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

}  // namespace isobar::lz

#endif  // ISOBAR_COMPRESSORS_MATCH_FINDER_H_
