#ifndef ISOBAR_UTIL_STATUS_H_
#define ISOBAR_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace isobar {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed or out-of-range value.
  kCorruption = 2,        ///< Stored bytes fail structural or checksum validation.
  kNotFound = 3,          ///< Named entity (codec, dataset, file) does not exist.
  kInternal = 4,          ///< Invariant violation inside the library.
  kIOError = 5,           ///< Underlying file or solver library call failed.
  kNotSupported = 6,      ///< Requested combination is recognized but unimplemented.
};

/// Returns the canonical lowercase name of a status code (e.g. "corruption").
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a code plus a human-readable
/// message. No exceptions are thrown by library code; every public API that
/// can fail returns a Status or a Result<T>.
///
/// The class is cheap to copy in the OK case (empty message) and is annotated
/// [[nodiscard]] so ignored failures are compile-time visible.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse: `return value;` / `return Status::Corruption(...);`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors; must not be called unless ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace isobar

/// Propagates a non-OK Status from the evaluated expression.
#define ISOBAR_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::isobar::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result<T> expression and either assigns its value to `lhs`
/// or returns its error Status from the enclosing function.
#define ISOBAR_ASSIGN_OR_RETURN(lhs, expr)        \
  auto ISOBAR_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!ISOBAR_CONCAT_(_res_, __LINE__).ok())      \
    return ISOBAR_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(ISOBAR_CONCAT_(_res_, __LINE__)).value()

#define ISOBAR_CONCAT_IMPL_(a, b) a##b
#define ISOBAR_CONCAT_(a, b) ISOBAR_CONCAT_IMPL_(a, b)

#endif  // ISOBAR_UTIL_STATUS_H_
