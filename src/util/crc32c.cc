#include "util/crc32c.h"

#include <array>

namespace isobar::crc32c {
namespace {

// Slicing-by-8 CRC-32C: eight lookup tables let the loop consume 8 bytes
// per iteration instead of 1. Table 0 equals the classic byte-at-a-time
// table. All tables are generated at compile time from the reflected
// Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (int t = 1; t < 8; ++t) {
      crc = tables[0][crc & 0xFFu] ^ (crc >> 8);
      tables[t][i] = crc;
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

uint32_t ExtendPortableRaw(uint32_t crc, const uint8_t* data, size_t n) {
  // Head: align to 8 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(data) & 7u) != 0) {
    crc = kTables[0][(crc ^ *data++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  // Body: 8 bytes per step via slicing.
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    word ^= crc;  // little-endian host assumed for the ISOBAR container
    crc = kTables[7][word & 0xFFu] ^ kTables[6][(word >> 8) & 0xFFu] ^
          kTables[5][(word >> 16) & 0xFFu] ^ kTables[4][(word >> 24) & 0xFFu] ^
          kTables[3][(word >> 32) & 0xFFu] ^ kTables[2][(word >> 40) & 0xFFu] ^
          kTables[1][(word >> 48) & 0xFFu] ^ kTables[0][(word >> 56) & 0xFFu];
    data += 8;
    n -= 8;
  }
  // Tail.
  while (n-- > 0) {
    crc = kTables[0][(crc ^ *data++) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

// --- Zero-extension operator, for stitching independent CRC streams back
// together. Appending m zero bytes to a message maps the CRC register
// linearly over GF(2); the map is a 32×32 bit-matrix, stored as the images
// of the 32 basis vectors. All matrices are built at compile time.
using Matrix = std::array<uint32_t, 32>;

constexpr uint32_t MatrixApply(const Matrix& m, uint32_t vec) {
  uint32_t out = 0;
  for (int j = 0; vec != 0; ++j, vec >>= 1) {
    if (vec & 1u) out ^= m[j];
  }
  return out;
}

constexpr Matrix MatrixSquare(const Matrix& m) {
  Matrix out{};
  for (int j = 0; j < 32; ++j) out[j] = MatrixApply(m, m[j]);
  return out;
}

constexpr size_t kSegmentBytes = 4096;

constexpr Matrix MakeShiftSegment() {
  // One zero byte advances the register by crc' = T0[crc & 0xFF] ^ (crc>>8);
  // squaring doubles the zero-run, so 12 squarings reach 2^12 = 4096 bytes.
  Matrix m{};
  for (int j = 0; j < 32; ++j) {
    const uint32_t basis = 1u << j;
    m[j] = kTables[0][basis & 0xFFu] ^ (basis >> 8);
  }
  for (int s = 0; s < 12; ++s) m = MatrixSquare(m);
  return m;
}

constexpr Matrix kShiftSegment = MakeShiftSegment();

#if defined(__x86_64__)
// Hardware CRC32C via SSE4.2, selected at runtime. The crc32 instruction
// has a 3-cycle latency but single-cycle throughput, so one dependency
// chain leaves two thirds of the unit idle. Large inputs are split into
// three adjacent 4 KiB segments checksummed by three independent chains,
// recombined with the zero-extension operator:
//   crc(A·B) = Shift|B|(crc(A)) ^ crc0(B)
// where crc0 runs from a zero register.
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* data,
                                                          size_t n) {
  while (n > 0 && (reinterpret_cast<uintptr_t>(data) & 7u) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *data++);
    --n;
  }
  while (n >= 3 * kSegmentBytes) {
    uint64_t a = crc;
    uint64_t b = 0;
    uint64_t c = 0;
    const uint8_t* pb = data + kSegmentBytes;
    const uint8_t* pc = data + 2 * kSegmentBytes;
    for (size_t i = 0; i < kSegmentBytes; i += 8) {
      uint64_t wa;
      uint64_t wb;
      uint64_t wc;
      __builtin_memcpy(&wa, data + i, 8);
      __builtin_memcpy(&wb, pb + i, 8);
      __builtin_memcpy(&wc, pc + i, 8);
      a = __builtin_ia32_crc32di(a, wa);
      b = __builtin_ia32_crc32di(b, wb);
      c = __builtin_ia32_crc32di(c, wc);
    }
    crc = MatrixApply(kShiftSegment,
                      MatrixApply(kShiftSegment, static_cast<uint32_t>(a)) ^
                          static_cast<uint32_t>(b)) ^
          static_cast<uint32_t>(c);
    data += 3 * kSegmentBytes;
    n -= 3 * kSegmentBytes;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    data += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *data++);
  }
  return crc;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2"); }
#endif  // __x86_64__

}  // namespace

uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n) {
  crc = ~crc;
#if defined(__x86_64__)
  static const bool use_hardware = HaveSse42();
  if (use_hardware) {
    return ~ExtendHardware(crc, data, n);
  }
#endif
  return ~ExtendPortableRaw(crc, data, n);
}

namespace internal {

uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t n) {
  return ~ExtendPortableRaw(~crc, data, n);
}

bool UsingHardware() {
#if defined(__x86_64__)
  return HaveSse42();
#else
  return false;
#endif
}

}  // namespace internal
}  // namespace isobar::crc32c
