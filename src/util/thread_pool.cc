#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace isobar {
namespace {

/// Hard ceiling on worker counts so a typo'd --threads=100000 cannot
/// exhaust process resources.
constexpr size_t kMaxThreads = 256;

// Identifies the pool (and worker slot) owning the current thread, so
// Submit from inside a task can use the worker-local LIFO fast path.
thread_local ThreadPool* t_pool = nullptr;
thread_local size_t t_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, std::min(num_threads, kMaxThreads));
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { RunWorker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Push(std::function<void()> task) {
  if (t_pool == this) {
    // Spawned from inside a worker: front of the own deque (LIFO).
    WorkerQueue& queue = *queues_[t_worker_index];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_front(std::move(task));
  } else {
    size_t target;
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    WorkerQueue& queue = *queues_[target];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryPop(size_t index, std::function<void()>* task) {
  {
    WorkerQueue& own = *queues_[index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of a sibling's deque, scanning from the next
  // worker around the ring.
  for (size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& victim = *queues_[(index + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::RunWorker(size_t index) {
  t_pool = this;
  t_worker_index = index;
  for (;;) {
    std::function<void()> task;
    if (TryPop(index, &task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --queued_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (queued_ > 0) continue;  // lost a pop race; retry immediately
    if (stop_) return;
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (queued_ == 0 && stop_) return;
  }
}

size_t ResolveNumThreads(uint32_t requested) {
  if (requested > 0) {
    return std::min<size_t>(requested, kMaxThreads);
  }
  if (const char* env = std::getenv("ISOBAR_TEST_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return std::min<size_t>(value, kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<size_t>(hw, kMaxThreads);
}

}  // namespace isobar
