#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/timeline.h"

namespace isobar {
namespace {

/// Hard ceiling on worker counts so a typo'd --threads=100000 cannot
/// exhaust process resources.
constexpr size_t kMaxThreads = 256;

// Identifies the pool (and worker slot) owning the current thread, so
// Submit from inside a task can use the worker-local LIFO fast path.
thread_local ThreadPool* t_pool = nullptr;
thread_local size_t t_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, std::min(num_threads, kMaxThreads));
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { RunWorker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Push(std::function<void()> task) {
  Item item;
  item.fn = std::move(task);
  // Clock read only when someone is listening; a zero timestamp tells the
  // pop side to skip the latency sample.
  if (telemetry::Enabled()) item.submit_nanos = telemetry::MonotonicNanos();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (t_pool == this) {
    // Spawned from inside a worker: front of the own deque (LIFO).
    WorkerQueue& queue = *queues_[t_worker_index];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_front(std::move(item));
    const uint64_t depth = queue.tasks.size();
    if (depth > queue.deque_high_water.load(std::memory_order_relaxed)) {
      queue.deque_high_water.store(depth, std::memory_order_relaxed);
    }
  } else {
    size_t target;
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    WorkerQueue& queue = *queues_[target];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(item));
    const uint64_t depth = queue.tasks.size();
    if (depth > queue.deque_high_water.load(std::memory_order_relaxed)) {
      queue.deque_high_water.store(depth, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryPop(size_t index, Item* item) {
  WorkerQueue& own = *queues_[index];
  {
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *item = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of a sibling's deque, scanning from the next
  // worker around the ring.
  for (size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& victim = *queues_[(index + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *item = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      own.steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (queues_.size() > 1) {
    own.failed_steal_scans.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void ThreadPool::RunWorker(size_t index) {
  t_pool = this;
  t_worker_index = index;
  if constexpr (telemetry::kCompiledIn) {
    char name[32];
    std::snprintf(name, sizeof(name), "worker-%zu", index);
    telemetry::Timeline::SetCurrentThreadName(name);
  }
  WorkerQueue& own = *queues_[index];
  for (;;) {
    Item item;
    if (TryPop(index, &item)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --queued_;
      }
      if (item.submit_nanos != 0 && telemetry::Enabled()) {
        static telemetry::Histogram& latency =
            telemetry::GetHistogram("pool.submit_to_start.nanos");
        const int64_t waited = telemetry::MonotonicNanos() - item.submit_nanos;
        latency.Observe(static_cast<uint64_t>(waited < 0 ? 0 : waited));
      }
      // Tally before running: fn() fulfills the task's future, and a
      // caller returning from get() may snapshot stats immediately — the
      // count must already be there.
      own.tasks_executed.fetch_add(1, std::memory_order_relaxed);
      {
        // Inert single branch when telemetry is off; with the timeline on
        // it puts one pool.task slice per task on this worker's track, so
        // the gaps between slices *are* the worker's idle/starvation.
        telemetry::ScopedSpan task_span("pool.task");
        item.fn();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (queued_ > 0) continue;  // lost a pop race; retry immediately
    if (stop_) return;
    const auto idle_start = std::chrono::steady_clock::now();
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    own.idle_nanos.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle_start)
                .count()),
        std::memory_order_relaxed);
    if (queued_ == 0 && stop_) return;
  }
}

uint64_t ThreadPool::StatsSnapshot::TotalExecuted() const {
  uint64_t total = 0;
  for (const Worker& w : workers) total += w.tasks_executed;
  return total;
}

uint64_t ThreadPool::StatsSnapshot::TotalSteals() const {
  uint64_t total = 0;
  for (const Worker& w : workers) total += w.steals;
  return total;
}

uint64_t ThreadPool::StatsSnapshot::TotalIdleNanos() const {
  uint64_t total = 0;
  for (const Worker& w : workers) total += w.idle_nanos;
  return total;
}

uint64_t ThreadPool::StatsSnapshot::MaxDequeHighWater() const {
  uint64_t max = 0;
  for (const Worker& w : workers) max = std::max(max, w.deque_high_water);
  return max;
}

ThreadPool::StatsSnapshot ThreadPool::Stats() const {
  StatsSnapshot snapshot;
  snapshot.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  snapshot.workers.reserve(queues_.size());
  for (const auto& queue : queues_) {
    StatsSnapshot::Worker worker;
    worker.tasks_executed =
        queue->tasks_executed.load(std::memory_order_relaxed);
    worker.steals = queue->steals.load(std::memory_order_relaxed);
    worker.failed_steal_scans =
        queue->failed_steal_scans.load(std::memory_order_relaxed);
    worker.idle_nanos = queue->idle_nanos.load(std::memory_order_relaxed);
    worker.deque_high_water =
        queue->deque_high_water.load(std::memory_order_relaxed);
    snapshot.workers.push_back(worker);
  }
  return snapshot;
}

void ThreadPool::PublishStats(std::string_view prefix) const {
  if (!telemetry::Enabled()) return;
  const StatsSnapshot stats = Stats();
  const std::string base(prefix);
  telemetry::GetCounter(base + ".tasks_submitted").Add(stats.tasks_submitted);
  telemetry::GetCounter(base + ".tasks_executed").Add(stats.TotalExecuted());
  telemetry::GetCounter(base + ".steals").Add(stats.TotalSteals());
  uint64_t failed = 0;
  for (const auto& w : stats.workers) failed += w.failed_steal_scans;
  telemetry::GetCounter(base + ".failed_steal_scans").Add(failed);
  telemetry::GetCounter(base + ".idle_nanos").Add(stats.TotalIdleNanos());
  telemetry::Histogram& idle = telemetry::GetHistogram(base + ".worker.idle_nanos");
  telemetry::Histogram& high_water =
      telemetry::GetHistogram(base + ".deque_high_water");
  for (const auto& w : stats.workers) {
    idle.Observe(w.idle_nanos);
    high_water.Observe(w.deque_high_water);
  }
}

size_t ResolveNumThreads(uint32_t requested) {
  if (requested > 0) {
    return std::min<size_t>(requested, kMaxThreads);
  }
  if (const char* env = std::getenv("ISOBAR_TEST_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return std::min<size_t>(value, kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<size_t>(hw, kMaxThreads);
}

}  // namespace isobar
