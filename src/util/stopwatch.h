#ifndef ISOBAR_UTIL_STOPWATCH_H_
#define ISOBAR_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace isobar {

/// Monotonic wall-clock stopwatch used by the benchmark harness to report
/// throughput in the paper's units (MB/s, with MB = 1e6 bytes) and by the
/// telemetry span layer for nanosecond-granular stage timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Integer nanoseconds elapsed since construction or the last Reset();
  /// never negative. This is the unit the telemetry span layer records.
  int64_t ElapsedNanos() const {
    const int64_t nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count();
    return nanos < 0 ? 0 : nanos;
  }

  /// Throughput in MB/s (1 MB = 1e6 bytes) for `bytes` processed since the
  /// last Reset(). Returns 0 for zero bytes. For intervals too short for
  /// the clock to resolve, the elapsed time is clamped to one clock tick
  /// (1 ns) so a nonzero amount of work never reports 0 MB/s.
  double ThroughputMBps(size_t bytes) const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace isobar

#endif  // ISOBAR_UTIL_STOPWATCH_H_
