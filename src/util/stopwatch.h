#ifndef ISOBAR_UTIL_STOPWATCH_H_
#define ISOBAR_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstddef>

namespace isobar {

/// Monotonic wall-clock stopwatch used by the benchmark harness to report
/// throughput in the paper's units (MB/s, with MB = 1e6 bytes).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Throughput in MB/s (1 MB = 1e6 bytes) for `bytes` processed since the
  /// last Reset(). Returns 0 when elapsed time is not measurable.
  double ThroughputMBps(size_t bytes) const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace isobar

#endif  // ISOBAR_UTIL_STOPWATCH_H_
