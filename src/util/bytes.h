#ifndef ISOBAR_UTIL_BYTES_H_
#define ISOBAR_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace isobar {

/// Owned byte buffer used throughout the library for raw and compressed data.
using Bytes = std::vector<uint8_t>;

/// Non-owning views; the library never takes ownership of caller memory.
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

/// Reinterprets a typed array as its raw little-endian byte representation.
template <typename T>
ByteSpan AsBytes(std::span<const T> values) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(values.data()),
                  values.size() * sizeof(T));
}

template <typename T>
ByteSpan AsBytes(const std::vector<T>& values) {
  return AsBytes(std::span<const T>(values));
}

/// Unaligned little-endian loads/stores. All on-disk integers in the ISOBAR
/// container format are little-endian regardless of host order.
inline uint16_t LoadLE16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

inline uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline uint64_t LoadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         static_cast<uint64_t>(LoadLE32(p + 4)) << 32;
}

inline void StoreLE16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

inline void StoreLE32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void StoreLE64(uint8_t* p, uint64_t v) {
  StoreLE32(p, static_cast<uint32_t>(v));
  StoreLE32(p + 4, static_cast<uint32_t>(v >> 32));
}

/// Appends a little-endian integer to a growable buffer.
inline void AppendLE16(Bytes& out, uint16_t v) {
  size_t n = out.size();
  out.resize(n + 2);
  StoreLE16(out.data() + n, v);
}

inline void AppendLE32(Bytes& out, uint32_t v) {
  size_t n = out.size();
  out.resize(n + 4);
  StoreLE32(out.data() + n, v);
}

inline void AppendLE64(Bytes& out, uint64_t v) {
  size_t n = out.size();
  out.resize(n + 8);
  StoreLE64(out.data() + n, v);
}

}  // namespace isobar

#endif  // ISOBAR_UTIL_BYTES_H_
