#ifndef ISOBAR_UTIL_RANDOM_H_
#define ISOBAR_UTIL_RANDOM_H_

#include <cstdint>

namespace isobar {

/// Deterministic, seedable xoshiro256** generator.
///
/// Used by the synthetic dataset generators and the EUPA sampling stage so
/// that every experiment in the benchmark harness is bit-reproducible across
/// runs. Not cryptographically secure; not intended to be.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Approximately standard-normal variate (sum of 4 uniforms, variance
  /// corrected). Cheap and smooth enough for synthetic field generation.
  double NextGaussian() {
    double s = 0.0;
    for (int i = 0; i < 4; ++i) s += NextDouble();
    return (s - 2.0) * 1.7320508075688772;  // sqrt(12/4)
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace isobar

#endif  // ISOBAR_UTIL_RANDOM_H_
