#ifndef ISOBAR_UTIL_THREAD_POOL_H_
#define ISOBAR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace isobar {

/// Fixed-size thread pool with per-worker deques and work stealing, sized
/// for the chunk pipeline: a handful of CPU-bound tasks in flight per
/// worker, submitted either from outside the pool (the pipeline's writer
/// loop) or from inside a running task.
///
/// Scheduling discipline:
///  * External submissions are distributed round-robin across the worker
///    deques (appended at the back), so a burst of chunk tasks spreads
///    over the pool without a contended central queue.
///  * A task submitted from inside a worker goes to the *front* of that
///    worker's own deque (LIFO — the spawning task's data is still
///    cache-hot).
///  * A worker pops from the front of its own deque; when that is empty it
///    steals from the *back* of a sibling's deque (the task least likely
///    to be in the sibling's cache).
///
/// With a single worker this degrades to strict FIFO execution of external
/// submissions. Tasks run to completion; the pool never aborts a running
/// task. Destruction drains every queued task first, then joins.
///
/// Exceptions thrown by a task are captured into the future returned by
/// Submit (the worker thread never terminates the process).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains all queued tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Point-in-time scheduling counters. The plain tallies (submitted,
  /// executed, steals, high-water, idle time) are kept unconditionally —
  /// they are relaxed atomic bumps on paths that already hold a lock, so
  /// they cost nothing measurable and stay meaningful even in
  /// ISOBAR_TELEMETRY=OFF builds; only the submit-to-start latency
  /// histogram (which needs clock reads on the hot path) is
  /// telemetry-gated.
  ///
  /// Accounting invariant: after all submitted futures resolved,
  /// tasks_submitted == sum of workers[i].tasks_executed, and a task
  /// counts for the worker that *ran* it — steals tally where the thief
  /// ran, not where the task was queued.
  struct StatsSnapshot {
    struct Worker {
      uint64_t tasks_executed = 0;
      /// Tasks this worker obtained from a sibling's deque.
      uint64_t steals = 0;
      /// Full steal scans (own deque empty, every sibling checked) that
      /// found nothing. Zero on a single-worker pool.
      uint64_t failed_steal_scans = 0;
      /// Time spent asleep waiting for work.
      uint64_t idle_nanos = 0;
      /// Deepest this worker's deque has ever been.
      uint64_t deque_high_water = 0;
    };

    uint64_t tasks_submitted = 0;
    std::vector<Worker> workers;

    uint64_t TotalExecuted() const;
    uint64_t TotalSteals() const;
    uint64_t TotalIdleNanos() const;
    uint64_t MaxDequeHighWater() const;
  };

  /// Safe to call at any time, including while tasks run.
  StatsSnapshot Stats() const;

  /// Folds the current stats into the global metrics registry (counters
  /// `<prefix>.tasks_submitted` / `.tasks_executed` / `.steals` /
  /// `.failed_steal_scans` / `.idle_nanos`, histograms
  /// `<prefix>.worker.idle_nanos` / `<prefix>.deque_high_water` observed
  /// once per worker). Pipelines call this right before pool teardown so
  /// the numbers outlive the pool; no-op when telemetry is disabled.
  void PublishStats(std::string_view prefix = "pool") const;

  /// Schedules `fn` and returns a future for its result. `fn` must be
  /// invocable with no arguments; its return value (or exception) is
  /// delivered through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // std::function requires copyable callables; packaged_task is move-only,
    // so it rides behind a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Push([task] { (*task)(); });
    return future;
  }

 private:
  /// A queued task plus its submit timestamp (0 when telemetry was off at
  /// submit time — then no latency sample is recorded on pop).
  struct Item {
    std::function<void()> fn;
    int64_t submit_nanos = 0;
  };

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Item> tasks;

    // Scheduling tallies for the worker with this queue's index (see
    // StatsSnapshot for attribution semantics). Relaxed atomics: exact
    // totals, no cross-counter ordering.
    std::atomic<uint64_t> tasks_executed{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> failed_steal_scans{0};
    std::atomic<uint64_t> idle_nanos{0};
    std::atomic<uint64_t> deque_high_water{0};  // written under `mutex`
  };

  void Push(std::function<void()> task);
  void RunWorker(size_t index);
  bool TryPop(size_t index, Item* item);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> tasks_submitted_{0};

  // Sleep/wake protocol: queued_ counts tasks sitting in some deque (not
  // yet popped). It is only mutated under wake_mutex_, so a worker that
  // observes queued_ == 0 while holding the lock can safely sleep.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  size_t queued_ = 0;
  bool stop_ = false;
  size_t next_queue_ = 0;  ///< round-robin cursor, guarded by wake_mutex_
};

/// Resolves a user-facing thread-count option to an actual worker count:
///   requested > 0   — that many threads (clamped to a sane maximum);
///   requested == 0  — the ISOBAR_TEST_THREADS environment variable if set
///                     to a positive integer (the CI hook that forces the
///                     test suite multi-threaded under TSan), otherwise
///                     std::thread::hardware_concurrency() (at least 1).
size_t ResolveNumThreads(uint32_t requested);

}  // namespace isobar

#endif  // ISOBAR_UTIL_THREAD_POOL_H_
