#ifndef ISOBAR_UTIL_THREAD_POOL_H_
#define ISOBAR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace isobar {

/// Fixed-size thread pool with per-worker deques and work stealing, sized
/// for the chunk pipeline: a handful of CPU-bound tasks in flight per
/// worker, submitted either from outside the pool (the pipeline's writer
/// loop) or from inside a running task.
///
/// Scheduling discipline:
///  * External submissions are distributed round-robin across the worker
///    deques (appended at the back), so a burst of chunk tasks spreads
///    over the pool without a contended central queue.
///  * A task submitted from inside a worker goes to the *front* of that
///    worker's own deque (LIFO — the spawning task's data is still
///    cache-hot).
///  * A worker pops from the front of its own deque; when that is empty it
///    steals from the *back* of a sibling's deque (the task least likely
///    to be in the sibling's cache).
///
/// With a single worker this degrades to strict FIFO execution of external
/// submissions. Tasks run to completion; the pool never aborts a running
/// task. Destruction drains every queued task first, then joins.
///
/// Exceptions thrown by a task are captured into the future returned by
/// Submit (the worker thread never terminates the process).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains all queued tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Schedules `fn` and returns a future for its result. `fn` must be
  /// invocable with no arguments; its return value (or exception) is
  /// delivered through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // std::function requires copyable callables; packaged_task is move-only,
    // so it rides behind a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Push([task] { (*task)(); });
    return future;
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void Push(std::function<void()> task);
  void RunWorker(size_t index);
  bool TryPop(size_t index, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // Sleep/wake protocol: queued_ counts tasks sitting in some deque (not
  // yet popped). It is only mutated under wake_mutex_, so a worker that
  // observes queued_ == 0 while holding the lock can safely sleep.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  size_t queued_ = 0;
  bool stop_ = false;
  size_t next_queue_ = 0;  ///< round-robin cursor, guarded by wake_mutex_
};

/// Resolves a user-facing thread-count option to an actual worker count:
///   requested > 0   — that many threads (clamped to a sane maximum);
///   requested == 0  — the ISOBAR_TEST_THREADS environment variable if set
///                     to a positive integer (the CI hook that forces the
///                     test suite multi-threaded under TSan), otherwise
///                     std::thread::hardware_concurrency() (at least 1).
size_t ResolveNumThreads(uint32_t requested);

}  // namespace isobar

#endif  // ISOBAR_UTIL_THREAD_POOL_H_
