#include "util/scratch_arena.h"

#include "telemetry/metrics.h"

namespace isobar {

size_t ScratchArena::TotalCapacityBytes() const {
  size_t total = 0;
  for (const Bytes& buffer : buffers_) total += buffer.capacity();
  return total;
}

void ScratchArena::Trim() {
  for (Bytes& buffer : buffers_) {
    Bytes().swap(buffer);
  }
}

void ScratchArena::PublishStats() const {
  if (!telemetry::Enabled()) return;
  static telemetry::Histogram* const slots[kSlotCount] = {
      &telemetry::GetHistogram("arena.gathered.capacity_bytes"),
      &telemetry::GetHistogram("arena.raw.capacity_bytes"),
      &telemetry::GetHistogram("arena.compressed.capacity_bytes"),
      &telemetry::GetHistogram("arena.decoded.capacity_bytes"),
  };
  for (size_t s = 0; s < kSlotCount; ++s) {
    slots[s]->Observe(buffers_[s].capacity());
  }
}

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace isobar
