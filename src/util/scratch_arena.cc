#include "util/scratch_arena.h"

namespace isobar {

size_t ScratchArena::TotalCapacityBytes() const {
  size_t total = 0;
  for (const Bytes& buffer : buffers_) total += buffer.capacity();
  return total;
}

void ScratchArena::Trim() {
  for (Bytes& buffer : buffers_) {
    Bytes().swap(buffer);
  }
}

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace isobar
