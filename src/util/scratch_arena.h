#ifndef ISOBAR_UTIL_SCRATCH_ARENA_H_
#define ISOBAR_UTIL_SCRATCH_ARENA_H_

#include <array>
#include <cstddef>

#include "util/bytes.h"

namespace isobar {

/// Reusable per-worker scratch buffers for the chunk pipeline.
///
/// Every chunk needs the same short-lived temporaries — the gathered
/// compressible bytes, the raw noise section, the solver output, and the
/// decode staging buffer. Allocating them fresh per chunk costs a malloc +
/// a value-initializing resize (a full zero-fill pass) each time. An arena
/// keeps one buffer per role; after the first chunk every buffer has
/// reached steady-state capacity, so reuse costs only a size update and
/// the zero-fill disappears entirely.
///
/// Arenas are not thread-safe: each pipeline worker uses its own, usually
/// via ThreadLocal(). Memory is bounded by the largest chunk the worker
/// has seen (a few buffers of roughly chunk size) and is released when the
/// worker thread exits or Trim() is called.
class ScratchArena {
 public:
  enum Slot : size_t {
    kGathered = 0,  ///< Compressible columns handed to the solver.
    kRaw,           ///< Incompressible (noise) columns, stored verbatim.
    kCompressed,    ///< Solver output.
    kDecoded,       ///< Decode-side solver output staging.
    kSlotCount,
  };

  /// The reusable buffer for `slot`. Callers size it themselves (codecs
  /// and transposes all clear/resize their outputs); contents left over
  /// from a previous chunk are meaningless but harmless.
  Bytes& buffer(Slot slot) { return buffers_[slot]; }

  /// Sum of all slot capacities — what the arena currently pins.
  size_t TotalCapacityBytes() const;

  /// Releases every slot's memory (capacity drops to zero).
  void Trim();

  /// Observes each slot's current capacity into the global histograms
  /// `arena.<slot>.capacity_bytes` (the histogram max is the process-wide
  /// slot high-water across all workers). The pipeline calls this once
  /// per finished chunk; a no-op branch when telemetry is disabled.
  void PublishStats() const;

  /// The calling thread's arena. Pipeline workers each see their own;
  /// the instance lives until the thread exits.
  static ScratchArena& ThreadLocal();

 private:
  std::array<Bytes, kSlotCount> buffers_;
};

}  // namespace isobar

#endif  // ISOBAR_UTIL_SCRATCH_ARENA_H_
