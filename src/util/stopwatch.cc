#include "util/stopwatch.h"

#include <algorithm>

namespace isobar {

double Stopwatch::ThroughputMBps(size_t bytes) const {
  if (bytes == 0) return 0.0;
  // Clamp to one tick: a measurable amount of work done faster than the
  // clock resolution reports the fastest representable rate instead of the
  // nonsensical 0 MB/s (which a caller would read as "no throughput").
  const int64_t nanos = std::max<int64_t>(ElapsedNanos(), 1);
  // bytes / 1e6 [MB] / (nanos / 1e9 [s]) = bytes * 1e3 / nanos.
  return static_cast<double>(bytes) * 1e3 / static_cast<double>(nanos);
}

}  // namespace isobar
