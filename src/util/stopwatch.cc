#include "util/stopwatch.h"

namespace isobar {

double Stopwatch::ThroughputMBps(size_t bytes) const {
  const double secs = ElapsedSeconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / secs;
}

}  // namespace isobar
