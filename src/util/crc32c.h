#ifndef ISOBAR_UTIL_CRC32C_H_
#define ISOBAR_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace isobar::crc32c {

/// Extends a running CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected)
/// with `n` bytes. Start from `crc = 0` for a fresh checksum.
uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n);

/// Checksum of a whole buffer.
inline uint32_t Value(ByteSpan data) { return Extend(0, data.data(), data.size()); }

namespace internal {

/// The table-driven (slicing-by-8) implementation, with the same
/// pre/post-inversion contract as Extend. Exposed so tests can cross-check
/// the hardware path against it on the same inputs.
uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t n);

/// True when Extend dispatches to the SSE4.2 hardware implementation on
/// this machine.
bool UsingHardware();

}  // namespace internal
}  // namespace isobar::crc32c

#endif  // ISOBAR_UTIL_CRC32C_H_
