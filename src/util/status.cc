#include "util/status.h"

namespace isobar {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kNotSupported:
      return "not supported";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace isobar
