#ifndef ISOBAR_SERVER_JOB_QUEUE_H_
#define ISOBAR_SERVER_JOB_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string_view>
#include <utility>

#include "core/isobar.h"
#include "util/bytes.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace isobar::server {

/// One compression-service job: the async unit both the isobard request
/// handlers and any in-process batch driver share. A job is a complete
/// compress or decompress call — the server's per-request parallelism
/// comes from running many jobs concurrently, so each job executes the
/// serial pipeline (num_threads is forced to 1 at execution).
enum class JobKind : uint8_t {
  kCompress = 0,
  kDecompress = 1,
};

struct JobRequest {
  JobKind kind = JobKind::kCompress;
  Bytes input;
  size_t width = 8;  ///< Element width; compress only.
  CompressOptions compress_options;
  DecompressOptions decompress_options;
};

struct JobResult {
  Status status;
  Bytes output;
  CompressionStats compression;      ///< Filled for kCompress.
  DecompressionStats decompression;  ///< Filled for kDecompress.
  int64_t queue_nanos = 0;  ///< Admission to execution start.
  int64_t exec_nanos = 0;   ///< Execution start to completion.
};

/// Invoked exactly once per admitted job, from the worker thread that ran
/// it. Must not block for long — it sits between this job's completion
/// and the dispatch of the next queued one.
using JobCallback = std::function<void(JobResult)>;

/// Admission verdict. Everything but kAdmitted is load shedding: the
/// caller gets the verdict synchronously (the server turns it into a
/// BUSY response) and the queue keeps no state about the request —
/// backpressure instead of unbounded buffering.
enum class Admission : uint8_t {
  kAdmitted = 0,
  kQueueFull = 1,        ///< Waiting-job bound reached.
  kConnectionLimit = 2,  ///< Submitter already has too many jobs in flight.
  kShuttingDown = 3,     ///< Queue is draining; nothing new admitted.
};

std::string_view AdmissionToString(Admission admission);

struct JobQueueOptions {
  /// Worker threads (ThreadPool); 0 resolves like CompressOptions.
  uint32_t num_threads = 0;

  /// Jobs admitted but not yet executing. Total resident jobs are
  /// bounded by max_queue_depth + worker count.
  size_t max_queue_depth = 64;

  /// Queued-plus-running jobs one connection may have; further submits
  /// from that connection are shed with kConnectionLimit so a single
  /// aggressive client cannot occupy the whole queue.
  size_t max_inflight_per_connection = 8;
};

/// Bounded job queue in front of the work-stealing thread pool.
///
/// Submit() either admits the job (bounded FIFO) or rejects it
/// synchronously. A dispatcher hands queued jobs to the pool, at most one
/// per worker concurrently, so Pause() deterministically freezes
/// execution while admission keeps filling the queue — that is also what
/// the admission-control tests use to drive the queue to saturation
/// without timing races.
class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions options = {});

  /// Drains: stops admitting, waits for queued + running jobs to finish.
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Runs one job synchronously on the calling thread — the single
  /// execution path shared by the queue's workers and by direct batch
  /// callers, so a served request and a library call cannot diverge.
  static JobResult ExecuteJob(const JobRequest& request);

  /// Admits or rejects. On kAdmitted, `done` fires exactly once from a
  /// worker thread; on any rejection `done` is never invoked.
  /// `connection_id` scopes the per-connection in-flight limit (use a
  /// stable id per client connection; any convention works).
  Admission Submit(uint64_t connection_id, JobRequest request,
                   JobCallback done);

  /// Freezes dispatch: running jobs finish, queued jobs stay queued and
  /// admission stays open until the queue bound trips.
  void Pause();
  void Resume();

  /// Stops admission (kShuttingDown) and waits for in-flight + queued
  /// jobs to drain. Idempotent. Implicitly resumes a paused queue —
  /// drain must make progress.
  void Shutdown();

  size_t worker_count() const { return pool_.size(); }
  const JobQueueOptions& options() const { return options_; }

  /// Point-in-time accounting. Kept as plain tallies under the queue
  /// lock (admission is not a per-byte hot path), so the numbers are
  /// exact and available even in ISOBAR_TELEMETRY=OFF builds.
  struct StatsSnapshot {
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;  ///< Completed with a non-OK JobResult::status.
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_connection_limit = 0;
    uint64_t rejected_shutdown = 0;
    uint64_t queue_depth = 0;        ///< Currently queued, not running.
    uint64_t running = 0;            ///< Currently executing.
    uint64_t queue_depth_high_water = 0;

    uint64_t rejected_total() const {
      return rejected_queue_full + rejected_connection_limit +
             rejected_shutdown;
    }
  };
  StatsSnapshot Stats() const;

  /// Blocks until no job is queued or running (admission stays open —
  /// use for test synchronization, not shutdown).
  void WaitIdle();

 private:
  struct PendingJob {
    uint64_t connection_id = 0;
    JobRequest request;
    JobCallback done;
    int64_t admitted_nanos = 0;
  };

  void DispatchLocked();
  void RunJob(PendingJob job);

  JobQueueOptions options_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::deque<PendingJob> pending_;
  std::map<uint64_t, size_t> inflight_per_connection_;
  size_t running_ = 0;
  bool paused_ = false;
  bool shutdown_ = false;
  StatsSnapshot tally_;  ///< queue_depth/running mirrors kept coherent under mutex_.
};

}  // namespace isobar::server

#endif  // ISOBAR_SERVER_JOB_QUEUE_H_
