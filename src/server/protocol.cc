#include "server/protocol.h"

#include <cstring>
#include <string>
#include <utility>

namespace isobar::server {

std::string_view OpToString(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kCompress:
      return "compress";
    case Op::kDecompress:
      return "decompress";
    case Op::kStats:
      return "stats";
    case Op::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string_view ResponseStatusToString(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kBusy:
      return "busy";
    case ResponseStatus::kError:
      return "error";
  }
  return "unknown";
}

namespace {

constexpr uint8_t kAuxAuto = 0xFF;

void AppendFrame(uint32_t magic, uint8_t op, uint64_t request_id, uint64_t aux,
                 ByteSpan payload, Bytes* out) {
  const size_t base = out->size();
  out->resize(base + kFrameHeaderSize);
  uint8_t* p = out->data() + base;
  StoreLE32(p, magic);
  p[4] = kProtocolVersion;
  p[5] = op;
  StoreLE16(p + 6, 0);  // reserved
  StoreLE64(p + 8, request_id);
  StoreLE64(p + 16, aux);
  StoreLE64(p + 24, payload.size());
  out->insert(out->end(), payload.begin(), payload.end());
}

}  // namespace

uint64_t PackCompressAux(const CompressAux& aux) {
  uint64_t packed = static_cast<uint64_t>(aux.width & 0xFF);
  packed |= static_cast<uint64_t>(
                aux.codec ? static_cast<uint8_t>(*aux.codec) : kAuxAuto)
            << 8;
  packed |= static_cast<uint64_t>(aux.linearization
                                      ? static_cast<uint8_t>(*aux.linearization)
                                      : kAuxAuto)
            << 16;
  packed |= static_cast<uint64_t>(static_cast<uint8_t>(aux.preference)) << 24;
  return packed;
}

Result<CompressAux> UnpackCompressAux(uint64_t packed) {
  CompressAux aux;
  aux.width = static_cast<size_t>(packed & 0xFF);
  if (aux.width == 0 || aux.width > 64) {
    return Status::InvalidArgument("compress aux: element width must be in [1, 64]");
  }
  const uint8_t codec = static_cast<uint8_t>(packed >> 8);
  if (codec != kAuxAuto) {
    if (!IsKnownCodecId(codec)) {
      return Status::InvalidArgument("compress aux: unknown codec selector " +
                                     std::to_string(codec));
    }
    aux.codec = static_cast<CodecId>(codec);
  }
  const uint8_t lin = static_cast<uint8_t>(packed >> 16);
  if (lin != kAuxAuto) {
    if (lin > static_cast<uint8_t>(Linearization::kColumn)) {
      return Status::InvalidArgument(
          "compress aux: unknown linearization selector " +
          std::to_string(lin));
    }
    aux.linearization = static_cast<Linearization>(lin);
  }
  const uint8_t pref = static_cast<uint8_t>(packed >> 24);
  if (pref > static_cast<uint8_t>(Preference::kSpeed)) {
    return Status::InvalidArgument(
        "compress aux: unknown preference selector " + std::to_string(pref));
  }
  aux.preference = static_cast<Preference>(pref);
  if ((packed >> 32) != 0) {
    return Status::InvalidArgument("compress aux: reserved bits must be zero");
  }
  return aux;
}

void AppendRequestFrame(Op op, uint64_t request_id, uint64_t aux,
                        ByteSpan payload, Bytes* out) {
  AppendFrame(kRequestMagic, static_cast<uint8_t>(op), request_id, aux,
              payload, out);
}

void AppendResponseFrame(ResponseStatus status, uint64_t request_id,
                         uint64_t aux, ByteSpan payload, Bytes* out) {
  AppendFrame(kResponseMagic, static_cast<uint8_t>(status), request_id, aux,
              payload, out);
}

Bytes EncodeRequest(Op op, uint64_t request_id, uint64_t aux,
                    ByteSpan payload) {
  Bytes out;
  AppendRequestFrame(op, request_id, aux, payload, &out);
  return out;
}

Bytes EncodeResponse(ResponseStatus status, uint64_t request_id, uint64_t aux,
                     ByteSpan payload) {
  Bytes out;
  AppendResponseFrame(status, request_id, aux, payload, &out);
  return out;
}

Status FrameParser::Feed(ByteSpan data, std::vector<Frame>* out) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), data.begin(), data.end());

  size_t pos = 0;
  while (buffer_.size() - pos >= kFrameHeaderSize) {
    const uint8_t* p = buffer_.data() + pos;
    FrameHeader header;
    header.magic = LoadLE32(p);
    header.version = p[4];
    header.op = p[5];
    const uint16_t reserved = LoadLE16(p + 6);
    header.request_id = LoadLE64(p + 8);
    header.aux = LoadLE64(p + 16);
    header.payload_size = LoadLE64(p + 24);

    if (header.magic != expected_magic_) {
      error_ = Status::Corruption("frame magic mismatch");
    } else if (header.version != kProtocolVersion) {
      error_ = Status::Corruption("unsupported protocol version " +
                                  std::to_string(header.version));
    } else if (reserved != 0) {
      error_ = Status::Corruption("nonzero reserved header field");
    } else if (header.payload_size > max_payload_) {
      error_ = Status::Corruption(
          "frame payload of " + std::to_string(header.payload_size) +
          " bytes exceeds the " + std::to_string(max_payload_) +
          "-byte limit");
    }
    if (!error_.ok()) {
      buffer_.clear();
      return error_;
    }

    const uint64_t frame_size = kFrameHeaderSize + header.payload_size;
    if (buffer_.size() - pos < frame_size) break;

    Frame frame;
    frame.header = header;
    frame.payload.assign(p + kFrameHeaderSize, p + frame_size);
    out->push_back(std::move(frame));
    pos += frame_size;
  }

  buffer_.erase(buffer_.begin(), buffer_.begin() + pos);
  return Status::OK();
}

}  // namespace isobar::server
