#ifndef ISOBAR_SERVER_LOADGEN_H_
#define ISOBAR_SERVER_LOADGEN_H_

#include <cstdint>
#include <optional>
#include <string>

#include "compressors/codec.h"
#include "core/eupa_selector.h"
#include "linearize/transpose.h"
#include "util/status.h"

namespace isobar::server {

/// Workload description for the isobard load generator: N worker threads,
/// one pipelined connection each, replaying a mixed compress/decompress
/// stream against a running daemon. Shared by the isobar_loadgen CLI and
/// the bench_server saturation sweep.
struct LoadgenOptions {
  /// Endpoint (same rule as ServerOptions: exactly one).
  std::string unix_socket_path;
  bool use_tcp = false;
  uint16_t tcp_port = 0;

  /// Worker threads; each opens its own connection.
  size_t connections = 4;
  /// Outstanding requests per connection (pipelining window).
  size_t pipeline_depth = 4;

  double duration_seconds = 5.0;
  /// Aggregate request rate to pace toward, spread evenly over the
  /// connections; 0 = closed loop (each worker keeps its window full).
  double target_rps = 0.0;

  /// Fraction of requests that are compress ops; the rest decompress
  /// pre-built containers of the same data.
  double compress_fraction = 0.7;

  /// Synthetic payload shape: `payload_elements` elements of `width`
  /// bytes (width 8 → smooth sine-plus-noise doubles, the compressible
  /// case the paper targets; other widths → low-entropy integer ramps).
  size_t payload_elements = 4096;
  size_t width = 8;
  /// Distinct payloads cycled per worker (seeded per worker, so traffic
  /// differs across connections but reruns are reproducible).
  size_t payload_variants = 4;
  uint64_t seed = 42;

  /// Solver selection carried in the compress aux. Forcing both codec
  /// and linearization (the default) makes server output bit-identical
  /// to a local library call, which `verify` checks per response.
  std::optional<CodecId> codec = CodecId::kZlib;
  std::optional<Linearization> linearization = Linearization::kColumn;
  Preference preference = Preference::kSpeed;

  /// Byte-compare every OK response against the direct library result
  /// (compress) / the original payload (decompress).
  bool verify = true;

  /// Bounds each blocking receive so a wedged server fails the run
  /// instead of hanging it.
  double recv_timeout_seconds = 30.0;
};

/// Aggregated outcome of one loadgen run. Latency percentiles are over
/// OK responses only (BUSY turnarounds are near-instant and would skew
/// the service-latency distribution they are meant to describe).
struct LoadgenReport {
  uint64_t requests_sent = 0;
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;           ///< kError responses (server-side failures).
  uint64_t protocol_errors = 0;  ///< Framing/transport faults seen client-side.
  uint64_t verify_failures = 0;
  uint64_t compress_ok = 0;
  uint64_t decompress_ok = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;

  double wall_seconds = 0.0;
  double requests_per_second = 0.0;  ///< OK + BUSY + error responses / wall.

  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p90_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;

  /// Responses the server still owed when the run was torn down (always
  /// 0 unless a worker hit a transport fault mid-drain).
  uint64_t unanswered = 0;

  /// Strict-JSON object (one line) with every field above.
  std::string ToJson() const;
};

/// Runs the workload. Fails (non-OK) only when the run could not be set
/// up (bad options, no connection); per-request failures are reported in
/// the LoadgenReport so CI can assert on exact counts.
Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options);

/// One STATS round trip on a fresh connection (the daemon's metrics
/// snapshot JSON, readable by `isobar_stat print`).
Result<std::string> FetchServerStats(const LoadgenOptions& endpoint);

/// One shutdown round trip on a fresh connection.
Status RequestServerShutdown(const LoadgenOptions& endpoint);

}  // namespace isobar::server

#endif  // ISOBAR_SERVER_LOADGEN_H_
