#ifndef ISOBAR_SERVER_SERVER_H_
#define ISOBAR_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/job_queue.h"
#include "server/protocol.h"
#include "util/status.h"

namespace isobar::server {

struct ServerOptions {
  /// Listening endpoint: exactly one of the two must be enabled.
  /// Non-empty → AF_UNIX stream socket at this path (an existing socket
  /// file is replaced).
  std::string unix_socket_path;
  /// True → TCP on 127.0.0.1:`tcp_port` (0 picks an ephemeral port;
  /// read it back with bound_tcp_port()).
  bool listen_tcp = false;
  uint16_t tcp_port = 0;

  /// Admission control (queue bound, per-connection limit, workers).
  JobQueueOptions jobs;

  /// Per-frame payload cap; a frame declaring more poisons its connection.
  uint64_t max_payload_bytes = kDefaultMaxPayloadBytes;

  /// Concurrent connections; excess accepts wait in the listen backlog.
  size_t max_connections = 64;

  /// How long the listener is parked after accept() fails with fd or
  /// buffer exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM). The listener stays
  /// readable in that state, so re-polling it immediately would spin the
  /// IO thread at 100% while starving the connections that could release
  /// fds; backing off lets in-flight work finish first.
  uint32_t accept_backoff_ms = 100;
};

/// isobard's engine: accepts pipelined compress/decompress jobs over a
/// Unix or TCP socket, admits them into the bounded JobQueue, and answers
/// out of order by request id as workers finish. One thread runs the
/// poll() event loop (accept, frame reassembly, response writes); job
/// execution happens on the queue's work-stealing pool, and completion
/// callbacks hand encoded responses back to the loop through a wake pipe.
///
/// Load shedding: when admission fails, the request is answered
/// immediately with a BUSY frame carrying the Admission verdict — the
/// server never buffers beyond the queue bound and never silently drops
/// an admitted request's reply.
class IsobarServer {
 public:
  explicit IsobarServer(ServerOptions options);

  /// Stop()s if still running.
  ~IsobarServer();

  IsobarServer(const IsobarServer&) = delete;
  IsobarServer& operator=(const IsobarServer&) = delete;

  /// Binds, listens, and starts the event loop thread.
  Status Start();

  /// Blocks until the server stops serving: a client's shutdown request
  /// drained, or Stop()/RequestStop() from another thread.
  void Wait();

  /// Stops accepting, closes connections, drains the job queue, joins.
  /// Idempotent; safe from any thread (not from a signal handler).
  void Stop();

  /// Async-signal-safe stop trigger (a single write() on the wake pipe):
  /// the daemon's SIGTERM/SIGINT handler calls this, then main's Wait()
  /// returns and runs the ordinary Stop() teardown.
  void RequestStop();

  /// Bound TCP port once Start() succeeded (listen_tcp only).
  uint16_t bound_tcp_port() const { return bound_tcp_port_; }

  /// The admission queue — exposed so tests can Pause()/Resume() it to
  /// drive deterministic saturation, and tools can read Stats().
  JobQueue& job_queue() { return *queue_; }

  /// The STATS response document: the global telemetry snapshot (per-op
  /// latency histograms, queue-wait distribution, pool counters) merged
  /// with the server's own always-on tallies (server.requests,
  /// server.queue_depth, server.rejected, ...), serialized with
  /// MetricsToJson — directly readable by `isobar_stat print`.
  std::string BuildStatsJson() const;

 private:
  struct Connection;

  void RunEventLoop();
  void AcceptConnections();
  void ReadFromConnection(const std::shared_ptr<Connection>& conn);
  bool FlushConnection(const std::shared_ptr<Connection>& conn);
  void DropConnection(uint64_t conn_id, bool protocol_error);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   Frame frame);
  void EnqueueResponse(const std::shared_ptr<Connection>& conn, Bytes frame);
  void Wake();
  void CloseListener();

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t bound_tcp_port_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::thread io_thread_;
  std::mutex lifecycle_mutex_;

  /// Event-loop state (IO thread only once started).
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;
  bool draining_ = false;
  /// Listener parked until this instant after accept() hit resource
  /// exhaustion (IO thread only).
  std::chrono::steady_clock::time_point accept_backoff_until_{};

  std::atomic<bool> stop_requested_{false};
  /// Admitted jobs whose response frame is not yet enqueued; graceful
  /// shutdown waits for this to hit zero plus all outbound flushed.
  std::atomic<uint64_t> inflight_responses_{0};

  /// Always-on tallies (exact, telemetry-independent), merged into the
  /// STATS document alongside the JobQueue's own accounting.
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> requests_ping_{0};
  std::atomic<uint64_t> requests_compress_{0};
  std::atomic<uint64_t> requests_decompress_{0};
  std::atomic<uint64_t> requests_stats_{0};
  std::atomic<uint64_t> requests_shutdown_{0};
  std::atomic<uint64_t> requests_invalid_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> connections_dropped_protocol_{0};
  std::atomic<uint64_t> accept_errors_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};

  /// Declared last: destroyed first, so outstanding completion callbacks
  /// (which touch the members above) drain while they are still alive.
  std::unique_ptr<JobQueue> queue_;
};

}  // namespace isobar::server

#endif  // ISOBAR_SERVER_SERVER_H_
