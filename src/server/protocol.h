#ifndef ISOBAR_SERVER_PROTOCOL_H_
#define ISOBAR_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "compressors/codec.h"
#include "core/eupa_selector.h"
#include "linearize/transpose.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar::server {

/// Wire format of the isobard compression service (docs/SERVING.md).
///
/// Every message — request or response — is one length-prefixed frame:
/// a fixed 32-byte header followed by `payload_size` payload bytes. All
/// integers are little-endian, matching the container format.
///
///   offset  size  field
///   0       4     magic ("IBRQ" requests, "IBRS" responses)
///   4       1     protocol version (kProtocolVersion)
///   5       1     op (requests) / status (responses)
///   6       2     reserved, must be zero
///   8       8     request id (echoed verbatim in the response)
///   16      8     aux (op-specific; see below)
///   24      8     payload size in bytes
///   32      ...   payload
///
/// Requests on one connection may be pipelined; responses are matched by
/// request id and may arrive in any order (the server answers jobs as
/// they finish). A malformed frame (bad magic, unknown version, nonzero
/// reserved bits, payload beyond the server's limit) poisons the
/// connection: the server drops it without a reply, since framing can no
/// longer be trusted. A well-framed but unsupported request (unknown op,
/// invalid width) gets a kError response and the connection stays usable.

inline constexpr uint32_t kRequestMagic = 0x51524249;   // "IBRQ"
inline constexpr uint32_t kResponseMagic = 0x53524249;  // "IBRS"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 32;

/// Default cap on a single frame's payload. Admission control bounds how
/// many payloads are resident; this bounds how large any one can be.
inline constexpr uint64_t kDefaultMaxPayloadBytes = 256ull << 20;

enum class Op : uint8_t {
  kPing = 0,        ///< Echo: payload and aux returned verbatim.
  kCompress = 1,    ///< Payload = raw bytes; aux = packed CompressAux.
  kDecompress = 2,  ///< Payload = container bytes; aux ignored.
  kStats = 3,       ///< Empty payload; response payload = metrics JSON.
  kShutdown = 4,    ///< Ask the daemon to drain and exit. Empty payload.
};

enum class ResponseStatus : uint8_t {
  kOk = 0,     ///< Payload = op-specific result bytes.
  kBusy = 1,   ///< Admission control shed the request; aux = Admission code.
  kError = 2,  ///< aux = isobar StatusCode; payload = UTF-8 message.
};

std::string_view OpToString(Op op);
std::string_view ResponseStatusToString(ResponseStatus status);

/// One parsed frame. `header.aux` interpretation depends on the op.
struct FrameHeader {
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t op = 0;  ///< Op in requests, ResponseStatus in responses.
  uint64_t request_id = 0;
  uint64_t aux = 0;
  uint64_t payload_size = 0;
};

struct Frame {
  FrameHeader header;
  Bytes payload;
};

/// Compress-request knobs packed into the 64-bit aux field:
///   bits 0..7    element width (1..64)
///   bits 8..15   forced codec id, 0xFF = let EUPA choose
///   bits 16..23  forced linearization, 0xFF = let EUPA choose
///   bits 24..31  preference (0 = ratio, 1 = speed)
/// Forcing both codec and linearization makes the server's output
/// bit-reproducible (EUPA's throughput measurements never run), which is
/// what the loadgen's --verify mode and the conformance tests rely on.
struct CompressAux {
  size_t width = 8;
  std::optional<CodecId> codec;
  std::optional<Linearization> linearization;
  Preference preference = Preference::kSpeed;
};

uint64_t PackCompressAux(const CompressAux& aux);
/// Rejects widths outside [1, 64], unknown codec/linearization/preference
/// selectors, and nonzero padding bits.
Result<CompressAux> UnpackCompressAux(uint64_t packed);

/// Appends one frame (header + payload) to `out`.
void AppendRequestFrame(Op op, uint64_t request_id, uint64_t aux,
                        ByteSpan payload, Bytes* out);
void AppendResponseFrame(ResponseStatus status, uint64_t request_id,
                         uint64_t aux, ByteSpan payload, Bytes* out);

Bytes EncodeRequest(Op op, uint64_t request_id, uint64_t aux,
                    ByteSpan payload);
Bytes EncodeResponse(ResponseStatus status, uint64_t request_id, uint64_t aux,
                     ByteSpan payload);

/// Incremental frame decoder: feed it bytes as they arrive off a socket,
/// collect complete frames. A framing violation (wrong magic, unknown
/// version, nonzero reserved field, payload_size beyond the limit)
/// returns Corruption and poisons the parser — every later Feed fails
/// with the same status, because resynchronizing inside a corrupt byte
/// stream is guesswork.
class FrameParser {
 public:
  /// `expected_magic` selects the direction being parsed; `max_payload`
  /// bounds a single frame's payload_size.
  FrameParser(uint32_t expected_magic,
              uint64_t max_payload = kDefaultMaxPayloadBytes)
      : expected_magic_(expected_magic), max_payload_(max_payload) {}

  /// Consumes `data`, appending every completed frame to `out` (which is
  /// not cleared). Partial trailing bytes are buffered for the next call.
  Status Feed(ByteSpan data, std::vector<Frame>* out);

  /// Bytes buffered toward an incomplete frame (0 at a frame boundary).
  size_t buffered_bytes() const { return buffer_.size(); }

  /// True once a Feed failed; the connection should be dropped.
  bool poisoned() const { return !error_.ok(); }

 private:
  uint32_t expected_magic_;
  uint64_t max_payload_;
  Bytes buffer_;
  Status error_;
};

}  // namespace isobar::server

#endif  // ISOBAR_SERVER_PROTOCOL_H_
