#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"

namespace isobar::server {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

ByteSpan StringPayload(const std::string& s) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

}  // namespace

/// Per-connection state. The IO thread owns fd/parser; `outbound` is the
/// only cross-thread surface (worker completion callbacks append encoded
/// response frames under `out_mutex`, the IO thread drains them).
struct IsobarServer::Connection {
  Connection(int fd_in, uint64_t id_in, uint64_t max_payload)
      : fd(fd_in), id(id_in), parser(kRequestMagic, max_payload) {}

  int fd = -1;
  uint64_t id = 0;
  FrameParser parser;

  std::mutex out_mutex;
  std::deque<Bytes> outbound;
  size_t front_offset = 0;  ///< Bytes of outbound.front() already sent.
  std::atomic<bool> closed{false};

  bool HasOutput() {
    std::lock_guard<std::mutex> lock(out_mutex);
    return !outbound.empty();
  }
};

IsobarServer::IsobarServer(ServerOptions options)
    : options_(std::move(options)),
      queue_(std::make_unique<JobQueue>(options_.jobs)) {}

IsobarServer::~IsobarServer() { Stop(); }

Status IsobarServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return Status::InvalidArgument("server already started");

  const bool unix_endpoint = !options_.unix_socket_path.empty();
  if (unix_endpoint == options_.listen_tcp) {
    return Status::InvalidArgument(
        "exactly one of unix_socket_path / listen_tcp must be set");
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  ISOBAR_RETURN_NOT_OK(SetNonBlocking(wake_read_fd_));
  ISOBAR_RETURN_NOT_OK(SetNonBlocking(wake_write_fd_));

  if (unix_endpoint) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::memcpy(addr.sun_path, options_.unix_socket_path.c_str(),
                options_.unix_socket_path.size() + 1);
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("socket(AF_UNIX): ") +
                             std::strerror(errno));
    }
    // Replace a stale socket file from a previous run.
    ::unlink(options_.unix_socket_path.c_str());
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IOError("bind(" + options_.unix_socket_path +
                             "): " + std::strerror(errno));
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("socket(AF_INET): ") +
                             std::strerror(errno));
    }
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IOError("bind(127.0.0.1:" +
                             std::to_string(options_.tcp_port) +
                             "): " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Status::IOError(std::string("getsockname: ") +
                             std::strerror(errno));
    }
    bound_tcp_port_ = ntohs(bound.sin_port);
  }

  ISOBAR_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  if (listen(listen_fd_, 128) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }

  started_ = true;
  io_thread_ = std::thread([this] { RunEventLoop(); });
  return Status::OK();
}

void IsobarServer::Wake() {
  if (wake_write_fd_ < 0) return;
  const uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t ignored = write(wake_write_fd_, &byte, 1);
}

void IsobarServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  Wake();
}

void IsobarServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (io_thread_.joinable()) io_thread_.join();
}

void IsobarServer::Stop() {
  RequestStop();
  Wait();
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (stopped_ || !started_) return;
  stopped_ = true;
  // Drain the job queue while the wake pipe and server tallies are still
  // alive: late completion callbacks may Wake() and bump counters.
  queue_->Shutdown();
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

void IsobarServer::CloseListener() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void IsobarServer::RunEventLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn_ids;

  while (true) {
    if (stop_requested_.load(std::memory_order_acquire)) break;

    bool all_flushed = true;
    fds.clear();
    fd_conn_ids.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn_ids.push_back(0);
    // While parked after fd exhaustion the listener is left out of the
    // poll set: it would report readable forever without a free fd to
    // accept into. The finite poll timeout below re-arms it.
    const bool accept_parked =
        std::chrono::steady_clock::now() < accept_backoff_until_;
    if (listen_fd_ >= 0 && !accept_parked &&
        connections_.size() < options_.max_connections) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn_ids.push_back(0);
    }
    for (auto& [id, conn] : connections_) {
      short events = POLLIN;
      if (conn->HasOutput()) {
        events |= POLLOUT;
        all_flushed = false;
      }
      fds.push_back({conn->fd, events, 0});
      fd_conn_ids.push_back(id);
    }

    // Graceful drain: a shutdown request was honored, every admitted job
    // has answered, and every answer reached its socket (or its
    // connection died) — nothing is owed to anyone.
    if (draining_ && all_flushed &&
        inflight_responses_.load(std::memory_order_acquire) == 0) {
      break;
    }

    int poll_timeout_ms = -1;
    if (accept_parked) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          accept_backoff_until_ - std::chrono::steady_clock::now());
      poll_timeout_ms = std::max<int>(1, static_cast<int>(remaining.count()));
    }
    if (poll(fds.data(), fds.size(), poll_timeout_ms) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (size_t i = 0; i < fds.size(); ++i) {
      const pollfd& pfd = fds[i];
      if (pfd.revents == 0) continue;
      if (pfd.fd == wake_read_fd_) {
        uint8_t drain[256];
        while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (pfd.fd == listen_fd_) {
        AcceptConnections();
        continue;
      }
      const uint64_t conn_id = fd_conn_ids[i];
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;  // dropped earlier this pass
      std::shared_ptr<Connection> conn = it->second;
      if (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) {
        // Flush what we can (the peer may have shut down only its write
        // side), then read whatever is still buffered before dropping.
        if (pfd.revents & POLLHUP) ReadFromConnection(conn);
        if (connections_.count(conn_id) != 0 && !(pfd.revents & POLLHUP)) {
          DropConnection(conn_id, /*protocol_error=*/false);
        }
        continue;
      }
      if (pfd.revents & POLLOUT) {
        if (!FlushConnection(conn)) {
          DropConnection(conn_id, /*protocol_error=*/false);
          continue;
        }
      }
      if (pfd.revents & POLLIN) ReadFromConnection(conn);
    }
  }

  // Teardown on the IO thread: every connection fd and the listener are
  // owned here. Pending outbound data is dropped (hard stop) or already
  // flushed (graceful drain).
  for (auto& [id, conn] : connections_) {
    conn->closed.store(true, std::memory_order_release);
    close(conn->fd);
  }
  connections_.clear();
  CloseListener();
}

void IsobarServer::AcceptConnections() {
  while (connections_.size() < options_.max_connections) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // a signal is not a failed client
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // backlog drained
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds or kernel buffers: the pending connection stays in
        // the backlog and the listener stays readable, so accepting again
        // right away would busy-spin the IO thread. Park the listener and
        // let established connections finish (and release fds) first.
        accept_backoff_until_ =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.accept_backoff_ms);
      }
      break;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const uint64_t id = next_connection_id_++;
    connections_.emplace(id, std::make_shared<Connection>(
                                 fd, id, options_.max_payload_bytes));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IsobarServer::DropConnection(uint64_t conn_id, bool protocol_error) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  it->second->closed.store(true, std::memory_order_release);
  close(it->second->fd);
  connections_.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  if (protocol_error) {
    connections_dropped_protocol_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IsobarServer::ReadFromConnection(
    const std::shared_ptr<Connection>& conn) {
  uint8_t buffer[64 * 1024];
  while (true) {
    const ssize_t n = recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      std::vector<Frame> frames;
      const Status fed =
          conn->parser.Feed(ByteSpan(buffer, static_cast<size_t>(n)), &frames);
      // Handle the frames completed before any framing violation — they
      // were well-formed — then poison-drop the connection.
      for (Frame& frame : frames) HandleFrame(conn, std::move(frame));
      if (!fed.ok()) {
        DropConnection(conn->id, /*protocol_error=*/true);
        return;
      }
      continue;
    }
    if (n == 0) {
      DropConnection(conn->id, /*protocol_error=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    DropConnection(conn->id, /*protocol_error=*/false);
    return;
  }
}

bool IsobarServer::FlushConnection(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mutex);
  while (!conn->outbound.empty()) {
    const Bytes& front = conn->outbound.front();
    const size_t remaining = front.size() - conn->front_offset;
    const ssize_t n = send(conn->fd, front.data() + conn->front_offset,
                           remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn->front_offset += static_cast<size_t>(n);
    if (conn->front_offset == front.size()) {
      conn->outbound.pop_front();
      conn->front_offset = 0;
    }
  }
  return true;
}

void IsobarServer::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                   Bytes frame) {
  bytes_out_.fetch_add(frame.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    if (conn->closed.load(std::memory_order_acquire)) return;
    conn->outbound.push_back(std::move(frame));
  }
  Wake();
}

void IsobarServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                               Frame frame) {
  const uint64_t rid = frame.header.request_id;
  const int64_t received_nanos = telemetry::MonotonicNanos();
  requests_total_.fetch_add(1, std::memory_order_relaxed);

  if (frame.header.op > static_cast<uint8_t>(Op::kShutdown)) {
    requests_invalid_.fetch_add(1, std::memory_order_relaxed);
    const std::string message =
        "unknown op " + std::to_string(frame.header.op);
    EnqueueResponse(
        conn, EncodeResponse(
                  ResponseStatus::kError, rid,
                  static_cast<uint64_t>(StatusCode::kInvalidArgument),
                  StringPayload(message)));
    return;
  }
  const Op op = static_cast<Op>(frame.header.op);

  auto reply_error = [&](const Status& status) {
    requests_invalid_.fetch_add(1, std::memory_order_relaxed);
    EnqueueResponse(conn,
                    EncodeResponse(ResponseStatus::kError, rid,
                                   static_cast<uint64_t>(status.code()),
                                   StringPayload(status.message())));
  };

  switch (op) {
    case Op::kPing:
      requests_ping_.fetch_add(1, std::memory_order_relaxed);
      EnqueueResponse(conn, EncodeResponse(ResponseStatus::kOk, rid,
                                           frame.header.aux, frame.payload));
      return;

    case Op::kStats: {
      requests_stats_.fetch_add(1, std::memory_order_relaxed);
      const std::string json = BuildStatsJson();
      EnqueueResponse(conn, EncodeResponse(ResponseStatus::kOk, rid, 0,
                                           StringPayload(json)));
      static telemetry::Histogram& latency =
          telemetry::GetHistogram("server.stats.nanos");
      latency.Observe(static_cast<uint64_t>(
          telemetry::MonotonicNanos() - received_nanos));
      return;
    }

    case Op::kShutdown:
      requests_shutdown_.fetch_add(1, std::memory_order_relaxed);
      EnqueueResponse(conn,
                      EncodeResponse(ResponseStatus::kOk, rid, 0, {}));
      draining_ = true;
      CloseListener();
      return;

    case Op::kCompress:
    case Op::kDecompress:
      break;
  }

  // Job ops from here on.
  if (op == Op::kCompress) {
    requests_compress_.fetch_add(1, std::memory_order_relaxed);
  } else {
    requests_decompress_.fetch_add(1, std::memory_order_relaxed);
  }

  JobRequest request;
  if (op == Op::kCompress) {
    auto aux = UnpackCompressAux(frame.header.aux);
    if (!aux.ok()) {
      reply_error(aux.status());
      return;
    }
    // Same validator the library entry point runs: a request rejected
    // here is exactly a request Compress() would reject.
    const Status shape =
        ValidateCompressInput(frame.payload.size(), aux->width);
    if (!shape.ok()) {
      reply_error(shape);
      return;
    }
    request.kind = JobKind::kCompress;
    request.width = aux->width;
    request.compress_options.eupa.preference = aux->preference;
    request.compress_options.eupa.forced_codec = aux->codec;
    request.compress_options.eupa.forced_linearization = aux->linearization;
  } else {
    request.kind = JobKind::kDecompress;
  }
  request.input = std::move(frame.payload);

  if (draining_) {
    EnqueueResponse(
        conn, EncodeResponse(ResponseStatus::kBusy, rid,
                             static_cast<uint64_t>(Admission::kShuttingDown),
                             {}));
    return;
  }

  inflight_responses_.fetch_add(1, std::memory_order_acq_rel);
  std::weak_ptr<Connection> weak = conn;
  const Admission admission = queue_->Submit(
      conn->id, std::move(request),
      [this, weak, rid, op, received_nanos](JobResult result) {
        static telemetry::Histogram& compress_latency =
            telemetry::GetHistogram("server.compress.nanos");
        static telemetry::Histogram& decompress_latency =
            telemetry::GetHistogram("server.decompress.nanos");
        (op == Op::kCompress ? compress_latency : decompress_latency)
            .Observe(static_cast<uint64_t>(telemetry::MonotonicNanos() -
                                           received_nanos));
        Bytes response;
        if (result.status.ok()) {
          response = EncodeResponse(ResponseStatus::kOk, rid, 0,
                                    result.output);
        } else {
          response = EncodeResponse(
              ResponseStatus::kError, rid,
              static_cast<uint64_t>(result.status.code()),
              StringPayload(result.status.message()));
        }
        if (std::shared_ptr<Connection> live = weak.lock()) {
          EnqueueResponse(live, std::move(response));
        }
        inflight_responses_.fetch_sub(1, std::memory_order_acq_rel);
        Wake();
      });
  if (admission != Admission::kAdmitted) {
    inflight_responses_.fetch_sub(1, std::memory_order_acq_rel);
    EnqueueResponse(conn,
                    EncodeResponse(ResponseStatus::kBusy, rid,
                                   static_cast<uint64_t>(admission), {}));
  }
}

std::string IsobarServer::BuildStatsJson() const {
  telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  auto add = [&snapshot](std::string name, uint64_t value) {
    snapshot.counters.push_back({std::move(name), value});
  };
  const JobQueue::StatsSnapshot q = queue_->Stats();
  add("server.requests", requests_total_.load(std::memory_order_relaxed));
  add("server.requests.ping",
      requests_ping_.load(std::memory_order_relaxed));
  add("server.requests.compress",
      requests_compress_.load(std::memory_order_relaxed));
  add("server.requests.decompress",
      requests_decompress_.load(std::memory_order_relaxed));
  add("server.requests.stats",
      requests_stats_.load(std::memory_order_relaxed));
  add("server.requests.shutdown",
      requests_shutdown_.load(std::memory_order_relaxed));
  add("server.requests.invalid",
      requests_invalid_.load(std::memory_order_relaxed));
  add("server.admitted", q.admitted);
  add("server.completed", q.completed);
  add("server.failed", q.failed);
  add("server.rejected", q.rejected_total());
  add("server.rejected.queue_full", q.rejected_queue_full);
  add("server.rejected.connection_limit", q.rejected_connection_limit);
  add("server.rejected.shutdown", q.rejected_shutdown);
  add("server.queue_depth", q.queue_depth);
  add("server.queue_depth.high_water", q.queue_depth_high_water);
  add("server.running", q.running);
  add("server.queue_capacity", options_.jobs.max_queue_depth);
  add("server.workers", queue_->worker_count());
  add("server.connections.accepted",
      connections_accepted_.load(std::memory_order_relaxed));
  add("server.connections.active",
      connections_active_.load(std::memory_order_relaxed));
  add("server.connections.dropped_protocol",
      connections_dropped_protocol_.load(std::memory_order_relaxed));
  add("server.accept_errors",
      accept_errors_.load(std::memory_order_relaxed));
  add("server.bytes_in", bytes_in_.load(std::memory_order_relaxed));
  add("server.bytes_out", bytes_out_.load(std::memory_order_relaxed));
  std::sort(snapshot.counters.begin(), snapshot.counters.end(),
            [](const telemetry::CounterSnapshot& a,
               const telemetry::CounterSnapshot& b) { return a.name < b.name; });
  return telemetry::MetricsToJson(snapshot);
}

}  // namespace isobar::server
