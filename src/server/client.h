#ifndef ISOBAR_SERVER_CLIENT_H_
#define ISOBAR_SERVER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar::server {

/// One decoded response as seen by a client.
struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  uint64_t request_id = 0;
  uint64_t aux = 0;  ///< StatusCode (kError) or Admission (kBusy).
  Bytes payload;

  bool ok() const { return status == ResponseStatus::kOk; }
  bool busy() const { return status == ResponseStatus::kBusy; }

  /// kError responses reconstructed into the library Status they carry.
  Status ToStatus() const;
};

/// Blocking client connection to an isobard endpoint. Supports pipelining:
/// Send() any number of requests, then collect responses with
/// ReadResponse() — the server answers out of order, so match on
/// Response::request_id. The Call() convenience does one round trip.
///
/// Not thread-safe; use one Client per thread (the loadgen does exactly
/// that).
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<Client> ConnectUnix(const std::string& socket_path);
  static Result<Client> ConnectTcp(uint16_t port);  ///< 127.0.0.1

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Bounds every blocking recv; 0 disables (the default).
  Status SetReceiveTimeout(double seconds);

  /// Writes one request frame (blocking until fully written).
  Status Send(Op op, uint64_t request_id, uint64_t aux, ByteSpan payload);

  /// Blocks for the next response frame, whatever its request id.
  /// IOError on timeout or connection loss; Corruption on bad framing.
  Result<Response> ReadResponse();

  /// Send + ReadResponse for callers with a single request in flight.
  Result<Response> Call(Op op, uint64_t aux, ByteSpan payload);

  /// Round-trip conveniences. An error response surfaces as the Status
  /// it carries; a busy response surfaces as IOError("server busy: ...")
  /// — callers that need to distinguish shed load use Call() directly.
  Result<Bytes> Compress(ByteSpan data, const CompressAux& aux);
  Result<Bytes> Decompress(ByteSpan container);
  Result<std::string> Stats();
  Status Ping();
  Status ShutdownServer();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameParser parser_{kResponseMagic};
  std::deque<Frame> pending_;
};

}  // namespace isobar::server

#endif  // ISOBAR_SERVER_CLIENT_H_
