#include "server/job_queue.h"

#include <algorithm>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/stopwatch.h"

namespace isobar::server {

std::string_view AdmissionToString(Admission admission) {
  switch (admission) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kQueueFull:
      return "queue-full";
    case Admission::kConnectionLimit:
      return "connection-limit";
    case Admission::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

JobQueue::JobQueue(JobQueueOptions options)
    : options_(options), pool_(ResolveNumThreads(options.num_threads)) {}

JobQueue::~JobQueue() { Shutdown(); }

JobResult JobQueue::ExecuteJob(const JobRequest& request) {
  JobResult result;
  Stopwatch timer;
  if (request.kind == JobKind::kCompress) {
    // One job = one serial pipeline; concurrency comes from sibling jobs
    // on other workers. A nested per-job pool would also deadlock-risk a
    // pool worker waiting on futures served by its own pool.
    CompressOptions opts = request.compress_options;
    opts.num_threads = 1;
    IsobarCompressor compressor(opts);
    auto compressed =
        compressor.Compress(request.input, request.width, &result.compression);
    if (compressed.ok()) {
      result.output = std::move(*compressed);
    } else {
      result.status = compressed.status();
    }
  } else {
    DecompressOptions opts = request.decompress_options;
    opts.num_threads = 1;
    auto decompressed = IsobarCompressor::Decompress(request.input, opts,
                                                     &result.decompression);
    if (decompressed.ok()) {
      result.output = std::move(*decompressed);
    } else {
      result.status = decompressed.status();
    }
  }
  result.exec_nanos = timer.ElapsedNanos();
  return result;
}

Admission JobQueue::Submit(uint64_t connection_id, JobRequest request,
                           JobCallback done) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) {
    ++tally_.rejected_shutdown;
    return Admission::kShuttingDown;
  }
  if (pending_.size() >= options_.max_queue_depth) {
    ++tally_.rejected_queue_full;
    return Admission::kQueueFull;
  }
  size_t& inflight = inflight_per_connection_[connection_id];
  if (inflight >= options_.max_inflight_per_connection) {
    ++tally_.rejected_connection_limit;
    return Admission::kConnectionLimit;
  }
  ++inflight;
  ++tally_.admitted;

  PendingJob job;
  job.connection_id = connection_id;
  job.request = std::move(request);
  job.done = std::move(done);
  job.admitted_nanos = telemetry::MonotonicNanos();
  pending_.push_back(std::move(job));
  tally_.queue_depth = pending_.size();
  tally_.queue_depth_high_water =
      std::max<uint64_t>(tally_.queue_depth_high_water, pending_.size());
  DispatchLocked();
  return Admission::kAdmitted;
}

void JobQueue::DispatchLocked() {
  while (!paused_ && running_ < pool_.size() && !pending_.empty()) {
    PendingJob job = std::move(pending_.front());
    pending_.pop_front();
    tally_.queue_depth = pending_.size();
    ++running_;
    tally_.running = running_;
    // The pool future is intentionally dropped: completion is delivered
    // through the job callback, and ~ThreadPool drains queued tasks.
    pool_.Submit([this, job = std::move(job)]() mutable {
      RunJob(std::move(job));
    });
  }
}

void JobQueue::RunJob(PendingJob job) {
  const int64_t started = telemetry::MonotonicNanos();
  JobResult result = ExecuteJob(job.request);
  result.queue_nanos = started - job.admitted_nanos;
  if (result.queue_nanos < 0) result.queue_nanos = 0;

  static telemetry::Histogram& queue_wait =
      telemetry::GetHistogram("server.queue_wait.nanos");
  queue_wait.Observe(static_cast<uint64_t>(result.queue_nanos));

  const bool failed = !result.status.ok();
  // Deliver the result BEFORE the job is marked complete: Shutdown() and
  // WaitIdle() promise that every admitted job's callback has run by the
  // time they return (the server relies on this to flush every response
  // during drain), so the callback must precede the idle notification.
  if (job.done) job.done(std::move(result));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    tally_.running = running_;
    ++tally_.completed;
    if (failed) ++tally_.failed;
    auto it = inflight_per_connection_.find(job.connection_id);
    if (it != inflight_per_connection_.end() && --it->second == 0) {
      inflight_per_connection_.erase(it);
    }
    DispatchLocked();
    if (pending_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

void JobQueue::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void JobQueue::Resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  DispatchLocked();
}

void JobQueue::Shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_ = true;
  paused_ = false;
  DispatchLocked();
  idle_cv_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

void JobQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

JobQueue::StatsSnapshot JobQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tally_;
}

}  // namespace isobar::server
