#include "server/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "core/isobar.h"
#include "server/client.h"
#include "util/random.h"

namespace isobar::server {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic synthetic payload `variant` for `worker`: smooth
/// sine-plus-noise doubles at width 8 (the compressible scientific-data
/// shape), low-entropy integer ramps otherwise.
Bytes MakePayload(const LoadgenOptions& options, size_t worker,
                  size_t variant) {
  Bytes data(options.payload_elements * options.width);
  Xoshiro256 rng(options.seed + worker * 7919 + variant * 104729);
  if (options.width == 8) {
    const double phase = rng.NextDouble() * 6.283185307179586;
    const double step = 0.002 + rng.NextDouble() * 0.01;
    for (size_t e = 0; e < options.payload_elements; ++e) {
      const double value = 100.0 * std::sin(phase + step * e) +
                           0.01 * rng.NextGaussian();
      uint64_t bits;
      std::memcpy(&bits, &value, sizeof(bits));
      StoreLE64(data.data() + e * 8, bits);
    }
  } else {
    for (size_t e = 0; e < options.payload_elements; ++e) {
      uint8_t* p = data.data() + e * options.width;
      uint64_t value = e + (rng.Next() & 0x3);
      for (size_t b = 0; b < options.width; ++b) {
        p[b] = static_cast<uint8_t>(value & 0xFF);
        value >>= 8;
      }
    }
  }
  return data;
}

CompressOptions ForcedCompressOptions(const LoadgenOptions& options) {
  CompressOptions copts;
  copts.num_threads = 1;
  copts.eupa.preference = options.preference;
  copts.eupa.forced_codec = options.codec;
  copts.eupa.forced_linearization = options.linearization;
  return copts;
}

struct WorkerShared {
  std::vector<Bytes> payloads;    ///< Raw compress inputs.
  std::vector<Bytes> containers;  ///< Library-built references / decompress inputs.
};

struct WorkerResult {
  Status fatal;  ///< Transport/setup fault that ended the worker early.
  uint64_t sent = 0, ok = 0, busy = 0, errors = 0, protocol_errors = 0;
  uint64_t verify_failures = 0, compress_ok = 0, decompress_ok = 0;
  uint64_t bytes_sent = 0, bytes_received = 0, unanswered = 0;
  std::vector<double> latencies_us;  ///< OK responses only.
};

Result<Client> Connect(const LoadgenOptions& options) {
  if (options.unix_socket_path.empty() == !options.use_tcp) {
    return Status::InvalidArgument(
        "exactly one of unix_socket_path / use_tcp must be set");
  }
  if (!options.unix_socket_path.empty()) {
    return Client::ConnectUnix(options.unix_socket_path);
  }
  return Client::ConnectTcp(options.tcp_port);
}

struct InFlight {
  Op op = Op::kCompress;
  size_t variant = 0;
  Clock::time_point sent_at;
};

void RunWorker(const LoadgenOptions& options, const WorkerShared& shared,
               size_t worker_index, Clock::time_point deadline,
               WorkerResult* out) {
  auto connected = Connect(options);
  if (!connected.ok()) {
    out->fatal = connected.status();
    return;
  }
  Client client = std::move(*connected);
  if (options.recv_timeout_seconds > 0) {
    const Status st = client.SetReceiveTimeout(options.recv_timeout_seconds);
    if (!st.ok()) {
      out->fatal = st;
      return;
    }
  }

  Xoshiro256 rng(options.seed * 31 + worker_index);
  const uint64_t compress_aux = PackCompressAux(
      {options.width, options.codec, options.linearization,
       options.preference});
  const double per_conn_rate =
      options.target_rps > 0 ? options.target_rps / options.connections : 0;
  const Clock::time_point start = Clock::now();

  std::map<uint64_t, InFlight> inflight;
  uint64_t next_rid = 1;

  auto handle_response = [&](const Response& response) -> bool {
    auto it = inflight.find(response.request_id);
    if (it == inflight.end()) {
      ++out->protocol_errors;  // Response to a request we never sent.
      return false;
    }
    const InFlight sent = it->second;
    inflight.erase(it);
    out->bytes_received += kFrameHeaderSize + response.payload.size();
    if (response.busy()) {
      ++out->busy;
      return true;
    }
    if (!response.ok()) {
      ++out->errors;
      return true;
    }
    ++out->ok;
    out->latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  sent.sent_at)
            .count());
    if (sent.op == Op::kCompress) {
      ++out->compress_ok;
      if (options.verify &&
          response.payload != shared.containers[sent.variant]) {
        ++out->verify_failures;
      }
    } else {
      ++out->decompress_ok;
      if (options.verify &&
          response.payload != shared.payloads[sent.variant]) {
        ++out->verify_failures;
      }
    }
    return true;
  };

  while (Clock::now() < deadline) {
    // Fill the pipeline window, respecting the pacing budget.
    bool sent_any = false;
    while (inflight.size() < options.pipeline_depth &&
           Clock::now() < deadline) {
      if (per_conn_rate > 0 &&
          static_cast<double>(out->sent) >=
              per_conn_rate * SecondsSince(start)) {
        break;
      }
      const bool compress =
          rng.NextDouble() < options.compress_fraction;
      const size_t variant = rng.NextBounded(shared.payloads.size());
      const uint64_t rid = next_rid++;
      const ByteSpan payload = compress ? ByteSpan(shared.payloads[variant])
                                        : ByteSpan(shared.containers[variant]);
      const Status st =
          client.Send(compress ? Op::kCompress : Op::kDecompress, rid,
                      compress ? compress_aux : 0, payload);
      if (!st.ok()) {
        out->fatal = st;
        ++out->protocol_errors;
        out->unanswered += inflight.size();
        return;
      }
      inflight.emplace(rid, InFlight{compress ? Op::kCompress : Op::kDecompress,
                                     variant, Clock::now()});
      ++out->sent;
      out->bytes_sent += kFrameHeaderSize + payload.size();
      sent_any = true;
    }

    if (!inflight.empty()) {
      auto response = client.ReadResponse();
      if (!response.ok()) {
        out->fatal = response.status();
        ++out->protocol_errors;
        out->unanswered += inflight.size();
        return;
      }
      if (!handle_response(*response)) {
        out->fatal = Status::Corruption("unmatched response id");
        out->unanswered += inflight.size();
        return;
      }
    } else if (!sent_any) {
      // Rate-limited and nothing outstanding: sleep one pacing quantum.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }

  // Drain: every request in flight is still owed a response.
  while (!inflight.empty()) {
    auto response = client.ReadResponse();
    if (!response.ok()) {
      out->fatal = response.status();
      ++out->protocol_errors;
      out->unanswered += inflight.size();
      return;
    }
    if (!handle_response(*response)) {
      out->fatal = Status::Corruption("unmatched response id");
      out->unanswered += inflight.size();
      return;
    }
  }
}

double PercentileOf(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void AppendJsonNumber(std::string* out, const char* key, double value,
                      bool trailing_comma) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += buffer;
  if (trailing_comma) *out += ", ";
}

void AppendJsonCount(std::string* out, const char* key, uint64_t value,
                     bool trailing_comma) {
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += std::to_string(value);
  if (trailing_comma) *out += ", ";
}

}  // namespace

std::string LoadgenReport::ToJson() const {
  std::string out = "{";
  AppendJsonCount(&out, "requests_sent", requests_sent, true);
  AppendJsonCount(&out, "ok", ok, true);
  AppendJsonCount(&out, "busy", busy, true);
  AppendJsonCount(&out, "errors", errors, true);
  AppendJsonCount(&out, "protocol_errors", protocol_errors, true);
  AppendJsonCount(&out, "verify_failures", verify_failures, true);
  AppendJsonCount(&out, "unanswered", unanswered, true);
  AppendJsonCount(&out, "compress_ok", compress_ok, true);
  AppendJsonCount(&out, "decompress_ok", decompress_ok, true);
  AppendJsonCount(&out, "bytes_sent", bytes_sent, true);
  AppendJsonCount(&out, "bytes_received", bytes_received, true);
  AppendJsonNumber(&out, "wall_seconds", wall_seconds, true);
  AppendJsonNumber(&out, "requests_per_second", requests_per_second, true);
  AppendJsonNumber(&out, "latency_mean_us", latency_mean_us, true);
  AppendJsonNumber(&out, "latency_p50_us", latency_p50_us, true);
  AppendJsonNumber(&out, "latency_p90_us", latency_p90_us, true);
  AppendJsonNumber(&out, "latency_p99_us", latency_p99_us, true);
  AppendJsonNumber(&out, "latency_max_us", latency_max_us, false);
  out += "}";
  return out;
}

Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options) {
  if (options.connections == 0) {
    return Status::InvalidArgument("connections must be > 0");
  }
  if (options.pipeline_depth == 0) {
    return Status::InvalidArgument("pipeline_depth must be > 0");
  }
  if (options.payload_variants == 0) {
    return Status::InvalidArgument("payload_variants must be > 0");
  }
  if (options.width == 0 || options.width > 64) {
    return Status::InvalidArgument("width must be in [1, 64]");
  }
  if (options.verify && (!options.codec || !options.linearization)) {
    return Status::InvalidArgument(
        "verify needs a forced codec and linearization (EUPA's measured "
        "selection is not bit-reproducible across processes)");
  }

  // Reference data: the containers double as decompress inputs and as
  // the byte-identity oracle for compress responses.
  const CompressOptions copts = ForcedCompressOptions(options);
  std::vector<WorkerShared> shared(options.connections);
  for (size_t w = 0; w < options.connections; ++w) {
    for (size_t v = 0; v < options.payload_variants; ++v) {
      Bytes payload = MakePayload(options, w, v);
      IsobarCompressor compressor(copts);
      auto container = compressor.Compress(payload, options.width);
      if (!container.ok()) return container.status();
      shared[w].payloads.push_back(std::move(payload));
      shared[w].containers.push_back(std::move(*container));
    }
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (size_t w = 0; w < options.connections; ++w) {
    workers.emplace_back([&options, &shared, &results, w, deadline] {
      RunWorker(options, shared[w], w, deadline, &results[w]);
    });
  }
  for (std::thread& t : workers) t.join();
  const double wall = SecondsSince(start);

  LoadgenReport report;
  report.wall_seconds = wall;
  std::vector<double> latencies;
  Status first_fatal;
  for (const WorkerResult& r : results) {
    report.requests_sent += r.sent;
    report.ok += r.ok;
    report.busy += r.busy;
    report.errors += r.errors;
    report.protocol_errors += r.protocol_errors;
    report.verify_failures += r.verify_failures;
    report.compress_ok += r.compress_ok;
    report.decompress_ok += r.decompress_ok;
    report.bytes_sent += r.bytes_sent;
    report.bytes_received += r.bytes_received;
    report.unanswered += r.unanswered;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    if (first_fatal.ok() && !r.fatal.ok()) first_fatal = r.fatal;
  }
  report.requests_per_second =
      wall > 0 ? static_cast<double>(report.ok + report.busy + report.errors) /
                     wall
               : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0;
    for (double v : latencies) sum += v;
    report.latency_mean_us = sum / static_cast<double>(latencies.size());
    report.latency_p50_us = PercentileOf(latencies, 0.50);
    report.latency_p90_us = PercentileOf(latencies, 0.90);
    report.latency_p99_us = PercentileOf(latencies, 0.99);
    report.latency_max_us = latencies.back();
  }
  // A worker that could not even connect is a setup failure, not a
  // workload measurement.
  if (report.requests_sent == 0 && !first_fatal.ok()) return first_fatal;
  return report;
}

Result<std::string> FetchServerStats(const LoadgenOptions& endpoint) {
  ISOBAR_ASSIGN_OR_RETURN(Client client, Connect(endpoint));
  if (endpoint.recv_timeout_seconds > 0) {
    ISOBAR_RETURN_NOT_OK(
        client.SetReceiveTimeout(endpoint.recv_timeout_seconds));
  }
  return client.Stats();
}

Status RequestServerShutdown(const LoadgenOptions& endpoint) {
  ISOBAR_ASSIGN_OR_RETURN(Client client, Connect(endpoint));
  if (endpoint.recv_timeout_seconds > 0) {
    ISOBAR_RETURN_NOT_OK(
        client.SetReceiveTimeout(endpoint.recv_timeout_seconds));
  }
  return client.ShutdownServer();
}

}  // namespace isobar::server
