#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "server/job_queue.h"

namespace isobar::server {

Status Response::ToStatus() const {
  switch (status) {
    case ResponseStatus::kOk:
      return Status::OK();
    case ResponseStatus::kBusy:
      return Status::IOError(
          "server busy: " +
          std::string(AdmissionToString(static_cast<Admission>(aux))));
    case ResponseStatus::kError: {
      std::string message =
          payload.empty()
              ? std::string("server error")
              : std::string(reinterpret_cast<const char*>(payload.data()),
                            payload.size());
      const StatusCode code =
          aux > static_cast<uint64_t>(StatusCode::kNotSupported)
              ? StatusCode::kInternal
              : static_cast<StatusCode>(aux);
      return Status(code, std::move(message));
    }
  }
  return Status::Internal("unknown response status");
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      parser_(std::move(other.parser_)),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    parser_ = std::move(other.parser_);
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::ConnectUnix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " +
                                   socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(AF_UNIX): ") +
                           std::strerror(errno));
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    close(fd);
    return Status::IOError("connect(" + socket_path + "): " + error);
  }
  return Client(fd);
}

Result<Client> Client::ConnectTcp(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(AF_INET): ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    close(fd);
    return Status::IOError("connect(127.0.0.1:" + std::to_string(port) +
                           "): " + error);
  }
  return Client(fd);
}

Status Client::SetReceiveTimeout(double seconds) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(std::string("setsockopt(SO_RCVTIMEO): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status Client::Send(Op op, uint64_t request_id, uint64_t aux,
                    ByteSpan payload) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  const Bytes frame = EncodeRequest(op, request_id, aux, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Response> Client::ReadResponse() {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  uint8_t buffer[64 * 1024];
  while (pending_.empty()) {
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("timed out waiting for a response");
      }
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    std::vector<Frame> frames;
    ISOBAR_RETURN_NOT_OK(
        parser_.Feed(ByteSpan(buffer, static_cast<size_t>(n)), &frames));
    for (Frame& frame : frames) pending_.push_back(std::move(frame));
  }
  Frame frame = std::move(pending_.front());
  pending_.pop_front();
  Response response;
  if (frame.header.op > static_cast<uint8_t>(ResponseStatus::kError)) {
    return Status::Corruption("unknown response status " +
                              std::to_string(frame.header.op));
  }
  response.status = static_cast<ResponseStatus>(frame.header.op);
  response.request_id = frame.header.request_id;
  response.aux = frame.header.aux;
  response.payload = std::move(frame.payload);
  return response;
}

Result<Response> Client::Call(Op op, uint64_t aux, ByteSpan payload) {
  const uint64_t rid = next_request_id_++;
  ISOBAR_RETURN_NOT_OK(Send(op, rid, aux, payload));
  ISOBAR_ASSIGN_OR_RETURN(Response response, ReadResponse());
  if (response.request_id != rid) {
    return Status::Corruption(
        "response id " + std::to_string(response.request_id) +
        " does not match the only in-flight request " + std::to_string(rid));
  }
  return response;
}

Result<Bytes> Client::Compress(ByteSpan data, const CompressAux& aux) {
  ISOBAR_ASSIGN_OR_RETURN(Response response,
                          Call(Op::kCompress, PackCompressAux(aux), data));
  if (!response.ok()) return response.ToStatus();
  return std::move(response.payload);
}

Result<Bytes> Client::Decompress(ByteSpan container) {
  ISOBAR_ASSIGN_OR_RETURN(Response response,
                          Call(Op::kDecompress, 0, container));
  if (!response.ok()) return response.ToStatus();
  return std::move(response.payload);
}

Result<std::string> Client::Stats() {
  ISOBAR_ASSIGN_OR_RETURN(Response response, Call(Op::kStats, 0, {}));
  if (!response.ok()) return response.ToStatus();
  if (response.payload.empty()) return std::string();
  return std::string(reinterpret_cast<const char*>(response.payload.data()),
                     response.payload.size());
}

Status Client::Ping() {
  ISOBAR_ASSIGN_OR_RETURN(Response response, Call(Op::kPing, 0, {}));
  return response.ToStatus();
}

Status Client::ShutdownServer() {
  ISOBAR_ASSIGN_OR_RETURN(Response response, Call(Op::kShutdown, 0, {}));
  return response.ToStatus();
}

}  // namespace isobar::server
