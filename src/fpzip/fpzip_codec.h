#ifndef ISOBAR_FPZIP_FPZIP_CODEC_H_
#define ISOBAR_FPZIP_FPZIP_CODEC_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Reimplementation in the spirit of fpzip (Lindstrom & Isenburg, IEEE
/// TVCG 2006), the paper's second Table X comparator: traverse the field
/// in a spatially coherent order, predict each value with the
/// n-dimensional Lorenzo predictor, map prediction and actual value to
/// order-preserving integers, and code the XOR residual compactly.
///
/// Divergence from the original (documented in DESIGN.md): fpzip proper
/// arithmetic-codes the residuals; this implementation uses a 4-bit
/// leading-zero-byte header per value (packed two per byte) plus the raw
/// residual tail, trading a few percent of ratio for simplicity and
/// symmetric speed. Supports 4- and 8-byte floating point elements and
/// 1-D to 3-D grids.
class FpzipCodec {
 public:
  /// `element_width` must be 4 or 8. `dims` (row-major grid shape) may be
  /// empty, meaning a 1-D stream of whatever length is presented.
  explicit FpzipCodec(size_t element_width = 8,
                      std::vector<uint32_t> dims = {});

  Status Compress(ByteSpan input, Bytes* out) const;
  Status Decompress(ByteSpan input, size_t original_size, Bytes* out) const;

 private:
  size_t element_width_;
  std::vector<uint32_t> dims_;
};

}  // namespace isobar

#endif  // ISOBAR_FPZIP_FPZIP_CODEC_H_
