#include "fpzip/fpzip_codec.h"

#include <algorithm>
#include <bit>

#include "fpzip/lorenzo.h"

namespace isobar {
namespace {

int LeadingZeroBytes(uint64_t residual, size_t width) {
  if (residual == 0) return static_cast<int>(width);
  const int lzb = std::countl_zero(residual) / 8 - static_cast<int>(8 - width);
  return std::max(lzb, 0);
}

}  // namespace

FpzipCodec::FpzipCodec(size_t element_width, std::vector<uint32_t> dims)
    : element_width_(element_width), dims_(std::move(dims)) {}

Status FpzipCodec::Compress(ByteSpan input, Bytes* out) const {
  if (element_width_ != 4 && element_width_ != 8) {
    return Status::InvalidArgument("fpzip supports 4- or 8-byte elements");
  }
  if (input.size() % element_width_ != 0) {
    return Status::InvalidArgument("input is not a multiple of element width");
  }
  const uint64_t n = input.size() / element_width_;
  if (n == 0) {
    // Empty stream: header with a single zero-length dimension.
    out->assign({static_cast<uint8_t>(element_width_), 1, 0, 0, 0, 0});
    return Status::OK();
  }

  std::vector<uint32_t> dims = dims_;
  if (dims.empty()) {
    dims.push_back(static_cast<uint32_t>(n));
  }
  if (dims.size() > 3) {
    return Status::InvalidArgument("fpzip supports 1-3 dimensions");
  }
  uint64_t total = 1;
  for (uint32_t d : dims) {
    if (d == 0) return Status::InvalidArgument("grid dimension must be > 0");
    total *= d;
  }
  if (total != n) {
    return Status::InvalidArgument("grid shape does not match element count");
  }

  out->clear();
  out->reserve(input.size() / 2 + 16);
  out->push_back(static_cast<uint8_t>(element_width_));
  out->push_back(static_cast<uint8_t>(dims.size()));
  for (uint32_t d : dims) AppendLE32(*out, d);

  if (n == 0) return Status::OK();
  const LorenzoPredictor predictor(dims);
  const uint64_t value_mask =
      element_width_ == 4 ? 0xFFFFFFFFull : ~0ull;

  std::vector<uint64_t> ordered(n);
  uint64_t i = 0;
  while (i < n) {
    const uint64_t pair = std::min<uint64_t>(2, n - i);
    uint8_t header = 0;
    uint8_t tails[16];
    size_t tail_len = 0;
    for (uint64_t k = 0; k < pair; ++k) {
      const uint64_t index = i + k;
      uint64_t bits;
      if (element_width_ == 4) {
        bits = OrderedFromFloatBits32(LoadLE32(input.data() + index * 4));
      } else {
        bits = OrderedFromFloatBits64(LoadLE64(input.data() + index * 8));
      }
      ordered[index] = bits;
      const uint64_t pred = predictor.Predict(ordered, index) & value_mask;
      const uint64_t residual = bits ^ pred;
      const int lzb = LeadingZeroBytes(residual, element_width_);
      header |= static_cast<uint8_t>(lzb << (4 * k));
      const int tail_bytes = static_cast<int>(element_width_) - lzb;
      for (int b = 0; b < tail_bytes; ++b) {
        tails[tail_len++] = static_cast<uint8_t>(residual >> (8 * b));
      }
    }
    out->push_back(header);
    out->insert(out->end(), tails, tails + tail_len);
    i += pair;
  }
  return Status::OK();
}

Status FpzipCodec::Decompress(ByteSpan input, size_t original_size,
                              Bytes* out) const {
  size_t pos = 0;
  if (input.size() < 2) return Status::Corruption("fpzip: truncated header");
  const size_t width = input[pos++];
  if (width != 4 && width != 8) {
    return Status::Corruption("fpzip: invalid element width in stream");
  }
  const size_t ndims = input[pos++];
  if (ndims < 1 || ndims > 3) {
    return Status::Corruption("fpzip: invalid dimensionality in stream");
  }
  if (input.size() < pos + 4 * ndims) {
    return Status::Corruption("fpzip: truncated grid shape");
  }
  std::vector<uint32_t> dims(ndims);
  uint64_t total = 1;
  for (size_t i = 0; i < ndims; ++i) {
    dims[i] = LoadLE32(input.data() + pos);
    pos += 4;
    total *= dims[i];  // a zero dimension encodes the empty stream
  }
  if (total * width != original_size) {
    return Status::Corruption("fpzip: grid shape does not match output size");
  }

  out->clear();
  out->reserve(original_size);
  if (total == 0) return Status::OK();

  const LorenzoPredictor predictor(dims);
  const uint64_t value_mask = width == 4 ? 0xFFFFFFFFull : ~0ull;
  std::vector<uint64_t> ordered(total);

  uint64_t i = 0;
  while (i < total) {
    if (pos >= input.size()) return Status::Corruption("fpzip: truncated data");
    const uint8_t header = input[pos++];
    const uint64_t pair = std::min<uint64_t>(2, total - i);
    for (uint64_t k = 0; k < pair; ++k) {
      const int lzb = (header >> (4 * k)) & 0x0F;
      if (lzb > static_cast<int>(width)) {
        return Status::Corruption("fpzip: invalid residual header");
      }
      const int tail_bytes = static_cast<int>(width) - lzb;
      if (pos + static_cast<size_t>(tail_bytes) > input.size()) {
        return Status::Corruption("fpzip: truncated residual");
      }
      uint64_t residual = 0;
      for (int b = 0; b < tail_bytes; ++b) {
        residual |= static_cast<uint64_t>(input[pos++]) << (8 * b);
      }
      const uint64_t index = i + k;
      const uint64_t pred = predictor.Predict(ordered, index) & value_mask;
      const uint64_t bits = (pred ^ residual) & value_mask;
      ordered[index] = bits;
      if (width == 4) {
        AppendLE32(*out, FloatBitsFromOrdered32(static_cast<uint32_t>(bits)));
      } else {
        AppendLE64(*out, FloatBitsFromOrdered64(bits));
      }
    }
    i += pair;
  }
  if (pos != input.size()) {
    return Status::Corruption("fpzip: trailing bytes in stream");
  }
  return Status::OK();
}

}  // namespace isobar
