#ifndef ISOBAR_FPZIP_LORENZO_H_
#define ISOBAR_FPZIP_LORENZO_H_

#include <cstdint>
#include <span>
#include <vector>

namespace isobar {

/// Order-preserving bijections between IEEE bit patterns and unsigned
/// integers: negative values map below positive ones so that numeric
/// closeness of floats implies closeness of the mapped integers. This is
/// the integer domain in which fpzip forms and codes its residuals
/// (Lindstrom & Isenburg, TVCG 2006).
inline uint64_t OrderedFromFloatBits64(uint64_t bits) {
  return (bits & 0x8000000000000000ull) ? ~bits : (bits | 0x8000000000000000ull);
}
inline uint64_t FloatBitsFromOrdered64(uint64_t ordered) {
  return (ordered & 0x8000000000000000ull) ? (ordered & 0x7FFFFFFFFFFFFFFFull)
                                           : ~ordered;
}
inline uint32_t OrderedFromFloatBits32(uint32_t bits) {
  return (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
}
inline uint32_t FloatBitsFromOrdered32(uint32_t ordered) {
  return (ordered & 0x80000000u) ? (ordered & 0x7FFFFFFFu) : ~ordered;
}

/// n-dimensional Lorenzo predictor (Ibarria et al., CGF 2003): predicts the
/// value at the "high corner" of a unit hypercube as the alternating-sign
/// sum of the other corners. For 1-D data it degenerates to the previous
/// value; for 2-D, v[i-1][j] + v[i][j-1] - v[i-1][j-1]; and so on.
///
/// Operates in the ordered-integer domain with wraparound arithmetic, as
/// fpzip does, so prediction errors stay small for smooth fields. Grid
/// dimensions are row-major; out-of-bounds neighbours contribute 0.
class LorenzoPredictor {
 public:
  /// 1 to 3 dimensions.
  explicit LorenzoPredictor(std::span<const uint32_t> dims);

  /// Prediction for the element at `linear_index` given all previously
  /// visited elements in `values` (the caller fills values[0 ..
  /// linear_index-1] in row-major order before asking).
  uint64_t Predict(const std::vector<uint64_t>& values,
                   uint64_t linear_index) const;

  uint64_t total_elements() const { return total_; }

 private:
  uint32_t dims_[3] = {1, 1, 1};
  int ndims_ = 1;
  uint64_t total_ = 1;
  uint64_t stride_[3] = {1, 1, 1};  // stride of each dimension, row-major
};

}  // namespace isobar

#endif  // ISOBAR_FPZIP_LORENZO_H_
