#include "fpzip/lorenzo.h"

#include <cassert>

namespace isobar {

LorenzoPredictor::LorenzoPredictor(std::span<const uint32_t> dims) {
  assert(!dims.empty() && dims.size() <= 3);
  ndims_ = static_cast<int>(dims.size());
  total_ = 1;
  for (int i = 0; i < ndims_; ++i) {
    assert(dims[i] > 0);
    dims_[i] = dims[i];
    total_ *= dims[i];
  }
  // Row-major: the last dimension is contiguous.
  stride_[ndims_ - 1] = 1;
  for (int i = ndims_ - 2; i >= 0; --i) {
    stride_[i] = stride_[i + 1] * dims_[i + 1];
  }
}

uint64_t LorenzoPredictor::Predict(const std::vector<uint64_t>& values,
                                   uint64_t linear_index) const {
  // Decompose into coordinates.
  uint32_t coord[3];
  uint64_t rest = linear_index;
  for (int i = 0; i < ndims_; ++i) {
    coord[i] = static_cast<uint32_t>(rest / stride_[i]);
    rest %= stride_[i];
  }

  // Alternating-sign sum over the non-empty subsets of dimensions with a
  // -1 offset: |S| odd contributes +v, |S| even contributes -v.
  uint64_t prediction = 0;
  const int subsets = 1 << ndims_;
  for (int s = 1; s < subsets; ++s) {
    bool in_bounds = true;
    uint64_t index = linear_index;
    for (int i = 0; i < ndims_; ++i) {
      if (s & (1 << i)) {
        if (coord[i] == 0) {
          in_bounds = false;
          break;
        }
        index -= stride_[i];
      }
    }
    if (!in_bounds) continue;
    const uint64_t v = values[index];
    if (__builtin_popcount(static_cast<unsigned>(s)) % 2 == 1) {
      prediction += v;  // wraparound arithmetic, as in fpzip
    } else {
      prediction -= v;
    }
  }
  return prediction;
}

}  // namespace isobar
