#ifndef ISOBAR_TELEMETRY_METRICS_H_
#define ISOBAR_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace isobar::telemetry {

/// Compile-time kill switch: configure with -DISOBAR_TELEMETRY=OFF to
/// define ISOBAR_TELEMETRY_DISABLED and compile every record path down to
/// a constant-false branch the optimizer removes.
#ifdef ISOBAR_TELEMETRY_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Runtime toggle. Off by default: a single relaxed atomic load guards
/// every hot-path record, so a pipeline that never enables telemetry pays
/// one predictable branch per instrumentation site.
inline bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

/// Monotonic named counter. Thread-safe; increments are relaxed (totals
/// are exact, ordering between counters is not guaranteed mid-run).
class Counter {
 public:
  void Add(uint64_t n) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Lock-free histogram over power-of-two buckets: bucket b counts samples
/// v with 2^(b-1) <= v < 2^b (bucket 0 counts v == 0). Used for latency
/// (nanoseconds) and size (bytes) distributions; also tracks count, sum,
/// min and max exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Minimum observed value; 0 when empty.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();

  /// Index of the bucket `value` falls into.
  static int BucketFor(uint64_t value);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time copy of one counter / histogram, used for export and for
/// before/after diffing around a measured region.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  ///< kBuckets entries.

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimated value at quantile `q` in [0, 1] (0.5 = median), linearly
  /// interpolated inside the power-of-two bucket holding that rank and
  /// clamped to the exact [min, max] — so a single-valued histogram
  /// reports that value at every quantile, and the open-ended top bucket
  /// can never report beyond the largest sample actually seen. Returns 0
  /// for an empty histogram.
  double Percentile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      ///< sorted by name
  std::vector<HistogramSnapshot> histograms;  ///< sorted by name

  const CounterSnapshot* FindCounter(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

/// Counter/histogram deltas of `after` relative to `before` (entries
/// missing from `before` are taken whole). Histogram min/max are copied
/// from `after` — extrema do not subtract.
MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after);

/// Process-wide registry of named metrics. Instruments are created on
/// first use and live for the process lifetime, so hot paths cache the
/// returned reference in a function-local static and never touch the map
/// again:
///
///   static telemetry::Counter& calls =
///       telemetry::MetricsRegistry::Global().counter("analyzer.calls");
///   calls.Increment();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Get-or-create. References stay valid forever.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (names stay registered).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // std::map: stable addresses, deterministic (sorted) export order.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Convenience: the global registry's instruments.
inline Counter& GetCounter(std::string_view name) {
  return MetricsRegistry::Global().counter(name);
}
inline Histogram& GetHistogram(std::string_view name) {
  return MetricsRegistry::Global().histogram(name);
}

}  // namespace isobar::telemetry

#endif  // ISOBAR_TELEMETRY_METRICS_H_
