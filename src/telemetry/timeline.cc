#include "telemetry/timeline.h"

#include <algorithm>
#include <cstring>

namespace isobar::telemetry {

namespace internal {

std::atomic<bool> g_timeline_enabled{false};

// One ring slot, seqlock-protected (Boehm, "Can seqlocks get along with
// programming language memory models?"). The single writer makes seq odd,
// stores the fields relaxed, then makes seq even again with release;
// readers validate seq before and after their relaxed field loads and
// discard the slot if it moved. Every field is an atomic so the
// concurrent overwrite-during-read is a race only in the benign,
// sanitizer-clean sense.
struct TimelineSlot {
  std::atomic<uint64_t> seq{0};  // odd while being written
  std::atomic<const char*> name_data{nullptr};
  std::atomic<uint32_t> name_size{0};
  std::atomic<uint8_t> phase{0};
  std::atomic<int64_t> start_nanos{0};
  std::atomic<int64_t> duration_nanos{0};
  std::atomic<uint64_t> arg0{0};
  std::atomic<uint64_t> arg1{0};
};

struct TimelineThreadBuffer {
  explicit TimelineThreadBuffer(size_t capacity)
      : capacity(capacity), slots(new TimelineSlot[capacity]) {}

  uint32_t tid = 0;
  std::string name;  // guarded by Timeline::mutex_
  size_t capacity;
  std::atomic<uint64_t> cursor{0};  // total events ever written
  std::atomic<uint64_t> dropped{0};
  std::unique_ptr<TimelineSlot[]> slots;
};

}  // namespace internal

namespace {

using internal::TimelineSlot;
using internal::TimelineThreadBuffer;

// The calling thread's ring, once registered. A plain pointer so the hot
// path pays one TLS load; the buffer itself lives in (and is owned by)
// the leaked Timeline, so it outlives the thread.
thread_local TimelineThreadBuffer* t_buffer = nullptr;

// Name requested via SetCurrentThreadName before the thread's first
// emit; applied at registration.
thread_local std::string t_pending_name;

// Reads the slot holding absolute ring index `i`; false if the writer is
// mid-update or has already moved on. The writer bumps seq twice per
// event, so the event at absolute index i leaves seq at exactly
// 2*(i/capacity + 1) — requiring that exact value (not just an even,
// stable one) rejects slots a wrapping writer overwrote after the cursor
// was sampled. Without the generation check a snapshot racing a wrap
// could return a brand-new event in an old event's window position,
// breaking the oldest-to-newest ordering contract.
bool ReadSlot(const TimelineSlot& slot, uint64_t expected_seq,
              TimelineEventSnapshot* out) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != expected_seq) {
      if (seq_before > expected_seq) return false;  // lapped: gone for good
      continue;  // writer mid-update; retry
    }
    const char* name_data = slot.name_data.load(std::memory_order_relaxed);
    const uint32_t name_size = slot.name_size.load(std::memory_order_relaxed);
    const uint8_t phase = slot.phase.load(std::memory_order_relaxed);
    const int64_t start = slot.start_nanos.load(std::memory_order_relaxed);
    const int64_t duration =
        slot.duration_nanos.load(std::memory_order_relaxed);
    const uint64_t arg0 = slot.arg0.load(std::memory_order_relaxed);
    const uint64_t arg1 = slot.arg1.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
    out->name.assign(name_data, name_size);  // literal: safe to deref now
    out->phase = static_cast<TimelinePhase>(phase);
    out->start_nanos = start;
    out->duration_nanos = duration;
    out->arg0 = arg0;
    out->arg1 = arg1;
    return true;
  }
  return false;
}

}  // namespace

Timeline::~Timeline() = default;

Timeline& Timeline::Global() {
  static Timeline& timeline = *new Timeline();
  return timeline;
}

void Timeline::SetEnabled(bool enabled) {
  if constexpr (!kCompiledIn) {
    (void)enabled;
    return;
  }
  internal::g_timeline_enabled.store(enabled, std::memory_order_relaxed);
}

void Timeline::set_capacity_per_thread(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_per_thread_ = std::max<size_t>(capacity, 16);
}

size_t Timeline::capacity_per_thread() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_per_thread_;
}

internal::TimelineThreadBuffer* Timeline::RegisterCurrentThread() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<TimelineThreadBuffer>(capacity_per_thread_);
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  if (!t_pending_name.empty()) {
    buffer->name = t_pending_name;
    t_pending_name.clear();
    t_pending_name.shrink_to_fit();
  }
  buffers_.push_back(std::move(buffer));
  return buffers_.back().get();
}

void Timeline::Emit(std::string_view name, TimelinePhase phase,
                    int64_t start_nanos, int64_t duration_nanos,
                    uint64_t arg0, uint64_t arg1) {
  if (!Enabled()) return;
  TimelineThreadBuffer* buffer = t_buffer;
  if (buffer == nullptr) {
    buffer = Global().RegisterCurrentThread();
    t_buffer = buffer;
  }
  const uint64_t index = buffer->cursor.load(std::memory_order_relaxed);
  TimelineSlot& slot = buffer->slots[index % buffer->capacity];
  if (index >= buffer->capacity) {
    // The ring wraps: this write evicts the oldest event. Never silent —
    // an exporter that sees the counter move knows its window is partial.
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    static Counter& dropped_counter = GetCounter("telemetry.events_dropped");
    dropped_counter.Increment();
  }
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name_data.store(name.data(), std::memory_order_relaxed);
  slot.name_size.store(static_cast<uint32_t>(name.size()),
                       std::memory_order_relaxed);
  slot.phase.store(static_cast<uint8_t>(phase), std::memory_order_relaxed);
  slot.start_nanos.store(start_nanos, std::memory_order_relaxed);
  slot.duration_nanos.store(duration_nanos, std::memory_order_relaxed);
  slot.arg0.store(arg0, std::memory_order_relaxed);
  slot.arg1.store(arg1, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  buffer->cursor.store(index + 1, std::memory_order_release);
}

void Timeline::SetCurrentThreadName(std::string_view name) {
  if constexpr (!kCompiledIn) {
    (void)name;
    return;
  }
  if (t_buffer != nullptr) {
    std::lock_guard<std::mutex> lock(Global().mutex_);
    t_buffer->name.assign(name);
  } else if (Enabled()) {
    // Timeline already on: register now so the thread owns a named track
    // even if it never emits (a pool worker that wins no tasks still
    // shows up, visibly idle, instead of vanishing from the trace).
    t_pending_name.assign(name);
    t_buffer = Global().RegisterCurrentThread();
  } else {
    t_pending_name.assign(name);
  }
}

std::vector<ThreadTimelineSnapshot> Timeline::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ThreadTimelineSnapshot> out;
  out.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    ThreadTimelineSnapshot thread;
    thread.tid = buffer->tid;
    thread.name = buffer->name;
    thread.dropped = buffer->dropped.load(std::memory_order_relaxed);
    const uint64_t cursor = buffer->cursor.load(std::memory_order_acquire);
    const uint64_t count = std::min<uint64_t>(cursor, buffer->capacity);
    thread.events.reserve(count);
    for (uint64_t i = cursor - count; i < cursor; ++i) {
      TimelineEventSnapshot event;
      const uint64_t expected_seq = 2 * (i / buffer->capacity + 1);
      if (!ReadSlot(buffer->slots[i % buffer->capacity], expected_seq,
                    &event)) {
        continue;
      }
      event.tid = buffer->tid;
      thread.events.push_back(std::move(event));
    }
    out.push_back(std::move(thread));
  }
  return out;
}

std::vector<TimelineEventSnapshot> Timeline::SnapshotRecent(
    size_t max_events) const {
  std::vector<TimelineEventSnapshot> all;
  for (auto& thread : Snapshot()) {
    for (auto& event : thread.events) all.push_back(std::move(event));
  }
  // "Recent" means latest end time: a long-running slice that just closed
  // is part of the story even if it started long ago.
  std::sort(all.begin(), all.end(),
            [](const TimelineEventSnapshot& a, const TimelineEventSnapshot& b) {
              return a.start_nanos + a.duration_nanos <
                     b.start_nanos + b.duration_nanos;
            });
  if (all.size() > max_events) {
    all.erase(all.begin(), all.end() - static_cast<ptrdiff_t>(max_events));
  }
  std::sort(all.begin(), all.end(),
            [](const TimelineEventSnapshot& a, const TimelineEventSnapshot& b) {
              return a.start_nanos < b.start_nanos;
            });
  return all;
}

void Timeline::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->cursor.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
    // Slot seqs must restart too: readers derive the expected seq from
    // the absolute index, so stale generations would make every event
    // written after the rewind look lapped.
    for (size_t i = 0; i < buffer->capacity; ++i) {
      buffer->slots[i].seq.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace isobar::telemetry
