#ifndef ISOBAR_TELEMETRY_JSON_READER_H_
#define ISOBAR_TELEMETRY_JSON_READER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace isobar::telemetry {

/// Parsed JSON document node. A deliberately small DOM — just enough for
/// the inspector (`isobar_stat`) and the tests to read back what the
/// exporters in this directory write, and strict (RFC 8259) so the
/// exporters are continuously validated by their own consumers: no
/// comments, no trailing commas, no NaN/Infinity, UTF-8 escapes checked.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  /// Insertion-ordered members (exporters emit deterministic order and
  /// the inspector preserves it when printing).
  const std::vector<std::pair<std::string, JsonValue>>& object_members()
      const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed convenience accessors with a fallback.
  double NumberOr(double fallback) const {
    return is_number() ? number_ : fallback;
  }
  std::string StringOr(std::string_view fallback) const {
    return is_string() ? string_ : std::string(fallback);
  }

  /// Nested lookup sugar: Find(key) then NumberOr / StringOr.
  double FieldNumberOr(std::string_view key, double fallback) const;
  std::string FieldStringOr(std::string_view key,
                            std::string_view fallback) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document (rejects trailing garbage). Errors
/// carry 1-based line:column positions.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace isobar::telemetry

#endif  // ISOBAR_TELEMETRY_JSON_READER_H_
