#ifndef ISOBAR_TELEMETRY_SPAN_H_
#define ISOBAR_TELEMETRY_SPAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace isobar::telemetry {

/// One finished span, as kept by the bounded in-memory span log.
struct SpanRecord {
  uint64_t id = 0;         ///< process-unique, 1-based
  uint64_t parent_id = 0;  ///< 0 for a root span
  int depth = 0;           ///< 0 for a root span
  std::string name;
  int64_t start_nanos = 0;  ///< monotonic, relative to process start
  int64_t duration_nanos = 0;
};

/// Process-wide log of finished spans, bounded so that arbitrarily long
/// runs cannot grow memory without limit: once `capacity` records are
/// held, further spans still aggregate into their histograms but are not
/// logged individually (the `telemetry.spans_dropped` counter tracks how
/// many).
class SpanLog {
 public:
  static SpanLog& Global();

  void set_capacity(size_t capacity);
  size_t capacity() const;

  void Append(SpanRecord record);
  std::vector<SpanRecord> Snapshot() const;
  void Clear();

 private:
  SpanLog() = default;

  mutable std::mutex mutex_;
  size_t capacity_ = 8192;
  std::vector<SpanRecord> records_;
};

/// RAII wall-clock span covering one pipeline stage. Spans nest through a
/// thread-local stack, giving each record its parent and depth — the
/// hierarchy is pipeline → chunk → stage, e.g.:
///
///   compress
///   ├── eupa.select
///   └── compress.chunk            (one per chunk)
///       ├── chunk.analyze
///       ├── chunk.partition
///       └── chunk.solve
///
/// On destruction the duration is observed into the global histogram
/// `span.<name>.nanos` and the record appended to the SpanLog; when the
/// cross-thread Timeline is enabled the span also lands there as one
/// complete event carrying its args. When telemetry is disabled at
/// construction the span is inert (one relaxed atomic load; no clock
/// read).
///
/// `name` must outlive the span; instrumentation sites pass string
/// literals (the Timeline keeps only the pointer).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  /// As above, tagging the span with the pipeline id (arg0) and chunk
  /// ordinal + 1 (arg1) so timeline tooling can group slices per chunk.
  /// Zero means "unset" for both.
  ScopedSpan(std::string_view name, uint64_t arg0, uint64_t arg1);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  /// Nanoseconds since construction (0 for an inert span).
  int64_t ElapsedNanos() const;

 private:
  bool active_ = false;
  std::string_view name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  int64_t start_nanos_ = 0;
  uint64_t arg0_ = 0;
  uint64_t arg1_ = 0;
};

/// Monotonic nanoseconds since the first telemetry use in this process;
/// the time base of SpanRecord::start_nanos.
int64_t MonotonicNanos();

}  // namespace isobar::telemetry

#endif  // ISOBAR_TELEMETRY_SPAN_H_
