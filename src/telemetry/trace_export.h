#ifndef ISOBAR_TELEMETRY_TRACE_EXPORT_H_
#define ISOBAR_TELEMETRY_TRACE_EXPORT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/timeline.h"

namespace isobar::telemetry {

/// Everything the pipeline learned about one chunk: the analyzer verdict,
/// the byte-column partition map, the stage timings, and the exact byte
/// accounting of its container record. One record per encoded chunk.
struct ChunkTrace {
  uint64_t chunk_index = 0;  ///< 0-based, assigned by TraceRecorder::RecordChunk
  uint64_t element_count = 0;
  uint64_t input_bytes = 0;   ///< plaintext bytes of the chunk
  uint64_t output_bytes = 0;  ///< container record bytes (header + payload)

  bool improvable = false;  ///< analyzer verdict (§II.B)
  bool stored_raw = false;  ///< solver expanded; gathered bytes stored as-is
  uint64_t compressible_mask = 0;  ///< byte-column partition map (Fig. 4)
  double htc_fraction = 0.0;       ///< hard-to-compress byte fraction

  uint64_t solver_input_bytes = 0;   ///< gathered compressible bytes
  uint64_t solver_output_bytes = 0;  ///< solver section as written
  uint64_t raw_bytes = 0;            ///< verbatim noise section

  double analysis_seconds = 0.0;
  double partition_seconds = 0.0;
  double codec_seconds = 0.0;
};

/// One EUPA candidate measurement (mirrors CandidateEvaluation, kept as
/// plain strings so the trace layer does not depend on core headers).
struct CandidateTrace {
  std::string codec;
  std::string linearization;
  double ratio = 0.0;
  double throughput_mbps = 0.0;
};

/// One full pipeline run (a Compress() call or a stream writer lifetime).
struct PipelineTrace {
  uint64_t pipeline_id = 0;
  std::string codec;           ///< chosen solver
  std::string linearization;   ///< chosen linearization
  std::string preference;      ///< "speed" | "ratio"
  uint64_t width = 0;          ///< element width, bytes
  uint64_t input_bytes = 0;    ///< total plaintext
  uint64_t output_bytes = 0;   ///< total container bytes
  uint64_t header_bytes = 0;   ///< container header size
  std::vector<CandidateTrace> candidates;  ///< EUPA evidence
  std::vector<ChunkTrace> chunks;
  /// Chunks beyond the per-pipeline bound; their byte totals still
  /// accumulate into input_bytes/output_bytes.
  uint64_t dropped_chunks = 0;
  bool finished = false;
};

/// Bounded process-wide recorder of per-chunk pipeline traces. The
/// compression pipeline drives it directly; with tracing disabled every
/// call is a single branch.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Tracing is gated separately from metrics because traces hold
  /// per-chunk records (memory), not just aggregates.
  void SetEnabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// At most this many chunk records are kept per pipeline (default 4096);
  /// excess chunks count into PipelineTrace::dropped_chunks.
  void set_max_chunks_per_pipeline(size_t max_chunks);
  /// At most this many pipelines are kept (default 64); when full, the
  /// oldest finished pipeline is evicted.
  void set_max_pipelines(size_t max_pipelines);

  /// Opens a new pipeline trace and returns its id (0 when disabled).
  uint64_t BeginPipeline(std::string codec, std::string linearization,
                         std::string preference, uint64_t width);
  void RecordCandidate(uint64_t pipeline_id, CandidateTrace candidate);
  void RecordChunk(uint64_t pipeline_id, ChunkTrace chunk);
  void EndPipeline(uint64_t pipeline_id, uint64_t input_bytes,
                   uint64_t output_bytes, uint64_t header_bytes);

  std::vector<PipelineTrace> Snapshot() const;
  void Clear();

 private:
  TraceRecorder() = default;
  PipelineTrace* Find(uint64_t pipeline_id);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  size_t max_chunks_per_pipeline_ = 4096;
  size_t max_pipelines_ = 64;
  uint64_t next_id_ = 1;
  std::vector<PipelineTrace> pipelines_;
};

// --- Exporters -----------------------------------------------------------
// All exporters emit self-contained documents; JSON output is strict
// (RFC 8259) so downstream tooling can parse it without a lenient reader.

std::string MetricsToJson(const MetricsSnapshot& snapshot);
/// CSV with one row per instrument:
/// kind,name,count,sum,min,max,mean,p50,p90,p99 (counter rows leave the
/// histogram-only columns empty)
/// (counters use value for both count and sum).
std::string MetricsToCsv(const MetricsSnapshot& snapshot);

std::string TraceToJson(const std::vector<PipelineTrace>& pipelines);
/// CSV with one row per chunk across all pipelines.
std::string TraceToCsv(const std::vector<PipelineTrace>& pipelines);

std::string SpansToJson(const std::vector<SpanRecord>& spans);

/// Chrome trace-event JSON (the format chrome://tracing and Perfetto
/// load): one "X" complete event per timeline slice plus a thread_name
/// metadata event per track, ts/dur in fractional microseconds relative
/// to MonotonicNanos()'s epoch. Non-zero args are exported as
/// args.pipeline and args.chunk (the stored chunk+1 is decoded back to
/// the 0-based ordinal).
std::string TimelineToJson(const std::vector<ThreadTimelineSnapshot>& threads);

/// Same trace-event shape for a flat flight-recorder window (as embedded
/// in a SalvageReport): events carry their tid but no thread names.
std::string FlightRecorderToJson(
    const std::vector<TimelineEventSnapshot>& events);

/// The combined report the CLI's --metrics-json writes: current global
/// metrics, span log, and pipeline traces in one JSON document
/// ({"metrics": ..., "spans": ..., "pipelines": ...}).
std::string TelemetryReportJson();

}  // namespace isobar::telemetry

#endif  // ISOBAR_TELEMETRY_TRACE_EXPORT_H_
