#include "telemetry/span.h"

#include <atomic>
#include <mutex>

#include "telemetry/timeline.h"
#include "util/stopwatch.h"

namespace isobar::telemetry {
namespace {

std::atomic<uint64_t> g_next_span_id{1};

// Per-thread innermost open span, for parent/depth linkage.
struct ThreadSpanState {
  uint64_t current_id = 0;
  int depth = 0;
};
thread_local ThreadSpanState t_span_state;

}  // namespace

int64_t MonotonicNanos() {
  static const Stopwatch& epoch = *new Stopwatch();
  return epoch.ElapsedNanos();
}

SpanLog& SpanLog::Global() {
  static SpanLog& log = *new SpanLog();
  return log;
}

void SpanLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  if (records_.size() > capacity_) records_.resize(capacity_);
}

size_t SpanLog::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void SpanLog::Append(SpanRecord record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (records_.size() < capacity_) {
      records_.push_back(std::move(record));
      return;
    }
  }
  GetCounter("telemetry.spans_dropped").Increment();
}

std::vector<SpanRecord> SpanLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void SpanLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!Enabled()) return;
  active_ = true;
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = t_span_state.current_id;
  depth_ = t_span_state.depth;
  t_span_state.current_id = id_;
  ++t_span_state.depth;
  start_nanos_ = MonotonicNanos();
}

ScopedSpan::ScopedSpan(std::string_view name, uint64_t arg0, uint64_t arg1)
    : ScopedSpan(name) {
  arg0_ = arg0;
  arg1_ = arg1;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const int64_t duration = MonotonicNanos() - start_nanos_;
  t_span_state.current_id = parent_id_;
  --t_span_state.depth;

  if (Timeline::Enabled()) {
    Timeline::Emit(name_, TimelinePhase::kComplete, start_nanos_,
                   duration < 0 ? 0 : duration, arg0_, arg1_);
  }

  GetHistogram("span." + std::string(name_) + ".nanos")
      .Observe(static_cast<uint64_t>(duration < 0 ? 0 : duration));

  SpanRecord record;
  record.id = id_;
  record.parent_id = parent_id_;
  record.depth = depth_;
  record.name = std::string(name_);
  record.start_nanos = start_nanos_;
  record.duration_nanos = duration;
  SpanLog::Global().Append(std::move(record));
}

int64_t ScopedSpan::ElapsedNanos() const {
  if (!active_) return 0;
  return MonotonicNanos() - start_nanos_;
}

}  // namespace isobar::telemetry
