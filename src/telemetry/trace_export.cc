#include "telemetry/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace isobar::telemetry {
namespace {

// --- Minimal JSON writer -------------------------------------------------

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

// %.9g keeps nanosecond-scale second values exact enough for analysis
// while staying strictly JSON-number formatted (no inf/nan emitted; the
// telemetry layer never produces them).
void AppendDouble(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void AppendBool(bool v, std::string* out) { *out += v ? "true" : "false"; }

void AppendHistogramJson(const HistogramSnapshot& h, std::string* out) {
  *out += "{\"name\":";
  AppendEscaped(h.name, out);
  *out += ",\"count\":";
  AppendU64(h.count, out);
  *out += ",\"sum\":";
  AppendU64(h.sum, out);
  *out += ",\"min\":";
  AppendU64(h.min, out);
  *out += ",\"max\":";
  AppendU64(h.max, out);
  *out += ",\"mean\":";
  AppendDouble(h.mean(), out);
  *out += ",\"p50\":";
  AppendDouble(h.Percentile(0.50), out);
  *out += ",\"p90\":";
  AppendDouble(h.Percentile(0.90), out);
  *out += ",\"p99\":";
  AppendDouble(h.Percentile(0.99), out);
  // Sparse bucket map keeps the export compact: only non-empty buckets,
  // keyed by the bucket's exclusive upper bound 2^b (0 for the zero
  // bucket).
  *out += ",\"buckets\":{";
  bool first = true;
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    AppendU64(b == 0 ? 0 : (b >= 64 ? UINT64_MAX : (1ull << b)), out);
    *out += "\":";
    AppendU64(h.buckets[b], out);
  }
  *out += "}}";
}

void AppendChunkJson(const ChunkTrace& c, std::string* out) {
  *out += "{\"chunk_index\":";
  AppendU64(c.chunk_index, out);
  *out += ",\"element_count\":";
  AppendU64(c.element_count, out);
  *out += ",\"input_bytes\":";
  AppendU64(c.input_bytes, out);
  *out += ",\"output_bytes\":";
  AppendU64(c.output_bytes, out);
  *out += ",\"improvable\":";
  AppendBool(c.improvable, out);
  *out += ",\"stored_raw\":";
  AppendBool(c.stored_raw, out);
  *out += ",\"compressible_mask\":";
  AppendU64(c.compressible_mask, out);
  *out += ",\"htc_fraction\":";
  AppendDouble(c.htc_fraction, out);
  *out += ",\"solver_input_bytes\":";
  AppendU64(c.solver_input_bytes, out);
  *out += ",\"solver_output_bytes\":";
  AppendU64(c.solver_output_bytes, out);
  *out += ",\"raw_bytes\":";
  AppendU64(c.raw_bytes, out);
  *out += ",\"analysis_seconds\":";
  AppendDouble(c.analysis_seconds, out);
  *out += ",\"partition_seconds\":";
  AppendDouble(c.partition_seconds, out);
  *out += ",\"codec_seconds\":";
  AppendDouble(c.codec_seconds, out);
  *out += "}";
}

void AppendPipelineJson(const PipelineTrace& p, std::string* out) {
  *out += "{\"pipeline_id\":";
  AppendU64(p.pipeline_id, out);
  *out += ",\"codec\":";
  AppendEscaped(p.codec, out);
  *out += ",\"linearization\":";
  AppendEscaped(p.linearization, out);
  *out += ",\"preference\":";
  AppendEscaped(p.preference, out);
  *out += ",\"width\":";
  AppendU64(p.width, out);
  *out += ",\"input_bytes\":";
  AppendU64(p.input_bytes, out);
  *out += ",\"output_bytes\":";
  AppendU64(p.output_bytes, out);
  *out += ",\"header_bytes\":";
  AppendU64(p.header_bytes, out);
  *out += ",\"finished\":";
  AppendBool(p.finished, out);
  *out += ",\"dropped_chunks\":";
  AppendU64(p.dropped_chunks, out);
  *out += ",\"candidates\":[";
  for (size_t i = 0; i < p.candidates.size(); ++i) {
    if (i > 0) out->push_back(',');
    const CandidateTrace& cand = p.candidates[i];
    *out += "{\"codec\":";
    AppendEscaped(cand.codec, out);
    *out += ",\"linearization\":";
    AppendEscaped(cand.linearization, out);
    *out += ",\"ratio\":";
    AppendDouble(cand.ratio, out);
    *out += ",\"throughput_mbps\":";
    AppendDouble(cand.throughput_mbps, out);
    *out += "}";
  }
  *out += "],\"chunks\":[";
  for (size_t i = 0; i < p.chunks.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendChunkJson(p.chunks[i], out);
  }
  *out += "]}";
}

// Trace-event timestamps are microseconds; emitting them as integer
// micros with the nanosecond remainder as an exact 3-digit fraction keeps
// full precision at any run length (a %.9g double would round once a run
// passes ~1000 seconds).
void AppendMicrosFromNanos(int64_t nanos, std::string* out) {
  if (nanos < 0) nanos = 0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, nanos / 1000,
                nanos % 1000);
  *out += buf;
}

void AppendTimelineEventJson(const TimelineEventSnapshot& e,
                             std::string* out) {
  const bool complete = e.phase == TimelinePhase::kComplete;
  *out += complete ? "{\"ph\":\"X\"" : "{\"ph\":\"i\",\"s\":\"t\"";
  *out += ",\"pid\":1,\"tid\":";
  AppendU64(e.tid, out);
  *out += ",\"ts\":";
  AppendMicrosFromNanos(e.start_nanos, out);
  if (complete) {
    *out += ",\"dur\":";
    AppendMicrosFromNanos(e.duration_nanos, out);
  }
  *out += ",\"name\":";
  AppendEscaped(e.name, out);
  if (e.arg0 != 0 || e.arg1 != 0) {
    *out += ",\"args\":{";
    bool first = true;
    if (e.arg0 != 0) {
      *out += "\"pipeline\":";
      AppendU64(e.arg0, out);
      first = false;
    }
    if (e.arg1 != 0) {
      if (!first) out->push_back(',');
      *out += "\"chunk\":";
      AppendU64(e.arg1 - 1, out);
    }
    *out += "}";
  }
  *out += "}";
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder& recorder = *new TraceRecorder();
  return recorder;
}

void TraceRecorder::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::set_max_chunks_per_pipeline(size_t max_chunks) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_chunks_per_pipeline_ = max_chunks;
}

void TraceRecorder::set_max_pipelines(size_t max_pipelines) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_pipelines_ = max_pipelines;
}

PipelineTrace* TraceRecorder::Find(uint64_t pipeline_id) {
  for (auto& p : pipelines_) {
    if (p.pipeline_id == pipeline_id) return &p;
  }
  return nullptr;
}

uint64_t TraceRecorder::BeginPipeline(std::string codec,
                                      std::string linearization,
                                      std::string preference, uint64_t width) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipelines_.size() >= max_pipelines_) {
    // Evict the oldest finished pipeline; if none finished, the oldest.
    auto victim = std::find_if(pipelines_.begin(), pipelines_.end(),
                               [](const PipelineTrace& p) { return p.finished; });
    if (victim == pipelines_.end()) victim = pipelines_.begin();
    pipelines_.erase(victim);
  }
  PipelineTrace trace;
  trace.pipeline_id = next_id_++;
  trace.codec = std::move(codec);
  trace.linearization = std::move(linearization);
  trace.preference = std::move(preference);
  trace.width = width;
  pipelines_.push_back(std::move(trace));
  return pipelines_.back().pipeline_id;
}

void TraceRecorder::RecordCandidate(uint64_t pipeline_id,
                                    CandidateTrace candidate) {
  if (!enabled() || pipeline_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PipelineTrace* p = Find(pipeline_id);
  if (p != nullptr) p->candidates.push_back(std::move(candidate));
}

void TraceRecorder::RecordChunk(uint64_t pipeline_id, ChunkTrace chunk) {
  if (!enabled() || pipeline_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PipelineTrace* p = Find(pipeline_id);
  if (p == nullptr) return;
  chunk.chunk_index = p->chunks.size() + p->dropped_chunks;
  if (p->chunks.size() >= max_chunks_per_pipeline_) {
    ++p->dropped_chunks;
    // Same drop counter the timeline rings use: any bounded telemetry
    // store that sheds data announces it here.
    static Counter& dropped = GetCounter("telemetry.events_dropped");
    dropped.Increment();
    return;
  }
  p->chunks.push_back(std::move(chunk));
}

void TraceRecorder::EndPipeline(uint64_t pipeline_id, uint64_t input_bytes,
                                uint64_t output_bytes, uint64_t header_bytes) {
  if (pipeline_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PipelineTrace* p = Find(pipeline_id);
  if (p == nullptr) return;
  p->input_bytes = input_bytes;
  p->output_bytes = output_bytes;
  p->header_bytes = header_bytes;
  p->finished = true;
}

std::vector<PipelineTrace> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pipelines_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  pipelines_.clear();
}

// --- Exporters -----------------------------------------------------------

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendEscaped(snapshot.counters[i].name, &out);
    out.push_back(':');
    AppendU64(snapshot.counters[i].value, &out);
  }
  out += "},\"histograms\":[";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendHistogramJson(snapshot.histograms[i], &out);
  }
  out += "]}";
  return out;
}

std::string MetricsToCsv(const MetricsSnapshot& snapshot) {
  std::string out = "kind,name,count,sum,min,max,mean,p50,p90,p99\n";
  for (const auto& c : snapshot.counters) {
    out += "counter," + c.name + ",";
    AppendU64(c.value, &out);
    out.push_back(',');
    AppendU64(c.value, &out);
    out += ",,,,,,\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "histogram," + h.name + ",";
    AppendU64(h.count, &out);
    out.push_back(',');
    AppendU64(h.sum, &out);
    out.push_back(',');
    AppendU64(h.min, &out);
    out.push_back(',');
    AppendU64(h.max, &out);
    out.push_back(',');
    AppendDouble(h.mean(), &out);
    out.push_back(',');
    AppendDouble(h.Percentile(0.50), &out);
    out.push_back(',');
    AppendDouble(h.Percentile(0.90), &out);
    out.push_back(',');
    AppendDouble(h.Percentile(0.99), &out);
    out.push_back('\n');
  }
  return out;
}

std::string TraceToJson(const std::vector<PipelineTrace>& pipelines) {
  std::string out = "[";
  for (size_t i = 0; i < pipelines.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendPipelineJson(pipelines[i], &out);
  }
  out += "]";
  return out;
}

std::string TraceToCsv(const std::vector<PipelineTrace>& pipelines) {
  std::string out =
      "pipeline_id,chunk_index,element_count,input_bytes,output_bytes,"
      "improvable,stored_raw,compressible_mask,htc_fraction,"
      "solver_input_bytes,solver_output_bytes,raw_bytes,"
      "analysis_seconds,partition_seconds,codec_seconds\n";
  for (const auto& p : pipelines) {
    for (const auto& c : p.chunks) {
      AppendU64(p.pipeline_id, &out);
      out.push_back(',');
      AppendU64(c.chunk_index, &out);
      out.push_back(',');
      AppendU64(c.element_count, &out);
      out.push_back(',');
      AppendU64(c.input_bytes, &out);
      out.push_back(',');
      AppendU64(c.output_bytes, &out);
      out.push_back(',');
      out += c.improvable ? "1," : "0,";
      out += c.stored_raw ? "1," : "0,";
      AppendU64(c.compressible_mask, &out);
      out.push_back(',');
      AppendDouble(c.htc_fraction, &out);
      out.push_back(',');
      AppendU64(c.solver_input_bytes, &out);
      out.push_back(',');
      AppendU64(c.solver_output_bytes, &out);
      out.push_back(',');
      AppendU64(c.raw_bytes, &out);
      out.push_back(',');
      AppendDouble(c.analysis_seconds, &out);
      out.push_back(',');
      AppendDouble(c.partition_seconds, &out);
      out.push_back(',');
      AppendDouble(c.codec_seconds, &out);
      out.push_back('\n');
    }
  }
  return out;
}

std::string SpansToJson(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out.push_back(',');
    const SpanRecord& s = spans[i];
    out += "{\"id\":";
    AppendU64(s.id, &out);
    out += ",\"parent_id\":";
    AppendU64(s.parent_id, &out);
    out += ",\"depth\":";
    AppendI64(s.depth, &out);
    out += ",\"name\":";
    AppendEscaped(s.name, &out);
    out += ",\"start_nanos\":";
    AppendI64(s.start_nanos, &out);
    out += ",\"duration_nanos\":";
    AppendI64(s.duration_nanos, &out);
    out += "}";
  }
  out += "]";
  return out;
}

std::string TimelineToJson(const std::vector<ThreadTimelineSnapshot>& threads) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& thread : threads) {
    if (!first) out.push_back(',');
    first = false;
    // Metadata event naming the track; unnamed threads still get a
    // stable, readable label.
    std::string label = thread.name;
    if (label.empty()) {
      label = "thread-";
      AppendU64(thread.tid, &label);
    }
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    AppendU64(thread.tid, &out);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendEscaped(label, &out);
    out += "}}";
    for (const auto& event : thread.events) {
      out.push_back(',');
      AppendTimelineEventJson(event, &out);
    }
  }
  out += "]}";
  return out;
}

std::string FlightRecorderToJson(
    const std::vector<TimelineEventSnapshot>& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendTimelineEventJson(events[i], &out);
  }
  out += "]";
  return out;
}

std::string TelemetryReportJson() {
  std::string out = "{\"metrics\":";
  out += MetricsToJson(MetricsRegistry::Global().Snapshot());
  out += ",\"spans\":";
  out += SpansToJson(SpanLog::Global().Snapshot());
  out += ",\"pipelines\":";
  out += TraceToJson(TraceRecorder::Global().Snapshot());
  out += "}";
  return out;
}

}  // namespace isobar::telemetry
