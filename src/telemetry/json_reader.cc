#include "telemetry/json_reader.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace isobar::telemetry {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::FieldNumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->NumberOr(fallback);
}

std::string JsonValue::FieldStringOr(std::string_view key,
                                     std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? std::string(fallback) : v->StringOr(fallback);
}

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(items);
  return out;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(members);
  return out;
}

namespace {

/// Nesting bound: the exporters emit at most ~6 levels; 64 leaves head
/// room while keeping a hostile input from exhausting the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    ISOBAR_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after top-level value");
    }
    return value;
  }

 private:
  Status Error(std::string message) const {
    size_t line = 1;
    size_t column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return Status::InvalidArgument("json parse error at " +
                                   std::to_string(line) + ":" +
                                   std::to_string(column) + ": " + message);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (AtEnd() || Peek() != expected) return false;
    ++pos_;
    return true;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        ISOBAR_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view literal, JsonValue value,
                      JsonValue* out) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("leading zero in number");
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit required after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit required in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return Status::OK();
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          ISOBAR_RETURN_NOT_OK(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired surrogate");
            }
            unsigned low = 0;
            ISOBAR_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            const unsigned cp =
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            AppendUtf8(cp, out);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          } else {
            AppendUtf8(code, out);
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Error("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue item;
      ISOBAR_RETURN_NOT_OK(ParseValue(depth + 1, &item));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::OK();
  }

  Status ParseObject(int depth, JsonValue* out) {
    Consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      ISOBAR_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      JsonValue value;
      ISOBAR_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    *out = JsonValue::Object(std::move(members));
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace isobar::telemetry
