#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

namespace isobar::telemetry {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool enabled) {
  if constexpr (kCompiledIn) {
    internal::g_enabled.store(enabled, std::memory_order_relaxed);
  } else {
    (void)enabled;
  }
}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return 64 - __builtin_clzll(value);  // in [1, 64]; bucket 64 clamps below
}

void Histogram::Observe(uint64_t value) {
  if (!Enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  const int b = std::min(BucketFor(value), kBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);

  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile within the cumulative distribution
  // (nearest-rank with linear interpolation inside the holding bucket).
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cumulative + buckets[b];
    if (rank <= static_cast<double>(next) || next == count) {
      // Bucket 0 holds exactly-zero samples; bucket b >= 1 spans
      // [2^(b-1), 2^b). Interpolate by the fraction of the bucket's
      // population below the rank.
      const double lo = b == 0 ? 0.0 : (b == 1 ? 1.0 : std::ldexp(1.0, b - 1));
      const double hi = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      const double value = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      // The exact extrema bound the estimate: they tighten the first and
      // last buckets (including the open-ended top one).
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

const CounterSnapshot* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& c : after.counters) {
    const CounterSnapshot* prev = before.FindCounter(c.name);
    const uint64_t base = prev == nullptr ? 0 : prev->value;
    delta.counters.push_back({c.name, c.value >= base ? c.value - base : 0});
  }
  for (const auto& h : after.histograms) {
    const HistogramSnapshot* prev = before.FindHistogram(h.name);
    HistogramSnapshot d = h;
    if (prev != nullptr) {
      d.count = h.count >= prev->count ? h.count - prev->count : 0;
      d.sum = h.sum >= prev->sum ? h.sum - prev->sum : 0;
      for (size_t b = 0; b < d.buckets.size() && b < prev->buckets.size();
           ++b) {
        d.buckets[b] = h.buckets[b] >= prev->buckets[b]
                           ? h.buckets[b] - prev->buckets[b]
                           : 0;
      }
    }
    delta.histograms.push_back(std::move(d));
  }
  return delta;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Never destroyed: instruments may be touched from static destructors.
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter.value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram.count();
    h.sum = histogram.sum();
    h.min = histogram.min();
    h.max = histogram.max();
    h.buckets.resize(Histogram::kBuckets);
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      h.buckets[b] = histogram.bucket(b);
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, histogram] : histograms_) histogram.Reset();
}

}  // namespace isobar::telemetry
