#ifndef ISOBAR_TELEMETRY_TIMELINE_H_
#define ISOBAR_TELEMETRY_TIMELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace isobar::telemetry {

/// Kind of a timeline event.
enum class TimelinePhase : uint8_t {
  kComplete = 0,  ///< A finished slice: start + duration (Chrome "X").
  kInstant = 1,   ///< A point in time (Chrome "i").
};

/// One decoded event, as returned by Timeline snapshots. The recording
/// side stores only a pointer to the (static-lifetime) name; snapshots
/// materialize it into an owning string so callers can hold or ship them
/// without any lifetime coupling to the instrumentation sites.
struct TimelineEventSnapshot {
  std::string name;
  uint32_t tid = 0;  ///< Timeline thread index (registration order).
  TimelinePhase phase = TimelinePhase::kComplete;
  int64_t start_nanos = 0;     ///< MonotonicNanos() time base.
  int64_t duration_nanos = 0;  ///< 0 for instants.
  uint64_t arg0 = 0;           ///< Pipeline id (0 = unset).
  uint64_t arg1 = 0;           ///< Chunk index + 1 (0 = unset).
};

/// Everything one thread's ring buffer held at snapshot time.
struct ThreadTimelineSnapshot {
  uint32_t tid = 0;
  std::string name;        ///< Empty when the thread never named itself.
  uint64_t dropped = 0;    ///< Events overwritten by ring wrap-around.
  std::vector<TimelineEventSnapshot> events;  ///< Oldest to newest.
};

namespace internal {
extern std::atomic<bool> g_timeline_enabled;
struct TimelineThreadBuffer;
}  // namespace internal

/// Process-wide cross-thread event timeline. Each thread that emits gets
/// its own fixed-capacity ring buffer, written lock-free (a per-slot
/// seqlock: the single writer bumps a sequence counter around its field
/// stores, readers discard slots whose sequence moved under them), so a
/// worker records a pipeline-stage event in tens of nanoseconds and never
/// contends with other workers or with an exporter snapshotting mid-run.
///
/// The rings overwrite their oldest events when full — the timeline is a
/// flight recorder, always holding the most recent window of activity —
/// and every overwrite counts into `telemetry.events_dropped`.
///
/// Event names must have process lifetime (instrumentation sites pass
/// string literals); only the pointer is stored on the hot path.
class Timeline {
 public:
  static Timeline& Global();

  /// Gated separately from metrics (events hold memory, not aggregates),
  /// same pattern as TraceRecorder. Off by default; one relaxed load per
  /// emit site when off, and with ISOBAR_TELEMETRY=OFF the check folds to
  /// constant false.
  static bool Enabled() {
    if constexpr (!kCompiledIn) return false;
    return internal::g_timeline_enabled.load(std::memory_order_relaxed);
  }
  void SetEnabled(bool enabled);

  /// Ring capacity (events) for threads that register after the call;
  /// already-registered threads keep their rings. Clamped to >= 16.
  /// Default 8192 events per thread.
  void set_capacity_per_thread(size_t capacity);
  size_t capacity_per_thread() const;

  /// Records one event on the calling thread's ring (registering the
  /// thread on first use). `name` must outlive the process (pass a string
  /// literal). No-op when disabled.
  static void Emit(std::string_view name, TimelinePhase phase,
                   int64_t start_nanos, int64_t duration_nanos,
                   uint64_t arg0 = 0, uint64_t arg1 = 0);

  /// Names the calling thread's timeline track ("worker-3", "writer").
  /// Callable before the thread ever emits (the name is stashed and
  /// applied on registration); cheap enough to call unconditionally.
  static void SetCurrentThreadName(std::string_view name);

  /// Every thread's ring, decoded oldest-to-newest. Safe to call while
  /// workers are emitting: slots being overwritten mid-read are detected
  /// by their seqlock and skipped.
  std::vector<ThreadTimelineSnapshot> Snapshot() const;

  /// The `max_events` most recently *finished* events across all threads,
  /// ordered by start time — the flight-recorder view a post-mortem
  /// report embeds.
  std::vector<TimelineEventSnapshot> SnapshotRecent(size_t max_events) const;

  /// Rewinds every ring (registered threads stay registered, capacities
  /// keep). Test hook: only safe while no thread is emitting.
  void Clear();

 private:
  Timeline() = default;
  ~Timeline();  // never runs: Global() is leaked, like the registry
  internal::TimelineThreadBuffer* RegisterCurrentThread();

  mutable std::mutex mutex_;  ///< Guards buffers_ and capacity_.
  size_t capacity_per_thread_ = 8192;
  std::vector<std::unique_ptr<internal::TimelineThreadBuffer>> buffers_;
};

}  // namespace isobar::telemetry

#endif  // ISOBAR_TELEMETRY_TIMELINE_H_
