#ifndef ISOBAR_PFOR_PFOR_CODEC_H_
#define ISOBAR_PFOR_PFOR_CODEC_H_

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Preprocessing applied before frame-of-reference packing.
enum class PforMode : uint8_t {
  kFor = 0,    ///< Plain PFOR: frame of reference per block.
  kDelta = 1,  ///< PFOR-DELTA: zigzag-coded first differences, then FOR.
};

/// Reimplementation of PFOR / PFOR-DELTA (Zukowski, Héman, Nes & Boncz,
/// "Super-scalar RAM-CPU cache compression", ICDE 2006), the paper's
/// Related Work comparator for integer data.
///
/// Values are processed in blocks of 128. Each block stores a base (the
/// block minimum), a bit width b, and the 128 offsets bit-packed at b
/// bits; offsets that do not fit ("exceptions", the *patched* part of
/// Patched FOR) are stored verbatim in an exception list and their packed
/// slots hold zero. b is chosen per block to minimize the encoded size,
/// which reproduces the original's ~X% exception-rate heuristic without
/// its hand-tuned constant.
///
/// Block layout: [u8 bits][u8 exceptions][LE64 base]
///               [ceil(n*b/8) packed bytes][exceptions x (u8 idx, LE64)].
/// Stream layout: [u8 mode][blocks...]. Operates on arrays of 8-byte
/// little-endian integers.
class PforCodec {
 public:
  explicit PforCodec(PforMode mode = PforMode::kFor);

  PforMode mode() const { return mode_; }

  /// input.size() must be a multiple of 8.
  Status Compress(ByteSpan input, Bytes* out) const;

  /// `original_size` is the exact pre-compression byte count.
  Status Decompress(ByteSpan input, size_t original_size, Bytes* out) const;

 private:
  PforMode mode_;
};

}  // namespace isobar

#endif  // ISOBAR_PFOR_PFOR_CODEC_H_
