#include "pfor/pfor_codec.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace isobar {
namespace {

constexpr size_t kBlockValues = 128;
constexpr size_t kBlockHeaderBytes = 1 + 1 + 8;
constexpr size_t kExceptionBytes = 1 + 8;

// Zigzag maps signed differences to small unsigned values so that both
// +d and -d pack into ~log2(d)+1 bits.
uint64_t ZigzagEncode(uint64_t diff) {
  const int64_t s = static_cast<int64_t>(diff);
  return (static_cast<uint64_t>(s) << 1) ^ static_cast<uint64_t>(s >> 63);
}

uint64_t ZigzagDecode(uint64_t zz) {
  return (zz >> 1) ^ (~(zz & 1) + 1);
}

int BitWidth(uint64_t v) { return v == 0 ? 0 : 64 - std::countl_zero(v); }

// LSB-first bit packer. The accumulator is 128 bits wide so a full
// 64-bit value can land on any bit offset in [0, 7] without overflow.
class BitPacker {
 public:
  explicit BitPacker(Bytes* out) : out_(out) {}

  void Write(uint64_t value, int bits) {
    const uint64_t masked =
        bits >= 64 ? value : (value & ((1ull << bits) - 1));
    acc_ |= static_cast<unsigned __int128>(masked) << filled_;
    filled_ += bits;
    while (filled_ >= 8) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  Bytes* out_;
  unsigned __int128 acc_ = 0;
  int filled_ = 0;
};

// LSB-first bit unpacker over a fixed span; 128-bit accumulator for the
// same reason as the packer.
class BitUnpacker {
 public:
  explicit BitUnpacker(ByteSpan data) : data_(data) {}

  uint64_t Read(int bits) {
    while (filled_ < bits && pos_ < data_.size()) {
      acc_ |= static_cast<unsigned __int128>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
    const uint64_t value =
        bits >= 64 ? static_cast<uint64_t>(acc_)
                   : static_cast<uint64_t>(acc_) & ((1ull << bits) - 1);
    acc_ >>= bits;
    filled_ = std::max(filled_ - bits, 0);
    return value;
  }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
  unsigned __int128 acc_ = 0;
  int filled_ = 0;
};

// Chooses the bit width minimizing the encoded size of one block.
int ChooseBits(const uint64_t* offsets, size_t n) {
  // count_wider[b] = offsets needing more than b bits.
  int width_histogram[65] = {};
  for (size_t i = 0; i < n; ++i) ++width_histogram[BitWidth(offsets[i])];
  size_t wider = 0;
  size_t best_cost = SIZE_MAX;
  int best_bits = 64;
  // Scan from 64 down, accumulating how many offsets exceed each width.
  size_t exceeding[65];
  for (int b = 64; b >= 0; --b) {
    exceeding[b] = wider;
    if (b > 0) wider += width_histogram[b];
  }
  for (int b = 0; b <= 64; ++b) {
    if (exceeding[b] > 255) continue;  // exception index count is a u8... count fits, but cap anyway
    const size_t cost =
        (n * static_cast<size_t>(b) + 7) / 8 + exceeding[b] * kExceptionBytes;
    if (cost < best_cost) {
      best_cost = cost;
      best_bits = b;
    }
  }
  return best_bits;
}

}  // namespace

PforCodec::PforCodec(PforMode mode) : mode_(mode) {}

Status PforCodec::Compress(ByteSpan input, Bytes* out) const {
  if (input.size() % 8 != 0) {
    return Status::InvalidArgument("PFOR input must be 8-byte elements");
  }
  const size_t n = input.size() / 8;
  out->clear();
  out->reserve(input.size() / 2 + 16);
  out->push_back(static_cast<uint8_t>(mode_));

  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = LoadLE64(input.data() + i * 8);
  if (mode_ == PforMode::kDelta) {
    uint64_t previous = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t current = values[i];
      values[i] = ZigzagEncode(current - previous);
      previous = current;
    }
  }

  uint64_t offsets[kBlockValues];
  for (size_t start = 0; start < n; start += kBlockValues) {
    const size_t count = std::min(kBlockValues, n - start);
    uint64_t base = values[start];
    for (size_t i = 1; i < count; ++i) base = std::min(base, values[start + i]);
    for (size_t i = 0; i < count; ++i) offsets[i] = values[start + i] - base;

    const int bits = ChooseBits(offsets, count);
    const uint64_t limit = bits >= 64 ? ~0ull : ((1ull << bits) - 1);

    uint8_t exception_index[kBlockValues];
    uint64_t exception_value[kBlockValues];
    size_t exceptions = 0;
    for (size_t i = 0; i < count; ++i) {
      if (offsets[i] > limit) {
        exception_index[exceptions] = static_cast<uint8_t>(i);
        exception_value[exceptions] = offsets[i];
        ++exceptions;
        offsets[i] = 0;  // packed slot is a placeholder
      }
    }

    out->push_back(static_cast<uint8_t>(bits));
    out->push_back(static_cast<uint8_t>(exceptions));
    AppendLE64(*out, base);
    BitPacker packer(out);
    for (size_t i = 0; i < count; ++i) packer.Write(offsets[i], bits);
    packer.Flush();
    for (size_t e = 0; e < exceptions; ++e) {
      out->push_back(exception_index[e]);
      AppendLE64(*out, exception_value[e]);
    }
  }
  return Status::OK();
}

Status PforCodec::Decompress(ByteSpan input, size_t original_size,
                             Bytes* out) const {
  if (original_size % 8 != 0) {
    return Status::InvalidArgument("PFOR output size must be 8-byte aligned");
  }
  if (input.empty()) return Status::Corruption("pfor: empty stream");
  const uint8_t mode_byte = input[0];
  if (mode_byte > static_cast<uint8_t>(PforMode::kDelta)) {
    return Status::Corruption("pfor: unknown mode");
  }
  const PforMode mode = static_cast<PforMode>(mode_byte);
  const size_t n = original_size / 8;

  out->clear();
  out->reserve(original_size);
  std::vector<uint64_t> values;
  values.reserve(n);

  size_t pos = 1;
  size_t remaining = n;
  while (remaining > 0) {
    if (pos + kBlockHeaderBytes > input.size()) {
      return Status::Corruption("pfor: truncated block header");
    }
    const int bits = input[pos];
    const size_t exceptions = input[pos + 1];
    if (bits > 64) return Status::Corruption("pfor: invalid bit width");
    const uint64_t base = LoadLE64(input.data() + pos + 2);
    pos += kBlockHeaderBytes;

    const size_t count = std::min(kBlockValues, remaining);
    const size_t packed_bytes = (count * static_cast<size_t>(bits) + 7) / 8;
    if (pos + packed_bytes + exceptions * kExceptionBytes > input.size()) {
      return Status::Corruption("pfor: truncated block payload");
    }

    const size_t block_first = values.size();
    BitUnpacker unpacker(input.subspan(pos, packed_bytes));
    for (size_t i = 0; i < count; ++i) {
      values.push_back(base + unpacker.Read(bits));
    }
    pos += packed_bytes;

    for (size_t e = 0; e < exceptions; ++e) {
      const uint8_t index = input[pos];
      const uint64_t offset = LoadLE64(input.data() + pos + 1);
      pos += kExceptionBytes;
      if (index >= count) {
        return Status::Corruption("pfor: exception index out of range");
      }
      values[block_first + index] = base + offset;
    }
    remaining -= count;
  }
  if (pos != input.size()) {
    return Status::Corruption("pfor: trailing bytes in stream");
  }

  if (mode == PforMode::kDelta) {
    uint64_t previous = 0;
    for (uint64_t& v : values) {
      previous += ZigzagDecode(v);
      v = previous;
    }
  }
  for (uint64_t v : values) AppendLE64(*out, v);
  return Status::OK();
}

}  // namespace isobar
