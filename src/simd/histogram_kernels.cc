#include <algorithm>
#include <cstring>

#include "simd/kernels.h"
#include "util/bytes.h"

namespace isobar::simd::internal {
namespace {

// Block size for the cache-blocked generic path: the block is re-read once
// per column, so it must sit in L2 across all width passes.
constexpr size_t kHistogramBlockBytes = 128 * 1024;

// The interleaved sub-counters are uint32_t to halve their cache
// footprint; a single flush interval must therefore stay below 2^32
// elements. Every Update call in the pipeline is far below this (chunks
// are megabytes), but the kernel guards it anyway.
constexpr size_t kFlushElements = size_t{1} << 31;

// Width-4 fast path: one pass over the data, 16 independent increment
// chains (4 columns x 4 interleaved lanes), two 8-byte loads per 4
// elements. Counter footprint: 4 * 4 * 256 * 4B = 16 KiB.
void HistogramUpdateW4(const uint8_t* data, size_t n, uint64_t* hists) {
  alignas(64) uint32_t cnt[4][4][256];
  std::memset(cnt, 0, sizeof(cnt));
  const uint8_t* p = data;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t w0 = LoadLE64(p);      // elements i, i+1
    const uint64_t w1 = LoadLE64(p + 8);  // elements i+2, i+3
    ++cnt[0][0][w0 & 0xFF];
    ++cnt[1][0][(w0 >> 8) & 0xFF];
    ++cnt[2][0][(w0 >> 16) & 0xFF];
    ++cnt[3][0][(w0 >> 24) & 0xFF];
    ++cnt[0][1][(w0 >> 32) & 0xFF];
    ++cnt[1][1][(w0 >> 40) & 0xFF];
    ++cnt[2][1][(w0 >> 48) & 0xFF];
    ++cnt[3][1][w0 >> 56];
    ++cnt[0][2][w1 & 0xFF];
    ++cnt[1][2][(w1 >> 8) & 0xFF];
    ++cnt[2][2][(w1 >> 16) & 0xFF];
    ++cnt[3][2][(w1 >> 24) & 0xFF];
    ++cnt[0][3][(w1 >> 32) & 0xFF];
    ++cnt[1][3][(w1 >> 40) & 0xFF];
    ++cnt[2][3][(w1 >> 48) & 0xFF];
    ++cnt[3][3][w1 >> 56];
    p += 16;
  }
  for (; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) ++cnt[j][0][p[j]];
    p += 4;
  }
  for (size_t j = 0; j < 4; ++j) {
    uint64_t* h = hists + j * 256;
    for (size_t v = 0; v < 256; ++v) {
      h[v] += static_cast<uint64_t>(cnt[j][0][v]) + cnt[j][1][v] +
              cnt[j][2][v] + cnt[j][3][v];
    }
  }
}

// Width-8 fast path: one pass, 32 independent chains (8 columns x 4
// lanes), so even a constant byte-column (the common HTC shape, all
// increments hitting one counter) splits its serial increment chain four
// ways. Counter footprint: 8 * 4 * 256 * 4B = 32 KiB — still within L1.
void HistogramUpdateW8(const uint8_t* data, size_t n, uint64_t* hists) {
  alignas(64) uint32_t cnt[8][4][256];
  std::memset(cnt, 0, sizeof(cnt));
  const uint8_t* p = data;
  size_t i = 0;
  // Each word is split into 32-bit halves before byte extraction: the
  // low two bytes of a 32-bit register are reachable with single-µop
  // movzx forms, which keeps the extraction off the shifter ports that
  // the 32 address computations already saturate.
  for (; i + 4 <= n; i += 4) {
    const uint64_t w0 = LoadLE64(p);
    const uint64_t w1 = LoadLE64(p + 8);
    const uint64_t w2 = LoadLE64(p + 16);
    const uint64_t w3 = LoadLE64(p + 24);
    const uint32_t lo0 = static_cast<uint32_t>(w0);
    const uint32_t hi0 = static_cast<uint32_t>(w0 >> 32);
    const uint32_t lo1 = static_cast<uint32_t>(w1);
    const uint32_t hi1 = static_cast<uint32_t>(w1 >> 32);
    const uint32_t lo2 = static_cast<uint32_t>(w2);
    const uint32_t hi2 = static_cast<uint32_t>(w2 >> 32);
    const uint32_t lo3 = static_cast<uint32_t>(w3);
    const uint32_t hi3 = static_cast<uint32_t>(w3 >> 32);
    ++cnt[0][0][lo0 & 0xFF];
    ++cnt[1][0][(lo0 >> 8) & 0xFF];
    ++cnt[2][0][(lo0 >> 16) & 0xFF];
    ++cnt[3][0][lo0 >> 24];
    ++cnt[4][0][hi0 & 0xFF];
    ++cnt[5][0][(hi0 >> 8) & 0xFF];
    ++cnt[6][0][(hi0 >> 16) & 0xFF];
    ++cnt[7][0][hi0 >> 24];
    ++cnt[0][1][lo1 & 0xFF];
    ++cnt[1][1][(lo1 >> 8) & 0xFF];
    ++cnt[2][1][(lo1 >> 16) & 0xFF];
    ++cnt[3][1][lo1 >> 24];
    ++cnt[4][1][hi1 & 0xFF];
    ++cnt[5][1][(hi1 >> 8) & 0xFF];
    ++cnt[6][1][(hi1 >> 16) & 0xFF];
    ++cnt[7][1][hi1 >> 24];
    ++cnt[0][2][lo2 & 0xFF];
    ++cnt[1][2][(lo2 >> 8) & 0xFF];
    ++cnt[2][2][(lo2 >> 16) & 0xFF];
    ++cnt[3][2][lo2 >> 24];
    ++cnt[4][2][hi2 & 0xFF];
    ++cnt[5][2][(hi2 >> 8) & 0xFF];
    ++cnt[6][2][(hi2 >> 16) & 0xFF];
    ++cnt[7][2][hi2 >> 24];
    ++cnt[0][3][lo3 & 0xFF];
    ++cnt[1][3][(lo3 >> 8) & 0xFF];
    ++cnt[2][3][(lo3 >> 16) & 0xFF];
    ++cnt[3][3][lo3 >> 24];
    ++cnt[4][3][hi3 & 0xFF];
    ++cnt[5][3][(hi3 >> 8) & 0xFF];
    ++cnt[6][3][(hi3 >> 16) & 0xFF];
    ++cnt[7][3][hi3 >> 24];
    p += 32;
  }
  for (; i < n; ++i) {
    for (size_t j = 0; j < 8; ++j) ++cnt[j][0][p[j]];
    p += 8;
  }
  for (size_t j = 0; j < 8; ++j) {
    uint64_t* h = hists + j * 256;
    for (size_t v = 0; v < 256; ++v) {
      h[v] += static_cast<uint64_t>(cnt[j][0][v]) + cnt[j][1][v] +
              cnt[j][2][v] + cnt[j][3][v];
    }
  }
}

// Generic width: cache-blocked per-column passes. The block is streamed
// once per column (from L2, not DRAM), and each pass keeps 4 interleaved
// sub-counters so consecutive increments to the same byte value do not
// serialize on store-to-load forwarding.
void HistogramUpdateGeneric(const uint8_t* data, size_t n, size_t width,
                            uint64_t* hists) {
  const size_t block_elems =
      std::max<size_t>(kHistogramBlockBytes / width, size_t{4});
  alignas(64) uint32_t cnt[4][256];
  for (size_t base = 0; base < n; base += block_elems) {
    const size_t m = std::min(block_elems, n - base);
    const uint8_t* block = data + base * width;
    for (size_t j = 0; j < width; ++j) {
      std::memset(cnt, 0, sizeof(cnt));
      const uint8_t* p = block + j;
      size_t i = 0;
      const size_t stride4 = 4 * width;
      for (; i + 4 <= m; i += 4) {
        ++cnt[0][p[0]];
        ++cnt[1][p[width]];
        ++cnt[2][p[2 * width]];
        ++cnt[3][p[3 * width]];
        p += stride4;
      }
      for (; i < m; ++i) {
        ++cnt[0][*p];
        p += width;
      }
      uint64_t* h = hists + j * 256;
      for (size_t v = 0; v < 256; ++v) {
        h[v] += static_cast<uint64_t>(cnt[0][v]) + cnt[1][v] + cnt[2][v] +
                cnt[3][v];
      }
    }
  }
}

}  // namespace

void HistogramUpdateScalar(const uint8_t* data, size_t n, size_t width,
                           uint64_t* hists) {
  const uint8_t* p = data;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < width; ++j) ++hists[j * 256 + p[j]];
    p += width;
  }
}

void HistogramUpdateBlocked(const uint8_t* data, size_t n, size_t width,
                            uint64_t* hists) {
  // Flush in bounded slices so the uint32_t sub-counters cannot overflow
  // on pathologically large single Update calls.
  while (n > kFlushElements) {
    HistogramUpdateBlocked(data, kFlushElements, width, hists);
    data += kFlushElements * width;
    n -= kFlushElements;
  }
  if (width == 4) {
    HistogramUpdateW4(data, n, hists);
  } else if (width == 8) {
    HistogramUpdateW8(data, n, hists);
  } else {
    HistogramUpdateGeneric(data, n, width, hists);
  }
}

}  // namespace isobar::simd::internal
