#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.h"

namespace isobar::simd {
namespace {

constexpr uint8_t kUnresolved = 0xFF;

// Active tier, resolved lazily so the ISOBAR_SIMD override is read exactly
// once (tests re-arm it through ResetActiveTierForTesting).
std::atomic<uint8_t> g_active_tier{kUnresolved};

Tier ClampToSupported(Tier tier) {
  while (tier != Tier::kScalar && !TierSupported(tier)) {
    tier = static_cast<Tier>(static_cast<uint8_t>(tier) - 1);
  }
  return tier;
}

Tier ResolveTier() {
  Tier tier = DetectTier();
  if (const char* env = std::getenv("ISOBAR_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      tier = Tier::kScalar;
    } else if (std::strcmp(env, "sse42") == 0) {
      tier = ClampToSupported(Tier::kSse42);
    } else if (std::strcmp(env, "avx2") == 0) {
      tier = ClampToSupported(Tier::kAvx2);
    }
    // Unknown values are ignored: misconfiguration must never disable
    // compression, and the tier in use is visible via TierToString.
  }
  return tier;
}

constexpr KernelTable kScalarTable = {
    internal::HistogramUpdateScalar, internal::GatherColW4Scalar,
    internal::GatherColW8Scalar,     internal::ScatterColW4Scalar,
    internal::ScatterColW8Scalar,    internal::RunScanScalar,
    internal::MtfEncodeScalar,
};

#if defined(__x86_64__) || defined(__i386__)
constexpr KernelTable kSse42Table = {
    // The blocked histogram is portable ILP code (interleaved
    // accumulators), not intrinsics; it rides the SSE4.2 tier so the
    // scalar tier stays the bit-faithful reference implementation.
    internal::HistogramUpdateBlocked, internal::GatherColW4Sse,
    internal::GatherColW8Sse,         internal::ScatterColW4Sse,
    internal::ScatterColW8Sse,        internal::RunScanSse,
    internal::MtfEncodeSse,
};

constexpr KernelTable kAvx2Table = {
    internal::HistogramUpdateBlocked, internal::GatherColW4Avx2,
    internal::GatherColW8Avx2,
    // Scatter reuses the SSE kernels: the inverse network's stores are
    // already contiguous full-cacheline runs, and a 256-bit variant
    // measured no faster than the 128-bit one.
    internal::ScatterColW4Sse, internal::ScatterColW8Sse,
    internal::RunScanAvx2,     internal::MtfEncodeAvx2,
};
#endif  // x86

}  // namespace

std::string_view TierToString(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse42:
      return "sse42";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Tier DetectTier() {
#if defined(__x86_64__) || defined(__i386__)
  static const Tier detected = [] {
    if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return Tier::kSse42;
    return Tier::kScalar;
  }();
  return detected;
#else
  return Tier::kScalar;
#endif
}

bool TierSupported(Tier tier) { return tier <= DetectTier(); }

Tier ActiveTier() {
  uint8_t raw = g_active_tier.load(std::memory_order_relaxed);
  if (raw == kUnresolved) {
    const Tier resolved = ResolveTier();
    // Racing first calls resolve to the same value; last store wins.
    g_active_tier.store(static_cast<uint8_t>(resolved),
                        std::memory_order_relaxed);
    return resolved;
  }
  return static_cast<Tier>(raw);
}

Tier SetActiveTierForTesting(Tier tier) {
  const Tier clamped = ClampToSupported(tier);
  g_active_tier.store(static_cast<uint8_t>(clamped),
                      std::memory_order_relaxed);
  return clamped;
}

void ResetActiveTierForTesting() {
  g_active_tier.store(kUnresolved, std::memory_order_relaxed);
}

const KernelTable& KernelsForTier(Tier tier) {
#if defined(__x86_64__) || defined(__i386__)
  switch (ClampToSupported(tier)) {
    case Tier::kAvx2:
      return kAvx2Table;
    case Tier::kSse42:
      return kSse42Table;
    case Tier::kScalar:
      break;
  }
#else
  (void)tier;
#endif
  return kScalarTable;
}

const KernelTable& Kernels() { return KernelsForTier(ActiveTier()); }

}  // namespace isobar::simd
