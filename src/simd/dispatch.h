#ifndef ISOBAR_SIMD_DISPATCH_H_
#define ISOBAR_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace isobar::simd {

/// Instruction-set tier the byte-plane kernels run at. Tiers are ordered:
/// a higher tier implies every capability of the lower ones.
enum class Tier : uint8_t {
  kScalar = 0,  ///< Portable C++, no instruction-set assumptions.
  kSse42 = 1,   ///< SSE2..SSE4.2 (x86-64 baseline + pshufb + crc32).
  kAvx2 = 2,    ///< 256-bit integer SIMD.
};

std::string_view TierToString(Tier tier);

/// Highest tier the host CPU can execute (cpuid probe, cached).
Tier DetectTier();

/// True when the host can execute `tier`'s kernels.
bool TierSupported(Tier tier);

/// The tier the kernels actually dispatch to. Resolved once on first use:
/// DetectTier(), lowered by the ISOBAR_SIMD environment variable
/// ("scalar", "sse42", or "avx2") when set. An override above the host's
/// capability is clamped down, never up.
Tier ActiveTier();

/// Test/bench hook: forces ActiveTier() to `tier` (clamped to what the
/// host supports; the clamped value is returned). Not safe to call while
/// kernels are executing concurrently on other threads.
Tier SetActiveTierForTesting(Tier tier);

/// Test/bench hook: discards a forced tier; the next ActiveTier() call
/// re-resolves from cpuid + ISOBAR_SIMD.
void ResetActiveTierForTesting();

/// Per-tier kernel function table. Every entry is callable on every tier
/// (lower tiers fill in portable implementations), and every tier
/// produces bit-identical results — histogram counts are exact and the
/// transposes are pure data movement. The transpose entries cover the
/// full-mask column-linearization layouts of the two dominant element
/// widths; partial masks and other widths stay on the callers' generic
/// strided loops.
struct KernelTable {
  /// Accumulates `n` elements of `width` bytes into per-column byte-value
  /// counters: hists[column * 256 + byte_value] += occurrences.
  void (*histogram_update)(const uint8_t* data, size_t n, size_t width,
                           uint64_t* hists);
  /// out[c * n + i] = in[i * 4 + c] for all n elements, c in [0, 4).
  void (*gather_col_w4)(const uint8_t* in, size_t n, uint8_t* out);
  /// out[c * n + i] = in[i * 8 + c] for all n elements, c in [0, 8).
  void (*gather_col_w8)(const uint8_t* in, size_t n, uint8_t* out);
  /// out[i * 4 + c] = in[c * n + i] (inverse of gather_col_w4).
  void (*scatter_col_w4)(const uint8_t* in, size_t n, uint8_t* out);
  /// out[i * 8 + c] = in[c * n + i] (inverse of gather_col_w8).
  void (*scatter_col_w8)(const uint8_t* in, size_t n, uint8_t* out);
  /// Length (in [1, n]) of the run of bytes equal to data[0] at the start
  /// of data. Requires n >= 1; callers cap n to their maximum run length.
  size_t (*run_scan)(const uint8_t* data, size_t n);
  /// Move-to-front transform of data[0, n) in place against the 256-entry
  /// recency table `order` (every byte value exactly once; updated in
  /// place so callers can span multiple buffers with one table).
  void (*mtf_encode)(uint8_t* data, size_t n, uint8_t* order);
};

/// Kernel table of the active tier.
const KernelTable& Kernels();

/// Kernel table of a specific tier (parity tests benchmark tiers against
/// each other through this). Requesting a tier the host cannot execute
/// returns the highest supported table at or below it.
const KernelTable& KernelsForTier(Tier tier);

}  // namespace isobar::simd

#endif  // ISOBAR_SIMD_DISPATCH_H_
