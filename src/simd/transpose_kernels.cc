#include "simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace isobar::simd::internal {
namespace {

// Shared scalar tails: the vector kernels hand the last (< block) rows
// here, and the scalar tier uses them for the whole range.
inline void GatherColTail(const uint8_t* in, size_t width, size_t n,
                          size_t first_row, uint8_t* out) {
  for (size_t c = 0; c < width; ++c) {
    const uint8_t* p = in + first_row * width + c;
    uint8_t* dst = out + c * n + first_row;
    for (size_t i = first_row; i < n; ++i, p += width) *dst++ = *p;
  }
}

inline void ScatterColTail(const uint8_t* in, size_t width, size_t n,
                           size_t first_row, uint8_t* out) {
  for (size_t c = 0; c < width; ++c) {
    const uint8_t* p = in + c * n + first_row;
    uint8_t* dst = out + first_row * width + c;
    for (size_t i = first_row; i < n; ++i, dst += width) *dst = *p++;
  }
}

}  // namespace

void GatherColW4Scalar(const uint8_t* in, size_t n, uint8_t* out) {
  GatherColTail(in, 4, n, 0, out);
}

void GatherColW8Scalar(const uint8_t* in, size_t n, uint8_t* out) {
  GatherColTail(in, 8, n, 0, out);
}

void ScatterColW4Scalar(const uint8_t* in, size_t n, uint8_t* out) {
  ScatterColTail(in, 4, n, 0, out);
}

void ScatterColW8Scalar(const uint8_t* in, size_t n, uint8_t* out) {
  ScatterColTail(in, 8, n, 0, out);
}

#if defined(__x86_64__) || defined(__i386__)

namespace {

// 8x8 byte-block transpose core: x0..x3 hold 8 rows of 8 bytes (two rows
// per register, contiguous loads). Produces w0..w3 where wk =
// [column 2k (8B) | column 2k+1 (8B)] across those 8 rows.
#define ISOBAR_TRANSPOSE8X8(x0, x1, x2, x3, w0, w1, w2, w3)      \
  do {                                                           \
    const __m128i u0_ = _mm_unpacklo_epi8(x0, x1); /* rows 0,2 */ \
    const __m128i u1_ = _mm_unpackhi_epi8(x0, x1); /* rows 1,3 */ \
    const __m128i u2_ = _mm_unpacklo_epi8(x2, x3); /* rows 4,6 */ \
    const __m128i u3_ = _mm_unpackhi_epi8(x2, x3); /* rows 5,7 */ \
    const __m128i v0_ = _mm_unpacklo_epi8(u0_, u1_);             \
    const __m128i v1_ = _mm_unpackhi_epi8(u0_, u1_);             \
    const __m128i v2_ = _mm_unpacklo_epi8(u2_, u3_);             \
    const __m128i v3_ = _mm_unpackhi_epi8(u2_, u3_);             \
    w0 = _mm_unpacklo_epi32(v0_, v2_); /* cols 0,1 */            \
    w1 = _mm_unpackhi_epi32(v0_, v2_); /* cols 2,3 */            \
    w2 = _mm_unpacklo_epi32(v1_, v3_); /* cols 4,5 */            \
    w3 = _mm_unpackhi_epi32(v1_, v3_); /* cols 6,7 */            \
  } while (0)

}  // namespace

// Width 8, N x 8 -> 8 x N: 16 rows per iteration, full 16-byte column
// stores assembled from two 8x8 block transposes.
__attribute__((target("sse4.2"))) void GatherColW8Sse(const uint8_t* in,
                                                      size_t n,
                                                      uint8_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8_t* p = in + i * 8;
    const __m128i x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i x1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const __m128i x2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    const __m128i x3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    const __m128i y0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 64));
    const __m128i y1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 80));
    const __m128i y2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 96));
    const __m128i y3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 112));
    __m128i w0, w1, w2, w3, v0, v1, v2, v3;
    ISOBAR_TRANSPOSE8X8(x0, x1, x2, x3, w0, w1, w2, w3);  // rows 0-7
    ISOBAR_TRANSPOSE8X8(y0, y1, y2, y3, v0, v1, v2, v3);  // rows 8-15
    const __m128i* wv[4][2] = {{&w0, &v0}, {&w1, &v1}, {&w2, &v2}, {&w3, &v3}};
    for (size_t k = 0; k < 4; ++k) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + (2 * k) * n + i),
          _mm_unpacklo_epi64(*wv[k][0], *wv[k][1]));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + (2 * k + 1) * n + i),
          _mm_unpackhi_epi64(*wv[k][0], *wv[k][1]));
    }
  }
  GatherColTail(in, 8, n, i, out);
}

// Width 4, N x 4 -> 4 x N: pshufb groups each register's four rows into
// per-column dwords, then two unpack stages assemble 16-row column stores.
__attribute__((target("sse4.2"))) void GatherColW4Sse(const uint8_t* in,
                                                      size_t n,
                                                      uint8_t* out) {
  const __m128i mask = _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13,  //
                                     2, 6, 10, 14, 3, 7, 11, 15);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8_t* p = in + i * 4;
    const __m128i s0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), mask);
    const __m128i s1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), mask);
    const __m128i s2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), mask);
    const __m128i s3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), mask);
    const __m128i t0 = _mm_unpacklo_epi32(s0, s1);  // cols 0,1 rows 0-7
    const __m128i t1 = _mm_unpackhi_epi32(s0, s1);  // cols 2,3 rows 0-7
    const __m128i t2 = _mm_unpacklo_epi32(s2, s3);  // cols 0,1 rows 8-15
    const __m128i t3 = _mm_unpackhi_epi32(s2, s3);  // cols 2,3 rows 8-15
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 0 * n + i),
                     _mm_unpacklo_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 1 * n + i),
                     _mm_unpackhi_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * n + i),
                     _mm_unpacklo_epi64(t1, t3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 3 * n + i),
                     _mm_unpackhi_epi64(t1, t3));
  }
  GatherColTail(in, 4, n, i, out);
}

// Width 8 inverse, 8 x N -> N x 8: 16 rows per iteration, contiguous
// 128-byte row stores assembled from the 8 column registers.
__attribute__((target("sse4.2"))) void ScatterColW8Sse(const uint8_t* in,
                                                       size_t n,
                                                       uint8_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i c[8];
    for (size_t k = 0; k < 8; ++k) {
      c[k] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + k * n + i));
    }
    const __m128i u0 = _mm_unpacklo_epi8(c[0], c[1]);  // rows 0-7, cols 0,1
    const __m128i u1 = _mm_unpackhi_epi8(c[0], c[1]);  // rows 8-15
    const __m128i u2 = _mm_unpacklo_epi8(c[2], c[3]);
    const __m128i u3 = _mm_unpackhi_epi8(c[2], c[3]);
    const __m128i u4 = _mm_unpacklo_epi8(c[4], c[5]);
    const __m128i u5 = _mm_unpackhi_epi8(c[4], c[5]);
    const __m128i u6 = _mm_unpacklo_epi8(c[6], c[7]);
    const __m128i u7 = _mm_unpackhi_epi8(c[6], c[7]);
    const __m128i v0 = _mm_unpacklo_epi16(u0, u2);  // rows 0-3, cols 0-3
    const __m128i v1 = _mm_unpackhi_epi16(u0, u2);  // rows 4-7
    const __m128i v2 = _mm_unpacklo_epi16(u1, u3);  // rows 8-11
    const __m128i v3 = _mm_unpackhi_epi16(u1, u3);  // rows 12-15
    const __m128i w0 = _mm_unpacklo_epi16(u4, u6);  // rows 0-3, cols 4-7
    const __m128i w1 = _mm_unpackhi_epi16(u4, u6);
    const __m128i w2 = _mm_unpacklo_epi16(u5, u7);
    const __m128i w3 = _mm_unpackhi_epi16(u5, u7);
    uint8_t* dst = out + i * 8;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                     _mm_unpacklo_epi32(v0, w0));  // rows 0,1
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                     _mm_unpackhi_epi32(v0, w0));  // rows 2,3
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32),
                     _mm_unpacklo_epi32(v1, w1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48),
                     _mm_unpackhi_epi32(v1, w1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 64),
                     _mm_unpacklo_epi32(v2, w2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 80),
                     _mm_unpackhi_epi32(v2, w2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 96),
                     _mm_unpacklo_epi32(v3, w3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 112),
                     _mm_unpackhi_epi32(v3, w3));
  }
  ScatterColTail(in, 8, n, i, out);
}

// Width 4 inverse, 4 x N -> N x 4: 16 rows per iteration.
__attribute__((target("sse4.2"))) void ScatterColW4Sse(const uint8_t* in,
                                                       size_t n,
                                                       uint8_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i c0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 0 * n + i));
    const __m128i c1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 1 * n + i));
    const __m128i c2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 2 * n + i));
    const __m128i c3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 3 * n + i));
    const __m128i u0 = _mm_unpacklo_epi8(c0, c1);  // rows 0-7, cols 0,1
    const __m128i u1 = _mm_unpackhi_epi8(c0, c1);  // rows 8-15
    const __m128i u2 = _mm_unpacklo_epi8(c2, c3);
    const __m128i u3 = _mm_unpackhi_epi8(c2, c3);
    uint8_t* dst = out + i * 4;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                     _mm_unpacklo_epi16(u0, u2));  // rows 0-3
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                     _mm_unpackhi_epi16(u0, u2));  // rows 4-7
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32),
                     _mm_unpacklo_epi16(u1, u3));  // rows 8-11
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48),
                     _mm_unpackhi_epi16(u1, u3));  // rows 12-15
  }
  ScatterColTail(in, 4, n, i, out);
}

// Width 8, AVX2: 32 rows per iteration. The two 128-bit lanes carry rows
// [i, i+16) and [i+16, i+32) through the same unpack network, and the
// final 64-bit unpack emits each column as one contiguous 32-byte store.
__attribute__((target("avx2"))) void GatherColW8Avx2(const uint8_t* in,
                                                     size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint8_t* p = in + i * 8;
    __m256i x[4], y[4];
    for (size_t k = 0; k < 4; ++k) {
      // Lane 0: rows 2k,2k+1; lane 1: rows 16+2k,16+2k+1.
      x[k] = _mm256_set_m128i(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(p + 128 + 16 * k)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * k)));
      // Lane 0: rows 8+2k,8+2k+1; lane 1: rows 24+2k,24+2k+1.
      y[k] = _mm256_set_m128i(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(p + 192 + 16 * k)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 64 + 16 * k)));
    }
    __m256i w[4], v[4];
    {
      const __m256i u0 = _mm256_unpacklo_epi8(x[0], x[1]);
      const __m256i u1 = _mm256_unpackhi_epi8(x[0], x[1]);
      const __m256i u2 = _mm256_unpacklo_epi8(x[2], x[3]);
      const __m256i u3 = _mm256_unpackhi_epi8(x[2], x[3]);
      const __m256i v0 = _mm256_unpacklo_epi8(u0, u1);
      const __m256i v1 = _mm256_unpackhi_epi8(u0, u1);
      const __m256i v2 = _mm256_unpacklo_epi8(u2, u3);
      const __m256i v3 = _mm256_unpackhi_epi8(u2, u3);
      w[0] = _mm256_unpacklo_epi32(v0, v2);
      w[1] = _mm256_unpackhi_epi32(v0, v2);
      w[2] = _mm256_unpacklo_epi32(v1, v3);
      w[3] = _mm256_unpackhi_epi32(v1, v3);
    }
    {
      const __m256i u0 = _mm256_unpacklo_epi8(y[0], y[1]);
      const __m256i u1 = _mm256_unpackhi_epi8(y[0], y[1]);
      const __m256i u2 = _mm256_unpacklo_epi8(y[2], y[3]);
      const __m256i u3 = _mm256_unpackhi_epi8(y[2], y[3]);
      const __m256i v0 = _mm256_unpacklo_epi8(u0, u1);
      const __m256i v1 = _mm256_unpackhi_epi8(u0, u1);
      const __m256i v2 = _mm256_unpacklo_epi8(u2, u3);
      const __m256i v3 = _mm256_unpackhi_epi8(u2, u3);
      v[0] = _mm256_unpacklo_epi32(v0, v2);
      v[1] = _mm256_unpackhi_epi32(v0, v2);
      v[2] = _mm256_unpacklo_epi32(v1, v3);
      v[3] = _mm256_unpackhi_epi32(v1, v3);
    }
    for (size_t k = 0; k < 4; ++k) {
      // w[k] lanes: [col 2k|2k+1, rows 0-7 | rows 16-23];
      // v[k] lanes: [rows 8-15 | rows 24-31].
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + (2 * k) * n + i),
                          _mm256_unpacklo_epi64(w[k], v[k]));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + (2 * k + 1) * n + i),
          _mm256_unpackhi_epi64(w[k], v[k]));
    }
  }
  GatherColTail(in, 8, n, i, out);
}

// Width 4, AVX2: 32 rows per iteration via in-lane pshufb, a cross-lane
// dword permute, and 64-bit unpacks + 128-bit permutes to form whole
// 32-byte column stores.
__attribute__((target("avx2"))) void GatherColW4Avx2(const uint8_t* in,
                                                     size_t n, uint8_t* out) {
  const __m256i mask = _mm256_setr_epi8(
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,  //
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint8_t* p = in + i * 4;
    __m256i q[4];
    for (size_t k = 0; k < 4; ++k) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(p + 32 * k));  // rows 8k..8k+7
      // After pshufb each lane holds per-column dwords of its 4 rows;
      // the permute regroups them as [col0 8B, col1 8B, col2 8B, col3 8B].
      q[k] = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(x, mask), perm);
    }
    const __m256i z0 = _mm256_unpacklo_epi64(q[0], q[1]);  // cols 0 | 2
    const __m256i z1 = _mm256_unpackhi_epi64(q[0], q[1]);  // cols 1 | 3
    const __m256i z2 = _mm256_unpacklo_epi64(q[2], q[3]);
    const __m256i z3 = _mm256_unpackhi_epi64(q[2], q[3]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0 * n + i),
                        _mm256_permute2x128_si256(z0, z2, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 1 * n + i),
                        _mm256_permute2x128_si256(z1, z3, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * n + i),
                        _mm256_permute2x128_si256(z0, z2, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 3 * n + i),
                        _mm256_permute2x128_si256(z1, z3, 0x31));
  }
  GatherColTail(in, 4, n, i, out);
}

#undef ISOBAR_TRANSPOSE8X8

#endif  // x86

}  // namespace isobar::simd::internal
