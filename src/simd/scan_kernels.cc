#include "simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <cstring>

namespace isobar::simd::internal {
namespace {

// Shared scalar tail for the run scanners: compares bytes one at a time
// starting at `i`. The scalar tier uses it for the whole range.
inline size_t RunScanTail(const uint8_t* data, size_t n, size_t i) {
  const uint8_t value = data[0];
  while (i < n && data[i] == value) ++i;
  return i;
}

// Move-to-front step shared by every tier once the symbol's position is
// known: shift order[0..pos) up one slot and refile the symbol at the
// front. memmove matches std::copy_backward byte for byte.
inline void MtfShift(uint8_t* order, size_t pos, uint8_t value) {
  std::memmove(order + 1, order, pos);
  order[0] = value;
}

}  // namespace

size_t RunScanScalar(const uint8_t* data, size_t n) {
  return RunScanTail(data, n, 1);
}

void MtfEncodeScalar(uint8_t* data, size_t n, uint8_t* order) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t value = data[i];
    size_t position = 0;
    while (order[position] != value) ++position;
    data[i] = static_cast<uint8_t>(position);
    MtfShift(order, position, value);
  }
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("sse4.2"))) size_t RunScanSse(const uint8_t* data,
                                                    size_t n) {
  const __m128i splat = _mm_set1_epi8(static_cast<char>(data[0]));
  size_t i = 1;
  while (i + 16 <= n) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(chunk, splat)));
    if (mask != 0xFFFFu) {
      return i + static_cast<size_t>(__builtin_ctz(~mask));
    }
    i += 16;
  }
  return RunScanTail(data, n, i);
}

__attribute__((target("avx2"))) size_t RunScanAvx2(const uint8_t* data,
                                                   size_t n) {
  const __m256i splat = _mm256_set1_epi8(static_cast<char>(data[0]));
  size_t i = 1;
  while (i + 32 <= n) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, splat)));
    if (mask != 0xFFFFFFFFu) {
      return i + static_cast<size_t>(__builtin_ctz(~mask));
    }
    i += 32;
  }
  return RunScanTail(data, n, i);
}

// MTF rank lookup via 16-byte compare sweeps over the order table. The
// symbol occurs exactly once, so the first set movemask bit is its rank.
// Repeated symbols (the common case after a BWT) hit the rank-0 check
// before any vector work.
__attribute__((target("sse4.2"))) void MtfEncodeSse(uint8_t* data, size_t n,
                                                    uint8_t* order) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t value = data[i];
    if (order[0] == value) {
      data[i] = 0;
      continue;
    }
    const __m128i splat = _mm_set1_epi8(static_cast<char>(value));
    size_t position = 0;
    for (size_t base = 0; base < 256; base += 16) {
      const __m128i chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(order + base));
      const uint32_t mask = static_cast<uint32_t>(
          _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, splat)));
      if (mask != 0) {
        position = base + static_cast<size_t>(__builtin_ctz(mask));
        break;
      }
    }
    data[i] = static_cast<uint8_t>(position);
    MtfShift(order, position, value);
  }
}

__attribute__((target("avx2"))) void MtfEncodeAvx2(uint8_t* data, size_t n,
                                                   uint8_t* order) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t value = data[i];
    if (order[0] == value) {
      data[i] = 0;
      continue;
    }
    const __m256i splat = _mm256_set1_epi8(static_cast<char>(value));
    size_t position = 0;
    for (size_t base = 0; base < 256; base += 32) {
      const __m256i chunk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(order + base));
      const uint32_t mask = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, splat)));
      if (mask != 0) {
        position = base + static_cast<size_t>(__builtin_ctz(mask));
        break;
      }
    }
    data[i] = static_cast<uint8_t>(position);
    MtfShift(order, position, value);
  }
}

#endif  // x86

}  // namespace isobar::simd::internal
