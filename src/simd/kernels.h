#ifndef ISOBAR_SIMD_KERNELS_H_
#define ISOBAR_SIMD_KERNELS_H_

/// Internal per-tier kernel entry points behind simd/dispatch.h. Only the
/// dispatch tables reference these; everything else goes through
/// simd::Kernels().

#include <cstddef>
#include <cstdint>

namespace isobar::simd::internal {

// --- Histogram accumulation (histogram_kernels.cc). All variants produce
// bit-identical counts; they differ only in how the accumulator dependency
// chains are broken.
void HistogramUpdateScalar(const uint8_t* data, size_t n, size_t width,
                           uint64_t* hists);
void HistogramUpdateBlocked(const uint8_t* data, size_t n, size_t width,
                            uint64_t* hists);

// --- Byte-run and move-to-front scans (scan_kernels.cc). The codec side's
// hot loops: RLE/zero-RLE run detection and the BWT MTF rank lookup.
size_t RunScanScalar(const uint8_t* data, size_t n);
void MtfEncodeScalar(uint8_t* data, size_t n, uint8_t* order);

// --- Full-mask column-linearization transposes (transpose_kernels.cc).
void GatherColW4Scalar(const uint8_t* in, size_t n, uint8_t* out);
void GatherColW8Scalar(const uint8_t* in, size_t n, uint8_t* out);
void ScatterColW4Scalar(const uint8_t* in, size_t n, uint8_t* out);
void ScatterColW8Scalar(const uint8_t* in, size_t n, uint8_t* out);

#if defined(__x86_64__) || defined(__i386__)
size_t RunScanSse(const uint8_t* data, size_t n);
size_t RunScanAvx2(const uint8_t* data, size_t n);
void MtfEncodeSse(uint8_t* data, size_t n, uint8_t* order);
void MtfEncodeAvx2(uint8_t* data, size_t n, uint8_t* order);
void GatherColW4Sse(const uint8_t* in, size_t n, uint8_t* out);
void GatherColW8Sse(const uint8_t* in, size_t n, uint8_t* out);
void ScatterColW4Sse(const uint8_t* in, size_t n, uint8_t* out);
void ScatterColW8Sse(const uint8_t* in, size_t n, uint8_t* out);
void GatherColW4Avx2(const uint8_t* in, size_t n, uint8_t* out);
void GatherColW8Avx2(const uint8_t* in, size_t n, uint8_t* out);
#endif  // x86

}  // namespace isobar::simd::internal

#endif  // ISOBAR_SIMD_KERNELS_H_
