#ifndef ISOBAR_CORE_ANALYZER_H_
#define ISOBAR_CORE_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "stats/byte_histogram.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Tuning knobs of the ISOBAR-analyzer (§II.A).
struct AnalyzerOptions {
  /// Frequency-distribution tolerance τ in (1, 256): a byte-column is
  /// declared *incompressible* when every one of its 256 byte-value
  /// frequencies is ≤ τ·N/256. τ→1 flags almost nothing as compressible
  /// structure; τ→256 flags everything. The paper fixes τ = 1.42 after
  /// observing that results are stable for τ in [1.4, 1.5].
  double tau = 1.42;
};

/// Rejects a τ outside [1, 256] — including NaN and infinities, which
/// slip through naive range comparisons. Pipeline entry points call this
/// before τ is used in arithmetic or serialized into a container header
/// (tau_centi is a uint16_t; casting an unvalidated double is UB).
Status ValidateAnalyzerOptions(const AnalyzerOptions& options);

/// Outcome of analyzing one array (or chunk) of N elements of ω bytes.
struct AnalysisResult {
  uint64_t element_count = 0;
  size_t width = 0;

  /// Bit j set ⇔ byte-column j is compressible (has exploitable skew).
  /// This is the paper's "ISOBAR-analyzer output array" (Fig. 4), with
  /// 1 = compressible, 0 = incompressible/noise.
  uint64_t compressible_mask = 0;

  /// Shannon entropy (bits/byte) of each byte-column, for diagnostics.
  std::vector<double> column_entropy;

  /// Number of compressible columns.
  int compressible_columns() const;

  /// Fraction of each element's bytes that are hard-to-compress noise
  /// ("HTC Bytes (%)" in Table IV, as a fraction in [0,1]).
  double htc_byte_fraction() const;

  /// True when the dataset is *improvable* (§II.B): some but not all
  /// columns are compressible, so partitioning pays off. All-0 or all-1
  /// masks are "undetermined" and the whole input goes to the solver.
  bool improvable() const;
};

/// The ISOBAR-analyzer: detects, per byte-column, whether the byte-value
/// frequency distribution is indistinguishable from uniform noise.
///
/// One streaming pass builds ω 256-bin frequency counters; a column whose
/// maximum bin stays at or below the tolerance τ·N/256 has no skew a
/// byte-granular entropy coder could exploit and is excluded from the
/// solver's input.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  const AnalyzerOptions& options() const { return options_; }

  /// Analyzes `data` as elements of `width` bytes (width in [1, 64];
  /// data.size() must be a positive multiple of width).
  Result<AnalysisResult> Analyze(ByteSpan data, size_t width) const;

  /// Classifies already-accumulated histograms; exposed so that callers
  /// that stream data through a ColumnHistogramSet (e.g. the chunked
  /// pipeline) can reuse the counters without a second pass.
  Result<AnalysisResult> Classify(const ColumnHistogramSet& histograms) const;

 private:
  AnalyzerOptions options_;
};

}  // namespace isobar

#endif  // ISOBAR_CORE_ANALYZER_H_
