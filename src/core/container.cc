#include "core/container.h"

#include <string>

namespace isobar::container {
namespace {

Status CheckRoom(ByteSpan buffer, size_t offset, size_t need,
                 const char* what) {
  if (offset > buffer.size() || buffer.size() - offset < need) {
    return Status::Corruption(std::string("container: truncated ") + what);
  }
  return Status::OK();
}

}  // namespace

void AppendHeader(const Header& header, Bytes* out) {
  const size_t base = out->size();
  out->resize(base + kHeaderSize);
  uint8_t* p = out->data() + base;
  StoreLE32(p + 0, kMagic);
  StoreLE16(p + 4, header.version);
  StoreLE16(p + 6, /*flags=*/0);
  p[8] = header.width;
  p[9] = static_cast<uint8_t>(header.codec);
  p[10] = static_cast<uint8_t>(header.linearization);
  p[11] = static_cast<uint8_t>(header.preference);
  StoreLE16(p + 12, header.tau_centi);
  StoreLE16(p + 14, /*reserved=*/0);
  StoreLE64(p + 16, header.element_count);
  StoreLE64(p + 24, header.chunk_elements);
  StoreLE64(p + 32, header.chunk_count);
}

Result<Header> ParseHeader(ByteSpan buffer, size_t* offset) {
  ISOBAR_RETURN_NOT_OK(CheckRoom(buffer, *offset, kHeaderSize, "header"));
  const uint8_t* p = buffer.data() + *offset;
  if (LoadLE32(p) != kMagic) {
    return Status::Corruption("container: bad magic (not an ISOBAR stream)");
  }
  Header header;
  header.version = LoadLE16(p + 4);
  if (header.version != kVersion) {
    return Status::NotSupported("container: unsupported format version " +
                                std::to_string(header.version));
  }
  header.width = p[8];
  if (header.width == 0 || header.width > 64) {
    return Status::Corruption("container: element width out of range");
  }
  header.codec = static_cast<CodecId>(p[9]);
  if (p[9] > static_cast<uint8_t>(CodecId::kBwt)) {
    return Status::Corruption("container: unknown codec id");
  }
  if (p[10] > 1) {
    return Status::Corruption("container: unknown linearization");
  }
  header.linearization = static_cast<Linearization>(p[10]);
  if (p[11] > 1) {
    return Status::Corruption("container: unknown preference");
  }
  header.preference = static_cast<Preference>(p[11]);
  header.tau_centi = LoadLE16(p + 12);
  header.element_count = LoadLE64(p + 16);
  header.chunk_elements = LoadLE64(p + 24);
  header.chunk_count = LoadLE64(p + 32);
  if (header.chunk_elements == 0 && header.chunk_count != 0) {
    return Status::Corruption("container: zero chunk size with chunks");
  }
  // Decoders size buffers from these counts, so bound them before any
  // allocation can happen downstream.
  if (header.chunk_elements > kMaxChunkBytes / header.width) {
    return Status::Corruption("container: chunk size exceeds format limit");
  }
  if (header.element_count != kUnknownCount &&
      header.element_count > ~0ull / header.width) {
    return Status::Corruption("container: element count overflows");
  }
  *offset += kHeaderSize;
  return header;
}

void AppendChunkHeader(const ChunkHeader& header, Bytes* out) {
  const size_t base = out->size();
  out->resize(base + kChunkHeaderSize);
  uint8_t* p = out->data() + base;
  StoreLE64(p + 0, header.element_count);
  StoreLE64(p + 8, header.compressible_mask);
  p[16] = header.flags;
  p[17] = 0;  // reserved
  StoreLE32(p + 18, header.crc32c);
  StoreLE64(p + 22, header.compressed_size);
  StoreLE64(p + 30, header.raw_size);
}

Result<ChunkHeader> ParseChunkHeader(ByteSpan buffer, size_t* offset) {
  ISOBAR_RETURN_NOT_OK(
      CheckRoom(buffer, *offset, kChunkHeaderSize, "chunk header"));
  const uint8_t* p = buffer.data() + *offset;
  ChunkHeader header;
  header.element_count = LoadLE64(p + 0);
  header.compressible_mask = LoadLE64(p + 8);
  header.flags = p[16];
  if ((header.flags & ~(kChunkUndetermined | kChunkStoredRaw)) != 0) {
    return Status::Corruption("container: unknown chunk flags");
  }
  header.crc32c = LoadLE32(p + 18);
  header.compressed_size = LoadLE64(p + 22);
  header.raw_size = LoadLE64(p + 30);
  *offset += kChunkHeaderSize;
  // Validate each section separately: the sum of two untrusted u64 sizes
  // could wrap around and defeat a single combined bounds check.
  const size_t remaining = buffer.size() - *offset;
  if (header.compressed_size > remaining ||
      header.raw_size > remaining - header.compressed_size) {
    return Status::Corruption("container: truncated chunk payload");
  }
  return header;
}

}  // namespace isobar::container
