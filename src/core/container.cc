#include "core/container.h"

#include <string>

#include "util/crc32c.h"

namespace isobar::container {
namespace {

Status CheckRoom(ByteSpan buffer, size_t offset, size_t need,
                 const char* what) {
  if (offset > buffer.size() || buffer.size() - offset < need) {
    return Status::Corruption(std::string("container: truncated ") + what);
  }
  return Status::OK();
}

void AppendIndexEntry(const IndexEntry& entry, Bytes* out) {
  const size_t base = out->size();
  out->resize(base + kIndexEntrySize);
  uint8_t* p = out->data() + base;
  StoreLE64(p + 0, entry.record_offset);
  StoreLE64(p + 8, entry.element_offset);
  StoreLE64(p + 16, entry.element_count);
  StoreLE64(p + 24, entry.compressible_mask);
  StoreLE64(p + 32, entry.compressed_size);
  StoreLE32(p + 40, entry.crc32c);
  p[44] = entry.flags;
  p[45] = p[46] = p[47] = 0;  // reserved
}

IndexEntry ParseIndexEntry(const uint8_t* p) {
  IndexEntry entry;
  entry.record_offset = LoadLE64(p + 0);
  entry.element_offset = LoadLE64(p + 8);
  entry.element_count = LoadLE64(p + 16);
  entry.compressible_mask = LoadLE64(p + 24);
  entry.compressed_size = LoadLE64(p + 32);
  entry.crc32c = LoadLE32(p + 40);
  entry.flags = p[44];
  return entry;
}

}  // namespace

void AppendHeader(const Header& header, Bytes* out) {
  const size_t base = out->size();
  out->resize(base + kHeaderSize);
  uint8_t* p = out->data() + base;
  StoreLE32(p + 0, kMagic);
  StoreLE16(p + 4, header.version);
  StoreLE16(p + 6, /*flags=*/0);
  p[8] = header.width;
  p[9] = static_cast<uint8_t>(header.codec);
  p[10] = static_cast<uint8_t>(header.linearization);
  p[11] = static_cast<uint8_t>(header.preference);
  StoreLE16(p + 12, header.tau_centi);
  StoreLE16(p + 14, /*reserved=*/0);
  StoreLE64(p + 16, header.element_count);
  StoreLE64(p + 24, header.chunk_elements);
  StoreLE64(p + 32, header.chunk_count);
}

Result<Header> ParseHeader(ByteSpan buffer, size_t* offset) {
  ISOBAR_RETURN_NOT_OK(CheckRoom(buffer, *offset, kHeaderSize, "header"));
  const uint8_t* p = buffer.data() + *offset;
  if (LoadLE32(p) != kMagic) {
    return Status::Corruption("container: bad magic (not an ISOBAR stream)");
  }
  Header header;
  header.version = LoadLE16(p + 4);
  if (header.version < kVersionV1 || header.version > kVersion) {
    return Status::NotSupported("container: unsupported format version " +
                                std::to_string(header.version));
  }
  header.width = p[8];
  if (header.width == 0 || header.width > 64) {
    return Status::Corruption("container: element width out of range");
  }
  header.codec = static_cast<CodecId>(p[9]);
  if (!IsKnownCodecId(p[9])) {
    return Status::Corruption("container: unknown codec id");
  }
  if (p[10] > 1) {
    return Status::Corruption("container: unknown linearization");
  }
  header.linearization = static_cast<Linearization>(p[10]);
  if (p[11] > 1) {
    return Status::Corruption("container: unknown preference");
  }
  header.preference = static_cast<Preference>(p[11]);
  header.tau_centi = LoadLE16(p + 12);
  header.element_count = LoadLE64(p + 16);
  header.chunk_elements = LoadLE64(p + 24);
  header.chunk_count = LoadLE64(p + 32);
  if (header.chunk_elements == 0 && header.chunk_count != 0) {
    return Status::Corruption("container: zero chunk size with chunks");
  }
  // Decoders size buffers from these counts, so bound them before any
  // allocation can happen downstream.
  if (header.chunk_elements > kMaxChunkBytes / header.width) {
    return Status::Corruption("container: chunk size exceeds format limit");
  }
  uint64_t total_bytes = 0;
  if (header.element_count != kUnknownCount &&
      !CheckedMul64(header.element_count, header.width, &total_bytes)) {
    return Status::Corruption("container: element count overflows");
  }
  *offset += kHeaderSize;
  return header;
}

void AppendChunkHeader(const ChunkHeader& header, Bytes* out) {
  const size_t base = out->size();
  out->resize(base + kChunkHeaderSize);
  uint8_t* p = out->data() + base;
  StoreLE64(p + 0, header.element_count);
  StoreLE64(p + 8, header.compressible_mask);
  p[16] = header.flags;
  p[17] = 0;  // reserved
  StoreLE32(p + 18, header.crc32c);
  StoreLE64(p + 22, header.compressed_size);
  StoreLE64(p + 30, header.raw_size);
}

Result<ChunkHeader> ParseChunkHeader(ByteSpan buffer, size_t* offset) {
  ISOBAR_RETURN_NOT_OK(
      CheckRoom(buffer, *offset, kChunkHeaderSize, "chunk header"));
  const uint8_t* p = buffer.data() + *offset;
  ChunkHeader header;
  header.element_count = LoadLE64(p + 0);
  header.compressible_mask = LoadLE64(p + 8);
  header.flags = p[16];
  if ((header.flags & ~(kChunkUndetermined | kChunkStoredRaw)) != 0) {
    return Status::Corruption("container: unknown chunk flags");
  }
  header.crc32c = LoadLE32(p + 18);
  header.compressed_size = LoadLE64(p + 22);
  header.raw_size = LoadLE64(p + 30);
  *offset += kChunkHeaderSize;
  // Validate each section separately: the sum of two untrusted u64 sizes
  // could wrap around and defeat a single combined bounds check.
  const size_t remaining = buffer.size() - *offset;
  if (header.compressed_size > remaining ||
      header.raw_size > remaining - header.compressed_size) {
    return Status::Corruption("container: truncated chunk payload");
  }
  return header;
}

Result<IndexEntry> MakeIndexEntry(ByteSpan container_bytes,
                                  size_t record_offset,
                                  uint64_t element_offset) {
  size_t offset = record_offset;
  ISOBAR_ASSIGN_OR_RETURN(ChunkHeader chunk_header,
                          ParseChunkHeader(container_bytes, &offset));
  IndexEntry entry;
  entry.record_offset = record_offset;
  entry.element_offset = element_offset;
  entry.element_count = chunk_header.element_count;
  entry.compressible_mask = chunk_header.compressible_mask;
  entry.compressed_size = chunk_header.compressed_size;
  entry.crc32c = chunk_header.crc32c;
  entry.flags = chunk_header.flags;
  return entry;
}

void AppendFooter(const std::vector<IndexEntry>& entries,
                  uint64_t element_count, Bytes* out) {
  const size_t index_base = out->size();
  for (const IndexEntry& entry : entries) {
    AppendIndexEntry(entry, out);
  }
  const uint64_t index_bytes = out->size() - index_base;
  const uint32_t index_crc =
      crc32c::Extend(0, out->data() + index_base, index_bytes);

  const size_t trailer_base = out->size();
  out->resize(trailer_base + kFooterTrailerSize);
  uint8_t* p = out->data() + trailer_base;
  StoreLE64(p + 0, static_cast<uint64_t>(entries.size()));
  StoreLE64(p + 8, element_count);
  StoreLE64(p + 16, index_bytes);
  StoreLE32(p + 24, index_crc);
  StoreLE32(p + 28, crc32c::Extend(0, p, 28));
  StoreLE32(p + 32, /*reserved=*/0);
  StoreLE32(p + 36, kFooterMagic);
}

Result<ChunkIndex> ParseFooter(ByteSpan container_bytes,
                               const Header& header) {
  if (container_bytes.size() < kHeaderSize + kFooterTrailerSize) {
    return Status::Corruption("container: no room for index footer");
  }
  const uint8_t* trailer =
      container_bytes.data() + container_bytes.size() - kFooterTrailerSize;
  if (LoadLE32(trailer + 36) != kFooterMagic) {
    return Status::Corruption("container: bad index footer magic");
  }
  if (LoadLE32(trailer + 28) != crc32c::Extend(0, trailer, 28)) {
    return Status::Corruption("container: index footer trailer checksum "
                              "mismatch");
  }
  const uint64_t chunk_count = LoadLE64(trailer + 0);
  const uint64_t total_elements = LoadLE64(trailer + 8);
  const uint64_t index_bytes = LoadLE64(trailer + 16);
  const uint32_t index_crc = LoadLE32(trailer + 24);

  const uint64_t room =
      container_bytes.size() - kHeaderSize - kFooterTrailerSize;
  uint64_t expected_index_bytes = 0;
  if (!CheckedMul64(chunk_count, kIndexEntrySize, &expected_index_bytes) ||
      expected_index_bytes != index_bytes || index_bytes > room) {
    return Status::Corruption("container: index footer size mismatch");
  }
  const size_t payload_end = container_bytes.size() - kFooterTrailerSize -
                             static_cast<size_t>(index_bytes);
  const uint8_t* index = container_bytes.data() + payload_end;
  if (index_crc != crc32c::Extend(0, index, index_bytes)) {
    return Status::Corruption("container: index footer checksum mismatch");
  }
  if (header.chunk_count != kUnknownCount &&
      header.chunk_count != chunk_count) {
    return Status::Corruption("container: index footer chunk count disagrees "
                              "with header");
  }
  if (header.element_count != kUnknownCount &&
      header.element_count != total_elements) {
    return Status::Corruption("container: index footer element count "
                              "disagrees with header");
  }
  uint64_t total_bytes = 0;
  if (!CheckedMul64(total_elements, header.width, &total_bytes)) {
    return Status::Corruption("container: index footer element count "
                              "overflows");
  }

  ChunkIndex chunk_index;
  chunk_index.element_count = total_elements;
  chunk_index.payload_end = payload_end;
  chunk_index.entries.reserve(static_cast<size_t>(chunk_count));
  uint64_t elements_seen = 0;
  // Minimum offset the next record may start at: the entry does not carry
  // the raw-section size, so a record's known extent is header +
  // compressed section, with the raw section filling the gap to the next
  // record (or to payload_end for the last one).
  uint64_t floor_offset = kHeaderSize;
  for (uint64_t i = 0; i < chunk_count; ++i) {
    const IndexEntry entry = ParseIndexEntry(index + i * kIndexEntrySize);
    if ((i == 0 && entry.record_offset != kHeaderSize) ||
        entry.record_offset < floor_offset ||
        entry.record_offset > payload_end ||
        payload_end - entry.record_offset < kChunkHeaderSize ||
        entry.compressed_size >
            payload_end - entry.record_offset - kChunkHeaderSize) {
      return Status::Corruption("container: index entry offsets out of "
                                "bounds");
    }
    floor_offset = entry.record_offset + kChunkHeaderSize +
                   entry.compressed_size;
    if (entry.element_offset != elements_seen ||
        entry.element_count > header.chunk_elements ||
        total_elements - elements_seen < entry.element_count) {
      return Status::Corruption("container: index entry element accounting "
                                "is inconsistent");
    }
    elements_seen += entry.element_count;
    if ((entry.flags & ~(kChunkUndetermined | kChunkStoredRaw)) != 0) {
      return Status::Corruption("container: index entry has unknown chunk "
                                "flags");
    }
    chunk_index.entries.push_back(entry);
  }
  if (elements_seen != total_elements) {
    return Status::Corruption("container: index entries do not cover the "
                              "declared element count");
  }
  return chunk_index;
}

}  // namespace isobar::container
