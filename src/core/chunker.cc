#include "core/chunker.h"

#include <algorithm>

namespace isobar {

Chunker::Chunker(ByteSpan data, size_t width, uint64_t chunk_elements)
    : data_(data), width_(width), chunk_elements_per_(chunk_elements) {
  if (width_ == 0 || chunk_elements_per_ == 0 || data_.size() % width_ != 0) {
    return;  // zero-chunk view
  }
  element_count_ = data_.size() / width_;
  chunk_count_ = (element_count_ + chunk_elements_per_ - 1) / chunk_elements_per_;
}

uint64_t Chunker::chunk_elements(uint64_t i) const {
  if (i + 1 < chunk_count_) return chunk_elements_per_;
  if (i + 1 == chunk_count_) {
    const uint64_t rem = element_count_ % chunk_elements_per_;
    return rem == 0 ? chunk_elements_per_ : rem;
  }
  return 0;
}

ByteSpan Chunker::chunk(uint64_t i) const {
  if (i >= chunk_count_) return {};
  const uint64_t start = i * chunk_elements_per_ * width_;
  return data_.subspan(start, chunk_elements(i) * width_);
}

}  // namespace isobar
