#include "core/partitioner.h"

#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace isobar {

Status PartitionDataInto(ByteSpan data, size_t width,
                         uint64_t compressible_mask,
                         Linearization linearization, Bytes* compressible,
                         Bytes* incompressible,
                         Linearization raw_linearization) {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.size() % width != 0) {
    return Status::InvalidArgument("data size is not a multiple of width");
  }
  const uint64_t full_mask =
      width == 64 ? ~0ull : ((1ull << width) - 1);
  if ((compressible_mask & ~full_mask) != 0) {
    return Status::InvalidArgument("mask has bits beyond element width");
  }

  telemetry::ScopedSpan span("chunk.partition");

  ISOBAR_RETURN_NOT_OK(GatherColumns(data, width, compressible_mask,
                                     linearization, compressible));
  // Noise bytes are never entropy coded; their layout is a container
  // format decision the caller passes down (v1 row order for a cheap
  // interleaving merge, v2 column order for memcpy-served byte-planes).
  ISOBAR_RETURN_NOT_OK(GatherColumns(data, width,
                                     full_mask & ~compressible_mask,
                                     raw_linearization, incompressible));

  static telemetry::Counter& calls = telemetry::GetCounter("partitioner.calls");
  static telemetry::Counter& compressible_bytes =
      telemetry::GetCounter("partitioner.compressible_bytes");
  static telemetry::Counter& incompressible_bytes =
      telemetry::GetCounter("partitioner.incompressible_bytes");
  calls.Increment();
  compressible_bytes.Add(compressible->size());
  incompressible_bytes.Add(incompressible->size());
  return Status::OK();
}

Status PartitionData(ByteSpan data, size_t width, uint64_t compressible_mask,
                     Linearization linearization, Partition* out) {
  // Validate (via the Into form) before deriving element_count: a zero
  // width must be rejected, not divided by.
  ISOBAR_RETURN_NOT_OK(PartitionDataInto(data, width, compressible_mask,
                                         linearization, &out->compressible,
                                         &out->incompressible));
  out->width = width;
  out->element_count = data.size() / width;
  out->compressible_mask = compressible_mask;
  out->linearization = linearization;
  return Status::OK();
}

Status MergePartition(const Partition& partition, Bytes* out) {
  const size_t width = partition.width;
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("partition has invalid width");
  }
  const uint64_t full_mask =
      width == 64 ? ~0ull : ((1ull << width) - 1);
  out->assign(partition.element_count * width, 0);
  MutableByteSpan dest(*out);
  ISOBAR_RETURN_NOT_OK(ScatterColumns(partition.compressible, width,
                                      partition.compressible_mask,
                                      partition.linearization, dest));
  ISOBAR_RETURN_NOT_OK(ScatterColumns(partition.incompressible, width,
                                      full_mask & ~partition.compressible_mask,
                                      Linearization::kRow, dest));
  return Status::OK();
}

}  // namespace isobar
