#ifndef ISOBAR_CORE_STREAM_H_
#define ISOBAR_CORE_STREAM_H_

#include <deque>
#include <future>
#include <memory>

#include "compressors/codec.h"
#include "core/container.h"
#include "core/isobar.h"
#include "io/sink.h"
#include "telemetry/trace_export.h"
#include "util/bytes.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace isobar {

/// Incremental (in-situ) ISOBAR compression: elements are appended as the
/// producing simulation emits them, full chunks are analyzed, partitioned,
/// solver-compressed, and pushed to a ByteSink immediately — nothing is
/// buffered beyond one chunk (§II.D's pipelining, without a whole-dataset
/// staging buffer).
///
/// Because the element total is unknown until Finish(), the emitted
/// container carries the kUnknownCount sentinel in its header; such
/// containers are read by IsobarStreamReader or by
/// IsobarCompressor::Decompress, which consume chunks to the end of the
/// stream. The EUPA decision is made once, on the first full chunk (or on
/// the tail data at Finish() for sub-chunk streams), mirroring the batch
/// compressor's training-sample phase.
///
/// With CompressOptions::num_threads resolving above 1, the writer runs a
/// pipelined producer/consumer: Append() hands full chunks to a work pool
/// and returns while they encode, and completed records are written to the
/// sink in chunk order as the (bounded) in-flight window fills — so the
/// emitted container is byte-identical to the serial writer's. At most
/// 2 x threads chunks are in flight; the writer is not itself thread-safe
/// (one producer thread drives Append/Finish).
class IsobarStreamWriter {
 public:
  /// `sink` must outlive the writer.
  IsobarStreamWriter(CompressOptions options, size_t width, ByteSink* sink);

  IsobarStreamWriter(const IsobarStreamWriter&) = delete;
  IsobarStreamWriter& operator=(const IsobarStreamWriter&) = delete;

  /// Appends raw element bytes; any size is accepted (partial elements
  /// are buffered until completed by later appends). Full chunks are
  /// compressed and written out as they accumulate.
  Status Append(ByteSpan data);

  /// Flushes the final (possibly short) chunk and completes the stream.
  /// Appending after Finish() fails. Idempotent on success.
  Status Finish();

  bool finished() const { return finished_; }

  /// Pipeline instrumentation accumulated so far (decision valid once the
  /// first chunk — or Finish() — forced it).
  const CompressionStats& stats() const { return stats_; }

  /// Telemetry pipeline-trace id of this stream (0 when tracing was off
  /// at pipeline start).
  uint64_t trace_id() const { return trace_id_; }

 private:
  /// One chunk's encode result, produced on a pool worker and written to
  /// the sink by the producer thread in FIFO (= chunk) order.
  struct EncodedRecord {
    Status status;
    Bytes record;
    CompressionStats stats;
    telemetry::ChunkTrace trace;
  };

  Status EnsurePipeline(ByteSpan training_data);
  /// Appends `record`'s index entry (v2 containers) before it is sunk.
  Status IndexRecord(ByteSpan record);
  Status EmitChunk(ByteSpan chunk);
  /// Waits for the oldest in-flight chunk and writes it out.
  Status DrainOne();
  /// Latches the first emit/drain failure: once a record has been dropped
  /// the container has a hole, so every later Append/Finish must keep
  /// failing instead of silently writing the chunks that followed it.
  Status Poison(Status status);

  CompressOptions options_;
  size_t width_;
  ByteSink* sink_;
  Status init_status_;
  Status error_status_;

  // v2 chunk-index footer under construction: one entry per record retired
  // to the sink, appended by Finish(). Derived from the same record bytes
  // the batch compressor indexes, so batch and streamed containers of the
  // same input carry byte-identical footers.
  std::vector<container::IndexEntry> index_entries_;
  uint64_t elements_indexed_ = 0;

  Bytes pending_;
  bool header_written_ = false;
  bool finished_ = false;
  const Codec* codec_ = nullptr;
  EupaDecision decision_;
  CompressionStats stats_;
  uint64_t trace_id_ = 0;
  uint64_t header_bytes_ = 0;
  // Chunk ordinals for timeline tagging: chunks submitted to the pipeline
  // and chunks retired to the sink (the writer side of the same stream).
  uint64_t chunks_emitted_ = 0;
  uint64_t chunks_drained_ = 0;

  // Pipelined path (num_threads_ > 1). pool_ is declared last so its
  // destructor drains outstanding tasks while the members they reference
  // are still alive.
  size_t num_threads_ = 1;
  std::deque<std::future<EncodedRecord>> in_flight_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Chunk-at-a-time reader for both batch and streamed ISOBAR containers.
/// Peak memory is one chunk instead of the whole dataset — the restart
/// side of the in-situ pipeline.
class IsobarStreamReader {
 public:
  /// `container_bytes` must stay alive while the reader is used.
  explicit IsobarStreamReader(ByteSpan container_bytes,
                              DecompressOptions options = {});

  /// Parses and validates the container header. Must be called (and
  /// succeed) before NextChunk().
  Status Init();

  /// Header fields; valid after Init().
  const container::Header& header() const { return header_; }

  /// Appends the next chunk's reconstructed elements to `*chunk`
  /// (replacing its contents). Returns false when the container is
  /// exhausted (after validating totals and trailing bytes).
  Result<bool> NextChunk(Bytes* chunk);

  /// Advances past the next chunk without decompressing it (its header is
  /// parsed, its payload skipped). Returns false when the container is
  /// exhausted. Chunk records are self-delimiting, so seeking to the
  /// n-th checkpoint of a long campaign costs O(n) header reads, not
  /// O(n) decompressions. The header's element count is validated against
  /// the container's nominal chunk size before it enters the running
  /// element total, so a corrupt skipped record cannot poison the
  /// end-of-stream accounting.
  Result<bool> SkipChunk();

  /// Positions the reader so the next NextChunk()/SkipChunk() call sees
  /// chunk `n` (n == chunk count seeks to end-of-stream). On a v2
  /// container with a valid index footer this is O(1): offset and element
  /// accounting come straight from the index, and records seeked over are
  /// not inspected (they do not enter the salvage report). Without an
  /// index the reader rewinds (when seeking backwards) and SkipChunk()s
  /// forward, sharing its per-record validation and salvage accounting —
  /// after a backward rewind the salvage report restarts from the
  /// beginning of the stream so records are not double-counted. Seeking
  /// past the last chunk is InvalidArgument when the chunk count is
  /// known (and detected at the stream's end otherwise).
  Status SeekToChunk(uint64_t n);

  /// True when Init() found (and validated) a v2 chunk-index footer:
  /// SeekToChunk is O(1) and header() carries the footer's adopted totals.
  bool has_chunk_index() const { return have_index_; }

  /// Chunks consumed so far (decoded, skipped, or salvaged).
  uint64_t chunks_read() const { return chunks_read_; }

  /// Elements consumed (or accounted, for skipped/seeked records) so far.
  uint64_t elements_read() const { return elements_read_; }

  /// Per-chunk salvage outcome accumulated so far. Only meaningful (i.e.
  /// possibly non-clean) when DecompressOptions::on_chunk_error is kSkip
  /// or kZeroFill; under those policies NextChunk absorbs a damaged
  /// record — advancing past it (kSkip) or returning its zero-filled
  /// shape (kZeroFill) — and a record whose framing is destroyed ends the
  /// stream with truncated_tail set instead of an error.
  const SalvageReport& salvage_report() const { return report_; }

 private:
  /// True when the container is exhausted; validates totals at the end.
  Result<bool> AtEnd();
  /// Handles one damaged record under a salvaging policy. Returns true
  /// when `*chunk` was zero-filled for the caller, false when the record
  /// was skipped (or the tail lost) and the caller should re-poll.
  bool SalvageDamagedChunk(const container::ChunkHeader& chunk_header,
                           bool framed, uint64_t index, size_t record_offset,
                           ChunkFailureStage stage, const Status& error,
                           Bytes* chunk);

  ByteSpan container_;
  DecompressOptions options_;
  container::Header header_;
  const Codec* codec_ = nullptr;
  bool initialized_ = false;
  size_t offset_ = 0;
  /// Offset where chunk records end: the index footer's start on a v2
  /// container, the container's end otherwise.
  size_t payload_end_ = 0;
  bool have_index_ = false;
  container::ChunkIndex index_;
  uint64_t chunks_read_ = 0;
  uint64_t elements_read_ = 0;
  SalvageReport report_;
  bool tail_lost_ = false;
};

}  // namespace isobar

#endif  // ISOBAR_CORE_STREAM_H_
