#ifndef ISOBAR_CORE_CHUNKER_H_
#define ISOBAR_CORE_CHUNKER_H_

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Default chunk size: 375,000 elements (≈3 MB of doubles). Fig. 8 of the
/// paper shows compression ratios settle once chunks reach this size,
/// consistent with the ~3 MB block sizes of LZW-family literature and
/// RCFile.
inline constexpr uint64_t kDefaultChunkElements = 375'000;

/// Splits a typed array into fixed-size element chunks for the in-situ
/// pipeline (§II.D, Fig. 6). Chunks are non-owning views; the last chunk
/// may be short.
class Chunker {
 public:
  /// data.size() must be a multiple of `width`; chunk_elements must be > 0.
  /// Invalid geometry yields a zero-chunk view (callers validate inputs at
  /// the pipeline boundary).
  Chunker(ByteSpan data, size_t width, uint64_t chunk_elements);

  uint64_t chunk_count() const { return chunk_count_; }

  /// Elements in chunk `i` (full chunks except possibly the last).
  uint64_t chunk_elements(uint64_t i) const;

  /// Byte view of chunk `i`.
  ByteSpan chunk(uint64_t i) const;

 private:
  ByteSpan data_;
  size_t width_ = 0;
  uint64_t chunk_elements_per_ = 0;
  uint64_t element_count_ = 0;
  uint64_t chunk_count_ = 0;
};

}  // namespace isobar

#endif  // ISOBAR_CORE_CHUNKER_H_
