#include "core/isobar.h"

#include <algorithm>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compressors/registry.h"
#include "core/chunk_codec.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/// Flight-recorder window embedded into a damaged SalvageReport: enough
/// recent events to cover several chunks' worth of pipeline activity
/// without bloating the report.
constexpr size_t kFlightRecorderEvents = 256;

/// Snapshots the most recent timeline events into `report` (no-op without
/// a report or with the timeline off). Called the moment damage is
/// established, so the window shows what every thread was doing when the
/// decode went wrong.
void CaptureFlightRecorder(SalvageReport* report) {
  if (report == nullptr || !telemetry::Timeline::Enabled()) return;
  report->flight_recorder =
      telemetry::Timeline::Global().SnapshotRecent(kFlightRecorderEvents);
}

/// One chunk's encode result, produced on a worker and consumed by the
/// (single) container writer.
struct EncodedChunk {
  Status status;
  Bytes record;
  CompressionStats stats;
  telemetry::ChunkTrace trace;
};

// Opens a pipeline trace for a freshly made EUPA decision and records the
// candidate evidence; returns 0 when tracing is off.
uint64_t BeginPipelineTrace(const EupaDecision& decision, size_t width) {
  auto& recorder = telemetry::TraceRecorder::Global();
  if (!recorder.enabled()) return 0;
  const uint64_t id = recorder.BeginPipeline(
      std::string(CodecIdToString(decision.codec)),
      std::string(LinearizationToString(decision.linearization)),
      std::string(PreferenceToString(decision.preference)), width);
  for (const CandidateEvaluation& eval : decision.evaluations) {
    telemetry::CandidateTrace candidate;
    candidate.codec = std::string(CodecIdToString(eval.codec));
    candidate.linearization =
        std::string(LinearizationToString(eval.linearization));
    candidate.ratio = eval.ratio;
    candidate.throughput_mbps = eval.throughput_mbps;
    recorder.RecordCandidate(id, std::move(candidate));
  }
  return id;
}

}  // namespace

Status ValidateCompressInput(uint64_t data_bytes, size_t width) {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data_bytes % width != 0) {
    return Status::InvalidArgument(
        "data size is not a multiple of the element width");
  }
  return Status::OK();
}

IsobarCompressor::IsobarCompressor(CompressOptions options)
    : options_(std::move(options)) {}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width) const {
  CompressionStats stats;
  return Compress(data, width, &stats);
}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width,
                                         CompressionStats* stats) const {
  if (stats == nullptr) return Status::InvalidArgument("stats must not be null");
  ISOBAR_RETURN_NOT_OK(ValidateCompressInput(data.size(), width));
  if (options_.chunk_elements == 0) {
    return Status::InvalidArgument("chunk_elements must be > 0");
  }

  *stats = CompressionStats{};
  stats->input_bytes = data.size();
  telemetry::ScopedSpan compress_span("compress");
  static telemetry::Counter& compress_calls =
      telemetry::GetCounter("pipeline.compress_calls");
  static telemetry::Counter& compress_input =
      telemetry::GetCounter("pipeline.compress_input_bytes");
  static telemetry::Counter& compress_output =
      telemetry::GetCounter("pipeline.compress_output_bytes");
  compress_calls.Increment();
  compress_input.Add(data.size());
  Stopwatch total_timer;

  const Analyzer analyzer(options_.analyzer);
  const EupaSelector selector(options_.eupa);
  const uint64_t full_mask = FullMask(width);

  // --- EUPA phase: pick the (solver × linearization) pipeline once per
  // dataset from a training sample (§II.C). The analyzer verdict for the
  // sampling region determines which bytes the candidates are measured on.
  EupaDecision decision;
  decision.preference = options_.eupa.preference;
  if (options_.eupa.forced_codec && options_.eupa.forced_linearization) {
    decision.codec = *options_.eupa.forced_codec;
    decision.linearization = *options_.eupa.forced_linearization;
  } else if (!data.empty()) {
    Stopwatch analysis_timer;
    const uint64_t n = data.size() / width;
    const uint64_t probe_elements =
        std::min<uint64_t>(n, std::max<uint64_t>(options_.eupa.sample_elements,
                                                 1));
    ByteSpan probe = data.subspan(0, probe_elements * width);
    ISOBAR_ASSIGN_OR_RETURN(AnalysisResult probe_result,
                            analyzer.Analyze(probe, width));
    stats->analysis_seconds += analysis_timer.ElapsedSeconds();
    const uint64_t eupa_mask = probe_result.improvable()
                                   ? probe_result.compressible_mask
                                   : full_mask;
    ISOBAR_ASSIGN_OR_RETURN(decision,
                            selector.Select(data, width, eupa_mask));
  } else {
    // Empty input: nothing to measure; fall back to configured defaults.
    if (options_.eupa.forced_codec) decision.codec = *options_.eupa.forced_codec;
    if (options_.eupa.forced_linearization) {
      decision.linearization = *options_.eupa.forced_linearization;
    }
  }
  stats->decision = decision;
  const uint64_t trace_id = BeginPipelineTrace(decision, width);

  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(decision.codec));

  // --- Chunked pipeline (Alg. 1 applied per chunk, §II.D).
  const Chunker chunker(data, width, options_.chunk_elements);
  Bytes out;
  out.reserve(data.size() / 2 + container::kHeaderSize);

  container::Header header;
  header.width = static_cast<uint8_t>(width);
  header.codec = decision.codec;
  header.linearization = decision.linearization;
  header.preference = options_.eupa.preference;
  header.tau_centi = static_cast<uint16_t>(options_.analyzer.tau * 100.0 + 0.5);
  header.element_count = data.size() / width;
  header.chunk_elements = options_.chunk_elements;
  header.chunk_count = chunker.chunk_count();
  container::AppendHeader(header, &out);
  const size_t header_bytes = out.size();

  const size_t num_threads = ResolveNumThreads(options_.num_threads);
  if (num_threads <= 1 || chunker.chunk_count() <= 1) {
    ScratchArena& arena = ScratchArena::ThreadLocal();
    for (uint64_t ci = 0; ci < chunker.chunk_count(); ++ci) {
      ISOBAR_RETURN_NOT_OK(EncodeChunk(analyzer, *codec,
                                       decision.linearization,
                                       chunker.chunk(ci), width, &out, stats,
                                       trace_id, nullptr, &arena, ci));
    }
  } else {
    // Fan each chunk's analyze→partition→solve out as a pool task; this
    // thread stays the single writer, appending records in chunk order.
    // The in-flight window bounds memory at O(threads) encoded chunks
    // instead of O(file).
    auto& recorder = telemetry::TraceRecorder::Global();
    const bool tracing = trace_id != 0;
    // This thread is the pipeline's in-order writer; name its timeline
    // track so writer stalls are attributable in the trace viewer.
    telemetry::Timeline::SetCurrentThreadName("writer");
    ThreadPool pool(num_threads);
    const size_t window = 2 * num_threads;
    std::deque<std::future<EncodedChunk>> in_flight;
    uint64_t next_chunk = 0;
    auto submit_next = [&] {
      const uint64_t ordinal = next_chunk++;
      const ByteSpan chunk = chunker.chunk(ordinal);
      in_flight.push_back(
          pool.Submit([&analyzer, &codec, &decision, chunk, width, trace_id,
                       tracing, ordinal]() -> EncodedChunk {
            EncodedChunk encoded;
            // ThreadLocal() inside the task: each pool worker gets (and
            // keeps) its own arena across every chunk it encodes.
            encoded.status = EncodeChunk(
                analyzer, *codec, decision.linearization, chunk, width,
                &encoded.record, &encoded.stats, trace_id,
                tracing ? &encoded.trace : nullptr,
                &ScratchArena::ThreadLocal(), ordinal);
            return encoded;
          }));
    };
    while (next_chunk < chunker.chunk_count() && in_flight.size() < window) {
      submit_next();
    }
    uint64_t write_index = 0;
    while (!in_flight.empty()) {
      EncodedChunk encoded;
      {
        // The in-order stall: how long the writer blocked on the oldest
        // outstanding chunk. On the timeline, back-to-back writer.wait
        // slices mean workers can't keep the window full.
        telemetry::ScopedSpan wait_span("writer.wait", trace_id,
                                        write_index + 1);
        encoded = in_flight.front().get();
      }
      in_flight.pop_front();
      if (next_chunk < chunker.chunk_count()) submit_next();
      // On error the early return destroys `pool`, which drains the
      // remaining queued tasks before the chunker and codec go away.
      ISOBAR_RETURN_NOT_OK(encoded.status);
      {
        telemetry::ScopedSpan append_span("writer.append", trace_id,
                                          write_index + 1);
        out.insert(out.end(), encoded.record.begin(), encoded.record.end());
        MergeChunkStats(encoded.stats, stats);
        if (tracing) recorder.RecordChunk(trace_id, std::move(encoded.trace));
      }
      ++write_index;
    }
    pool.PublishStats();
  }

  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  compress_output.Add(out.size());
  telemetry::TraceRecorder::Global().EndPipeline(trace_id, data.size(),
                                                 out.size(), header_bytes);
  return out;
}

namespace {

/// One parsed chunk record of the decode plan: payload slices, destination
/// range, and (in salvage mode) any header-stage damage verdict.
struct ChunkWork {
  container::ChunkHeader header;
  uint64_t index = 0;
  uint64_t byte_offset = 0;  ///< Record start in the container.
  ByteSpan compressed;
  ByteSpan raw;
  size_t out_offset = 0;
  uint64_t dest_elements = 0;  ///< Output elements this record accounts for.
  bool damaged = false;        ///< Header-stage damage found while parsing.
  Status error;                ///< Set when damaged.
};

/// Appends a damaged-chunk entry to `report` (when non-null) and, for the
/// salvaging policies, bumps the salvage telemetry counters. With action
/// kFail the entry only documents the chunk that aborted the decode.
void RecordSalvage(SalvageReport* report, const ChunkWork& work,
                   ChunkFailureStage stage, ChunkErrorPolicy action,
                   const Status& error, uint64_t output_offset,
                   uint64_t lost_bytes) {
  if (action != ChunkErrorPolicy::kFail) {
    static telemetry::Counter& salvaged =
        telemetry::GetCounter("pipeline.chunks_salvaged");
    static telemetry::Counter& zero_filled =
        telemetry::GetCounter("pipeline.chunks_zero_filled");
    salvaged.Increment();
    if (action == ChunkErrorPolicy::kZeroFill) zero_filled.Increment();
  }
  if (report == nullptr) return;
  ChunkSalvageRecord record;
  record.chunk_index = work.index;
  record.byte_offset = work.byte_offset;
  record.element_count = work.header.element_count;
  record.output_offset = output_offset;
  record.lost_bytes = lost_bytes;
  record.stage = stage;
  record.action = action;
  record.error = error;
  report->damaged.push_back(std::move(record));
  if (action == ChunkErrorPolicy::kZeroFill) {
    ++report->chunks_zero_filled;
  } else if (action == ChunkErrorPolicy::kSkip) {
    ++report->chunks_skipped;
  }
  report->bytes_lost += lost_bytes;
}

}  // namespace

Result<Bytes> IsobarCompressor::Decompress(ByteSpan container_bytes,
                                           const DecompressOptions& options,
                                           DecompressionStats* stats) {
  telemetry::ScopedSpan decompress_span("decompress");
  static telemetry::Counter& decompress_calls =
      telemetry::GetCounter("pipeline.decompress_calls");
  static telemetry::Counter& decompress_input =
      telemetry::GetCounter("pipeline.decompress_input_bytes");
  static telemetry::Counter& decompress_output =
      telemetry::GetCounter("pipeline.decompress_output_bytes");
  decompress_calls.Increment();
  decompress_input.Add(container_bytes.size());

  DecompressionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = DecompressionStats{};
  const ChunkErrorPolicy policy = options.on_chunk_error;
  const bool salvage = policy != ChunkErrorPolicy::kFail;
  SalvageReport* report = options.salvage_report;
  if (report != nullptr) *report = SalvageReport{};

  Stopwatch total_timer;
  Stopwatch parse_timer;
  size_t offset = 0;
  ISOBAR_ASSIGN_OR_RETURN(container::Header header,
                          container::ParseHeader(container_bytes, &offset));
  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(header.codec));
  stats->parse_seconds += parse_timer.ElapsedSeconds();

  const size_t width = header.width;
  // Counted containers (batch writer) carry the chunk total; streamed
  // containers use the kUnknownCount sentinel and run to the end.
  const bool counted = header.chunk_count != container::kUnknownCount;

  // --- Parse pass: chunk records are self-delimiting, so one cheap
  // header walk yields every record's payload slices and its (disjoint)
  // destination range in the output buffer. Damage found here is either
  // contained (the record still delimits itself: bad element count) or
  // fatal to the tail (framing destroyed: header unparseable or section
  // sizes running past the container).
  std::vector<ChunkWork> chunks;
  if (counted) {
    // The count is untrusted; each record is at least a chunk header, so
    // the buffer bounds how many records a reserve may assume.
    chunks.reserve(static_cast<size_t>(std::min<uint64_t>(
        header.chunk_count,
        container_bytes.size() / container::kChunkHeaderSize + 1)));
  }
  size_t out_bytes = 0;
  bool tail_lost = false;
  while (counted ? chunks.size() < header.chunk_count
                 : offset < container_bytes.size()) {
    Stopwatch chunk_parse_timer;
    ChunkWork work;
    work.index = chunks.size();
    work.byte_offset = offset;
    auto parsed = container::ParseChunkHeader(container_bytes, &offset);
    if (!parsed.ok()) {
      const Status annotated =
          AnnotateChunkError(parsed.status(), work.index, work.byte_offset);
      // Record framing is gone: the rest of the container cannot be
      // delimited, so everything from here on is lost.
      work.error = annotated;
      RecordSalvage(report, work, ChunkFailureStage::kHeader, policy,
                    annotated, out_bytes, 0);
      if (report != nullptr) report->truncated_tail = true;
      if (!salvage) {
        CaptureFlightRecorder(report);
        return annotated;
      }
      tail_lost = true;
      break;
    }
    work.header = *parsed;
    work.compressed =
        container_bytes.subspan(offset, work.header.compressed_size);
    offset += work.header.compressed_size;
    work.raw = container_bytes.subspan(offset, work.header.raw_size);
    offset += work.header.raw_size;
    if (work.header.element_count > header.chunk_elements) {
      const Status annotated = AnnotateChunkError(
          Status::Corruption("container: chunk claims more elements than "
                             "the header's chunk size"),
          work.index, work.byte_offset);
      if (!salvage) {
        RecordSalvage(report, work, ChunkFailureStage::kHeader, policy,
                      annotated, out_bytes, 0);
        CaptureFlightRecorder(report);
        return annotated;
      }
      // The record is still delimited by its (intact) section sizes; its
      // element count is untrustworthy, so assume a full chunk — the
      // common case for every record but the last.
      work.damaged = true;
      work.error = annotated;
      work.dest_elements = policy == ChunkErrorPolicy::kZeroFill
                               ? header.chunk_elements
                               : 0;
    } else {
      work.dest_elements = work.header.element_count;
    }
    work.out_offset = out_bytes;
    out_bytes += static_cast<size_t>(work.dest_elements) * width;
    chunks.push_back(work);
    stats->parse_seconds += chunk_parse_timer.ElapsedSeconds();
  }
  if (!tail_lost && offset != container_bytes.size()) {
    if (!salvage) {
      return Status::Corruption("container: trailing bytes after last chunk");
    }
    if (report != nullptr) {
      report->trailing_bytes = container_bytes.size() - offset;
    }
  }
  uint64_t declared_total = container::kUnknownCount;
  if (header.element_count != container::kUnknownCount) {
    declared_total = header.element_count * width;
  }
  const bool any_parse_damage =
      tail_lost || std::any_of(chunks.begin(), chunks.end(),
                               [](const ChunkWork& w) { return w.damaged; });
  if (declared_total != container::kUnknownCount && !any_parse_damage &&
      out_bytes != declared_total) {
    // With every record intact the totals must reconcile, salvage mode or
    // not; damaged parses expectedly break the sum.
    return Status::Corruption("container: element count mismatch");
  }

  // --- Decode pass: fan the payload work (decode → scatter → CRC) out
  // across the pool (or run it inline when serial); every chunk writes
  // only its own disjoint slice of `out`. resize() zero-initializes, so a
  // zero-filled chunk is simply one whose slice is never written (or is
  // re-zeroed after a partial scatter).
  Bytes out;
  out.resize(out_bytes);
  struct ChunkOutcome {
    Status status;
    ChunkFailureStage stage = ChunkFailureStage::kPayload;
    DecompressionStats stats;
  };
  auto decode_one = [&](const ChunkWork& work) -> ChunkOutcome {
    telemetry::ScopedSpan chunk_span("decompress.chunk", 0, work.index + 1);
    ChunkOutcome outcome;
    if (work.damaged) {
      outcome.status = work.error;
      outcome.stage = ChunkFailureStage::kHeader;
      return outcome;
    }
    MutableByteSpan dest(out.data() + work.out_offset,
                         static_cast<size_t>(work.dest_elements) * width);
    outcome.status = DecodeChunkPayload(
        work.header, work.compressed, work.raw, *codec, header.linearization,
        width, options.verify_checksums, dest, &outcome.stats,
        &outcome.stage, &ScratchArena::ThreadLocal(), work.index);
    if (!outcome.status.ok()) {
      outcome.status =
          AnnotateChunkError(outcome.status, work.index, work.byte_offset);
    }
    return outcome;
  };

  const size_t num_threads = ResolveNumThreads(options.num_threads);
  std::vector<std::future<ChunkOutcome>> results;
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && chunks.size() > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
    results.reserve(chunks.size());
    for (const ChunkWork& work : chunks) {
      results.push_back(pool->Submit([&work, &decode_one] {
        return decode_one(work);
      }));
    }
  }

  // Consume outcomes in chunk order; damaged slices collapse (kSkip) or
  // stay zeroed (kZeroFill). `removed` tracks ranges to erase so the
  // compaction runs once, back to front, after the loop.
  std::vector<std::pair<size_t, size_t>> removed;  // (offset, bytes)
  uint64_t skipped_bytes_before = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    const ChunkWork& work = chunks[i];
    ChunkOutcome outcome =
        pool != nullptr ? results[i].get() : decode_one(work);
    if (report != nullptr) ++report->chunks_total;
    if (outcome.status.ok()) {
      stats->decode_seconds += outcome.stats.decode_seconds;
      stats->scatter_seconds += outcome.stats.scatter_seconds;
      stats->chunk_count += outcome.stats.chunk_count;
      if (report != nullptr) {
        ++report->chunks_recovered;
        report->bytes_recovered +=
            static_cast<uint64_t>(work.dest_elements) * width;
      }
      continue;
    }
    // On error under kFail the early return destroys `pool` first,
    // draining outstanding tasks before `chunks` and `out` leave scope.
    if (!salvage) {
      RecordSalvage(report, work, outcome.stage, policy, outcome.status,
                    work.out_offset, 0);
      CaptureFlightRecorder(report);
      return outcome.status;
    }
    const size_t slice_bytes = static_cast<size_t>(work.dest_elements) * width;
    const uint64_t salvage_offset = work.out_offset - skipped_bytes_before;
    if (policy == ChunkErrorPolicy::kZeroFill) {
      // A failed decode may have partially scattered into its slice.
      std::fill(out.begin() + work.out_offset,
                out.begin() + work.out_offset + slice_bytes, uint8_t{0});
      RecordSalvage(report, work, outcome.stage, policy, outcome.status,
                    salvage_offset, slice_bytes);
    } else {
      if (slice_bytes > 0) removed.emplace_back(work.out_offset, slice_bytes);
      const uint64_t lost =
          static_cast<uint64_t>(work.header.element_count <=
                                        header.chunk_elements
                                    ? work.header.element_count
                                    : header.chunk_elements) *
          width;
      RecordSalvage(report, work, outcome.stage, policy, outcome.status,
                    salvage_offset, lost);
      skipped_bytes_before += slice_bytes;
    }
  }
  for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
    out.erase(out.begin() + it->first, out.begin() + it->first + it->second);
  }
  if (salvage && policy == ChunkErrorPolicy::kZeroFill && tail_lost &&
      declared_total != container::kUnknownCount &&
      out.size() < declared_total) {
    // Counted container with its tail framing destroyed: pad to the
    // declared size so downstream readers still see a full-shape restart
    // file, holes and all.
    const uint64_t pad = declared_total - out.size();
    out.resize(static_cast<size_t>(declared_total));
    if (report != nullptr && !report->damaged.empty()) {
      report->damaged.back().lost_bytes += pad;
      report->bytes_lost += pad;
    }
  }

  if (pool != nullptr) pool->PublishStats();
  if (report != nullptr && !report->clean()) CaptureFlightRecorder(report);

  stats->input_bytes = container_bytes.size();
  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  decompress_output.Add(out.size());
  return out;
}

}  // namespace isobar
