#include "core/isobar.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compressors/registry.h"
#include "core/chunk_codec.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/// Flight-recorder window embedded into a damaged SalvageReport: enough
/// recent events to cover several chunks' worth of pipeline activity
/// without bloating the report.
constexpr size_t kFlightRecorderEvents = 256;

/// Snapshots the most recent timeline events into `report` (no-op without
/// a report or with the timeline off). Called the moment damage is
/// established, so the window shows what every thread was doing when the
/// decode went wrong.
void CaptureFlightRecorder(SalvageReport* report) {
  if (report == nullptr || !telemetry::Timeline::Enabled()) return;
  report->flight_recorder =
      telemetry::Timeline::Global().SnapshotRecent(kFlightRecorderEvents);
}

/// One chunk's encode result, produced on a worker and consumed by the
/// (single) container writer.
struct EncodedChunk {
  Status status;
  Bytes record;
  CompressionStats stats;
  telemetry::ChunkTrace trace;
};

// Opens a pipeline trace for a freshly made EUPA decision and records the
// candidate evidence; returns 0 when tracing is off.
uint64_t BeginPipelineTrace(const EupaDecision& decision, size_t width) {
  auto& recorder = telemetry::TraceRecorder::Global();
  if (!recorder.enabled()) return 0;
  const uint64_t id = recorder.BeginPipeline(
      std::string(CodecIdToString(decision.codec)),
      std::string(LinearizationToString(decision.linearization)),
      std::string(PreferenceToString(decision.preference)), width);
  for (const CandidateEvaluation& eval : decision.evaluations) {
    telemetry::CandidateTrace candidate;
    candidate.codec = std::string(CodecIdToString(eval.codec));
    candidate.linearization =
        std::string(LinearizationToString(eval.linearization));
    candidate.ratio = eval.ratio;
    candidate.throughput_mbps = eval.throughput_mbps;
    recorder.RecordCandidate(id, std::move(candidate));
  }
  return id;
}

}  // namespace

Status ValidateCompressInput(uint64_t data_bytes, size_t width) {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data_bytes % width != 0) {
    return Status::InvalidArgument(
        "data size is not a multiple of the element width");
  }
  return Status::OK();
}

IsobarCompressor::IsobarCompressor(CompressOptions options)
    : options_(std::move(options)) {}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width) const {
  CompressionStats stats;
  return Compress(data, width, &stats);
}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width,
                                         CompressionStats* stats) const {
  if (stats == nullptr) return Status::InvalidArgument("stats must not be null");
  ISOBAR_RETURN_NOT_OK(ValidateCompressInput(data.size(), width));
  ISOBAR_RETURN_NOT_OK(ValidateAnalyzerOptions(options_.analyzer));
  if (options_.chunk_elements == 0) {
    return Status::InvalidArgument("chunk_elements must be > 0");
  }
  if (options_.container_version < container::kVersionV1 ||
      options_.container_version > container::kVersion) {
    return Status::InvalidArgument("unsupported container_version");
  }

  *stats = CompressionStats{};
  stats->input_bytes = data.size();
  telemetry::ScopedSpan compress_span("compress");
  static telemetry::Counter& compress_calls =
      telemetry::GetCounter("pipeline.compress_calls");
  static telemetry::Counter& compress_input =
      telemetry::GetCounter("pipeline.compress_input_bytes");
  static telemetry::Counter& compress_output =
      telemetry::GetCounter("pipeline.compress_output_bytes");
  compress_calls.Increment();
  compress_input.Add(data.size());
  Stopwatch total_timer;

  const Analyzer analyzer(options_.analyzer);
  // The ISOBAR_FORCE_CODEC CI hook pins auto-selected pipelines to one
  // solver; explicit caller overrides always win.
  EupaOptions eupa = options_.eupa;
  if (!eupa.forced_codec) eupa.forced_codec = ForcedCodecFromEnv();
  const EupaSelector selector(eupa);
  const uint64_t full_mask = FullMask(width);

  // --- EUPA phase: pick the (solver × linearization) pipeline once per
  // dataset from a training sample (§II.C). The analyzer verdict for the
  // sampling region determines which bytes the candidates are measured on.
  EupaDecision decision;
  decision.preference = eupa.preference;
  if (eupa.forced_codec && eupa.forced_linearization) {
    decision.codec = *eupa.forced_codec;
    decision.linearization = *eupa.forced_linearization;
  } else if (!data.empty()) {
    Stopwatch analysis_timer;
    const uint64_t n = data.size() / width;
    const uint64_t probe_elements =
        std::min<uint64_t>(n, std::max<uint64_t>(eupa.sample_elements, 1));
    ByteSpan probe = data.subspan(0, probe_elements * width);
    ISOBAR_ASSIGN_OR_RETURN(AnalysisResult probe_result,
                            analyzer.Analyze(probe, width));
    stats->analysis_seconds += analysis_timer.ElapsedSeconds();
    const uint64_t eupa_mask = probe_result.improvable()
                                   ? probe_result.compressible_mask
                                   : full_mask;
    ISOBAR_ASSIGN_OR_RETURN(decision,
                            selector.Select(data, width, eupa_mask));
  } else {
    // Empty input: nothing to measure; fall back to configured defaults.
    if (eupa.forced_codec) decision.codec = *eupa.forced_codec;
    if (eupa.forced_linearization) {
      decision.linearization = *eupa.forced_linearization;
    }
  }
  stats->decision = decision;
  const uint64_t trace_id = BeginPipelineTrace(decision, width);

  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(decision.codec));

  // --- Chunked pipeline (Alg. 1 applied per chunk, §II.D).
  const Chunker chunker(data, width, options_.chunk_elements);
  Bytes out;
  out.reserve(data.size() / 2 + container::kHeaderSize);

  container::Header header;
  header.version = options_.container_version;
  header.width = static_cast<uint8_t>(width);
  header.codec = decision.codec;
  header.linearization = decision.linearization;
  header.preference = options_.eupa.preference;
  // Safe cast: ValidateAnalyzerOptions bounded tau to a finite [1, 256].
  header.tau_centi = static_cast<uint16_t>(options_.analyzer.tau * 100.0 + 0.5);
  header.element_count = data.size() / width;
  header.chunk_elements = options_.chunk_elements;
  header.chunk_count = chunker.chunk_count();
  container::AppendHeader(header, &out);
  const size_t header_bytes = out.size();
  const Linearization raw_linearization =
      container::RawSectionLinearization(header.version);

  // Container offset of each chunk record as it is appended; v2 builds
  // its index footer from these after the pipeline drains.
  std::vector<size_t> record_offsets;
  record_offsets.reserve(static_cast<size_t>(chunker.chunk_count()));

  const size_t num_threads = ResolveNumThreads(options_.num_threads);
  if (num_threads <= 1 || chunker.chunk_count() <= 1) {
    ScratchArena& arena = ScratchArena::ThreadLocal();
    for (uint64_t ci = 0; ci < chunker.chunk_count(); ++ci) {
      record_offsets.push_back(out.size());
      ISOBAR_RETURN_NOT_OK(EncodeChunk(analyzer, *codec,
                                       decision.linearization,
                                       chunker.chunk(ci), width, &out, stats,
                                       trace_id, nullptr, &arena, ci,
                                       raw_linearization));
    }
  } else {
    // Fan each chunk's analyze→partition→solve out as a pool task; this
    // thread stays the single writer, appending records in chunk order.
    // The in-flight window bounds memory at O(threads) encoded chunks
    // instead of O(file).
    auto& recorder = telemetry::TraceRecorder::Global();
    const bool tracing = trace_id != 0;
    // This thread is the pipeline's in-order writer; name its timeline
    // track so writer stalls are attributable in the trace viewer.
    telemetry::Timeline::SetCurrentThreadName("writer");
    ThreadPool pool(num_threads);
    const size_t window = 2 * num_threads;
    std::deque<std::future<EncodedChunk>> in_flight;
    uint64_t next_chunk = 0;
    auto submit_next = [&] {
      const uint64_t ordinal = next_chunk++;
      const ByteSpan chunk = chunker.chunk(ordinal);
      in_flight.push_back(
          pool.Submit([&analyzer, &codec, &decision, chunk, width, trace_id,
                       tracing, ordinal, raw_linearization]() -> EncodedChunk {
            EncodedChunk encoded;
            // ThreadLocal() inside the task: each pool worker gets (and
            // keeps) its own arena across every chunk it encodes.
            encoded.status = EncodeChunk(
                analyzer, *codec, decision.linearization, chunk, width,
                &encoded.record, &encoded.stats, trace_id,
                tracing ? &encoded.trace : nullptr,
                &ScratchArena::ThreadLocal(), ordinal, raw_linearization);
            return encoded;
          }));
    };
    while (next_chunk < chunker.chunk_count() && in_flight.size() < window) {
      submit_next();
    }
    uint64_t write_index = 0;
    while (!in_flight.empty()) {
      EncodedChunk encoded;
      {
        // The in-order stall: how long the writer blocked on the oldest
        // outstanding chunk. On the timeline, back-to-back writer.wait
        // slices mean workers can't keep the window full.
        telemetry::ScopedSpan wait_span("writer.wait", trace_id,
                                        write_index + 1);
        encoded = in_flight.front().get();
      }
      in_flight.pop_front();
      if (next_chunk < chunker.chunk_count()) submit_next();
      // On error the early return destroys `pool`, which drains the
      // remaining queued tasks before the chunker and codec go away.
      ISOBAR_RETURN_NOT_OK(encoded.status);
      {
        telemetry::ScopedSpan append_span("writer.append", trace_id,
                                          write_index + 1);
        record_offsets.push_back(out.size());
        out.insert(out.end(), encoded.record.begin(), encoded.record.end());
        MergeChunkStats(encoded.stats, stats);
        if (tracing) recorder.RecordChunk(trace_id, std::move(encoded.trace));
      }
      ++write_index;
    }
    pool.PublishStats();
  }

  if (header.version >= container::kVersion) {
    // Build the chunk-index footer from the records just written; both
    // this path and the streaming writer derive entries from the final
    // byte layout, so batch and streamed containers of the same input
    // carry byte-identical footers.
    std::vector<container::IndexEntry> entries;
    entries.reserve(record_offsets.size());
    uint64_t element_offset = 0;
    for (const size_t record_offset : record_offsets) {
      ISOBAR_ASSIGN_OR_RETURN(
          container::IndexEntry entry,
          container::MakeIndexEntry(out, record_offset, element_offset));
      element_offset += entry.element_count;
      entries.push_back(entry);
    }
    container::AppendFooter(entries, header.element_count, &out);
  }

  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  compress_output.Add(out.size());
  telemetry::TraceRecorder::Global().EndPipeline(trace_id, data.size(),
                                                 out.size(), header_bytes);
  return out;
}

namespace {

/// Outcome of looking for a v2 chunk-index footer.
struct IndexResolution {
  bool have_index = false;
  container::ChunkIndex index;
};

/// Parses the v2 chunk-index footer (a no-op on v1 containers), adopting
/// its totals into `header` (streamed containers carry sentinels in the
/// file header) and bounding the record walk at the footer's start. A
/// damaged footer is an error under kFail; under a salvage policy the
/// caller falls back to the v1 sequential walk over the whole buffer and
/// the footer region surfaces as trailing damage.
Status ResolveChunkIndex(ByteSpan container_bytes, bool salvage,
                         container::Header* header, size_t* payload_end,
                         IndexResolution* resolution) {
  *payload_end = container_bytes.size();
  if (header->version < container::kVersion) return Status::OK();
  static telemetry::Counter& index_hits =
      telemetry::GetCounter("pipeline.index_hits");
  static telemetry::Counter& index_fallbacks =
      telemetry::GetCounter("pipeline.index_fallbacks");
  auto parsed = container::ParseFooter(container_bytes, *header);
  if (parsed.ok()) {
    index_hits.Increment();
    resolution->have_index = true;
    resolution->index = std::move(*parsed);
    *payload_end = resolution->index.payload_end;
    if (header->element_count == container::kUnknownCount) {
      header->element_count = resolution->index.element_count;
    }
    if (header->chunk_count == container::kUnknownCount) {
      header->chunk_count = resolution->index.entries.size();
    }
    return Status::OK();
  }
  if (!salvage) return parsed.status();
  index_fallbacks.Increment();
  return Status::OK();
}

/// One parsed chunk record of the decode plan: payload slices, destination
/// range, and (in salvage mode) any header-stage damage verdict.
struct ChunkWork {
  container::ChunkHeader header;
  uint64_t index = 0;
  uint64_t byte_offset = 0;  ///< Record start in the container.
  ByteSpan compressed;
  ByteSpan raw;
  size_t out_offset = 0;
  uint64_t dest_elements = 0;  ///< Output elements this record accounts for.
  bool damaged = false;        ///< Header-stage damage found while parsing.
  Status error;                ///< Set when damaged.
};

/// Appends a damaged-chunk entry to `report` (when non-null) and, for the
/// salvaging policies, bumps the salvage telemetry counters. With action
/// kFail the entry only documents the chunk that aborted the decode.
void RecordSalvageEntry(SalvageReport* report, uint64_t chunk_index,
                        uint64_t byte_offset, uint64_t element_count,
                        ChunkFailureStage stage, ChunkErrorPolicy action,
                        const Status& error, uint64_t output_offset,
                        uint64_t lost_bytes) {
  if (action != ChunkErrorPolicy::kFail) {
    static telemetry::Counter& salvaged =
        telemetry::GetCounter("pipeline.chunks_salvaged");
    static telemetry::Counter& zero_filled =
        telemetry::GetCounter("pipeline.chunks_zero_filled");
    salvaged.Increment();
    if (action == ChunkErrorPolicy::kZeroFill) zero_filled.Increment();
  }
  if (report == nullptr) return;
  ChunkSalvageRecord record;
  record.chunk_index = chunk_index;
  record.byte_offset = byte_offset;
  record.element_count = element_count;
  record.output_offset = output_offset;
  record.lost_bytes = lost_bytes;
  record.stage = stage;
  record.action = action;
  record.error = error;
  report->damaged.push_back(std::move(record));
  if (action == ChunkErrorPolicy::kZeroFill) {
    ++report->chunks_zero_filled;
  } else if (action == ChunkErrorPolicy::kSkip) {
    ++report->chunks_skipped;
  }
  report->bytes_lost += lost_bytes;
}

void RecordSalvage(SalvageReport* report, const ChunkWork& work,
                   ChunkFailureStage stage, ChunkErrorPolicy action,
                   const Status& error, uint64_t output_offset,
                   uint64_t lost_bytes) {
  RecordSalvageEntry(report, work.index, work.byte_offset,
                     work.header.element_count, stage, action, error,
                     output_offset, lost_bytes);
}

/// One chunk record in a range/column read plan: like ChunkWork, but
/// addressed by the element offset the record covers rather than by an
/// output-buffer offset (partial reads compute those per intersection).
struct PlannedChunk {
  container::ChunkHeader header;
  uint64_t index = 0;
  uint64_t byte_offset = 0;
  uint64_t element_offset = 0;  ///< First element the record covers.
  ByteSpan compressed;
  ByteSpan raw;
  bool damaged = false;
  Status error;  ///< Set when damaged.
};

/// Sequential record walk shared by the range/column readers when no
/// (valid) index footer is available — and by the column reader always,
/// since every chunk holds a slice of every column. Parses records into
/// `result->plan` until `stop_after_element` elements are covered (pass
/// kUnknownCount to walk everything). A record over-declaring its element
/// count is marked damaged and assumed full-size, keeping element
/// addressing monotone; a record whose framing is destroyed ends the walk
/// with tail_lost. Both abort the walk with an error under kFail.
struct WalkResult {
  std::vector<PlannedChunk> plan;
  uint64_t total_elements = 0;  ///< Elements covered by parsed records.
  size_t end_offset = container::kHeaderSize;  ///< Past the last good record.
  bool tail_lost = false;
  Status tail_error;            ///< The framing failure when tail_lost.
  uint64_t tail_index = 0;      ///< Record index where framing died.
  uint64_t tail_offset = 0;     ///< Container offset of that record.
};

Status WalkChunkRecords(ByteSpan container_bytes,
                        const container::Header& header, bool counted,
                        size_t payload_end, ChunkErrorPolicy policy,
                        uint64_t stop_after_element, WalkResult* result,
                        double* parse_seconds) {
  const bool salvage = policy != ChunkErrorPolicy::kFail;
  Stopwatch parse_timer;
  size_t offset = container::kHeaderSize;
  uint64_t element_offset = 0;
  uint64_t chunk_i = 0;
  while ((counted ? chunk_i < header.chunk_count : offset < payload_end) &&
         element_offset < stop_after_element) {
    PlannedChunk work;
    work.index = chunk_i;
    work.byte_offset = offset;
    work.element_offset = element_offset;
    auto parsed = container::ParseChunkHeader(container_bytes, &offset);
    if (!parsed.ok()) {
      result->tail_lost = true;
      result->tail_error =
          AnnotateChunkError(parsed.status(), chunk_i, work.byte_offset);
      result->tail_index = chunk_i;
      result->tail_offset = work.byte_offset;
      if (!salvage) {
        if (parse_seconds != nullptr) {
          *parse_seconds += parse_timer.ElapsedSeconds();
        }
        return result->tail_error;
      }
      break;
    }
    work.header = *parsed;
    work.compressed =
        container_bytes.subspan(offset, work.header.compressed_size);
    offset += work.header.compressed_size;
    work.raw = container_bytes.subspan(offset, work.header.raw_size);
    offset += work.header.raw_size;
    if (work.header.element_count > header.chunk_elements) {
      work.damaged = true;
      work.error = AnnotateChunkError(
          Status::Corruption("container: chunk claims more elements than "
                             "the header's chunk size"),
          chunk_i, work.byte_offset);
      if (!salvage) {
        if (parse_seconds != nullptr) {
          *parse_seconds += parse_timer.ElapsedSeconds();
        }
        return work.error;
      }
      // Element addressing must stay monotone for the ranges that follow;
      // assume a full chunk, the true shape of every record but the last.
      work.header.element_count = header.chunk_elements;
    }
    element_offset += work.header.element_count;
    result->plan.push_back(std::move(work));
    result->end_offset = offset;
    ++chunk_i;
  }
  result->total_elements = element_offset;
  if (parse_seconds != nullptr) *parse_seconds += parse_timer.ElapsedSeconds();
  return Status::OK();
}

/// Rank of column `c` inside `mask`: how many selected columns precede it.
size_t ColumnRank(uint64_t mask, size_t c) {
  return static_cast<size_t>(
      __builtin_popcountll(mask & ((c == 0) ? 0ull : (~0ull >> (64 - c)))));
}

}  // namespace

Result<Bytes> IsobarCompressor::Decompress(ByteSpan container_bytes,
                                           const DecompressOptions& options,
                                           DecompressionStats* stats) {
  telemetry::ScopedSpan decompress_span("decompress");
  static telemetry::Counter& decompress_calls =
      telemetry::GetCounter("pipeline.decompress_calls");
  static telemetry::Counter& decompress_input =
      telemetry::GetCounter("pipeline.decompress_input_bytes");
  static telemetry::Counter& decompress_output =
      telemetry::GetCounter("pipeline.decompress_output_bytes");
  decompress_calls.Increment();
  decompress_input.Add(container_bytes.size());

  DecompressionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = DecompressionStats{};
  const ChunkErrorPolicy policy = options.on_chunk_error;
  const bool salvage = policy != ChunkErrorPolicy::kFail;
  SalvageReport* report = options.salvage_report;
  if (report != nullptr) *report = SalvageReport{};

  Stopwatch total_timer;
  Stopwatch parse_timer;
  size_t offset = 0;
  ISOBAR_ASSIGN_OR_RETURN(container::Header header,
                          container::ParseHeader(container_bytes, &offset));
  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(header.codec));

  size_t payload_end = container_bytes.size();
  IndexResolution resolution;
  ISOBAR_RETURN_NOT_OK(ResolveChunkIndex(container_bytes, salvage, &header,
                                         &payload_end, &resolution));
  stats->parse_seconds += parse_timer.ElapsedSeconds();

  const size_t width = header.width;
  // Counted containers (batch writer, or any container with a valid
  // footer) carry the chunk total; footer-less streamed containers use
  // the kUnknownCount sentinel and run to the end.
  const bool counted = header.chunk_count != container::kUnknownCount;

  // --- Parse pass: chunk records are self-delimiting, so one cheap
  // header walk yields every record's payload slices and its (disjoint)
  // destination range in the output buffer. Damage found here is either
  // contained (the record still delimits itself: bad element count) or
  // fatal to the tail (framing destroyed: header unparseable or section
  // sizes running past the container).
  std::vector<ChunkWork> chunks;
  if (counted) {
    // The count is untrusted; each record is at least a chunk header, so
    // the buffer bounds how many records a reserve may assume.
    chunks.reserve(static_cast<size_t>(std::min<uint64_t>(
        header.chunk_count,
        container_bytes.size() / container::kChunkHeaderSize + 1)));
  }
  size_t out_bytes = 0;
  bool tail_lost = false;
  while (counted ? chunks.size() < header.chunk_count
                 : offset < payload_end) {
    Stopwatch chunk_parse_timer;
    ChunkWork work;
    work.index = chunks.size();
    work.byte_offset = offset;
    auto parsed = container::ParseChunkHeader(container_bytes, &offset);
    if (!parsed.ok()) {
      const Status annotated =
          AnnotateChunkError(parsed.status(), work.index, work.byte_offset);
      // Record framing is gone: the rest of the container cannot be
      // delimited, so everything from here on is lost.
      work.error = annotated;
      RecordSalvage(report, work, ChunkFailureStage::kHeader, policy,
                    annotated, out_bytes, 0);
      if (report != nullptr) report->truncated_tail = true;
      if (!salvage) {
        CaptureFlightRecorder(report);
        return annotated;
      }
      tail_lost = true;
      break;
    }
    work.header = *parsed;
    work.compressed =
        container_bytes.subspan(offset, work.header.compressed_size);
    offset += work.header.compressed_size;
    work.raw = container_bytes.subspan(offset, work.header.raw_size);
    offset += work.header.raw_size;
    if (work.header.element_count > header.chunk_elements) {
      const Status annotated = AnnotateChunkError(
          Status::Corruption("container: chunk claims more elements than "
                             "the header's chunk size"),
          work.index, work.byte_offset);
      if (!salvage) {
        RecordSalvage(report, work, ChunkFailureStage::kHeader, policy,
                      annotated, out_bytes, 0);
        CaptureFlightRecorder(report);
        return annotated;
      }
      // The record is still delimited by its (intact) section sizes; its
      // element count is untrustworthy, so assume a full chunk — the
      // common case for every record but the last.
      work.damaged = true;
      work.error = annotated;
      work.dest_elements = policy == ChunkErrorPolicy::kZeroFill
                               ? header.chunk_elements
                               : 0;
    } else {
      work.dest_elements = work.header.element_count;
    }
    work.out_offset = out_bytes;
    out_bytes += static_cast<size_t>(work.dest_elements) * width;
    chunks.push_back(work);
    stats->parse_seconds += chunk_parse_timer.ElapsedSeconds();
  }
  if (!tail_lost && offset != payload_end) {
    if (!salvage) {
      return Status::Corruption("container: trailing bytes after last chunk");
    }
    if (report != nullptr && offset < payload_end) {
      report->trailing_bytes = payload_end - offset;
    }
  }
  uint64_t declared_total = container::kUnknownCount;
  if (header.element_count != container::kUnknownCount &&
      !container::CheckedMul64(header.element_count, width,
                               &declared_total)) {
    // A hostile element_count near 2^64 would wrap the product and make
    // the mismatch check below pass (or fail) arbitrarily.
    return Status::Corruption("container: element count overflows");
  }
  const bool any_parse_damage =
      tail_lost || std::any_of(chunks.begin(), chunks.end(),
                               [](const ChunkWork& w) { return w.damaged; });
  if (declared_total != container::kUnknownCount && !any_parse_damage &&
      out_bytes != declared_total) {
    // With every record intact the totals must reconcile, salvage mode or
    // not; damaged parses expectedly break the sum.
    return Status::Corruption("container: element count mismatch");
  }

  // --- Decode pass: fan the payload work (decode → scatter → CRC) out
  // across the pool (or run it inline when serial); every chunk writes
  // only its own disjoint slice of `out`. resize() zero-initializes, so a
  // zero-filled chunk is simply one whose slice is never written (or is
  // re-zeroed after a partial scatter).
  Bytes out;
  out.resize(out_bytes);
  struct ChunkOutcome {
    Status status;
    ChunkFailureStage stage = ChunkFailureStage::kPayload;
    DecompressionStats stats;
  };
  auto decode_one = [&](const ChunkWork& work) -> ChunkOutcome {
    telemetry::ScopedSpan chunk_span("decompress.chunk", 0, work.index + 1);
    ChunkOutcome outcome;
    if (work.damaged) {
      outcome.status = work.error;
      outcome.stage = ChunkFailureStage::kHeader;
      return outcome;
    }
    MutableByteSpan dest(out.data() + work.out_offset,
                         static_cast<size_t>(work.dest_elements) * width);
    outcome.status = DecodeChunkPayload(
        work.header, work.compressed, work.raw, *codec, header.linearization,
        width, options.verify_checksums, dest, &outcome.stats,
        &outcome.stage, &ScratchArena::ThreadLocal(), work.index,
        container::RawSectionLinearization(header.version));
    if (!outcome.status.ok()) {
      outcome.status =
          AnnotateChunkError(outcome.status, work.index, work.byte_offset);
    }
    return outcome;
  };

  const size_t num_threads = ResolveNumThreads(options.num_threads);
  std::vector<std::future<ChunkOutcome>> results;
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && chunks.size() > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
    results.reserve(chunks.size());
    for (const ChunkWork& work : chunks) {
      results.push_back(pool->Submit([&work, &decode_one] {
        return decode_one(work);
      }));
    }
  }

  // Consume outcomes in chunk order; damaged slices collapse (kSkip) or
  // stay zeroed (kZeroFill). `removed` tracks ranges to erase so the
  // compaction runs once, back to front, after the loop.
  std::vector<std::pair<size_t, size_t>> removed;  // (offset, bytes)
  uint64_t skipped_bytes_before = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    const ChunkWork& work = chunks[i];
    ChunkOutcome outcome =
        pool != nullptr ? results[i].get() : decode_one(work);
    if (report != nullptr) ++report->chunks_total;
    if (outcome.status.ok()) {
      stats->decode_seconds += outcome.stats.decode_seconds;
      stats->scatter_seconds += outcome.stats.scatter_seconds;
      stats->chunk_count += outcome.stats.chunk_count;
      if (report != nullptr) {
        ++report->chunks_recovered;
        report->bytes_recovered +=
            static_cast<uint64_t>(work.dest_elements) * width;
      }
      continue;
    }
    // On error under kFail the early return destroys `pool` first,
    // draining outstanding tasks before `chunks` and `out` leave scope.
    if (!salvage) {
      RecordSalvage(report, work, outcome.stage, policy, outcome.status,
                    work.out_offset, 0);
      CaptureFlightRecorder(report);
      return outcome.status;
    }
    const size_t slice_bytes = static_cast<size_t>(work.dest_elements) * width;
    const uint64_t salvage_offset = work.out_offset - skipped_bytes_before;
    if (policy == ChunkErrorPolicy::kZeroFill) {
      // A failed decode may have partially scattered into its slice.
      std::fill(out.begin() + work.out_offset,
                out.begin() + work.out_offset + slice_bytes, uint8_t{0});
      RecordSalvage(report, work, outcome.stage, policy, outcome.status,
                    salvage_offset, slice_bytes);
    } else {
      if (slice_bytes > 0) removed.emplace_back(work.out_offset, slice_bytes);
      const uint64_t lost =
          static_cast<uint64_t>(work.header.element_count <=
                                        header.chunk_elements
                                    ? work.header.element_count
                                    : header.chunk_elements) *
          width;
      RecordSalvage(report, work, outcome.stage, policy, outcome.status,
                    salvage_offset, lost);
      skipped_bytes_before += slice_bytes;
    }
  }
  for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
    out.erase(out.begin() + it->first, out.begin() + it->first + it->second);
  }
  if (salvage && policy == ChunkErrorPolicy::kZeroFill && tail_lost &&
      declared_total != container::kUnknownCount &&
      out.size() < declared_total) {
    // Counted container with its tail framing destroyed: pad to the
    // declared size so downstream readers still see a full-shape restart
    // file, holes and all.
    const uint64_t pad = declared_total - out.size();
    out.resize(static_cast<size_t>(declared_total));
    if (report != nullptr && !report->damaged.empty()) {
      report->damaged.back().lost_bytes += pad;
      report->bytes_lost += pad;
    }
  }

  if (pool != nullptr) pool->PublishStats();
  if (report != nullptr && !report->clean()) CaptureFlightRecorder(report);

  stats->input_bytes = container_bytes.size();
  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  decompress_output.Add(out.size());
  return out;
}

Result<Bytes> IsobarCompressor::DecompressRange(
    ByteSpan container_bytes, uint64_t first_element, uint64_t end_element,
    const DecompressOptions& options, DecompressionStats* stats) {
  telemetry::ScopedSpan range_span("decompress.range");
  static telemetry::Counter& range_reads =
      telemetry::GetCounter("pipeline.range_reads");
  static telemetry::Counter& range_chunks =
      telemetry::GetCounter("pipeline.range_chunks_decoded");
  range_reads.Increment();

  DecompressionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = DecompressionStats{};
  if (first_element > end_element) {
    return Status::InvalidArgument("range: first_element > end_element");
  }
  const ChunkErrorPolicy policy = options.on_chunk_error;
  const bool salvage = policy != ChunkErrorPolicy::kFail;
  SalvageReport* report = options.salvage_report;
  if (report != nullptr) *report = SalvageReport{};

  Stopwatch total_timer;
  Stopwatch parse_timer;
  size_t offset = 0;
  ISOBAR_ASSIGN_OR_RETURN(container::Header header,
                          container::ParseHeader(container_bytes, &offset));
  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(header.codec));
  size_t payload_end = container_bytes.size();
  IndexResolution resolution;
  ISOBAR_RETURN_NOT_OK(ResolveChunkIndex(container_bytes, salvage, &header,
                                         &payload_end, &resolution));
  stats->parse_seconds += parse_timer.ElapsedSeconds();
  const size_t width = header.width;
  const bool counted = header.chunk_count != container::kUnknownCount;
  const Linearization raw_linearization =
      container::RawSectionLinearization(header.version);

  if (header.element_count != container::kUnknownCount &&
      end_element > header.element_count) {
    return Status::InvalidArgument(
        "range: end_element past the container's element count");
  }
  uint64_t out_bytes = 0;
  if (!container::CheckedMul64(end_element - first_element, width,
                               &out_bytes) ||
      out_bytes > std::numeric_limits<size_t>::max()) {
    return Status::InvalidArgument("range: output size overflows");
  }
  Bytes out(static_cast<size_t>(out_bytes), 0);
  stats->input_bytes = container_bytes.size();
  if (first_element == end_element) {
    stats->output_bytes = 0;
    stats->total_seconds = total_timer.ElapsedSeconds();
    return out;
  }

  // --- Plan: the chunk records covering [first, end). With an index the
  // covering entries are found by binary search and only those records'
  // headers are parsed; without one (v1, or damaged footer under salvage)
  // a sequential header walk runs just far enough to cover the range.
  std::vector<PlannedChunk> plan;
  bool tail_lost = false;
  Status tail_error;
  uint64_t tail_index = 0;
  uint64_t tail_offset = 0;
  uint64_t walked_elements = container::kUnknownCount;
  if (resolution.have_index) {
    const std::vector<container::IndexEntry>& entries =
        resolution.index.entries;
    size_t i = static_cast<size_t>(
        std::upper_bound(entries.begin(), entries.end(), first_element,
                         [](uint64_t value, const container::IndexEntry& e) {
                           return value < e.element_offset;
                         }) -
        entries.begin());
    if (i > 0) --i;
    Stopwatch plan_timer;
    for (; i < entries.size() && entries[i].element_offset < end_element;
         ++i) {
      const container::IndexEntry& entry = entries[i];
      if (entry.element_offset + entry.element_count <= first_element) {
        continue;  // The search's candidate may end before the range.
      }
      PlannedChunk work;
      work.index = i;
      work.byte_offset = entry.record_offset;
      work.element_offset = entry.element_offset;
      size_t record_offset = static_cast<size_t>(entry.record_offset);
      auto parsed = container::ParseChunkHeader(container_bytes,
                                                &record_offset);
      if (parsed.ok() && parsed->element_count == entry.element_count) {
        work.header = *parsed;
        work.compressed = container_bytes.subspan(
            record_offset, work.header.compressed_size);
        work.raw = container_bytes.subspan(
            record_offset + work.header.compressed_size,
            work.header.raw_size);
      } else {
        const Status cause =
            parsed.ok() ? Status::Corruption(
                              "container: chunk record disagrees with its "
                              "index entry")
                        : parsed.status();
        work.damaged = true;
        work.header.element_count = entry.element_count;
        work.error = AnnotateChunkError(cause, i, entry.record_offset);
      }
      plan.push_back(std::move(work));
    }
    stats->parse_seconds += plan_timer.ElapsedSeconds();
  } else {
    WalkResult walk;
    ISOBAR_RETURN_NOT_OK(WalkChunkRecords(container_bytes, header, counted,
                                          payload_end, policy, end_element,
                                          &walk, &stats->parse_seconds));
    plan = std::move(walk.plan);
    tail_lost = walk.tail_lost;
    tail_error = walk.tail_error;
    tail_index = walk.tail_index;
    tail_offset = walk.tail_offset;
    walked_elements = walk.total_elements;
    if (tail_lost && report != nullptr) report->truncated_tail = true;
    if (!tail_lost && walk.total_elements < end_element &&
        header.element_count == container::kUnknownCount) {
      // Footer-less streamed container that ran out of records before the
      // range's end: the range is out of bounds, not damaged.
      return Status::InvalidArgument(
          "range: end_element past the container's element count");
    }
  }

  // --- Decode pass over the covering chunks only. A chunk fully inside
  // the range decodes straight into its output slice; boundary chunks
  // decode into scratch and copy the intersection out.
  ScratchArena& arena = ScratchArena::ThreadLocal();
  Bytes scratch;
  for (const PlannedChunk& work : plan) {
    const uint64_t n = work.header.element_count;
    const uint64_t inter_begin = std::max(first_element, work.element_offset);
    const uint64_t inter_end = std::min(end_element, work.element_offset + n);
    if (inter_begin >= inter_end) continue;  // Walk-collected early chunk.
    const size_t inter_bytes =
        static_cast<size_t>(inter_end - inter_begin) * width;
    const size_t out_offset =
        static_cast<size_t>(inter_begin - first_element) * width;
    if (report != nullptr) ++report->chunks_total;
    ChunkFailureStage stage = ChunkFailureStage::kHeader;
    Status status = work.error;
    if (!work.damaged) {
      const bool whole = work.element_offset >= first_element &&
                         work.element_offset + n <= end_element;
      MutableByteSpan dest;
      if (whole) {
        dest = MutableByteSpan(out.data() + out_offset,
                               static_cast<size_t>(n) * width);
      } else {
        scratch.resize(static_cast<size_t>(n) * width);
        dest = MutableByteSpan(scratch);
      }
      status = DecodeChunkPayload(work.header, work.compressed, work.raw,
                                  *codec, header.linearization, width,
                                  options.verify_checksums, dest, stats,
                                  &stage, &arena, work.index,
                                  raw_linearization);
      if (status.ok()) {
        range_chunks.Increment();
        if (!whole) {
          std::memcpy(out.data() + out_offset,
                      scratch.data() +
                          static_cast<size_t>(inter_begin -
                                              work.element_offset) *
                              width,
                      inter_bytes);
        }
        if (report != nullptr) {
          ++report->chunks_recovered;
          report->bytes_recovered += inter_bytes;
        }
        continue;
      }
      status = AnnotateChunkError(status, work.index, work.byte_offset);
    }
    if (!salvage) {
      RecordSalvageEntry(report, work.index, work.byte_offset, n, stage,
                         policy, status, out_offset, 0);
      CaptureFlightRecorder(report);
      return status;
    }
    // Both salvage policies zero-fill here: dropping the slice would shift
    // the range's element addressing. A failed whole-chunk decode may have
    // partially scattered into the output; re-zero its slice.
    std::fill(out.begin() + out_offset, out.begin() + out_offset + inter_bytes,
              uint8_t{0});
    RecordSalvageEntry(report, work.index, work.byte_offset, n, stage, policy,
                       status, out_offset, inter_bytes);
  }
  if (tail_lost && walked_elements < end_element) {
    // Sequential fallback died before covering the range; the uncovered
    // slice stays zeroed and is billed to the framing failure.
    const uint64_t lost_begin = std::max(first_element, walked_elements);
    RecordSalvageEntry(report, tail_index, tail_offset, 0,
                       ChunkFailureStage::kHeader, policy, tail_error,
                       (lost_begin - first_element) * width,
                       (end_element - lost_begin) * width);
    CaptureFlightRecorder(report);
  }
  if (report != nullptr && !report->clean()) CaptureFlightRecorder(report);

  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  return out;
}

Result<Bytes> IsobarCompressor::DecompressColumns(
    ByteSpan container_bytes, uint64_t column_mask,
    const DecompressOptions& options, DecompressionStats* stats) {
  telemetry::ScopedSpan columns_span("decompress.columns");
  static telemetry::Counter& column_reads =
      telemetry::GetCounter("pipeline.column_reads");
  static telemetry::Counter& planes_raw =
      telemetry::GetCounter("pipeline.column_planes_raw");
  static telemetry::Counter& planes_decoded =
      telemetry::GetCounter("pipeline.column_planes_decoded");
  column_reads.Increment();

  DecompressionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = DecompressionStats{};
  const ChunkErrorPolicy policy = options.on_chunk_error;
  const bool salvage = policy != ChunkErrorPolicy::kFail;
  SalvageReport* report = options.salvage_report;
  if (report != nullptr) *report = SalvageReport{};

  Stopwatch total_timer;
  Stopwatch parse_timer;
  size_t offset = 0;
  ISOBAR_ASSIGN_OR_RETURN(container::Header header,
                          container::ParseHeader(container_bytes, &offset));
  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(header.codec));
  size_t payload_end = container_bytes.size();
  IndexResolution resolution;
  ISOBAR_RETURN_NOT_OK(ResolveChunkIndex(container_bytes, salvage, &header,
                                         &payload_end, &resolution));
  stats->parse_seconds += parse_timer.ElapsedSeconds();
  const size_t width = header.width;
  const bool counted = header.chunk_count != container::kUnknownCount;
  const uint64_t full_mask = FullMask(width);
  const Linearization raw_linearization =
      container::RawSectionLinearization(header.version);

  if (column_mask == 0) {
    return Status::InvalidArgument("columns: empty column mask");
  }
  if ((column_mask & ~full_mask) != 0) {
    return Status::InvalidArgument(
        "columns: mask has bits beyond the element width");
  }
  const size_t requested = static_cast<size_t>(
      PopcountMask(column_mask, width));

  // Every chunk holds a slice of every column, so the record walk always
  // runs in full; the index's contribution is the trustworthy totals and
  // payload bound resolved above.
  WalkResult walk;
  ISOBAR_RETURN_NOT_OK(WalkChunkRecords(container_bytes, header, counted,
                                        payload_end, policy,
                                        container::kUnknownCount, &walk,
                                        &stats->parse_seconds));
  if (walk.tail_lost && report != nullptr) report->truncated_tail = true;
  if (!walk.tail_lost && walk.end_offset != payload_end) {
    if (!salvage) {
      return Status::Corruption("container: trailing bytes after last chunk");
    }
    if (report != nullptr && walk.end_offset < payload_end) {
      report->trailing_bytes = payload_end - walk.end_offset;
    }
  }
  const bool any_parse_damage =
      walk.tail_lost ||
      std::any_of(walk.plan.begin(), walk.plan.end(),
                  [](const PlannedChunk& w) { return w.damaged; });
  if (header.element_count != container::kUnknownCount && !any_parse_damage &&
      walk.total_elements != header.element_count) {
    return Status::Corruption("container: element count mismatch");
  }
  // Damage can only shrink coverage; size the planes to the declared total
  // when one exists so holes stay holes instead of shifting planes.
  const uint64_t total_elements =
      header.element_count != container::kUnknownCount
          ? header.element_count
          : walk.total_elements;
  uint64_t out_bytes = 0;
  if (!container::CheckedMul64(total_elements, requested, &out_bytes) ||
      out_bytes > std::numeric_limits<size_t>::max()) {
    return Status::Corruption("columns: output size overflows");
  }
  Bytes out(static_cast<size_t>(out_bytes), 0);
  stats->input_bytes = container_bytes.size();

  // Plane p (the p-th requested column, ascending) occupies
  // out[p * total_elements, (p + 1) * total_elements).
  const size_t plane_stride = static_cast<size_t>(total_elements);
  ScratchArena& arena = ScratchArena::ThreadLocal();
  Bytes& decoded = arena.buffer(ScratchArena::kDecoded);
  for (const PlannedChunk& work : walk.plan) {
    const uint64_t n = work.header.element_count;
    const size_t elem_off = static_cast<size_t>(work.element_offset);
    if (report != nullptr) ++report->chunks_total;
    if (work.element_offset + n > total_elements) {
      // Over-declared records under salvage can run past the declared
      // total; their planes stay zero rather than write out of bounds.
      RecordSalvageEntry(report, work.index, work.byte_offset, n,
                         ChunkFailureStage::kHeader, policy,
                         work.damaged
                             ? work.error
                             : Status::Corruption(
                                   "container: chunk extends past the "
                                   "declared element count"),
                         elem_off, 0);
      continue;
    }
    // Failure helper: zero is already the content of every unwritten
    // plane segment, so "losing" planes is pure bookkeeping.
    auto fail_chunk = [&](ChunkFailureStage stage, const Status& error,
                          uint64_t lost_mask) -> Status {
      const uint64_t lost_bytes =
          n * static_cast<uint64_t>(PopcountMask(lost_mask, width));
      if (!salvage) {
        RecordSalvageEntry(report, work.index, work.byte_offset, n, stage,
                           policy, error, elem_off, 0);
        CaptureFlightRecorder(report);
        return error;
      }
      RecordSalvageEntry(report, work.index, work.byte_offset, n, stage,
                         policy, error, elem_off, lost_bytes);
      return Status::OK();
    };
    if (work.damaged) {
      ISOBAR_RETURN_NOT_OK(
          fail_chunk(ChunkFailureStage::kHeader, work.error, column_mask));
      continue;
    }
    const bool undetermined =
        (work.header.flags & container::kChunkUndetermined) != 0;
    const uint64_t chunk_mask =
        undetermined ? full_mask : work.header.compressible_mask;
    if ((chunk_mask & ~full_mask) != 0) {
      ISOBAR_RETURN_NOT_OK(fail_chunk(
          ChunkFailureStage::kPayload,
          AnnotateChunkError(
              Status::Corruption(
                  "container: chunk mask exceeds element width"),
              work.index, work.byte_offset),
          column_mask));
      continue;
    }
    const uint64_t raw_mask = full_mask & ~chunk_mask;
    const size_t raw_width = static_cast<size_t>(
        PopcountMask(raw_mask, width));
    const size_t selected = width - raw_width;
    if (work.header.raw_size != n * raw_width) {
      ISOBAR_RETURN_NOT_OK(fail_chunk(
          ChunkFailureStage::kPayload,
          AnnotateChunkError(
              Status::Corruption("container: raw section size mismatch"),
              work.index, work.byte_offset),
          column_mask));
      continue;
    }
    const uint64_t req_raw = column_mask & raw_mask;
    const uint64_t req_solver = column_mask & chunk_mask;
    uint64_t recovered_mask = 0;

    // Noise planes come straight off the raw section — on v2 one memcpy
    // per plane; v1 interleaved them, so the legacy layout pays a strided
    // gather.
    for (uint64_t rest = req_raw; rest != 0; rest &= rest - 1) {
      const size_t c = static_cast<size_t>(__builtin_ctzll(rest));
      const size_t r = ColumnRank(raw_mask, c);
      const size_t p = ColumnRank(column_mask, c);
      uint8_t* dest = out.data() + p * plane_stride + elem_off;
      if (raw_linearization == Linearization::kColumn) {
        std::memcpy(dest, work.raw.data() + r * n,
                    static_cast<size_t>(n));
      } else {
        const uint8_t* src = work.raw.data() + r;
        for (size_t i = 0; i < n; ++i) dest[i] = src[i * raw_width];
      }
      planes_raw.Increment();
    }
    recovered_mask |= req_raw;

    // Solver-held planes need the chunk's packed section materialized
    // once; stored-raw chunks skip the codec and project directly.
    if (req_solver != 0) {
      const size_t expected_packed = static_cast<size_t>(n) * selected;
      ByteSpan packed;
      Status solver_status;
      if ((work.header.flags & container::kChunkStoredRaw) != 0) {
        if (work.compressed.size() != expected_packed) {
          solver_status = Status::Corruption(
              "container: stored section size mismatch");
        } else {
          packed = work.compressed;
        }
      } else {
        Stopwatch decode_timer;
        decoded.clear();
        solver_status =
            codec->Decompress(work.compressed, expected_packed, &decoded);
        stats->decode_seconds += decode_timer.ElapsedSeconds();
        if (solver_status.ok() && decoded.size() != expected_packed) {
          solver_status = Status::Corruption(
              "container: packed section size mismatch");
        }
        packed = ByteSpan(decoded);
      }
      if (!solver_status.ok()) {
        // The raw planes above already served; only the solver-held
        // planes of this chunk are lost.
        ISOBAR_RETURN_NOT_OK(fail_chunk(
            ChunkFailureStage::kPayload,
            AnnotateChunkError(solver_status, work.index, work.byte_offset),
            req_solver));
        if (report != nullptr && req_raw != 0) {
          report->bytes_recovered +=
              n * static_cast<uint64_t>(PopcountMask(req_raw, width));
        }
        continue;
      }
      for (uint64_t rest = req_solver; rest != 0; rest &= rest - 1) {
        const size_t c = static_cast<size_t>(__builtin_ctzll(rest));
        const size_t r = ColumnRank(chunk_mask, c);
        const size_t p = ColumnRank(column_mask, c);
        uint8_t* dest = out.data() + p * plane_stride + elem_off;
        if (header.linearization == Linearization::kColumn) {
          std::memcpy(dest, packed.data() + r * n, static_cast<size_t>(n));
        } else {
          const uint8_t* src = packed.data() + r;
          for (size_t i = 0; i < n; ++i) dest[i] = src[i * selected];
        }
        if ((work.header.flags & container::kChunkStoredRaw) != 0) {
          planes_raw.Increment();
        } else {
          planes_decoded.Increment();
        }
      }
      recovered_mask |= req_solver;
    }
    ++stats->chunk_count;
    if (report != nullptr) {
      ++report->chunks_recovered;
      report->bytes_recovered +=
          n * static_cast<uint64_t>(PopcountMask(recovered_mask, width));
    }
  }
  if (walk.tail_lost) {
    RecordSalvageEntry(report, walk.tail_index, walk.tail_offset, 0,
                       ChunkFailureStage::kHeader, policy, walk.tail_error,
                       static_cast<size_t>(walk.total_elements),
                       (total_elements - walk.total_elements) * requested);
    CaptureFlightRecorder(report);
  }
  if (report != nullptr && !report->clean()) CaptureFlightRecorder(report);

  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace isobar
