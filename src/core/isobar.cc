#include "core/isobar.h"

#include <algorithm>
#include <deque>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "compressors/registry.h"
#include "core/chunk_codec.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/// One chunk's encode result, produced on a worker and consumed by the
/// (single) container writer.
struct EncodedChunk {
  Status status;
  Bytes record;
  CompressionStats stats;
  telemetry::ChunkTrace trace;
};

// Opens a pipeline trace for a freshly made EUPA decision and records the
// candidate evidence; returns 0 when tracing is off.
uint64_t BeginPipelineTrace(const EupaDecision& decision, size_t width) {
  auto& recorder = telemetry::TraceRecorder::Global();
  if (!recorder.enabled()) return 0;
  const uint64_t id = recorder.BeginPipeline(
      std::string(CodecIdToString(decision.codec)),
      std::string(LinearizationToString(decision.linearization)),
      std::string(PreferenceToString(decision.preference)), width);
  for (const CandidateEvaluation& eval : decision.evaluations) {
    telemetry::CandidateTrace candidate;
    candidate.codec = std::string(CodecIdToString(eval.codec));
    candidate.linearization =
        std::string(LinearizationToString(eval.linearization));
    candidate.ratio = eval.ratio;
    candidate.throughput_mbps = eval.throughput_mbps;
    recorder.RecordCandidate(id, std::move(candidate));
  }
  return id;
}

}  // namespace

IsobarCompressor::IsobarCompressor(CompressOptions options)
    : options_(std::move(options)) {}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width) const {
  CompressionStats stats;
  return Compress(data, width, &stats);
}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width,
                                         CompressionStats* stats) const {
  if (stats == nullptr) return Status::InvalidArgument("stats must not be null");
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.size() % width != 0) {
    return Status::InvalidArgument(
        "data size is not a multiple of the element width");
  }
  if (options_.chunk_elements == 0) {
    return Status::InvalidArgument("chunk_elements must be > 0");
  }

  *stats = CompressionStats{};
  stats->input_bytes = data.size();
  telemetry::ScopedSpan compress_span("compress");
  static telemetry::Counter& compress_calls =
      telemetry::GetCounter("pipeline.compress_calls");
  static telemetry::Counter& compress_input =
      telemetry::GetCounter("pipeline.compress_input_bytes");
  static telemetry::Counter& compress_output =
      telemetry::GetCounter("pipeline.compress_output_bytes");
  compress_calls.Increment();
  compress_input.Add(data.size());
  Stopwatch total_timer;

  const Analyzer analyzer(options_.analyzer);
  const EupaSelector selector(options_.eupa);
  const uint64_t full_mask = FullMask(width);

  // --- EUPA phase: pick the (solver × linearization) pipeline once per
  // dataset from a training sample (§II.C). The analyzer verdict for the
  // sampling region determines which bytes the candidates are measured on.
  EupaDecision decision;
  decision.preference = options_.eupa.preference;
  if (options_.eupa.forced_codec && options_.eupa.forced_linearization) {
    decision.codec = *options_.eupa.forced_codec;
    decision.linearization = *options_.eupa.forced_linearization;
  } else if (!data.empty()) {
    Stopwatch analysis_timer;
    const uint64_t n = data.size() / width;
    const uint64_t probe_elements =
        std::min<uint64_t>(n, std::max<uint64_t>(options_.eupa.sample_elements,
                                                 1));
    ByteSpan probe = data.subspan(0, probe_elements * width);
    ISOBAR_ASSIGN_OR_RETURN(AnalysisResult probe_result,
                            analyzer.Analyze(probe, width));
    stats->analysis_seconds += analysis_timer.ElapsedSeconds();
    const uint64_t eupa_mask = probe_result.improvable()
                                   ? probe_result.compressible_mask
                                   : full_mask;
    ISOBAR_ASSIGN_OR_RETURN(decision,
                            selector.Select(data, width, eupa_mask));
  } else {
    // Empty input: nothing to measure; fall back to configured defaults.
    if (options_.eupa.forced_codec) decision.codec = *options_.eupa.forced_codec;
    if (options_.eupa.forced_linearization) {
      decision.linearization = *options_.eupa.forced_linearization;
    }
  }
  stats->decision = decision;
  const uint64_t trace_id = BeginPipelineTrace(decision, width);

  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(decision.codec));

  // --- Chunked pipeline (Alg. 1 applied per chunk, §II.D).
  const Chunker chunker(data, width, options_.chunk_elements);
  Bytes out;
  out.reserve(data.size() / 2 + container::kHeaderSize);

  container::Header header;
  header.width = static_cast<uint8_t>(width);
  header.codec = decision.codec;
  header.linearization = decision.linearization;
  header.preference = options_.eupa.preference;
  header.tau_centi = static_cast<uint16_t>(options_.analyzer.tau * 100.0 + 0.5);
  header.element_count = data.size() / width;
  header.chunk_elements = options_.chunk_elements;
  header.chunk_count = chunker.chunk_count();
  container::AppendHeader(header, &out);
  const size_t header_bytes = out.size();

  const size_t num_threads = ResolveNumThreads(options_.num_threads);
  if (num_threads <= 1 || chunker.chunk_count() <= 1) {
    for (uint64_t ci = 0; ci < chunker.chunk_count(); ++ci) {
      ISOBAR_RETURN_NOT_OK(EncodeChunk(analyzer, *codec,
                                       decision.linearization,
                                       chunker.chunk(ci), width, &out, stats,
                                       trace_id));
    }
  } else {
    // Fan each chunk's analyze→partition→solve out as a pool task; this
    // thread stays the single writer, appending records in chunk order.
    // The in-flight window bounds memory at O(threads) encoded chunks
    // instead of O(file).
    auto& recorder = telemetry::TraceRecorder::Global();
    const bool tracing = trace_id != 0;
    ThreadPool pool(num_threads);
    const size_t window = 2 * num_threads;
    std::deque<std::future<EncodedChunk>> in_flight;
    uint64_t next_chunk = 0;
    auto submit_next = [&] {
      const ByteSpan chunk = chunker.chunk(next_chunk++);
      in_flight.push_back(
          pool.Submit([&analyzer, &codec, &decision, chunk, width, trace_id,
                       tracing]() -> EncodedChunk {
            EncodedChunk encoded;
            encoded.status = EncodeChunk(
                analyzer, *codec, decision.linearization, chunk, width,
                &encoded.record, &encoded.stats, trace_id,
                tracing ? &encoded.trace : nullptr);
            return encoded;
          }));
    };
    while (next_chunk < chunker.chunk_count() && in_flight.size() < window) {
      submit_next();
    }
    while (!in_flight.empty()) {
      EncodedChunk encoded = in_flight.front().get();
      in_flight.pop_front();
      if (next_chunk < chunker.chunk_count()) submit_next();
      // On error the early return destroys `pool`, which drains the
      // remaining queued tasks before the chunker and codec go away.
      ISOBAR_RETURN_NOT_OK(encoded.status);
      out.insert(out.end(), encoded.record.begin(), encoded.record.end());
      MergeChunkStats(encoded.stats, stats);
      if (tracing) recorder.RecordChunk(trace_id, std::move(encoded.trace));
    }
  }

  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  compress_output.Add(out.size());
  telemetry::TraceRecorder::Global().EndPipeline(trace_id, data.size(),
                                                 out.size(), header_bytes);
  return out;
}

Result<Bytes> IsobarCompressor::Decompress(ByteSpan container_bytes,
                                           const DecompressOptions& options,
                                           DecompressionStats* stats) {
  telemetry::ScopedSpan decompress_span("decompress");
  static telemetry::Counter& decompress_calls =
      telemetry::GetCounter("pipeline.decompress_calls");
  static telemetry::Counter& decompress_input =
      telemetry::GetCounter("pipeline.decompress_input_bytes");
  static telemetry::Counter& decompress_output =
      telemetry::GetCounter("pipeline.decompress_output_bytes");
  decompress_calls.Increment();
  decompress_input.Add(container_bytes.size());

  DecompressionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = DecompressionStats{};

  Stopwatch total_timer;
  Stopwatch parse_timer;
  size_t offset = 0;
  ISOBAR_ASSIGN_OR_RETURN(container::Header header,
                          container::ParseHeader(container_bytes, &offset));
  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(header.codec));
  stats->parse_seconds += parse_timer.ElapsedSeconds();

  const size_t width = header.width;
  Bytes out;
  if (header.element_count != container::kUnknownCount) {
    // Pre-size from the (bounded-checked) header, but never trust an
    // untrusted count for more than one chunk's worth of upfront memory.
    out.reserve(static_cast<size_t>(
        std::min<uint64_t>(header.element_count * width,
                           container::kMaxChunkBytes)));
  }

  // Counted containers (batch writer) carry the chunk total; streamed
  // containers use the kUnknownCount sentinel and run to the end.
  const bool counted = header.chunk_count != container::kUnknownCount;
  const size_t num_threads = ResolveNumThreads(options.num_threads);
  if (num_threads <= 1) {
    uint64_t chunks_read = 0;
    while (counted ? chunks_read < header.chunk_count
                   : offset < container_bytes.size()) {
      ISOBAR_RETURN_NOT_OK(DecodeChunk(container_bytes, &offset, *codec,
                                       header.linearization, width,
                                       header.chunk_elements,
                                       options.verify_checksums, &out, stats));
      ++chunks_read;
    }
    if (offset != container_bytes.size()) {
      return Status::Corruption("container: trailing bytes after last chunk");
    }
    if (header.element_count != container::kUnknownCount &&
        out.size() != header.element_count * width) {
      return Status::Corruption("container: element count mismatch");
    }
  } else {
    // Serial parse pass: chunk records are self-delimiting, so one cheap
    // header walk yields every record's payload slices and its (disjoint)
    // destination range in the output buffer.
    struct ChunkWork {
      container::ChunkHeader header;
      ByteSpan compressed;
      ByteSpan raw;
      size_t out_offset = 0;
    };
    std::vector<ChunkWork> chunks;
    if (counted) {
      // The count is untrusted; each record is at least a chunk header, so
      // the buffer bounds how many records a reserve may assume.
      chunks.reserve(static_cast<size_t>(std::min<uint64_t>(
          header.chunk_count,
          container_bytes.size() / container::kChunkHeaderSize + 1)));
    }
    size_t out_bytes = 0;
    while (counted ? chunks.size() < header.chunk_count
                   : offset < container_bytes.size()) {
      telemetry::ScopedSpan chunk_span("decompress.chunk");
      Stopwatch chunk_parse_timer;
      ChunkWork work;
      ISOBAR_ASSIGN_OR_RETURN(
          work.header, container::ParseChunkHeader(container_bytes, &offset));
      if (work.header.element_count > header.chunk_elements) {
        return Status::Corruption(
            "container: chunk claims more elements than the header's chunk "
            "size");
      }
      work.compressed =
          container_bytes.subspan(offset, work.header.compressed_size);
      offset += work.header.compressed_size;
      work.raw = container_bytes.subspan(offset, work.header.raw_size);
      offset += work.header.raw_size;
      work.out_offset = out_bytes;
      out_bytes += work.header.element_count * width;
      chunks.push_back(work);
      stats->parse_seconds += chunk_parse_timer.ElapsedSeconds();
    }
    if (offset != container_bytes.size()) {
      return Status::Corruption("container: trailing bytes after last chunk");
    }
    if (header.element_count != container::kUnknownCount &&
        out_bytes != header.element_count * width) {
      return Status::Corruption("container: element count mismatch");
    }

    // Fan the payload work (decode → scatter → CRC) out across the pool;
    // every chunk writes only its own disjoint slice of `out`.
    out.resize(out_bytes);
    ThreadPool pool(num_threads);
    std::vector<std::future<std::pair<Status, DecompressionStats>>> results;
    results.reserve(chunks.size());
    for (const ChunkWork& work : chunks) {
      results.push_back(pool.Submit(
          [&work, &codec, &header, &out, width,
           verify = options.verify_checksums]() {
            DecompressionStats chunk_stats;
            MutableByteSpan dest(out.data() + work.out_offset,
                                 work.header.element_count * width);
            Status status = DecodeChunkPayload(
                work.header, work.compressed, work.raw, *codec,
                header.linearization, width, verify, dest, &chunk_stats);
            return std::make_pair(std::move(status), chunk_stats);
          }));
    }
    for (auto& result : results) {
      auto [status, chunk_stats] = result.get();
      // The early return destroys `pool` first, draining outstanding
      // tasks before `chunks` and `out` leave scope.
      ISOBAR_RETURN_NOT_OK(status);
      stats->decode_seconds += chunk_stats.decode_seconds;
      stats->scatter_seconds += chunk_stats.scatter_seconds;
      stats->chunk_count += chunk_stats.chunk_count;
    }
  }

  stats->input_bytes = container_bytes.size();
  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  decompress_output.Add(out.size());
  return out;
}

}  // namespace isobar
