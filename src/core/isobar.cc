#include "core/isobar.h"

#include <algorithm>

#include "compressors/registry.h"
#include "core/chunk_codec.h"
#include "util/stopwatch.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

}  // namespace

IsobarCompressor::IsobarCompressor(CompressOptions options)
    : options_(std::move(options)) {}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width) const {
  CompressionStats stats;
  return Compress(data, width, &stats);
}

Result<Bytes> IsobarCompressor::Compress(ByteSpan data, size_t width,
                                         CompressionStats* stats) const {
  if (stats == nullptr) return Status::InvalidArgument("stats must not be null");
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.size() % width != 0) {
    return Status::InvalidArgument(
        "data size is not a multiple of the element width");
  }
  if (options_.chunk_elements == 0) {
    return Status::InvalidArgument("chunk_elements must be > 0");
  }

  *stats = CompressionStats{};
  stats->input_bytes = data.size();
  Stopwatch total_timer;

  const Analyzer analyzer(options_.analyzer);
  const EupaSelector selector(options_.eupa);
  const uint64_t full_mask = FullMask(width);

  // --- EUPA phase: pick the (solver × linearization) pipeline once per
  // dataset from a training sample (§II.C). The analyzer verdict for the
  // sampling region determines which bytes the candidates are measured on.
  EupaDecision decision;
  decision.preference = options_.eupa.preference;
  if (options_.eupa.forced_codec && options_.eupa.forced_linearization) {
    decision.codec = *options_.eupa.forced_codec;
    decision.linearization = *options_.eupa.forced_linearization;
  } else if (!data.empty()) {
    Stopwatch analysis_timer;
    const uint64_t n = data.size() / width;
    const uint64_t probe_elements =
        std::min<uint64_t>(n, std::max<uint64_t>(options_.eupa.sample_elements,
                                                 1));
    ByteSpan probe = data.subspan(0, probe_elements * width);
    ISOBAR_ASSIGN_OR_RETURN(AnalysisResult probe_result,
                            analyzer.Analyze(probe, width));
    stats->analysis_seconds += analysis_timer.ElapsedSeconds();
    const uint64_t eupa_mask = probe_result.improvable()
                                   ? probe_result.compressible_mask
                                   : full_mask;
    ISOBAR_ASSIGN_OR_RETURN(decision,
                            selector.Select(data, width, eupa_mask));
  } else {
    // Empty input: nothing to measure; fall back to configured defaults.
    if (options_.eupa.forced_codec) decision.codec = *options_.eupa.forced_codec;
    if (options_.eupa.forced_linearization) {
      decision.linearization = *options_.eupa.forced_linearization;
    }
  }
  stats->decision = decision;

  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(decision.codec));

  // --- Chunked pipeline (Alg. 1 applied per chunk, §II.D).
  const Chunker chunker(data, width, options_.chunk_elements);
  Bytes out;
  out.reserve(data.size() / 2 + container::kHeaderSize);

  container::Header header;
  header.width = static_cast<uint8_t>(width);
  header.codec = decision.codec;
  header.linearization = decision.linearization;
  header.preference = options_.eupa.preference;
  header.tau_centi = static_cast<uint16_t>(options_.analyzer.tau * 100.0 + 0.5);
  header.element_count = data.size() / width;
  header.chunk_elements = options_.chunk_elements;
  header.chunk_count = chunker.chunk_count();
  container::AppendHeader(header, &out);

  for (uint64_t ci = 0; ci < chunker.chunk_count(); ++ci) {
    ISOBAR_RETURN_NOT_OK(EncodeChunk(analyzer, *codec, decision.linearization,
                                     chunker.chunk(ci), width, &out, stats));
  }

  stats->output_bytes = out.size();
  stats->total_seconds = total_timer.ElapsedSeconds();
  return out;
}

Result<Bytes> IsobarCompressor::Decompress(ByteSpan container_bytes,
                                           const DecompressOptions& options,
                                           DecompressionStats* stats) {
  Stopwatch total_timer;
  size_t offset = 0;
  ISOBAR_ASSIGN_OR_RETURN(container::Header header,
                          container::ParseHeader(container_bytes, &offset));
  ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(header.codec));

  const size_t width = header.width;
  Bytes out;
  if (header.element_count != container::kUnknownCount) {
    // Pre-size from the (bounded-checked) header, but never trust an
    // untrusted count for more than one chunk's worth of upfront memory.
    out.reserve(static_cast<size_t>(
        std::min<uint64_t>(header.element_count * width,
                           container::kMaxChunkBytes)));
  }

  // Counted containers (batch writer) carry the chunk total; streamed
  // containers use the kUnknownCount sentinel and run to the end.
  const bool counted = header.chunk_count != container::kUnknownCount;
  uint64_t chunks_read = 0;
  while (counted ? chunks_read < header.chunk_count
                 : offset < container_bytes.size()) {
    ISOBAR_RETURN_NOT_OK(DecodeChunk(container_bytes, &offset, *codec,
                                     header.linearization, width,
                                     header.chunk_elements,
                                     options.verify_checksums, &out));
    ++chunks_read;
  }

  if (offset != container_bytes.size()) {
    return Status::Corruption("container: trailing bytes after last chunk");
  }
  if (header.element_count != container::kUnknownCount &&
      out.size() != header.element_count * width) {
    return Status::Corruption("container: element count mismatch");
  }

  if (stats != nullptr) {
    stats->input_bytes = container_bytes.size();
    stats->output_bytes = out.size();
    stats->total_seconds = total_timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace isobar
