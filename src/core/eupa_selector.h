#ifndef ISOBAR_CORE_EUPA_SELECTOR_H_
#define ISOBAR_CORE_EUPA_SELECTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "compressors/codec.h"
#include "linearize/transpose.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// End-user performance preference (§II.C): best compression ratio, or
/// highest throughput with an acceptable ratio.
enum class Preference : uint8_t {
  kRatio = 0,
  kSpeed = 1,
};

std::string_view PreferenceToString(Preference preference);

/// Configuration of the End User's Preference Adaptive Selector.
struct EupaOptions {
  Preference preference = Preference::kSpeed;

  /// With kSpeed, candidates whose sample compression ratio falls below
  /// this floor are discarded (unless none survive, in which case the
  /// best-ratio candidate wins). 1.0 = accept anything that does not
  /// expand the data.
  double min_ratio = 1.0;

  /// Estimator gate (§II.C high-throughput selection): before any trial
  /// compression runs, each candidate gets a cheap predicted ratio from
  /// sample statistics (order-0 entropy bound, run density, match-probe
  /// rate). A candidate is pruned — its trial never runs — when even its
  /// predicted ratio inflated by this margin cannot beat the incumbent
  /// under the active preference rule. 0 disables the gate and restores
  /// the exhaustive trial matrix. The default margin is generous enough
  /// that selection matches exhaustive search on every tier-1 input; see
  /// docs/PERFORMANCE.md for the calibration notes.
  double prune_margin = 0.25;

  /// Elements in the training sample drawn from the input. The sample is
  /// taken as several contiguous runs at deterministic pseudo-random
  /// offsets so both locality-sensitive (LZ window) and frequency
  /// statistics are represented. The default keeps the selector's own
  /// cost (notably the bzip2 trial) a small fraction of the pipeline.
  uint64_t sample_elements = 16 * 1024;
  uint64_t sample_runs = 8;
  uint64_t seed = 0x15D0BA5ull;

  /// Solvers the selector measures. The paper's pair plus the homegrown
  /// LZ77+tANS codec, whose decode speed dominates the auto-speed front
  /// and whose 128 KiB window competes with zlib on ratio.
  std::vector<CodecId> candidate_codecs = {CodecId::kZlib, CodecId::kBzip2,
                                           CodecId::kLzans};

  /// Explicit overrides (§II.C: "explicit specification of input
  /// parameters is also permitted"). A forced dimension is not measured.
  std::optional<CodecId> forced_codec;
  std::optional<Linearization> forced_linearization;
};

/// CI/test hook: the codec named by the ISOBAR_FORCE_CODEC environment
/// variable, or nullopt when unset or unrecognized. The pipeline entry
/// points (batch compressor, stream writer) apply it only when the caller
/// did not force a codec themselves, so an entire ctest run can be
/// re-executed with every auto-selected pipeline pinned to one solver —
/// mirroring the ISOBAR_SIMD=scalar lane. EupaSelector itself never reads
/// it: selector-semantics tests see exactly the options they construct.
std::optional<CodecId> ForcedCodecFromEnv();

/// Measured performance of one (codec × linearization) candidate on the
/// training sample.
struct CandidateEvaluation {
  CodecId codec = CodecId::kZlib;
  Linearization linearization = Linearization::kRow;
  double ratio = 0.0;             ///< sample bytes / compressed bytes
  double throughput_mbps = 0.0;   ///< sample compression throughput
  /// Estimator-predicted ratio from sample statistics; populated whenever
  /// the estimator gate is active (prune_margin > 0), 0 otherwise.
  double predicted_ratio = 0.0;
  /// True when the gate skipped this candidate's trial compression; the
  /// measured fields (ratio, throughput_mbps) are then 0.
  bool pruned = false;
};

/// The selector's verdict plus the evidence it was based on.
struct EupaDecision {
  CodecId codec = CodecId::kZlib;
  Linearization linearization = Linearization::kRow;
  Preference preference = Preference::kSpeed;
  std::vector<CandidateEvaluation> evaluations;
};

/// Draws up to `options.sample_elements` elements from `data` (elements of
/// `width` bytes) as `options.sample_runs` contiguous element-aligned runs
/// at deterministic pseudo-random offsets, concatenated. When the input
/// holds at least sample_elements elements the sample is exactly
/// sample_elements long — the division remainder is spread over the first
/// runs instead of being floored away. Select() uses this internally;
/// exposed so the sampling contract stays testable.
Bytes DrawTrainingSample(ByteSpan data, size_t width,
                         const EupaOptions& options);

/// Deterministic selector choosing the (solver × linearization) pipeline
/// that best serves the end user's preference, by measuring each candidate
/// on a training sample of the compressible partition.
class EupaSelector {
 public:
  explicit EupaSelector(EupaOptions options = {});

  const EupaOptions& options() const { return options_; }

  /// Chooses a pipeline for `data` (elements of `width` bytes) whose
  /// analyzer verdict is `compressible_mask`. For undetermined inputs pass
  /// the full mask: the selector then measures whole-element candidates,
  /// mirroring the paper's behaviour of still choosing the optimal standard
  /// method for non-improvable data.
  Result<EupaDecision> Select(ByteSpan data, size_t width,
                              uint64_t compressible_mask) const;

 private:
  EupaOptions options_;
};

}  // namespace isobar

#endif  // ISOBAR_CORE_EUPA_SELECTOR_H_
