#ifndef ISOBAR_CORE_CONTAINER_H_
#define ISOBAR_CORE_CONTAINER_H_

#include <cstdint>

#include "compressors/codec.h"
#include "core/eupa_selector.h"
#include "linearize/transpose.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar::container {

/// "ISBR" in little-endian byte order.
inline constexpr uint32_t kMagic = 0x52425349u;
inline constexpr uint16_t kVersion = 1;

inline constexpr size_t kHeaderSize = 40;
inline constexpr size_t kChunkHeaderSize = 38;

/// Per-chunk flags.
inline constexpr uint8_t kChunkUndetermined = 0x01;  ///< Alg. 1 lines 2-3 path.
inline constexpr uint8_t kChunkStoredRaw = 0x02;     ///< Solver output grew; gathered bytes stored verbatim.

/// Sentinel for element_count / chunk_count written by the streaming
/// writer, which cannot know the totals up front: readers consume chunks
/// until the end of the container instead of counting.
inline constexpr uint64_t kUnknownCount = ~0ull;

/// Hard format limit on chunk_elements * width. Decoders size buffers
/// from header fields, so untrusted counts must be bounded before any
/// allocation; 256 MiB is ~85x the paper's 3 MB design point.
inline constexpr uint64_t kMaxChunkBytes = 1ull << 28;

/// File-level metadata (Fig. 7 "overall metadata"): everything a reader
/// needs to reverse the pipeline with no side information.
struct Header {
  uint16_t version = kVersion;
  uint8_t width = 8;                  ///< ω, element size in bytes.
  CodecId codec = CodecId::kZlib;     ///< Solver chosen by the EUPA-selector.
  Linearization linearization = Linearization::kRow;
  Preference preference = Preference::kSpeed;
  uint16_t tau_centi = 142;           ///< τ × 100, analyzer tolerance used.
  uint64_t element_count = 0;
  uint64_t chunk_elements = 0;        ///< Nominal elements per chunk.
  uint64_t chunk_count = 0;
};

/// Per-chunk metadata (Fig. 7 "chunk metadata"): the analyzer verdict plus
/// the geometry of the two byte sections that follow the header.
struct ChunkHeader {
  uint64_t element_count = 0;
  uint64_t compressible_mask = 0;  ///< Analyzer output array, bit j = column j.
  uint8_t flags = 0;
  uint32_t crc32c = 0;             ///< Checksum of the original chunk bytes.
  uint64_t compressed_size = 0;    ///< Bytes of solver output (or raw gathered bytes when kChunkStoredRaw).
  uint64_t raw_size = 0;           ///< Bytes of the incompressible section.
};

/// Serializes `header` onto `out`.
void AppendHeader(const Header& header, Bytes* out);

/// Parses and validates a header at `*offset`, advancing it past the header.
Result<Header> ParseHeader(ByteSpan buffer, size_t* offset);

void AppendChunkHeader(const ChunkHeader& header, Bytes* out);
Result<ChunkHeader> ParseChunkHeader(ByteSpan buffer, size_t* offset);

}  // namespace isobar::container

#endif  // ISOBAR_CORE_CONTAINER_H_
