#ifndef ISOBAR_CORE_CONTAINER_H_
#define ISOBAR_CORE_CONTAINER_H_

#include <cstdint>
#include <vector>

#include "compressors/codec.h"
#include "core/eupa_selector.h"
#include "linearize/transpose.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar::container {

/// "ISBR" in little-endian byte order.
inline constexpr uint32_t kMagic = 0x52425349u;
/// "ISBX" in little-endian byte order: the chunk-index footer trailer.
inline constexpr uint32_t kFooterMagic = 0x58425349u;

/// Format versions. v1 is the footer-less layout; v2 appends a
/// chunk-index footer after the last chunk record and stores each chunk's
/// raw (incompressible) section column-major, so individual byte-planes
/// are contiguous and range/column readers can address records without a
/// sequential walk. Writers emit kVersion by default; readers accept both.
inline constexpr uint16_t kVersionV1 = 1;
inline constexpr uint16_t kVersion = 2;

inline constexpr size_t kHeaderSize = 40;
inline constexpr size_t kChunkHeaderSize = 38;
inline constexpr size_t kIndexEntrySize = 48;
inline constexpr size_t kFooterTrailerSize = 40;

/// Per-chunk flags.
inline constexpr uint8_t kChunkUndetermined = 0x01;  ///< Alg. 1 lines 2-3 path.
inline constexpr uint8_t kChunkStoredRaw = 0x02;     ///< Solver output grew; gathered bytes stored verbatim.

/// Sentinel for element_count / chunk_count written by the streaming
/// writer, which cannot know the totals up front: readers consume chunks
/// until the end of the container instead of counting. (v2 streamed
/// containers recover the true totals from the index footer.)
inline constexpr uint64_t kUnknownCount = ~0ull;

/// Hard format limit on chunk_elements * width. Decoders size buffers
/// from header fields, so untrusted counts must be bounded before any
/// allocation; 256 MiB is ~85x the paper's 3 MB design point.
inline constexpr uint64_t kMaxChunkBytes = 1ull << 28;

/// Overflow-checked uint64 multiply: false when a*b wraps. Untrusted
/// header counts must go through this before they size buffers or enter
/// totals — a wrapped product can make a corruption check pass (or fail)
/// arbitrarily.
inline bool CheckedMul64(uint64_t a, uint64_t b, uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
  return !__builtin_mul_overflow(a, b, out);
#else
  if (b != 0 && a > ~0ull / b) return false;
  *out = a * b;
  return true;
#endif
}

/// Layout of a chunk record's raw (incompressible) section for a given
/// container version: v1 interleaves the noise bytes element-major (kRow);
/// v2 stores each noise byte-plane contiguously (kColumn), which is what
/// lets DecompressColumns serve an incompressible plane with one memcpy
/// and no solver work.
inline Linearization RawSectionLinearization(uint16_t version) {
  return version >= 2 ? Linearization::kColumn : Linearization::kRow;
}

/// File-level metadata (Fig. 7 "overall metadata"): everything a reader
/// needs to reverse the pipeline with no side information.
struct Header {
  uint16_t version = kVersion;
  uint8_t width = 8;                  ///< ω, element size in bytes.
  CodecId codec = CodecId::kZlib;     ///< Solver chosen by the EUPA-selector.
  Linearization linearization = Linearization::kRow;
  Preference preference = Preference::kSpeed;
  uint16_t tau_centi = 142;           ///< τ × 100, analyzer tolerance used.
  uint64_t element_count = 0;
  uint64_t chunk_elements = 0;        ///< Nominal elements per chunk.
  uint64_t chunk_count = 0;
};

/// Per-chunk metadata (Fig. 7 "chunk metadata"): the analyzer verdict plus
/// the geometry of the two byte sections that follow the header.
struct ChunkHeader {
  uint64_t element_count = 0;
  uint64_t compressible_mask = 0;  ///< Analyzer output array, bit j = column j.
  uint8_t flags = 0;
  uint32_t crc32c = 0;             ///< Checksum of the original chunk bytes.
  uint64_t compressed_size = 0;    ///< Bytes of solver output (or raw gathered bytes when kChunkStoredRaw).
  uint64_t raw_size = 0;           ///< Bytes of the incompressible section.
};

/// One chunk record as seen by the v2 index footer: where the record
/// lives, which elements it covers, and enough of its chunk-header fields
/// (mask, sizes, CRC, flags) that range and column readers can plan a
/// partial decode — including every per-column section offset — without
/// touching the record itself.
struct IndexEntry {
  uint64_t record_offset = 0;      ///< Container offset of the chunk header.
  uint64_t element_offset = 0;     ///< First element the chunk covers.
  uint64_t element_count = 0;
  uint64_t compressible_mask = 0;
  uint64_t compressed_size = 0;    ///< Compressed-section bytes; the raw
                                   ///< section starts at record_offset +
                                   ///< kChunkHeaderSize + compressed_size.
  uint32_t crc32c = 0;             ///< Copy of the chunk's plaintext CRC.
  uint8_t flags = 0;
};

/// Parsed v2 chunk-index footer.
struct ChunkIndex {
  uint64_t element_count = 0;  ///< Total elements across all chunks.
  size_t payload_end = 0;      ///< Offset where chunk records end (= footer start).
  std::vector<IndexEntry> entries;
};

/// Serializes `header` onto `out`.
void AppendHeader(const Header& header, Bytes* out);

/// Parses and validates a header at `*offset`, advancing it past the header.
Result<Header> ParseHeader(ByteSpan buffer, size_t* offset);

void AppendChunkHeader(const ChunkHeader& header, Bytes* out);
Result<ChunkHeader> ParseChunkHeader(ByteSpan buffer, size_t* offset);

/// Builds the index entry for the chunk record starting at
/// `record_offset` in `container_bytes` (the record's header and payload
/// must already be present), covering elements starting at
/// `element_offset`. Writers call this as they retire each record.
Result<IndexEntry> MakeIndexEntry(ByteSpan container_bytes,
                                  size_t record_offset,
                                  uint64_t element_offset);

/// Serializes the chunk-index footer (entry table + trailer) onto `out`.
/// `element_count` is the container's true element total — v2 streamed
/// containers carry it here, since their file header holds sentinels.
void AppendFooter(const std::vector<IndexEntry>& entries,
                  uint64_t element_count, Bytes* out);

/// Bytes AppendFooter will emit for `chunk_count` chunks.
inline size_t FooterBytes(uint64_t chunk_count) {
  return kFooterTrailerSize +
         static_cast<size_t>(chunk_count) * kIndexEntrySize;
}

/// Parses and validates the chunk-index footer at the end of
/// `container_bytes`, cross-checking it against the parsed file `header`
/// (counted totals must agree, per-chunk element counts must respect the
/// nominal chunk size, record offsets must be strictly increasing and in
/// bounds). Both the entry table and the trailer are CRC-32C protected;
/// any mismatch is kCorruption — callers decide whether to fail or fall
/// back to a sequential record walk.
Result<ChunkIndex> ParseFooter(ByteSpan container_bytes, const Header& header);

}  // namespace isobar::container

#endif  // ISOBAR_CORE_CONTAINER_H_
