#include "core/stream.h"

#include <algorithm>

#include <string>

#include "compressors/registry.h"
#include "core/chunk_codec.h"
#include "core/eupa_selector.h"
#include "telemetry/trace_export.h"
#include "util/stopwatch.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

}  // namespace

IsobarStreamWriter::IsobarStreamWriter(CompressOptions options, size_t width,
                                       ByteSink* sink)
    : options_(std::move(options)), width_(width), sink_(sink) {
  if (width_ == 0 || width_ > 64) {
    init_status_ = Status::InvalidArgument("element width must be in [1, 64]");
  } else if (options_.chunk_elements == 0) {
    init_status_ = Status::InvalidArgument("chunk_elements must be > 0");
  } else if (sink_ == nullptr) {
    init_status_ = Status::InvalidArgument("sink must not be null");
  }
  stats_.decision.preference = options_.eupa.preference;
  num_threads_ = ResolveNumThreads(options_.num_threads);
}

Status IsobarStreamWriter::EnsurePipeline(ByteSpan training_data) {
  if (header_written_) return Status::OK();

  decision_.preference = options_.eupa.preference;
  if (options_.eupa.forced_codec && options_.eupa.forced_linearization) {
    decision_.codec = *options_.eupa.forced_codec;
    decision_.linearization = *options_.eupa.forced_linearization;
  } else if (!training_data.empty()) {
    // Mirror the batch compressor's EUPA phase on the training window.
    const Analyzer analyzer(options_.analyzer);
    Stopwatch analysis_timer;
    ISOBAR_ASSIGN_OR_RETURN(AnalysisResult probe,
                            analyzer.Analyze(training_data, width_));
    stats_.analysis_seconds += analysis_timer.ElapsedSeconds();
    const uint64_t mask = probe.improvable() ? probe.compressible_mask
                                             : FullMask(width_);
    const EupaSelector selector(options_.eupa);
    ISOBAR_ASSIGN_OR_RETURN(decision_,
                            selector.Select(training_data, width_, mask));
  } else {
    if (options_.eupa.forced_codec) decision_.codec = *options_.eupa.forced_codec;
    if (options_.eupa.forced_linearization) {
      decision_.linearization = *options_.eupa.forced_linearization;
    }
  }
  stats_.decision = decision_;
  auto& recorder = telemetry::TraceRecorder::Global();
  if (recorder.enabled()) {
    trace_id_ = recorder.BeginPipeline(
        std::string(CodecIdToString(decision_.codec)),
        std::string(LinearizationToString(decision_.linearization)),
        std::string(PreferenceToString(decision_.preference)), width_);
    for (const CandidateEvaluation& eval : decision_.evaluations) {
      telemetry::CandidateTrace candidate;
      candidate.codec = std::string(CodecIdToString(eval.codec));
      candidate.linearization =
          std::string(LinearizationToString(eval.linearization));
      candidate.ratio = eval.ratio;
      candidate.throughput_mbps = eval.throughput_mbps;
      recorder.RecordCandidate(trace_id_, std::move(candidate));
    }
  }
  ISOBAR_ASSIGN_OR_RETURN(codec_, GetCodec(decision_.codec));

  container::Header header;
  header.width = static_cast<uint8_t>(width_);
  header.codec = decision_.codec;
  header.linearization = decision_.linearization;
  header.preference = options_.eupa.preference;
  header.tau_centi =
      static_cast<uint16_t>(options_.analyzer.tau * 100.0 + 0.5);
  header.element_count = container::kUnknownCount;
  header.chunk_elements = options_.chunk_elements;
  header.chunk_count = container::kUnknownCount;
  Bytes encoded;
  container::AppendHeader(header, &encoded);
  ISOBAR_RETURN_NOT_OK(sink_->Write(encoded));
  stats_.output_bytes += encoded.size();
  header_bytes_ = encoded.size();
  header_written_ = true;
  return Status::OK();
}

Status IsobarStreamWriter::EmitChunk(ByteSpan chunk) {
  ISOBAR_RETURN_NOT_OK(EnsurePipeline(chunk));
  if (num_threads_ <= 1) {
    const Analyzer analyzer(options_.analyzer);
    Bytes record;
    ISOBAR_RETURN_NOT_OK(EncodeChunk(analyzer, *codec_,
                                     decision_.linearization, chunk, width_,
                                     &record, &stats_, trace_id_));
    ISOBAR_RETURN_NOT_OK(sink_->Write(record));
    stats_.output_bytes += record.size();
    return Status::OK();
  }

  // Pipelined producer/consumer: the encode runs on the pool while this
  // thread returns to the producer. The caller's buffer is only valid for
  // this call, so the task owns a copy of the chunk bytes. codec_,
  // decision_, and trace_id_ are frozen by EnsurePipeline above, before
  // any task can observe them.
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
  Bytes owned(chunk.begin(), chunk.end());
  in_flight_.push_back(
      pool_->Submit([this, owned = std::move(owned)]() -> EncodedRecord {
        EncodedRecord encoded;
        const Analyzer analyzer(options_.analyzer);
        encoded.status = EncodeChunk(
            analyzer, *codec_, decision_.linearization, owned, width_,
            &encoded.record, &encoded.stats, trace_id_,
            trace_id_ != 0 ? &encoded.trace : nullptr);
        return encoded;
      }));
  if (in_flight_.size() >= 2 * num_threads_) {
    return DrainOne();
  }
  return Status::OK();
}

Status IsobarStreamWriter::DrainOne() {
  EncodedRecord encoded = in_flight_.front().get();
  in_flight_.pop_front();
  ISOBAR_RETURN_NOT_OK(encoded.status);
  ISOBAR_RETURN_NOT_OK(sink_->Write(encoded.record));
  stats_.output_bytes += encoded.record.size();
  MergeChunkStats(encoded.stats, &stats_);
  if (trace_id_ != 0) {
    telemetry::TraceRecorder::Global().RecordChunk(trace_id_,
                                                   std::move(encoded.trace));
  }
  return Status::OK();
}

Status IsobarStreamWriter::Append(ByteSpan data) {
  ISOBAR_RETURN_NOT_OK(init_status_);
  if (finished_) {
    return Status::InvalidArgument("stream writer already finished");
  }
  Stopwatch timer;
  stats_.input_bytes += data.size();

  const size_t chunk_bytes = options_.chunk_elements * width_;
  size_t consumed = 0;
  if (!pending_.empty()) {
    // Top the pending buffer up to one full chunk first.
    const size_t need = chunk_bytes - pending_.size();
    const size_t take = std::min(need, data.size());
    pending_.insert(pending_.end(), data.begin(), data.begin() + take);
    consumed = take;
    if (pending_.size() == chunk_bytes) {
      ISOBAR_RETURN_NOT_OK(EmitChunk(pending_));
      pending_.clear();
    }
  }
  // Emit full chunks straight from the caller's buffer (no copy).
  while (data.size() - consumed >= chunk_bytes) {
    ISOBAR_RETURN_NOT_OK(EmitChunk(data.subspan(consumed, chunk_bytes)));
    consumed += chunk_bytes;
  }
  pending_.insert(pending_.end(), data.begin() + consumed, data.end());
  stats_.total_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Status IsobarStreamWriter::Finish() {
  ISOBAR_RETURN_NOT_OK(init_status_);
  if (finished_) return Status::OK();
  Stopwatch timer;
  if (pending_.size() % width_ != 0) {
    return Status::InvalidArgument(
        "stream ends mid-element: appended bytes are not a multiple of the "
        "element width");
  }
  if (!pending_.empty()) {
    ISOBAR_RETURN_NOT_OK(EmitChunk(pending_));
    pending_.clear();
  }
  // A stream with no data at all still needs a valid (empty) container.
  ISOBAR_RETURN_NOT_OK(EnsurePipeline({}));
  // Retire the pipelined tail before sealing the stream.
  while (!in_flight_.empty()) {
    ISOBAR_RETURN_NOT_OK(DrainOne());
  }
  pool_.reset();
  finished_ = true;
  stats_.total_seconds += timer.ElapsedSeconds();
  telemetry::TraceRecorder::Global().EndPipeline(
      trace_id_, stats_.input_bytes, stats_.output_bytes, header_bytes_);
  return Status::OK();
}

IsobarStreamReader::IsobarStreamReader(ByteSpan container_bytes,
                                       DecompressOptions options)
    : container_(container_bytes), options_(options) {}

Status IsobarStreamReader::Init() {
  ISOBAR_ASSIGN_OR_RETURN(header_, container::ParseHeader(container_, &offset_));
  ISOBAR_ASSIGN_OR_RETURN(codec_, GetCodec(header_.codec));
  initialized_ = true;
  return Status::OK();
}

Result<bool> IsobarStreamReader::AtEnd() {
  if (!initialized_) {
    return Status::InvalidArgument("reader not initialized (call Init)");
  }
  const bool counted = header_.chunk_count != container::kUnknownCount;
  const bool done = counted ? chunks_read_ == header_.chunk_count
                            : offset_ == container_.size();
  if (!done) return false;
  if (offset_ != container_.size()) {
    return Status::Corruption("container: trailing bytes after last chunk");
  }
  // Skipped chunks contribute their (header-declared) element counts, so
  // the total stays verifiable even for seek-style access patterns.
  if (header_.element_count != container::kUnknownCount &&
      elements_read_ != header_.element_count) {
    return Status::Corruption("container: element count mismatch");
  }
  return true;
}

Result<bool> IsobarStreamReader::NextChunk(Bytes* chunk) {
  ISOBAR_ASSIGN_OR_RETURN(const bool done, AtEnd());
  if (done) return false;
  chunk->clear();
  ISOBAR_RETURN_NOT_OK(DecodeChunk(container_, &offset_, *codec_,
                                   header_.linearization, header_.width,
                                   header_.chunk_elements,
                                   options_.verify_checksums, chunk));
  ++chunks_read_;
  elements_read_ += chunk->size() / header_.width;
  return true;
}

Result<bool> IsobarStreamReader::SkipChunk() {
  ISOBAR_ASSIGN_OR_RETURN(const bool done, AtEnd());
  if (done) return false;
  ISOBAR_ASSIGN_OR_RETURN(container::ChunkHeader chunk_header,
                          container::ParseChunkHeader(container_, &offset_));
  offset_ += chunk_header.compressed_size + chunk_header.raw_size;
  ++chunks_read_;
  elements_read_ += chunk_header.element_count;
  return true;
}

}  // namespace isobar
