#include "core/stream.h"

#include <algorithm>
#include <limits>
#include <string>

#include "compressors/registry.h"
#include "core/chunk_codec.h"
#include "core/eupa_selector.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/timeline.h"
#include "telemetry/trace_export.h"
#include "util/stopwatch.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

}  // namespace

IsobarStreamWriter::IsobarStreamWriter(CompressOptions options, size_t width,
                                       ByteSink* sink)
    : options_(std::move(options)), width_(width), sink_(sink) {
  if (width_ == 0 || width_ > 64) {
    init_status_ = Status::InvalidArgument("element width must be in [1, 64]");
  } else if (options_.chunk_elements == 0) {
    init_status_ = Status::InvalidArgument("chunk_elements must be > 0");
  } else if (sink_ == nullptr) {
    init_status_ = Status::InvalidArgument("sink must not be null");
  } else if (options_.container_version < container::kVersionV1 ||
             options_.container_version > container::kVersion) {
    init_status_ = Status::InvalidArgument("unsupported container_version");
  } else {
    init_status_ = ValidateAnalyzerOptions(options_.analyzer);
  }
  stats_.decision.preference = options_.eupa.preference;
  num_threads_ = ResolveNumThreads(options_.num_threads);
}

Status IsobarStreamWriter::EnsurePipeline(ByteSpan training_data) {
  if (header_written_) return Status::OK();

  // Same ISOBAR_FORCE_CODEC CI hook as the batch compressor; explicit
  // caller overrides always win.
  EupaOptions eupa = options_.eupa;
  if (!eupa.forced_codec) eupa.forced_codec = ForcedCodecFromEnv();
  decision_.preference = eupa.preference;
  if (eupa.forced_codec && eupa.forced_linearization) {
    decision_.codec = *eupa.forced_codec;
    decision_.linearization = *eupa.forced_linearization;
  } else if (!training_data.empty()) {
    // Mirror the batch compressor's EUPA phase on the training window.
    const Analyzer analyzer(options_.analyzer);
    Stopwatch analysis_timer;
    ISOBAR_ASSIGN_OR_RETURN(AnalysisResult probe,
                            analyzer.Analyze(training_data, width_));
    stats_.analysis_seconds += analysis_timer.ElapsedSeconds();
    const uint64_t mask = probe.improvable() ? probe.compressible_mask
                                             : FullMask(width_);
    const EupaSelector selector(eupa);
    ISOBAR_ASSIGN_OR_RETURN(decision_,
                            selector.Select(training_data, width_, mask));
  } else {
    if (eupa.forced_codec) decision_.codec = *eupa.forced_codec;
    if (eupa.forced_linearization) {
      decision_.linearization = *eupa.forced_linearization;
    }
  }
  stats_.decision = decision_;
  auto& recorder = telemetry::TraceRecorder::Global();
  if (recorder.enabled()) {
    trace_id_ = recorder.BeginPipeline(
        std::string(CodecIdToString(decision_.codec)),
        std::string(LinearizationToString(decision_.linearization)),
        std::string(PreferenceToString(decision_.preference)), width_);
    for (const CandidateEvaluation& eval : decision_.evaluations) {
      telemetry::CandidateTrace candidate;
      candidate.codec = std::string(CodecIdToString(eval.codec));
      candidate.linearization =
          std::string(LinearizationToString(eval.linearization));
      candidate.ratio = eval.ratio;
      candidate.throughput_mbps = eval.throughput_mbps;
      recorder.RecordCandidate(trace_id_, std::move(candidate));
    }
  }
  ISOBAR_ASSIGN_OR_RETURN(codec_, GetCodec(decision_.codec));

  container::Header header;
  header.version = options_.container_version;
  header.width = static_cast<uint8_t>(width_);
  header.codec = decision_.codec;
  header.linearization = decision_.linearization;
  header.preference = options_.eupa.preference;
  // Safe cast: ValidateAnalyzerOptions bounded tau to a finite [1, 256].
  header.tau_centi =
      static_cast<uint16_t>(options_.analyzer.tau * 100.0 + 0.5);
  header.element_count = container::kUnknownCount;
  header.chunk_elements = options_.chunk_elements;
  header.chunk_count = container::kUnknownCount;
  Bytes encoded;
  container::AppendHeader(header, &encoded);
  ISOBAR_RETURN_NOT_OK(sink_->Write(encoded));
  stats_.output_bytes += encoded.size();
  header_bytes_ = encoded.size();
  header_written_ = true;
  return Status::OK();
}

Status IsobarStreamWriter::IndexRecord(ByteSpan record) {
  if (options_.container_version < container::kVersion) return Status::OK();
  // The record bytes are about to leave through the sink, so the index
  // entry is derived from the local buffer; only the record's stream
  // position (= bytes written so far) comes from the writer's accounting.
  ISOBAR_ASSIGN_OR_RETURN(container::IndexEntry entry,
                          container::MakeIndexEntry(record, /*record_offset=*/0,
                                                    elements_indexed_));
  entry.record_offset = stats_.output_bytes;
  elements_indexed_ += entry.element_count;
  index_entries_.push_back(entry);
  return Status::OK();
}

Status IsobarStreamWriter::EmitChunk(ByteSpan chunk) {
  ISOBAR_RETURN_NOT_OK(EnsurePipeline(chunk));
  const uint64_t ordinal = chunks_emitted_++;
  const Linearization raw_linearization =
      container::RawSectionLinearization(options_.container_version);
  if (num_threads_ <= 1) {
    const Analyzer analyzer(options_.analyzer);
    Bytes record;
    ISOBAR_RETURN_NOT_OK(EncodeChunk(analyzer, *codec_,
                                     decision_.linearization, chunk, width_,
                                     &record, &stats_, trace_id_, nullptr,
                                     &ScratchArena::ThreadLocal(), ordinal,
                                     raw_linearization));
    ISOBAR_RETURN_NOT_OK(IndexRecord(record));
    ISOBAR_RETURN_NOT_OK(sink_->Write(record));
    stats_.output_bytes += record.size();
    return Status::OK();
  }

  // Pipelined producer/consumer: the encode runs on the pool while this
  // thread returns to the producer. The caller's buffer is only valid for
  // this call, so the task owns a copy of the chunk bytes. codec_,
  // decision_, and trace_id_ are frozen by EnsurePipeline above, before
  // any task can observe them.
  if (pool_ == nullptr) {
    telemetry::Timeline::SetCurrentThreadName("writer");
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  Bytes owned(chunk.begin(), chunk.end());
  in_flight_.push_back(pool_->Submit(
      [this, owned = std::move(owned), ordinal,
       raw_linearization]() -> EncodedRecord {
        EncodedRecord encoded;
        const Analyzer analyzer(options_.analyzer);
        // ThreadLocal() inside the task: each pool worker reuses its own
        // arena across every chunk it encodes.
        encoded.status = EncodeChunk(
            analyzer, *codec_, decision_.linearization, owned, width_,
            &encoded.record, &encoded.stats, trace_id_,
            trace_id_ != 0 ? &encoded.trace : nullptr,
            &ScratchArena::ThreadLocal(), ordinal, raw_linearization);
        return encoded;
      }));
  if (in_flight_.size() >= 2 * num_threads_) {
    return DrainOne();
  }
  return Status::OK();
}

Status IsobarStreamWriter::DrainOne() {
  const uint64_t ordinal = chunks_drained_++;
  EncodedRecord encoded;
  {
    // A long wait here = the in-order writer stalled on a straggler chunk;
    // the timeline makes the stall and its chunk visible.
    telemetry::ScopedSpan wait_span("writer.wait", trace_id_, ordinal + 1);
    encoded = in_flight_.front().get();
    in_flight_.pop_front();
  }
  ISOBAR_RETURN_NOT_OK(encoded.status);
  telemetry::ScopedSpan append_span("writer.append", trace_id_, ordinal + 1);
  ISOBAR_RETURN_NOT_OK(IndexRecord(encoded.record));
  ISOBAR_RETURN_NOT_OK(sink_->Write(encoded.record));
  stats_.output_bytes += encoded.record.size();
  MergeChunkStats(encoded.stats, &stats_);
  if (trace_id_ != 0) {
    telemetry::TraceRecorder::Global().RecordChunk(trace_id_,
                                                   std::move(encoded.trace));
  }
  return Status::OK();
}

Status IsobarStreamWriter::Poison(Status status) {
  if (!status.ok() && error_status_.ok()) {
    error_status_ = status;
    // The dropped record leaves a hole no later write can fill; retire
    // (and discard) whatever is still in flight so a retried Finish()
    // cannot silently append the chunks that followed the failure.
    for (auto& record : in_flight_) record.wait();
    in_flight_.clear();
    pool_.reset();
  }
  return status;
}

Status IsobarStreamWriter::Append(ByteSpan data) {
  ISOBAR_RETURN_NOT_OK(init_status_);
  ISOBAR_RETURN_NOT_OK(error_status_);
  if (finished_) {
    return Status::InvalidArgument("stream writer already finished");
  }
  Stopwatch timer;
  stats_.input_bytes += data.size();

  const size_t chunk_bytes = options_.chunk_elements * width_;
  size_t consumed = 0;
  if (!pending_.empty()) {
    // Top the pending buffer up to one full chunk first.
    const size_t need = chunk_bytes - pending_.size();
    const size_t take = std::min(need, data.size());
    pending_.insert(pending_.end(), data.begin(), data.begin() + take);
    consumed = take;
    if (pending_.size() == chunk_bytes) {
      ISOBAR_RETURN_NOT_OK(Poison(EmitChunk(pending_)));
      pending_.clear();
    }
  }
  // Emit full chunks straight from the caller's buffer (no copy).
  while (data.size() - consumed >= chunk_bytes) {
    ISOBAR_RETURN_NOT_OK(Poison(EmitChunk(data.subspan(consumed, chunk_bytes))));
    consumed += chunk_bytes;
  }
  pending_.insert(pending_.end(), data.begin() + consumed, data.end());
  stats_.total_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Status IsobarStreamWriter::Finish() {
  ISOBAR_RETURN_NOT_OK(init_status_);
  ISOBAR_RETURN_NOT_OK(error_status_);
  if (finished_) return Status::OK();
  Stopwatch timer;
  if (pending_.size() % width_ != 0) {
    // Not poisoned: nothing was dropped, and the caller can complete the
    // element with a further Append() and Finish() again.
    return Status::InvalidArgument(
        "stream ends mid-element: appended bytes are not a multiple of the "
        "element width");
  }
  if (!pending_.empty()) {
    ISOBAR_RETURN_NOT_OK(Poison(EmitChunk(pending_)));
    pending_.clear();
  }
  // A stream with no data at all still needs a valid (empty) container.
  ISOBAR_RETURN_NOT_OK(Poison(EnsurePipeline({})));
  // Retire the pipelined tail before sealing the stream.
  while (!in_flight_.empty()) {
    ISOBAR_RETURN_NOT_OK(Poison(DrainOne()));
  }
  if (pool_ != nullptr) pool_->PublishStats();
  pool_.reset();
  if (options_.container_version >= container::kVersion) {
    // Seal the stream with the chunk-index footer. The trailer carries the
    // element total the sentinel header could not: a reader of the streamed
    // container gets counted-container semantics from the footer alone.
    Bytes footer;
    container::AppendFooter(index_entries_, elements_indexed_, &footer);
    ISOBAR_RETURN_NOT_OK(Poison(sink_->Write(footer)));
    stats_.output_bytes += footer.size();
  }
  finished_ = true;
  stats_.total_seconds += timer.ElapsedSeconds();
  telemetry::TraceRecorder::Global().EndPipeline(
      trace_id_, stats_.input_bytes, stats_.output_bytes, header_bytes_);
  return Status::OK();
}

IsobarStreamReader::IsobarStreamReader(ByteSpan container_bytes,
                                       DecompressOptions options)
    : container_(container_bytes), options_(options) {}

Status IsobarStreamReader::Init() {
  ISOBAR_ASSIGN_OR_RETURN(header_, container::ParseHeader(container_, &offset_));
  ISOBAR_ASSIGN_OR_RETURN(codec_, GetCodec(header_.codec));
  payload_end_ = container_.size();
  if (header_.version >= container::kVersion) {
    static telemetry::Counter& index_hits =
        telemetry::GetCounter("pipeline.index_hits");
    static telemetry::Counter& index_fallbacks =
        telemetry::GetCounter("pipeline.index_fallbacks");
    Result<container::ChunkIndex> parsed =
        container::ParseFooter(container_, header_);
    if (parsed.ok()) {
      index_ = std::move(*parsed);
      have_index_ = true;
      payload_end_ = index_.payload_end;
      // A streamed container's header holds sentinel totals; the validated
      // footer supplies the real ones, so end-of-stream accounting (and
      // SeekToChunk bounds) work as on a counted container.
      header_.element_count = index_.element_count;
      header_.chunk_count = index_.entries.size();
      index_hits.Increment();
    } else if (options_.on_chunk_error == ChunkErrorPolicy::kFail) {
      return parsed.status();
    } else {
      // Damaged footer under a salvaging policy: fall back to the
      // sequential record walk, which treats the footer bytes as whatever
      // trailing damage they are.
      index_fallbacks.Increment();
    }
  }
  initialized_ = true;
  return Status::OK();
}

Result<bool> IsobarStreamReader::AtEnd() {
  if (!initialized_) {
    return Status::InvalidArgument("reader not initialized (call Init)");
  }
  // A destroyed record framing ends the stream early under a salvaging
  // policy; the loss is documented in report_.truncated_tail.
  if (tail_lost_) return true;
  const bool salvage =
      options_.on_chunk_error != ChunkErrorPolicy::kFail;
  const bool counted = header_.chunk_count != container::kUnknownCount;
  const bool done = counted ? chunks_read_ == header_.chunk_count
                            : offset_ == payload_end_;
  if (!done) return false;
  if (offset_ != payload_end_) {
    if (!salvage) {
      return Status::Corruption("container: trailing bytes after last chunk");
    }
    if (offset_ < payload_end_) {
      report_.trailing_bytes = payload_end_ - offset_;
    }
    return true;
  }
  // Skipped chunks contribute their (header-declared) element counts, so
  // the total stays verifiable even for seek-style access patterns. When
  // chunks were salvaged the totals expectedly disagree; the report
  // already names what was lost.
  if (header_.element_count != container::kUnknownCount &&
      elements_read_ != header_.element_count &&
      !(salvage && !report_.damaged.empty())) {
    return Status::Corruption("container: element count mismatch");
  }
  return true;
}

bool IsobarStreamReader::SalvageDamagedChunk(
    const container::ChunkHeader& chunk_header, bool framed, uint64_t index,
    size_t record_offset, ChunkFailureStage stage, const Status& error,
    Bytes* chunk) {
  static telemetry::Counter& salvaged =
      telemetry::GetCounter("pipeline.chunks_salvaged");
  static telemetry::Counter& zero_filled =
      telemetry::GetCounter("pipeline.chunks_zero_filled");
  const bool zero_fill =
      framed && options_.on_chunk_error == ChunkErrorPolicy::kZeroFill;
  // An element count above the container's nominal chunk size is itself
  // corrupt; assume a full chunk, the shape of every record but the last.
  const uint64_t assumed_elements =
      !framed ? 0
              : std::min<uint64_t>(chunk_header.element_count,
                                   header_.chunk_elements);
  ChunkSalvageRecord record;
  record.chunk_index = index;
  record.byte_offset = record_offset;
  record.element_count = chunk_header.element_count;
  record.output_offset = elements_read_ * header_.width;
  record.lost_bytes = assumed_elements * header_.width;
  record.stage = stage;
  record.action = zero_fill ? ChunkErrorPolicy::kZeroFill
                            : ChunkErrorPolicy::kSkip;
  record.error = error;
  report_.damaged.push_back(std::move(record));
  report_.bytes_lost += assumed_elements * header_.width;
  salvaged.Increment();
  if (!framed) {
    // The record no longer delimits itself: nothing after it is reachable.
    report_.damaged.back().action = options_.on_chunk_error;
    tail_lost_ = true;
    report_.truncated_tail = true;
    return false;
  }
  ++report_.chunks_total;
  ++chunks_read_;
  elements_read_ += assumed_elements;
  if (zero_fill) {
    ++report_.chunks_zero_filled;
    zero_filled.Increment();
    chunk->assign(static_cast<size_t>(assumed_elements * header_.width), 0);
    return true;
  }
  ++report_.chunks_skipped;
  return false;
}

Result<bool> IsobarStreamReader::NextChunk(Bytes* chunk) {
  const bool salvage = options_.on_chunk_error != ChunkErrorPolicy::kFail;
  for (;;) {
    ISOBAR_ASSIGN_OR_RETURN(const bool done, AtEnd());
    if (done) return false;
    chunk->clear();
    const uint64_t index = chunks_read_;
    const size_t record_offset = offset_;
    ChunkFailureStage stage = ChunkFailureStage::kHeader;
    container::ChunkHeader chunk_header;
    const Status status = DecodeChunk(
        container_, &offset_, *codec_, header_.linearization, header_.width,
        header_.chunk_elements, options_.verify_checksums, chunk, nullptr,
        index, &stage, &chunk_header, &ScratchArena::ThreadLocal(),
        container::RawSectionLinearization(header_.version));
    if (status.ok()) {
      ++chunks_read_;
      ++report_.chunks_total;
      ++report_.chunks_recovered;
      report_.bytes_recovered += chunk->size();
      elements_read_ += chunk->size() / header_.width;
      return true;
    }
    if (!salvage) return status;
    // `framed`: DecodeChunk advanced past the record, so the stream can
    // continue at the next one.
    const bool framed = offset_ != record_offset;
    if (SalvageDamagedChunk(chunk_header, framed, index, record_offset,
                            stage, status, chunk)) {
      return true;  // zero-filled stand-in chunk
    }
    // Skipped (or tail lost): poll the next record / end-of-stream.
  }
}

Result<bool> IsobarStreamReader::SkipChunk() {
  const bool salvage = options_.on_chunk_error != ChunkErrorPolicy::kFail;
  ISOBAR_ASSIGN_OR_RETURN(const bool done, AtEnd());
  if (done) return false;
  const uint64_t index = chunks_read_;
  const size_t record_offset = offset_;
  auto parsed = container::ParseChunkHeader(container_, &offset_);
  if (!parsed.ok()) {
    const Status annotated =
        AnnotateChunkError(parsed.status(), index, record_offset);
    if (!salvage) return annotated;
    Bytes unused;
    SalvageDamagedChunk(container::ChunkHeader{}, /*framed=*/false, index,
                        record_offset, ChunkFailureStage::kHeader, annotated,
                        &unused);
    return false;
  }
  const container::ChunkHeader chunk_header = *parsed;
  offset_ += chunk_header.compressed_size + chunk_header.raw_size;
  // Validate before the declared count enters the running element total:
  // a corrupt skipped record must not make the end-of-stream accounting
  // pass (or fail) arbitrarily. The second clause guards the running total
  // itself against uint64 wrap-around — the same checked-arithmetic rule
  // the batch decoder applies to element_count * width.
  if (chunk_header.element_count > header_.chunk_elements ||
      chunk_header.element_count >
          std::numeric_limits<uint64_t>::max() - elements_read_) {
    const Status annotated = AnnotateChunkError(
        Status::Corruption("container: chunk claims more elements than the "
                           "header's chunk size"),
        index, record_offset);
    if (!salvage) return annotated;
    Bytes unused;
    SalvageDamagedChunk(chunk_header, /*framed=*/true, index, record_offset,
                        ChunkFailureStage::kHeader, annotated, &unused);
    return true;
  }
  ++chunks_read_;
  ++report_.chunks_total;
  elements_read_ += chunk_header.element_count;
  return true;
}

Status IsobarStreamReader::SeekToChunk(uint64_t n) {
  if (!initialized_) {
    return Status::InvalidArgument("reader not initialized (call Init)");
  }
  static telemetry::Counter& index_seeks =
      telemetry::GetCounter("pipeline.index_seeks");
  static telemetry::Counter& sequential_seeks =
      telemetry::GetCounter("pipeline.sequential_seeks");
  if (have_index_) {
    if (n > index_.entries.size()) {
      return Status::InvalidArgument("seek beyond the container's chunk count");
    }
    if (n == index_.entries.size()) {
      offset_ = payload_end_;
      elements_read_ = index_.element_count;
    } else {
      offset_ = static_cast<size_t>(index_.entries[n].record_offset);
      elements_read_ = index_.entries[n].element_offset;
    }
    chunks_read_ = n;
    tail_lost_ = false;
    index_seeks.Increment();
    return Status::OK();
  }
  if (header_.chunk_count != container::kUnknownCount &&
      n > header_.chunk_count) {
    return Status::InvalidArgument("seek beyond the container's chunk count");
  }
  if (n < chunks_read_) {
    // Rewind to the first record. The salvage report restarts with the
    // rewound position so records re-examined on the way forward are not
    // double-counted.
    offset_ = container::kHeaderSize;
    chunks_read_ = 0;
    elements_read_ = 0;
    tail_lost_ = false;
    report_ = SalvageReport{};
  }
  while (chunks_read_ < n) {
    ISOBAR_ASSIGN_OR_RETURN(const bool advanced, SkipChunk());
    if (!advanced) {
      return Status::InvalidArgument("seek beyond the container's chunk count");
    }
  }
  sequential_seeks.Increment();
  return Status::OK();
}

}  // namespace isobar
