#ifndef ISOBAR_CORE_ISOBAR_H_
#define ISOBAR_CORE_ISOBAR_H_

#include <cstdint>
#include <vector>

#include "core/analyzer.h"
#include "core/chunker.h"
#include "core/container.h"
#include "core/eupa_selector.h"
#include "telemetry/timeline.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Options of the full ISOBAR-compress pipeline (Fig. 2).
struct CompressOptions {
  AnalyzerOptions analyzer;
  EupaOptions eupa;

  /// Elements per chunk (§II.D). The default follows the paper's Fig. 8
  /// finding that ratios settle at ~375k doubles (≈3 MB).
  uint64_t chunk_elements = kDefaultChunkElements;

  /// Worker threads for the chunk pipeline. 0 resolves to
  /// std::thread::hardware_concurrency() (or the ISOBAR_TEST_THREADS
  /// environment variable — the CI hook that forces multi-threaded runs
  /// under TSan); 1 takes the serial path. The container produced is
  /// byte-identical for every thread count: chunks are encoded
  /// independently and assembled in chunk order.
  uint32_t num_threads = 0;

  /// Container format version to emit. Version 2 (the default) appends a
  /// chunk-index footer enabling range/column-addressable reads and
  /// stores raw byte-planes contiguously; version 1 reproduces the legacy
  /// footer-less layout for compatibility tests and old readers.
  uint16_t container_version = container::kVersion;
};

/// Instrumentation of one Compress() run; everything the paper's tables
/// report about the compression side can be derived from these fields.
struct CompressionStats {
  EupaDecision decision;

  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t chunk_count = 0;
  uint64_t improvable_chunks = 0;

  /// True when at least one chunk was identified as improvable; the
  /// dataset-level "Improvable?" verdict of Table IV.
  bool improvable = false;

  /// Mean fraction of hard-to-compress bytes per element across chunks
  /// ("HTC Bytes (%)" of Table IV, as a fraction).
  double mean_htc_fraction = 0.0;

  /// Wall-clock decomposition of the pipeline (seconds). Stage fields are
  /// summed over chunks; with num_threads > 1 chunks run concurrently, so
  /// the stage sum is aggregate worker time and may exceed total_seconds
  /// (wall clock) by up to the thread count.
  double analysis_seconds = 0.0;   ///< ISOBAR-analyzer + EUPA sampling.
  double partition_seconds = 0.0;  ///< Gather/linearize.
  double codec_seconds = 0.0;      ///< Solver time.
  double total_seconds = 0.0;

  /// CR, Eq. 1.
  double ratio() const {
    return output_bytes == 0 ? 0.0
                             : static_cast<double>(input_bytes) /
                                   static_cast<double>(output_bytes);
  }
  /// End-to-end compression throughput, MB/s (MB = 1e6 bytes).
  double compression_mbps() const {
    return total_seconds <= 0.0
               ? 0.0
               : static_cast<double>(input_bytes) / 1e6 / total_seconds;
  }
  /// Throughput of the analysis stage alone (TP_A of Table V).
  double analysis_mbps() const {
    return analysis_seconds <= 0.0
               ? 0.0
               : static_cast<double>(input_bytes) / 1e6 / analysis_seconds;
  }
};

/// What the decoder does when one chunk record fails to parse, decode, or
/// verify. Chunk records are self-delimiting and independently CRC'd, so
/// damage that leaves a record's framing intact can be contained to that
/// record — the rest of a multi-GB checkpoint is still recoverable.
enum class ChunkErrorPolicy : uint8_t {
  kFail = 0,      ///< Abort on the first bad chunk (default; historical behaviour).
  kSkip = 1,      ///< Omit the chunk's elements from the output and continue.
  kZeroFill = 2,  ///< Emit zero bytes in place of the chunk's elements.
};

/// Stage of the per-chunk decode pipeline that rejected a record.
enum class ChunkFailureStage : uint8_t {
  kHeader = 0,    ///< Chunk header unparseable or inconsistent with the container header.
  kPayload = 1,   ///< Section geometry or solver decode failure.
  kChecksum = 2,  ///< Reconstructed bytes fail the stored CRC-32C.
};

/// One damaged chunk as seen by a salvage-mode decode.
struct ChunkSalvageRecord {
  uint64_t chunk_index = 0;   ///< Position of the record in the container.
  uint64_t byte_offset = 0;   ///< Container offset of the record's chunk header.
  uint64_t element_count = 0; ///< Header-declared elements (best effort when the header itself is damaged).
  uint64_t output_offset = 0; ///< First output byte the chunk covers (post-salvage layout).
  uint64_t lost_bytes = 0;    ///< Output bytes skipped or zero-filled for this chunk.
  ChunkFailureStage stage = ChunkFailureStage::kHeader;
  ChunkErrorPolicy action = ChunkErrorPolicy::kFail;  ///< Policy applied.
  Status error;               ///< The underlying failure, with chunk context.
};

/// Outcome of a salvage-mode decode: per-chunk verdicts plus byte-range
/// accounting, enough for a restart pipeline to decide whether the holes
/// are tolerable and to localize the damage on storage.
struct SalvageReport {
  uint64_t chunks_total = 0;        ///< Chunk records seen (intact + damaged).
  uint64_t chunks_recovered = 0;    ///< Decoded and CRC-verified.
  uint64_t chunks_skipped = 0;      ///< Dropped under kSkip.
  uint64_t chunks_zero_filled = 0;  ///< Replaced with zeros under kZeroFill.
  uint64_t bytes_recovered = 0;     ///< Output bytes from intact chunks.
  uint64_t bytes_lost = 0;          ///< Output bytes skipped or zero-filled.
  /// True when record framing was destroyed (a chunk header no longer
  /// parses or its section sizes run past the container): everything from
  /// that point on is unrecoverable without per-record resync markers.
  bool truncated_tail = false;
  /// Trailing bytes after the last counted chunk (counted containers only).
  uint64_t trailing_bytes = 0;
  std::vector<ChunkSalvageRecord> damaged;

  /// Flight recorder: the most recent cross-thread timeline events at the
  /// moment damage was established (bounded window, newest last), so a
  /// post-mortem of a corrupted decode ships its own trace — export with
  /// telemetry::FlightRecorderToJson. Empty unless the Timeline was
  /// enabled during the run.
  std::vector<telemetry::TimelineEventSnapshot> flight_recorder;

  /// True when every chunk decoded cleanly — the salvage run saw exactly
  /// what a kFail run would have accepted.
  bool clean() const { return damaged.empty() && !truncated_tail && trailing_bytes == 0; }
};

struct DecompressOptions {
  /// Verify each chunk's CRC-32C against the reconstructed bytes.
  bool verify_checksums = true;

  /// Worker threads for chunk decode (same resolution rules as
  /// CompressOptions::num_threads). Chunk records are parsed serially,
  /// then decoded concurrently into disjoint regions of the output.
  uint32_t num_threads = 0;

  /// Per-chunk error policy. Under kSkip/kZeroFill, Decompress returns OK
  /// with the damaged chunks elided or zeroed (see SalvageReport for what
  /// was lost); only container-header damage still fails the whole call.
  ChunkErrorPolicy on_chunk_error = ChunkErrorPolicy::kFail;

  /// When non-null, filled with the per-chunk salvage outcome of the run
  /// (also populated under kFail, where the first damaged chunk aborts).
  SalvageReport* salvage_report = nullptr;
};

struct DecompressionStats {
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t chunk_count = 0;

  /// Wall-clock decomposition of the decompression pipeline (seconds),
  /// mirroring the compression side's analysis/partition/codec split.
  /// As with CompressionStats, the per-stage sum is aggregate worker time
  /// under num_threads > 1 and may exceed total_seconds.
  double parse_seconds = 0.0;    ///< Container and chunk header parsing.
  double decode_seconds = 0.0;   ///< Solver decode of the packed section.
  double scatter_seconds = 0.0;  ///< Scatter-merge + checksum verification.
  double total_seconds = 0.0;

  /// Decompression throughput in output MB/s (the paper's TP_D).
  double decompression_mbps() const {
    return total_seconds <= 0.0
               ? 0.0
               : static_cast<double>(output_bytes) / 1e6 / total_seconds;
  }
};

/// Validates the shape of a compress request — width in [1, 64] and
/// `data_bytes` a whole number of elements — without touching the data.
/// Shared by the batch entry point below and by the isobard server, which
/// rejects malformed requests before they are admitted to the job queue;
/// keeping one validator guarantees a request the server accepts is a
/// request the library accepts.
Status ValidateCompressInput(uint64_t data_bytes, size_t width);

/// The ISOBAR-compress preconditioner pipeline (Alg. 1):
///
///   analyze → (undetermined ? whole-chunk solve
///                           : partition → solve signal, store noise) → merge
///
/// Compress() produces a self-describing container (Fig. 7);
/// Decompress() needs nothing but that container.
class IsobarCompressor {
 public:
  explicit IsobarCompressor(CompressOptions options = {});

  const CompressOptions& options() const { return options_; }

  /// Compresses `data` interpreted as elements of `width` bytes
  /// (width in [1, 64]; data.size() must be a multiple of width).
  Result<Bytes> Compress(ByteSpan data, size_t width) const;

  /// As above, also filling `*stats` (must not be null).
  Result<Bytes> Compress(ByteSpan data, size_t width,
                         CompressionStats* stats) const;

  /// Reverses Compress(). Static: the container is self-describing.
  static Result<Bytes> Decompress(ByteSpan container_bytes,
                                  const DecompressOptions& options = {},
                                  DecompressionStats* stats = nullptr);

  /// Decodes only elements [first_element, end_element) — the returned
  /// buffer is (end - first) * width bytes. On a v2 container the chunk
  /// index identifies the covering records directly; v1 containers (and
  /// v2 containers whose footer is damaged, under a salvage policy) fall
  /// back to a sequential chunk-header walk that stops once the range is
  /// covered. Only covering chunks are payload-decoded. A damaged chunk
  /// fails only the ranges it covers: under kFail the call errors, while
  /// both salvage policies zero-fill the damaged chunk's intersection
  /// with the range (skip-compaction would shift the range's element
  /// addressing, so kSkip behaves like kZeroFill here) and document it in
  /// the SalvageReport, whose output_offset fields are relative to the
  /// range's first byte.
  static Result<Bytes> DecompressRange(ByteSpan container_bytes,
                                       uint64_t first_element,
                                       uint64_t end_element,
                                       const DecompressOptions& options = {},
                                       DecompressionStats* stats = nullptr);

  /// Materializes only the byte-columns set in `column_mask` (bit j =
  /// column j, as in the analyzer's compressible mask). The returned
  /// buffer holds the requested byte-planes concatenated in ascending
  /// column order, each element_count bytes long. Planes the partitioner
  /// stored raw are served straight from the container — on a v2
  /// container with one memcpy per chunk and no solver call; solver-held
  /// planes decode their chunk's packed section once and project the
  /// requested columns out of it. Per-chunk CRCs cover the full
  /// reconstructed chunk, so column reads cannot verify them;
  /// options.verify_checksums is ignored here. Damage is contained per
  /// chunk and per section: a failed solver decode zero-fills only the
  /// solver-held planes of that chunk (raw planes still serve), and the
  /// SalvageReport records output_offset as the chunk's first element.
  static Result<Bytes> DecompressColumns(ByteSpan container_bytes,
                                         uint64_t column_mask,
                                         const DecompressOptions& options = {},
                                         DecompressionStats* stats = nullptr);

 private:
  CompressOptions options_;
};

}  // namespace isobar

#endif  // ISOBAR_CORE_ISOBAR_H_
