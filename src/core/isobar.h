#ifndef ISOBAR_CORE_ISOBAR_H_
#define ISOBAR_CORE_ISOBAR_H_

#include <cstdint>

#include "core/analyzer.h"
#include "core/chunker.h"
#include "core/container.h"
#include "core/eupa_selector.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Options of the full ISOBAR-compress pipeline (Fig. 2).
struct CompressOptions {
  AnalyzerOptions analyzer;
  EupaOptions eupa;

  /// Elements per chunk (§II.D). The default follows the paper's Fig. 8
  /// finding that ratios settle at ~375k doubles (≈3 MB).
  uint64_t chunk_elements = kDefaultChunkElements;

  /// Worker threads for the chunk pipeline. 0 resolves to
  /// std::thread::hardware_concurrency() (or the ISOBAR_TEST_THREADS
  /// environment variable — the CI hook that forces multi-threaded runs
  /// under TSan); 1 takes the serial path. The container produced is
  /// byte-identical for every thread count: chunks are encoded
  /// independently and assembled in chunk order.
  uint32_t num_threads = 0;
};

/// Instrumentation of one Compress() run; everything the paper's tables
/// report about the compression side can be derived from these fields.
struct CompressionStats {
  EupaDecision decision;

  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t chunk_count = 0;
  uint64_t improvable_chunks = 0;

  /// True when at least one chunk was identified as improvable; the
  /// dataset-level "Improvable?" verdict of Table IV.
  bool improvable = false;

  /// Mean fraction of hard-to-compress bytes per element across chunks
  /// ("HTC Bytes (%)" of Table IV, as a fraction).
  double mean_htc_fraction = 0.0;

  /// Wall-clock decomposition of the pipeline (seconds). Stage fields are
  /// summed over chunks; with num_threads > 1 chunks run concurrently, so
  /// the stage sum is aggregate worker time and may exceed total_seconds
  /// (wall clock) by up to the thread count.
  double analysis_seconds = 0.0;   ///< ISOBAR-analyzer + EUPA sampling.
  double partition_seconds = 0.0;  ///< Gather/linearize.
  double codec_seconds = 0.0;      ///< Solver time.
  double total_seconds = 0.0;

  /// CR, Eq. 1.
  double ratio() const {
    return output_bytes == 0 ? 0.0
                             : static_cast<double>(input_bytes) /
                                   static_cast<double>(output_bytes);
  }
  /// End-to-end compression throughput, MB/s (MB = 1e6 bytes).
  double compression_mbps() const {
    return total_seconds <= 0.0
               ? 0.0
               : static_cast<double>(input_bytes) / 1e6 / total_seconds;
  }
  /// Throughput of the analysis stage alone (TP_A of Table V).
  double analysis_mbps() const {
    return analysis_seconds <= 0.0
               ? 0.0
               : static_cast<double>(input_bytes) / 1e6 / analysis_seconds;
  }
};

struct DecompressOptions {
  /// Verify each chunk's CRC-32C against the reconstructed bytes.
  bool verify_checksums = true;

  /// Worker threads for chunk decode (same resolution rules as
  /// CompressOptions::num_threads). Chunk records are parsed serially,
  /// then decoded concurrently into disjoint regions of the output.
  uint32_t num_threads = 0;
};

struct DecompressionStats {
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t chunk_count = 0;

  /// Wall-clock decomposition of the decompression pipeline (seconds),
  /// mirroring the compression side's analysis/partition/codec split.
  /// As with CompressionStats, the per-stage sum is aggregate worker time
  /// under num_threads > 1 and may exceed total_seconds.
  double parse_seconds = 0.0;    ///< Container and chunk header parsing.
  double decode_seconds = 0.0;   ///< Solver decode of the packed section.
  double scatter_seconds = 0.0;  ///< Scatter-merge + checksum verification.
  double total_seconds = 0.0;

  /// Decompression throughput in output MB/s (the paper's TP_D).
  double decompression_mbps() const {
    return total_seconds <= 0.0
               ? 0.0
               : static_cast<double>(output_bytes) / 1e6 / total_seconds;
  }
};

/// The ISOBAR-compress preconditioner pipeline (Alg. 1):
///
///   analyze → (undetermined ? whole-chunk solve
///                           : partition → solve signal, store noise) → merge
///
/// Compress() produces a self-describing container (Fig. 7);
/// Decompress() needs nothing but that container.
class IsobarCompressor {
 public:
  explicit IsobarCompressor(CompressOptions options = {});

  const CompressOptions& options() const { return options_; }

  /// Compresses `data` interpreted as elements of `width` bytes
  /// (width in [1, 64]; data.size() must be a multiple of width).
  Result<Bytes> Compress(ByteSpan data, size_t width) const;

  /// As above, also filling `*stats` (must not be null).
  Result<Bytes> Compress(ByteSpan data, size_t width,
                         CompressionStats* stats) const;

  /// Reverses Compress(). Static: the container is self-describing.
  static Result<Bytes> Decompress(ByteSpan container_bytes,
                                  const DecompressOptions& options = {},
                                  DecompressionStats* stats = nullptr);

 private:
  CompressOptions options_;
};

}  // namespace isobar

#endif  // ISOBAR_CORE_ISOBAR_H_
