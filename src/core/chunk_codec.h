#ifndef ISOBAR_CORE_CHUNK_CODEC_H_
#define ISOBAR_CORE_CHUNK_CODEC_H_

#include "compressors/codec.h"
#include "core/analyzer.h"
#include "core/container.h"
#include "core/isobar.h"
#include "linearize/transpose.h"
#include "telemetry/trace_export.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Shared per-chunk pipeline of Alg. 1, used by both the batch
/// IsobarCompressor and the streaming writer/reader.

/// Analyzes, partitions, and solver-compresses one chunk, appending its
/// container record ([chunk header][solver bytes][raw noise bytes]) to
/// `*out`. Timing and verdict fields of `*stats` are accumulated (may be
/// null). When `trace_pipeline_id` is nonzero and tracing is on, a
/// telemetry::ChunkTrace record (verdict, partition map, stage timings,
/// byte accounting) is appended to that pipeline's trace — unless
/// `trace_out` is non-null, in which case the record is written there
/// instead of into the global recorder. Parallel pipelines use the
/// out-param so a single writer can stitch worker-produced traces back
/// into chunk order.
Status EncodeChunk(const Analyzer& analyzer, const Codec& codec,
                   Linearization linearization, ByteSpan chunk, size_t width,
                   Bytes* out, CompressionStats* stats,
                   uint64_t trace_pipeline_id = 0,
                   telemetry::ChunkTrace* trace_out = nullptr);

/// Parses the chunk record at `*offset` in `container_bytes`, reverses the
/// pipeline, and appends the reconstructed elements to `*out`, advancing
/// `*offset` past the record. `max_elements` is the container header's
/// nominal chunk size; a record claiming more elements is corrupt (the
/// bound keeps untrusted counts from driving allocations). Per-stage
/// timing fields of `*stats` are accumulated (may be null).
Status DecodeChunk(ByteSpan container_bytes, size_t* offset,
                   const Codec& codec, Linearization linearization,
                   size_t width, uint64_t max_elements, bool verify_checksums,
                   Bytes* out, DecompressionStats* stats = nullptr);

/// Folds one chunk's stats contribution into a pipeline total, in chunk
/// order, using the same incremental running-mean arithmetic EncodeChunk
/// applies in place — so totals merged from per-worker stats are identical
/// to the serial path's for every thread count. `chunk` must describe
/// exactly one chunk (its mean_htc_fraction is that chunk's fraction).
void MergeChunkStats(const CompressionStats& chunk, CompressionStats* total);

/// The payload half of DecodeChunk: reverses one already-parsed chunk
/// record into `dest`, which must be exactly
/// `chunk_header.element_count * width` bytes. `compressed_section` and
/// `raw_section` are the record's two payload slices (the caller advanced
/// past them using the header's sizes). Decode/scatter timing fields of
/// `*stats` are accumulated (may be null). Writes only through `dest`, so
/// independent chunk records can be decoded concurrently into disjoint
/// regions of one output buffer.
Status DecodeChunkPayload(const container::ChunkHeader& chunk_header,
                          ByteSpan compressed_section, ByteSpan raw_section,
                          const Codec& codec, Linearization linearization,
                          size_t width, bool verify_checksums,
                          MutableByteSpan dest,
                          DecompressionStats* stats = nullptr);

}  // namespace isobar

#endif  // ISOBAR_CORE_CHUNK_CODEC_H_
