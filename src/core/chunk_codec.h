#ifndef ISOBAR_CORE_CHUNK_CODEC_H_
#define ISOBAR_CORE_CHUNK_CODEC_H_

#include "compressors/codec.h"
#include "core/analyzer.h"
#include "core/container.h"
#include "core/isobar.h"
#include "linearize/transpose.h"
#include "telemetry/trace_export.h"
#include "util/bytes.h"
#include "util/scratch_arena.h"
#include "util/status.h"

namespace isobar {

/// Shared per-chunk pipeline of Alg. 1, used by both the batch
/// IsobarCompressor and the streaming writer/reader.

/// Analyzes, partitions, and solver-compresses one chunk, appending its
/// container record ([chunk header][solver bytes][raw noise bytes]) to
/// `*out`. Timing and verdict fields of `*stats` are accumulated (may be
/// null). When `trace_pipeline_id` is nonzero and tracing is on, a
/// telemetry::ChunkTrace record (verdict, partition map, stage timings,
/// byte accounting) is appended to that pipeline's trace — unless
/// `trace_out` is non-null, in which case the record is written there
/// instead of into the global recorder. Parallel pipelines use the
/// out-param so a single writer can stitch worker-produced traces back
/// into chunk order. When `arena` is non-null its slots back the gather /
/// raw / compressed temporaries, so a worker encoding many chunks reuses
/// the same steady-state allocations instead of reallocating per chunk.
/// `chunk_ordinal` is the chunk's 0-based position in its pipeline, used
/// only to tag the chunk's timeline events (so a trace viewer can follow
/// one chunk across workers); it does not affect the encoding.
/// `raw_linearization` is the container-version-dependent layout of the
/// record's raw (incompressible) section — kRow for v1, kColumn for v2
/// (see container::RawSectionLinearization); encoder and decoder must
/// agree on it for a given record.
Status EncodeChunk(const Analyzer& analyzer, const Codec& codec,
                   Linearization linearization, ByteSpan chunk, size_t width,
                   Bytes* out, CompressionStats* stats,
                   uint64_t trace_pipeline_id = 0,
                   telemetry::ChunkTrace* trace_out = nullptr,
                   ScratchArena* arena = nullptr, uint64_t chunk_ordinal = 0,
                   Linearization raw_linearization = Linearization::kRow);

/// Prefixes a failed `status` with the failing record's position —
/// "chunk 17 (container offset 123456): ..." — so corruption reports name
/// the record to inspect on storage. OK statuses pass through untouched.
Status AnnotateChunkError(const Status& status, uint64_t chunk_index,
                          uint64_t byte_offset);

/// Parses the chunk record at `*offset` in `container_bytes`, reverses the
/// pipeline, and appends the reconstructed elements to `*out`, advancing
/// `*offset` past the record. `max_elements` is the container header's
/// nominal chunk size; a record claiming more elements is corrupt (the
/// bound keeps untrusted counts from driving allocations). Per-stage
/// timing fields of `*stats` are accumulated (may be null).
///
/// `chunk_index` is only used to annotate error messages with the failing
/// record's position. On failure `*failed_stage` (when non-null) reports
/// which decode stage rejected the record. Whether the record's extent was
/// established is signalled by `*offset`: when it did not move the framing
/// is destroyed and nothing past the record is reachable; when it advanced
/// past the damaged record (element-count, payload, and checksum failures)
/// the caller may salvage the chunks that follow. On header/element-count
/// failures `*out`
/// is untouched; on payload/checksum failures the appended bytes are
/// truncated back off before returning. `*header_out` (when non-null) is
/// filled with the parsed chunk header as soon as parsing succeeds, even
/// when a later stage rejects the record — salvage callers use it to
/// account for the damaged chunk's declared shape.
Status DecodeChunk(ByteSpan container_bytes, size_t* offset,
                   const Codec& codec, Linearization linearization,
                   size_t width, uint64_t max_elements, bool verify_checksums,
                   Bytes* out, DecompressionStats* stats = nullptr,
                   uint64_t chunk_index = 0,
                   ChunkFailureStage* failed_stage = nullptr,
                   container::ChunkHeader* header_out = nullptr,
                   ScratchArena* arena = nullptr,
                   Linearization raw_linearization = Linearization::kRow);

/// Folds a stats contribution covering `chunk.chunk_count` chunks into a
/// pipeline total, in chunk order. mean_htc_fraction merges weighted by
/// chunk count; for single-chunk contributions the arithmetic reduces to
/// the same incremental running-mean update EncodeChunk applies in place,
/// so totals merged from per-worker stats are bit-identical to the serial
/// path's for every thread count.
void MergeChunkStats(const CompressionStats& chunk, CompressionStats* total);

/// The payload half of DecodeChunk: reverses one already-parsed chunk
/// record into `dest`, which must be exactly
/// `chunk_header.element_count * width` bytes. `compressed_section` and
/// `raw_section` are the record's two payload slices (the caller advanced
/// past them using the header's sizes). Decode/scatter timing fields of
/// `*stats` are accumulated (may be null). Writes only through `dest`, so
/// independent chunk records can be decoded concurrently into disjoint
/// regions of one output buffer. On failure `dest` may hold partially
/// scattered bytes (salvage callers re-zero it) and `*failed_stage` (when
/// non-null) reports whether the payload or its checksum was rejected.
/// When `arena` is non-null its kDecoded slot backs the solver's output
/// buffer (cleared before use), amortizing the allocation across chunks.
/// `chunk_ordinal` tags the chunk's timeline events only.
Status DecodeChunkPayload(const container::ChunkHeader& chunk_header,
                          ByteSpan compressed_section, ByteSpan raw_section,
                          const Codec& codec, Linearization linearization,
                          size_t width, bool verify_checksums,
                          MutableByteSpan dest,
                          DecompressionStats* stats = nullptr,
                          ChunkFailureStage* failed_stage = nullptr,
                          ScratchArena* arena = nullptr,
                          uint64_t chunk_ordinal = 0,
                          Linearization raw_linearization = Linearization::kRow);

}  // namespace isobar

#endif  // ISOBAR_CORE_CHUNK_CODEC_H_
