#ifndef ISOBAR_CORE_CHUNK_CODEC_H_
#define ISOBAR_CORE_CHUNK_CODEC_H_

#include "compressors/codec.h"
#include "core/analyzer.h"
#include "core/container.h"
#include "core/isobar.h"
#include "linearize/transpose.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Shared per-chunk pipeline of Alg. 1, used by both the batch
/// IsobarCompressor and the streaming writer/reader.

/// Analyzes, partitions, and solver-compresses one chunk, appending its
/// container record ([chunk header][solver bytes][raw noise bytes]) to
/// `*out`. Timing and verdict fields of `*stats` are accumulated (may be
/// null). When `trace_pipeline_id` is nonzero and tracing is on, a
/// telemetry::ChunkTrace record (verdict, partition map, stage timings,
/// byte accounting) is appended to that pipeline's trace.
Status EncodeChunk(const Analyzer& analyzer, const Codec& codec,
                   Linearization linearization, ByteSpan chunk, size_t width,
                   Bytes* out, CompressionStats* stats,
                   uint64_t trace_pipeline_id = 0);

/// Parses the chunk record at `*offset` in `container_bytes`, reverses the
/// pipeline, and appends the reconstructed elements to `*out`, advancing
/// `*offset` past the record. `max_elements` is the container header's
/// nominal chunk size; a record claiming more elements is corrupt (the
/// bound keeps untrusted counts from driving allocations). Per-stage
/// timing fields of `*stats` are accumulated (may be null).
Status DecodeChunk(ByteSpan container_bytes, size_t* offset,
                   const Codec& codec, Linearization linearization,
                   size_t width, uint64_t max_elements, bool verify_checksums,
                   Bytes* out, DecompressionStats* stats = nullptr);

}  // namespace isobar

#endif  // ISOBAR_CORE_CHUNK_CODEC_H_
