#include "core/eupa_selector.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "compressors/registry.h"
#include "linearize/transpose.h"
#include "simd/dispatch.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace isobar {
namespace {

// Cheap statistics of one linearized training sample, feeding the
// estimator gate. All three are deterministic functions of the bytes, so
// gated selection stays a deterministic process (§II.C).
struct SampleSignals {
  double entropy_ratio = 1.0;   ///< order-0 Huffman bound (lin-independent)
  double run_fraction = 0.0;    ///< adjacent equal-byte pair rate
  double match_fraction = 0.0;  ///< repeated 3-byte window probe rate
};

// Order-0 entropy bound as a ratio: 8 bits per byte over the sample's
// Shannon entropy. The histogram pass rides the SIMD tier dispatch. A
// single-valued sample reports the exact two-byte Huffman special case
// instead, which is what an entropy coder actually achieves there.
double EntropyRatioBound(ByteSpan data) {
  std::array<uint64_t, 256> hist{};
  simd::Kernels().histogram_update(data.data(), data.size(), 1, hist.data());
  const double n = static_cast<double>(data.size());
  double entropy = 0.0;
  int distinct = 0;
  for (uint64_t count : hist) {
    if (count == 0) continue;
    ++distinct;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  if (distinct <= 1) return n / 2.0;
  return 8.0 / entropy;
}

double RunFraction(ByteSpan data) {
  if (data.size() < 2) return 0.0;
  size_t equal = 0;
  for (size_t i = 1; i < data.size(); ++i) {
    equal += data[i] == data[i - 1] ? 1 : 0;
  }
  return static_cast<double>(equal) / static_cast<double>(data.size() - 1);
}

// Fraction of probed 3-byte windows whose bytes were already seen at the
// hash table's previous position — an upper-bound proxy for the LZ match
// rate (probe distances ignore codec window limits, so it only errs
// toward predicting more matches).
double MatchProbeRate(ByteSpan data) {
  if (data.size() < 3) return 0.0;
  constexpr size_t kProbeTarget = 4096;
  constexpr uint32_t kTableBits = 12;
  std::array<uint32_t, 1u << kTableBits> last{};  // position + 1; 0 = empty
  const size_t windows = data.size() - 2;
  const size_t stride = std::max<size_t>(1, windows / kProbeTarget);
  size_t probes = 0;
  size_t hits = 0;
  for (size_t i = 0; i < windows; i += stride) {
    const uint32_t v = static_cast<uint32_t>(data[i]) |
                       static_cast<uint32_t>(data[i + 1]) << 8 |
                       static_cast<uint32_t>(data[i + 2]) << 16;
    const uint32_t h = (v * 2654435761u) >> (32 - kTableBits);
    if (last[h] != 0) {
      const size_t p = last[h] - 1;
      hits += (data[p] == data[i] && data[p + 1] == data[i + 1] &&
               data[p + 2] == data[i + 2])
                  ? 1
                  : 0;
    }
    last[h] = static_cast<uint32_t>(i + 1);
    ++probes;
  }
  return static_cast<double>(hits) / static_cast<double>(probes);
}

// Optimistic predicted ratio for one candidate codec. Every formula is an
// upper bound (or a generously inflated estimate) of what the codec can
// achieve given the signals: the gate must only prune candidates whose
// trial could not have changed the decision, so erring high merely costs
// an extra trial while erring low could flip a selection.
double PredictRatio(CodecId codec, const SampleSignals& s) {
  // 1/(1 - fraction), saturating at `cap` (the codec's own format bound).
  const auto coverage_ratio = [](double fraction, double cap) {
    return std::min(cap, 1.0 / std::max(1.0 - fraction, 1.0 / cap));
  };
  switch (codec) {
    case CodecId::kStored:
      return 1.0;
    case CodecId::kRle:
      // Best case two output bytes per 130-byte run.
      return coverage_ratio(s.run_fraction, 65.0);
    case CodecId::kHuffman:
      // Huffman output is >= n * H bits, so 8/H bounds the ratio.
      return s.entropy_ratio;
    case CodecId::kLzss:
      // Best case 17 token bits per 18-byte match; runs are matches too.
      return std::max(coverage_ratio(s.match_fraction, 8.5),
                      coverage_ratio(s.run_fraction, 8.5));
    case CodecId::kZlib:
      // Dictionary + entropy stages multiply, so bound by the product of
      // both optimistic factors. The saturation value must be deflate's
      // own format ceiling (~1032:1 — 258-byte matches at a couple of
      // bits each): when every probe hits, the fractions carry no upper
      // bound at all, and any tighter clamp would prune trials the codec
      // can win outright.
      return std::min(1032.0, 1.25 * s.entropy_ratio *
                                  std::max(coverage_ratio(s.match_fraction,
                                                          1032.0),
                                           coverage_ratio(s.run_fraction,
                                                          1032.0)));
    case CodecId::kLzans:
      // LZ77 over a 128 KiB window (4x zlib's) + tANS entropy stage: its
      // long-range matches reach block-sort-class ratios on structure
      // the 3-byte probes cannot see (e.g. num_plasma), so it shares the
      // bzip2/BWT bound — anything tighter starves the trial it would win.
    case CodecId::kBzip2:
    case CodecId::kBwt:
      // Block sorting (and lzans's RLE block escape) collapses whole
      // 128 KiB blocks to a handful of bytes, so the honest format
      // ceiling sits in the tens of thousands. Saturated probes must
      // predict that ceiling, not a round number: measured ratios on the
      // smooth-field profiles run past 2500:1, and a clamp below them
      // made the gate prune the exhaustive winner.
      return std::min(20000.0, 1.4 * s.entropy_ratio *
                                   std::max(coverage_ratio(s.match_fraction,
                                                           20000.0),
                                            coverage_ratio(s.run_fraction,
                                                           20000.0)));
  }
  // Codecs without a model are never pruned.
  return 1e12;
}

}  // namespace

std::optional<CodecId> ForcedCodecFromEnv() {
  const char* env = std::getenv("ISOBAR_FORCE_CODEC");
  if (env == nullptr || *env == '\0') return std::nullopt;
  for (CodecId id : AllCodecIds()) {
    if (CodecIdToString(id) == env) return id;
  }
  return std::nullopt;
}

std::string_view PreferenceToString(Preference preference) {
  switch (preference) {
    case Preference::kRatio:
      return "ratio";
    case Preference::kSpeed:
      return "speed";
  }
  return "unknown";
}

EupaSelector::EupaSelector(EupaOptions options) : options_(std::move(options)) {}

Bytes DrawTrainingSample(ByteSpan data, size_t width,
                         const EupaOptions& options) {
  const uint64_t n = data.size() / width;
  const uint64_t want = std::min<uint64_t>(options.sample_elements, n);
  if (want == n) return Bytes(data.begin(), data.end());

  const uint64_t runs = std::max<uint64_t>(1, options.sample_runs);
  // Spread the division remainder over the first `want % runs` runs so the
  // sample totals exactly `want` elements; flooring every run undershoots
  // by up to runs-1 elements, starving the probe of its budget.
  const uint64_t base_run = want / runs;
  const uint64_t extra_runs = want % runs;
  Bytes sample;
  sample.reserve(want * width);
  Xoshiro256 rng(options.seed);
  for (uint64_t r = 0; r < runs && sample.size() < want * width; ++r) {
    const uint64_t per_run =
        std::max<uint64_t>(1, base_run + (r < extra_runs ? 1 : 0));
    const uint64_t max_start = n - per_run;
    const uint64_t start = max_start == 0 ? 0 : rng.NextBounded(max_start + 1);
    const uint8_t* p = data.data() + start * width;
    const uint64_t take =
        std::min<uint64_t>(per_run, want - sample.size() / width);
    sample.insert(sample.end(), p, p + take * width);
  }
  return sample;
}

Result<EupaDecision> EupaSelector::Select(ByteSpan data, size_t width,
                                          uint64_t compressible_mask) const {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.empty() || data.size() % width != 0) {
    return Status::InvalidArgument(
        "data must be a non-empty multiple of the element width");
  }
  if (options_.candidate_codecs.empty() && !options_.forced_codec) {
    return Status::InvalidArgument("no candidate codecs configured");
  }
  if (options_.sample_elements == 0 || options_.sample_runs == 0) {
    return Status::InvalidArgument(
        "sample_elements and sample_runs must be positive");
  }

  EupaDecision decision;
  decision.preference = options_.preference;

  // Fully forced pipeline: nothing to measure.
  if (options_.forced_codec && options_.forced_linearization) {
    decision.codec = *options_.forced_codec;
    decision.linearization = *options_.forced_linearization;
    return decision;
  }

  telemetry::ScopedSpan span("eupa.select");
  static telemetry::Counter& selections =
      telemetry::GetCounter("eupa.selections");
  selections.Increment();

  const Bytes sample = DrawTrainingSample(data, width, options_);
  static telemetry::Counter& sample_bytes =
      telemetry::GetCounter("eupa.sample_bytes");
  sample_bytes.Add(sample.size());

  std::vector<CodecId> codecs = options_.forced_codec
                                    ? std::vector<CodecId>{*options_.forced_codec}
                                    : options_.candidate_codecs;
  std::vector<Linearization> linearizations =
      options_.forced_linearization
          ? std::vector<Linearization>{*options_.forced_linearization}
          : std::vector<Linearization>{Linearization::kRow,
                                       Linearization::kColumn};

  std::vector<Bytes> gathered(linearizations.size());
  for (size_t li = 0; li < linearizations.size(); ++li) {
    ISOBAR_RETURN_NOT_OK(GatherColumns(sample, width, compressible_mask,
                                       linearizations[li], &gathered[li]));
    if (gathered[li].empty()) {
      return Status::InvalidArgument(
          "empty compressible partition: selector needs a non-zero mask");
    }
  }

  // Candidate matrix in canonical (linearization-major) order, which is
  // also the tie-break order of the decision rule below.
  struct Candidate {
    size_t lin_index;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(linearizations.size() * codecs.size());
  for (size_t li = 0; li < linearizations.size(); ++li) {
    for (CodecId id : codecs) {
      CandidateEvaluation eval;
      eval.codec = id;
      eval.linearization = linearizations[li];
      decision.evaluations.push_back(eval);
      candidates.push_back({li});
    }
  }

  // Estimator gate (prune_margin > 0): predict each candidate's ratio
  // from cheap sample statistics, then trial in predicted-descending
  // order so strong candidates set the incumbent early and weak ones can
  // be pruned without compressing anything. prune_margin == 0 keeps the
  // exhaustive trial matrix bit-for-bit (no statistics are computed).
  const bool gated = options_.prune_margin > 0.0;
  std::vector<size_t> trial_order(candidates.size());
  std::iota(trial_order.begin(), trial_order.end(), 0);
  if (gated) {
    // The entropy bound is linearization-independent (same byte multiset),
    // so compute it once; the locality-sensitive signals are per layout.
    const double entropy_ratio = EntropyRatioBound(gathered[0]);
    std::vector<SampleSignals> signals(linearizations.size());
    for (size_t li = 0; li < linearizations.size(); ++li) {
      signals[li].entropy_ratio = entropy_ratio;
      signals[li].run_fraction = RunFraction(gathered[li]);
      signals[li].match_fraction = MatchProbeRate(gathered[li]);
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      decision.evaluations[c].predicted_ratio = PredictRatio(
          decision.evaluations[c].codec, signals[candidates[c].lin_index]);
    }
    std::stable_sort(trial_order.begin(), trial_order.end(),
                     [&](size_t a, size_t b) {
                       return decision.evaluations[a].predicted_ratio >
                              decision.evaluations[b].predicted_ratio;
                     });
  }

  static telemetry::Counter& trials_run =
      telemetry::GetCounter("eupa.trials_run");
  static telemetry::Counter& trials_pruned =
      telemetry::GetCounter("eupa.trials_pruned");

  double best_measured = 0.0;
  bool floor_met = false;
  for (size_t c : trial_order) {
    CandidateEvaluation& eval = decision.evaluations[c];
    if (gated) {
      const double optimistic =
          eval.predicted_ratio * (1.0 + options_.prune_margin);
      // kRatio: even the inflated prediction loses to the incumbent.
      // kSpeed: the candidate cannot reach the ratio floor, and some
      // measured candidate already has, so neither the band rule nor the
      // all-below-floor fallback could ever pick it.
      const bool prune =
          options_.preference == Preference::kRatio
              ? best_measured > 0.0 && optimistic < best_measured
              : floor_met && optimistic < options_.min_ratio;
      if (prune) {
        eval.pruned = true;
        trials_pruned.Increment();
        continue;
      }
    }
    ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(eval.codec));
    const Bytes& trial_input = gathered[candidates[c].lin_index];
    Bytes compressed;
    Stopwatch timer;
    ISOBAR_RETURN_NOT_OK(codec->Compress(trial_input, &compressed));
    eval.throughput_mbps = timer.ThroughputMBps(trial_input.size());
    eval.ratio = compressed.empty()
                     ? 0.0
                     : static_cast<double>(trial_input.size()) /
                           static_cast<double>(compressed.size());
    best_measured = std::max(best_measured, eval.ratio);
    floor_met = floor_met || eval.ratio >= options_.min_ratio;
    trials_run.Increment();
    static telemetry::Counter& measured =
        telemetry::GetCounter("eupa.candidates_measured");
    measured.Increment();
  }

  // Decision rule (§II.C: "the EUPA-selector is a deterministic
  // process"). Ratios are bit-deterministic; throughputs are wall-clock
  // measurements, so the speed rule compares them only up to a 15% band:
  // the fastest band is located first, then the best ratio inside it
  // wins. Near-ties (e.g. row vs column under the same solver) therefore
  // resolve by ratio, which does not fluctuate between runs. Pruned
  // candidates never enter the rule: the gate only drops candidates the
  // rule could not have picked.
  const CandidateEvaluation* best = nullptr;
  if (options_.preference == Preference::kRatio) {
    for (const auto& eval : decision.evaluations) {
      if (eval.pruned) continue;
      if (best == nullptr || eval.ratio > best->ratio) best = &eval;
    }
  } else {
    double top_throughput = 0.0;
    for (const auto& eval : decision.evaluations) {
      if (eval.pruned || eval.ratio < options_.min_ratio) continue;
      top_throughput = std::max(top_throughput, eval.throughput_mbps);
    }
    for (const auto& eval : decision.evaluations) {
      if (eval.pruned || eval.ratio < options_.min_ratio) continue;
      if (eval.throughput_mbps < 0.85 * top_throughput) continue;
      if (best == nullptr || eval.ratio > best->ratio) best = &eval;
    }
    if (best == nullptr) {
      // No candidate met the ratio floor; fall back to the best ratio.
      for (const auto& eval : decision.evaluations) {
        if (eval.pruned) continue;
        if (best == nullptr || eval.ratio > best->ratio) best = &eval;
      }
    }
  }
  if (best == nullptr) {
    return Status::Internal("EUPA selector produced no candidates");
  }
  decision.codec = best->codec;
  decision.linearization = best->linearization;
  return decision;
}

}  // namespace isobar
