#include "core/eupa_selector.h"

#include <algorithm>

#include "compressors/registry.h"
#include "linearize/transpose.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace isobar {

std::string_view PreferenceToString(Preference preference) {
  switch (preference) {
    case Preference::kRatio:
      return "ratio";
    case Preference::kSpeed:
      return "speed";
  }
  return "unknown";
}

EupaSelector::EupaSelector(EupaOptions options) : options_(std::move(options)) {}

Bytes DrawTrainingSample(ByteSpan data, size_t width,
                         const EupaOptions& options) {
  const uint64_t n = data.size() / width;
  const uint64_t want = std::min<uint64_t>(options.sample_elements, n);
  if (want == n) return Bytes(data.begin(), data.end());

  const uint64_t runs = std::max<uint64_t>(1, options.sample_runs);
  // Spread the division remainder over the first `want % runs` runs so the
  // sample totals exactly `want` elements; flooring every run undershoots
  // by up to runs-1 elements, starving the probe of its budget.
  const uint64_t base_run = want / runs;
  const uint64_t extra_runs = want % runs;
  Bytes sample;
  sample.reserve(want * width);
  Xoshiro256 rng(options.seed);
  for (uint64_t r = 0; r < runs && sample.size() < want * width; ++r) {
    const uint64_t per_run =
        std::max<uint64_t>(1, base_run + (r < extra_runs ? 1 : 0));
    const uint64_t max_start = n - per_run;
    const uint64_t start = max_start == 0 ? 0 : rng.NextBounded(max_start + 1);
    const uint8_t* p = data.data() + start * width;
    const uint64_t take =
        std::min<uint64_t>(per_run, want - sample.size() / width);
    sample.insert(sample.end(), p, p + take * width);
  }
  return sample;
}

Result<EupaDecision> EupaSelector::Select(ByteSpan data, size_t width,
                                          uint64_t compressible_mask) const {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.empty() || data.size() % width != 0) {
    return Status::InvalidArgument(
        "data must be a non-empty multiple of the element width");
  }
  if (options_.candidate_codecs.empty() && !options_.forced_codec) {
    return Status::InvalidArgument("no candidate codecs configured");
  }

  EupaDecision decision;
  decision.preference = options_.preference;

  // Fully forced pipeline: nothing to measure.
  if (options_.forced_codec && options_.forced_linearization) {
    decision.codec = *options_.forced_codec;
    decision.linearization = *options_.forced_linearization;
    return decision;
  }

  telemetry::ScopedSpan span("eupa.select");
  static telemetry::Counter& selections =
      telemetry::GetCounter("eupa.selections");
  selections.Increment();

  const Bytes sample = DrawTrainingSample(data, width, options_);
  static telemetry::Counter& sample_bytes =
      telemetry::GetCounter("eupa.sample_bytes");
  sample_bytes.Add(sample.size());

  std::vector<CodecId> codecs = options_.forced_codec
                                    ? std::vector<CodecId>{*options_.forced_codec}
                                    : options_.candidate_codecs;
  std::vector<Linearization> linearizations =
      options_.forced_linearization
          ? std::vector<Linearization>{*options_.forced_linearization}
          : std::vector<Linearization>{Linearization::kRow,
                                       Linearization::kColumn};

  for (Linearization lin : linearizations) {
    Bytes gathered;
    ISOBAR_RETURN_NOT_OK(
        GatherColumns(sample, width, compressible_mask, lin, &gathered));
    if (gathered.empty()) {
      return Status::InvalidArgument(
          "empty compressible partition: selector needs a non-zero mask");
    }
    for (CodecId id : codecs) {
      ISOBAR_ASSIGN_OR_RETURN(const Codec* codec, GetCodec(id));
      Bytes compressed;
      Stopwatch timer;
      ISOBAR_RETURN_NOT_OK(codec->Compress(gathered, &compressed));
      CandidateEvaluation eval;
      eval.codec = id;
      eval.linearization = lin;
      eval.throughput_mbps = timer.ThroughputMBps(gathered.size());
      eval.ratio = compressed.empty()
                       ? 0.0
                       : static_cast<double>(gathered.size()) /
                             static_cast<double>(compressed.size());
      decision.evaluations.push_back(eval);
      static telemetry::Counter& measured =
          telemetry::GetCounter("eupa.candidates_measured");
      measured.Increment();
    }
  }

  // Decision rule (§II.C: "the EUPA-selector is a deterministic
  // process"). Ratios are bit-deterministic; throughputs are wall-clock
  // measurements, so the speed rule compares them only up to a 15% band:
  // the fastest band is located first, then the best ratio inside it
  // wins. Near-ties (e.g. row vs column under the same solver) therefore
  // resolve by ratio, which does not fluctuate between runs.
  const CandidateEvaluation* best = nullptr;
  if (options_.preference == Preference::kRatio) {
    for (const auto& eval : decision.evaluations) {
      if (best == nullptr || eval.ratio > best->ratio) best = &eval;
    }
  } else {
    double top_throughput = 0.0;
    for (const auto& eval : decision.evaluations) {
      if (eval.ratio < options_.min_ratio) continue;
      top_throughput = std::max(top_throughput, eval.throughput_mbps);
    }
    for (const auto& eval : decision.evaluations) {
      if (eval.ratio < options_.min_ratio) continue;
      if (eval.throughput_mbps < 0.85 * top_throughput) continue;
      if (best == nullptr || eval.ratio > best->ratio) best = &eval;
    }
    if (best == nullptr) {
      // No candidate met the ratio floor; fall back to the best ratio.
      for (const auto& eval : decision.evaluations) {
        if (best == nullptr || eval.ratio > best->ratio) best = &eval;
      }
    }
  }
  if (best == nullptr) {
    return Status::Internal("EUPA selector produced no candidates");
  }
  decision.codec = best->codec;
  decision.linearization = best->linearization;
  return decision;
}

}  // namespace isobar
