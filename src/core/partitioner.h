#ifndef ISOBAR_CORE_PARTITIONER_H_
#define ISOBAR_CORE_PARTITIONER_H_

#include <cstdint>

#include "linearize/transpose.h"
#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// The two byte streams produced by the ISOBAR-partitioner (§II.B, Fig. 5):
/// the compressible byte-columns (headed for the solver, laid out in the
/// EUPA-chosen linearization) and the incompressible noise bytes (stored
/// verbatim).
struct Partition {
  size_t width = 0;
  uint64_t element_count = 0;

  /// Bit j set ⇔ column j went into `compressible`.
  uint64_t compressible_mask = 0;

  /// Linearization of the compressible stream.
  Linearization linearization = Linearization::kRow;

  /// Selected (signal) bytes: element_count * popcount(mask) bytes.
  Bytes compressible;

  /// Unselected (noise) bytes, always row-linearized: element_count *
  /// (width - popcount(mask)) bytes.
  Bytes incompressible;
};

/// Splits `data` (elements of `width` bytes) into the two partition streams
/// according to `compressible_mask`. The mask may be anything, including
/// all-ones (everything to the solver) or zero (everything raw); the
/// undetermined-vs-improvable policy decision lives in the caller (Alg. 1).
Status PartitionData(ByteSpan data, size_t width, uint64_t compressible_mask,
                     Linearization linearization, Partition* out);

/// Core of PartitionData writing into caller-owned buffers: the chunk
/// pipeline passes ScratchArena slots here so the two streams reuse their
/// steady-state allocations instead of growing a fresh Partition per
/// chunk. Both buffers are overwritten (resized) in full.
/// `raw_linearization` controls the layout of the incompressible stream:
/// container v1 interleaves the noise bytes element-major (kRow), v2
/// stores each noise byte-plane contiguously (kColumn) so column readers
/// can serve a raw plane with one memcpy.
Status PartitionDataInto(ByteSpan data, size_t width,
                         uint64_t compressible_mask,
                         Linearization linearization, Bytes* compressible,
                         Bytes* incompressible,
                         Linearization raw_linearization = Linearization::kRow);

/// Inverse of PartitionData: interleaves the two streams back into the
/// original element-major byte order. This is the paper's "merger" acting
/// on one chunk.
Status MergePartition(const Partition& partition, Bytes* out);

}  // namespace isobar

#endif  // ISOBAR_CORE_PARTITIONER_H_
