#include "core/chunk_codec.h"

#include "core/partitioner.h"
#include "util/crc32c.h"
#include "util/stopwatch.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

}  // namespace

Status EncodeChunk(const Analyzer& analyzer, const Codec& codec,
                   Linearization linearization, ByteSpan chunk, size_t width,
                   Bytes* out, CompressionStats* stats) {
  const uint64_t full_mask = FullMask(width);

  Stopwatch analysis_timer;
  ISOBAR_ASSIGN_OR_RETURN(AnalysisResult analysis,
                          analyzer.Analyze(chunk, width));
  if (stats != nullptr) {
    stats->analysis_seconds += analysis_timer.ElapsedSeconds();
    if (analysis.improvable()) {
      ++stats->improvable_chunks;
      stats->improvable = true;
    }
    // mean_htc_fraction is maintained as a running mean over chunks.
    stats->mean_htc_fraction +=
        (analysis.htc_byte_fraction() - stats->mean_htc_fraction) /
        static_cast<double>(stats->chunk_count + 1);
    ++stats->chunk_count;
  }

  container::ChunkHeader chunk_header;
  chunk_header.element_count = chunk.size() / width;
  chunk_header.compressible_mask = analysis.compressible_mask;
  chunk_header.crc32c = crc32c::Value(chunk);

  Bytes gathered;
  ByteSpan raw_section;
  Partition partition;
  if (analysis.improvable()) {
    Stopwatch partition_timer;
    ISOBAR_RETURN_NOT_OK(PartitionData(chunk, width,
                                       analysis.compressible_mask,
                                       linearization, &partition));
    if (stats != nullptr) {
      stats->partition_seconds += partition_timer.ElapsedSeconds();
    }
    gathered = std::move(partition.compressible);
    raw_section = ByteSpan(partition.incompressible);
  } else {
    // Undetermined (Alg. 1 lines 2-3): the whole chunk goes to the
    // solver, still in the EUPA-chosen linearization.
    chunk_header.flags |= container::kChunkUndetermined;
    Stopwatch partition_timer;
    ISOBAR_RETURN_NOT_OK(
        GatherColumns(chunk, width, full_mask, linearization, &gathered));
    if (stats != nullptr) {
      stats->partition_seconds += partition_timer.ElapsedSeconds();
    }
  }

  Bytes compressed;
  Stopwatch codec_timer;
  ISOBAR_RETURN_NOT_OK(codec.Compress(gathered, &compressed));
  if (stats != nullptr) stats->codec_seconds += codec_timer.ElapsedSeconds();

  if (compressed.size() >= gathered.size()) {
    // The solver expanded its input (possible on pure noise): store the
    // gathered bytes verbatim so the container never grows the section.
    chunk_header.flags |= container::kChunkStoredRaw;
    chunk_header.compressed_size = gathered.size();
    chunk_header.raw_size = raw_section.size();
    container::AppendChunkHeader(chunk_header, out);
    out->insert(out->end(), gathered.begin(), gathered.end());
  } else {
    chunk_header.compressed_size = compressed.size();
    chunk_header.raw_size = raw_section.size();
    container::AppendChunkHeader(chunk_header, out);
    out->insert(out->end(), compressed.begin(), compressed.end());
  }
  out->insert(out->end(), raw_section.begin(), raw_section.end());
  return Status::OK();
}

Status DecodeChunk(ByteSpan container_bytes, size_t* offset,
                   const Codec& codec, Linearization linearization,
                   size_t width, uint64_t max_elements, bool verify_checksums,
                   Bytes* out) {
  const uint64_t full_mask = FullMask(width);

  ISOBAR_ASSIGN_OR_RETURN(
      container::ChunkHeader chunk_header,
      container::ParseChunkHeader(container_bytes, offset));
  if (chunk_header.element_count > max_elements) {
    return Status::Corruption(
        "container: chunk claims more elements than the header's chunk size");
  }
  const ByteSpan compressed_section =
      container_bytes.subspan(*offset, chunk_header.compressed_size);
  *offset += chunk_header.compressed_size;
  const ByteSpan raw_section =
      container_bytes.subspan(*offset, chunk_header.raw_size);
  *offset += chunk_header.raw_size;

  const bool undetermined =
      (chunk_header.flags & container::kChunkUndetermined) != 0;
  const uint64_t mask =
      undetermined ? full_mask : chunk_header.compressible_mask;
  if ((mask & ~full_mask) != 0) {
    return Status::Corruption("container: chunk mask exceeds element width");
  }
  const uint64_t n = chunk_header.element_count;
  const size_t selected = static_cast<size_t>(PopcountMask(mask, width));
  const size_t expected_packed = n * selected;
  const size_t expected_raw = n * (width - selected);
  if (chunk_header.raw_size != expected_raw) {
    return Status::Corruption("container: raw section size mismatch");
  }

  Bytes decoded;
  ByteSpan packed;
  if (chunk_header.flags & container::kChunkStoredRaw) {
    if (compressed_section.size() != expected_packed) {
      return Status::Corruption("container: stored section size mismatch");
    }
    packed = compressed_section;
  } else {
    ISOBAR_RETURN_NOT_OK(
        codec.Decompress(compressed_section, expected_packed, &decoded));
    packed = ByteSpan(decoded);
  }

  const size_t chunk_base = out->size();
  out->resize(chunk_base + n * width);
  MutableByteSpan dest(out->data() + chunk_base, n * width);
  ISOBAR_RETURN_NOT_OK(
      ScatterColumns(packed, width, mask, linearization, dest));
  ISOBAR_RETURN_NOT_OK(ScatterColumns(raw_section, width, full_mask & ~mask,
                                      Linearization::kRow, dest));

  if (verify_checksums) {
    const uint32_t crc = crc32c::Extend(0, out->data() + chunk_base, n * width);
    if (crc != chunk_header.crc32c) {
      return Status::Corruption("container: chunk checksum mismatch");
    }
  }
  return Status::OK();
}

}  // namespace isobar
