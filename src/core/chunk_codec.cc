#include "core/chunk_codec.h"

#include <string>

#include "core/partitioner.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "util/crc32c.h"
#include "util/stopwatch.h"

namespace isobar {
namespace {

uint64_t FullMask(size_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

}  // namespace

Status EncodeChunk(const Analyzer& analyzer, const Codec& codec,
                   Linearization linearization, ByteSpan chunk, size_t width,
                   Bytes* out, CompressionStats* stats,
                   uint64_t trace_pipeline_id,
                   telemetry::ChunkTrace* trace_out, ScratchArena* arena,
                   uint64_t chunk_ordinal, Linearization raw_linearization) {
  const uint64_t full_mask = FullMask(width);
  telemetry::ScopedSpan chunk_span("compress.chunk", trace_pipeline_id,
                                   chunk_ordinal + 1);
  const size_t record_base = out->size();

  Stopwatch analysis_timer;
  ISOBAR_ASSIGN_OR_RETURN(AnalysisResult analysis,
                          analyzer.Analyze(chunk, width));
  const double analysis_seconds = analysis_timer.ElapsedSeconds();
  if (stats != nullptr) {
    stats->analysis_seconds += analysis_seconds;
    if (analysis.improvable()) {
      ++stats->improvable_chunks;
      stats->improvable = true;
    }
    // mean_htc_fraction is maintained as a running mean over chunks.
    stats->mean_htc_fraction +=
        (analysis.htc_byte_fraction() - stats->mean_htc_fraction) /
        static_cast<double>(stats->chunk_count + 1);
    ++stats->chunk_count;
  }

  container::ChunkHeader chunk_header;
  chunk_header.element_count = chunk.size() / width;
  chunk_header.compressible_mask = analysis.compressible_mask;
  chunk_header.crc32c = crc32c::Value(chunk);

  // Arena-backed temporaries: with a per-worker arena these three vectors
  // reach steady-state capacity after a few chunks and stop allocating.
  Bytes local_gathered;
  Bytes local_raw;
  Bytes local_compressed;
  Bytes& gathered =
      arena != nullptr ? arena->buffer(ScratchArena::kGathered)
                       : local_gathered;
  Bytes& raw = arena != nullptr ? arena->buffer(ScratchArena::kRaw)
                                : local_raw;
  Bytes& compressed =
      arena != nullptr ? arena->buffer(ScratchArena::kCompressed)
                       : local_compressed;

  ByteSpan raw_section;
  double partition_seconds = 0.0;
  if (analysis.improvable()) {
    Stopwatch partition_timer;
    ISOBAR_RETURN_NOT_OK(PartitionDataInto(chunk, width,
                                           analysis.compressible_mask,
                                           linearization, &gathered, &raw,
                                           raw_linearization));
    partition_seconds = partition_timer.ElapsedSeconds();
    raw_section = ByteSpan(raw);
  } else {
    // Undetermined (Alg. 1 lines 2-3): the whole chunk goes to the
    // solver, still in the EUPA-chosen linearization.
    chunk_header.flags |= container::kChunkUndetermined;
    telemetry::ScopedSpan gather_span("chunk.partition", trace_pipeline_id,
                                      chunk_ordinal + 1);
    Stopwatch partition_timer;
    ISOBAR_RETURN_NOT_OK(
        GatherColumns(chunk, width, full_mask, linearization, &gathered));
    partition_seconds = partition_timer.ElapsedSeconds();
  }
  if (stats != nullptr) stats->partition_seconds += partition_seconds;

  double codec_seconds = 0.0;
  {
    telemetry::ScopedSpan solve_span("chunk.solve", trace_pipeline_id,
                                     chunk_ordinal + 1);
    Stopwatch codec_timer;
    compressed.clear();  // Arena slot may hold the previous chunk's output.
    ISOBAR_RETURN_NOT_OK(codec.Compress(gathered, &compressed));
    codec_seconds = codec_timer.ElapsedSeconds();
  }
  if (stats != nullptr) stats->codec_seconds += codec_seconds;

  const bool stored_raw = compressed.size() >= gathered.size();
  if (stored_raw) {
    // The solver expanded its input (possible on pure noise): store the
    // gathered bytes verbatim so the container never grows the section.
    chunk_header.flags |= container::kChunkStoredRaw;
    chunk_header.compressed_size = gathered.size();
    chunk_header.raw_size = raw_section.size();
    container::AppendChunkHeader(chunk_header, out);
    out->insert(out->end(), gathered.begin(), gathered.end());
  } else {
    chunk_header.compressed_size = compressed.size();
    chunk_header.raw_size = raw_section.size();
    container::AppendChunkHeader(chunk_header, out);
    out->insert(out->end(), compressed.begin(), compressed.end());
  }
  out->insert(out->end(), raw_section.begin(), raw_section.end());

  static telemetry::Counter& chunks_encoded =
      telemetry::GetCounter("pipeline.chunks_encoded");
  static telemetry::Counter& input_bytes =
      telemetry::GetCounter("pipeline.chunk_input_bytes");
  static telemetry::Counter& output_bytes =
      telemetry::GetCounter("pipeline.chunk_output_bytes");
  chunks_encoded.Increment();
  input_bytes.Add(chunk.size());
  output_bytes.Add(out->size() - record_base);

  if (arena != nullptr) arena->PublishStats();

  auto& recorder = telemetry::TraceRecorder::Global();
  if (trace_pipeline_id != 0 && recorder.enabled()) {
    telemetry::ChunkTrace trace;
    trace.element_count = chunk_header.element_count;
    trace.input_bytes = chunk.size();
    trace.output_bytes = out->size() - record_base;
    trace.improvable = analysis.improvable();
    trace.stored_raw = stored_raw;
    trace.compressible_mask = analysis.compressible_mask;
    trace.htc_fraction = analysis.htc_byte_fraction();
    trace.solver_input_bytes = gathered.size();
    trace.solver_output_bytes = chunk_header.compressed_size;
    trace.raw_bytes = raw_section.size();
    trace.analysis_seconds = analysis_seconds;
    trace.partition_seconds = partition_seconds;
    trace.codec_seconds = codec_seconds;
    if (trace_out != nullptr) {
      // Parallel pipeline: hand the record to the caller, whose writer
      // stitches worker traces back into chunk order.
      *trace_out = std::move(trace);
    } else {
      recorder.RecordChunk(trace_pipeline_id, std::move(trace));
    }
  }
  return Status::OK();
}

Status AnnotateChunkError(const Status& status, uint64_t chunk_index,
                          uint64_t byte_offset) {
  if (status.ok()) return status;
  return Status(status.code(),
                "chunk " + std::to_string(chunk_index) +
                    " (container offset " + std::to_string(byte_offset) +
                    "): " + status.message());
}

void MergeChunkStats(const CompressionStats& chunk, CompressionStats* total) {
  total->analysis_seconds += chunk.analysis_seconds;
  total->partition_seconds += chunk.partition_seconds;
  total->codec_seconds += chunk.codec_seconds;
  total->improvable_chunks += chunk.improvable_chunks;
  if (chunk.improvable) total->improvable = true;
  // Weighted running mean: a contribution of k chunks moves the total by
  // k/(n+k) of the gap. With k == 1 this is exactly the serial per-chunk
  // update, so parallel merges stay bit-identical to the serial path.
  if (chunk.chunk_count > 0) {
    total->mean_htc_fraction +=
        (chunk.mean_htc_fraction - total->mean_htc_fraction) *
        static_cast<double>(chunk.chunk_count) /
        static_cast<double>(total->chunk_count + chunk.chunk_count);
  }
  total->chunk_count += chunk.chunk_count;
}

Status DecodeChunkPayload(const container::ChunkHeader& chunk_header,
                          ByteSpan compressed_section, ByteSpan raw_section,
                          const Codec& codec, Linearization linearization,
                          size_t width, bool verify_checksums,
                          MutableByteSpan dest, DecompressionStats* stats,
                          ChunkFailureStage* failed_stage,
                          ScratchArena* arena, uint64_t chunk_ordinal,
                          Linearization raw_linearization) {
  if (failed_stage != nullptr) *failed_stage = ChunkFailureStage::kPayload;
  const uint64_t full_mask = FullMask(width);
  const bool undetermined =
      (chunk_header.flags & container::kChunkUndetermined) != 0;
  const uint64_t mask =
      undetermined ? full_mask : chunk_header.compressible_mask;
  if ((mask & ~full_mask) != 0) {
    return Status::Corruption("container: chunk mask exceeds element width");
  }
  const uint64_t n = chunk_header.element_count;
  if (dest.size() != n * width) {
    return Status::Internal("chunk payload: destination size mismatch");
  }
  const size_t selected = static_cast<size_t>(PopcountMask(mask, width));
  const size_t expected_packed = n * selected;
  const size_t expected_raw = n * (width - selected);
  if (chunk_header.raw_size != expected_raw) {
    return Status::Corruption("container: raw section size mismatch");
  }

  Bytes local_decoded;
  Bytes& decoded = arena != nullptr ? arena->buffer(ScratchArena::kDecoded)
                                    : local_decoded;
  ByteSpan packed;
  {
    telemetry::ScopedSpan decode_span("chunk.decode", 0, chunk_ordinal + 1);
    Stopwatch decode_timer;
    if (chunk_header.flags & container::kChunkStoredRaw) {
      if (compressed_section.size() != expected_packed) {
        return Status::Corruption("container: stored section size mismatch");
      }
      packed = compressed_section;
    } else {
      decoded.clear();  // Arena slot may hold the previous chunk's output.
      ISOBAR_RETURN_NOT_OK(
          codec.Decompress(compressed_section, expected_packed, &decoded));
      packed = ByteSpan(decoded);
    }
    if (stats != nullptr) {
      stats->decode_seconds += decode_timer.ElapsedSeconds();
    }
  }

  telemetry::ScopedSpan scatter_span("chunk.scatter", 0, chunk_ordinal + 1);
  Stopwatch scatter_timer;
  ISOBAR_RETURN_NOT_OK(
      ScatterColumns(packed, width, mask, linearization, dest));
  ISOBAR_RETURN_NOT_OK(ScatterColumns(raw_section, width, full_mask & ~mask,
                                      raw_linearization, dest));

  if (verify_checksums) {
    const uint32_t crc = crc32c::Extend(0, dest.data(), dest.size());
    if (crc != chunk_header.crc32c) {
      static telemetry::Counter& crc_failures =
          telemetry::GetCounter("pipeline.checksum_failures");
      crc_failures.Increment();
      if (failed_stage != nullptr) *failed_stage = ChunkFailureStage::kChecksum;
      return Status::Corruption("container: chunk checksum mismatch");
    }
  }
  if (stats != nullptr) {
    // Checksum verification is part of the merge stage's bill: it touches
    // the same reconstructed bytes while they are still cache-hot.
    stats->scatter_seconds += scatter_timer.ElapsedSeconds();
    ++stats->chunk_count;
  }

  if (arena != nullptr) arena->PublishStats();

  static telemetry::Counter& chunks_decoded =
      telemetry::GetCounter("pipeline.chunks_decoded");
  chunks_decoded.Increment();
  return Status::OK();
}

Status DecodeChunk(ByteSpan container_bytes, size_t* offset,
                   const Codec& codec, Linearization linearization,
                   size_t width, uint64_t max_elements, bool verify_checksums,
                   Bytes* out, DecompressionStats* stats,
                   uint64_t chunk_index, ChunkFailureStage* failed_stage,
                   container::ChunkHeader* header_out, ScratchArena* arena,
                   Linearization raw_linearization) {
  telemetry::ScopedSpan chunk_span("decompress.chunk", 0, chunk_index + 1);
  if (failed_stage != nullptr) *failed_stage = ChunkFailureStage::kHeader;
  const size_t record_offset = *offset;

  Stopwatch parse_timer;
  auto parsed = container::ParseChunkHeader(container_bytes, offset);
  if (!parsed.ok()) {
    return AnnotateChunkError(parsed.status(), chunk_index, record_offset);
  }
  const container::ChunkHeader chunk_header = *parsed;
  if (header_out != nullptr) *header_out = chunk_header;
  // The section sizes are bounds-checked by ParseChunkHeader, so the
  // record's extent is known even when its element count is corrupt:
  // advance past the payload before validating, keeping later records
  // reachable for salvage-mode callers.
  const ByteSpan compressed_section =
      container_bytes.subspan(*offset, chunk_header.compressed_size);
  *offset += chunk_header.compressed_size;
  const ByteSpan raw_section =
      container_bytes.subspan(*offset, chunk_header.raw_size);
  *offset += chunk_header.raw_size;
  if (stats != nullptr) stats->parse_seconds += parse_timer.ElapsedSeconds();
  if (chunk_header.element_count > max_elements) {
    return AnnotateChunkError(
        Status::Corruption("container: chunk claims more elements than the "
                           "header's chunk size"),
        chunk_index, record_offset);
  }

  const size_t chunk_base = out->size();
  out->resize(chunk_base + chunk_header.element_count * width);
  MutableByteSpan dest(out->data() + chunk_base,
                       chunk_header.element_count * width);
  Status status = DecodeChunkPayload(chunk_header, compressed_section,
                                     raw_section, codec, linearization, width,
                                     verify_checksums, dest, stats,
                                     failed_stage, arena, chunk_index,
                                     raw_linearization);
  if (!status.ok()) {
    out->resize(chunk_base);  // Drop partially scattered bytes.
    return AnnotateChunkError(status, chunk_index, record_offset);
  }
  return status;
}

}  // namespace isobar
