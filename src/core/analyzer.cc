#include "core/analyzer.h"

#include <cmath>

#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace isobar {

Status ValidateAnalyzerOptions(const AnalyzerOptions& options) {
  // Written as !(in-range) so NaN — for which both ordered comparisons
  // are false — fails the check instead of sailing through it.
  if (!(options.tau >= 1.0 && options.tau <= 256.0) ||
      !std::isfinite(options.tau)) {
    return Status::InvalidArgument("tau must be a finite value in [1, 256]");
  }
  return Status::OK();
}

int AnalysisResult::compressible_columns() const {
  uint64_t mask = compressible_mask;
  if (width < 64) mask &= (1ull << width) - 1;
  return __builtin_popcountll(mask);
}

double AnalysisResult::htc_byte_fraction() const {
  if (width == 0) return 0.0;
  return 1.0 - static_cast<double>(compressible_columns()) /
                   static_cast<double>(width);
}

bool AnalysisResult::improvable() const {
  const int k = compressible_columns();
  return k > 0 && k < static_cast<int>(width);
}

Analyzer::Analyzer(AnalyzerOptions options) : options_(options) {}

Result<AnalysisResult> Analyzer::Analyze(ByteSpan data, size_t width) const {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (data.empty() || data.size() % width != 0) {
    return Status::InvalidArgument(
        "data must be a non-empty multiple of the element width");
  }
  telemetry::ScopedSpan span("chunk.analyze");
  static telemetry::Counter& calls = telemetry::GetCounter("analyzer.calls");
  static telemetry::Counter& bytes = telemetry::GetCounter("analyzer.bytes");
  calls.Increment();
  bytes.Add(data.size());

  // One histogram set per worker thread: ResetWidth clears the counters but
  // keeps the allocation, so steady-state analysis never touches the heap.
  thread_local ColumnHistogramSet histograms(1);
  histograms.ResetWidth(width);
  ISOBAR_RETURN_NOT_OK(histograms.Update(data));
  Result<AnalysisResult> result = Classify(histograms);
  if (result.ok()) {
    static telemetry::Counter& improvable =
        telemetry::GetCounter("analyzer.improvable_verdicts");
    static telemetry::Counter& undetermined =
        telemetry::GetCounter("analyzer.undetermined_verdicts");
    (result->improvable() ? improvable : undetermined).Increment();
  }
  return result;
}

Result<AnalysisResult> Analyzer::Classify(
    const ColumnHistogramSet& histograms) const {
  ISOBAR_RETURN_NOT_OK(ValidateAnalyzerOptions(options_));
  if (histograms.element_count() == 0) {
    return Status::InvalidArgument("no elements accumulated");
  }

  AnalysisResult result;
  result.width = histograms.width();
  result.element_count = histograms.element_count();
  result.column_entropy.resize(result.width);

  // Tolerance level τ·N/256 (§II.A). A column whose most frequent byte
  // value does not rise above this level looks uniform to an entropy coder.
  const double tolerance =
      options_.tau * static_cast<double>(result.element_count) / 256.0;

  for (size_t j = 0; j < result.width; ++j) {
    result.column_entropy[j] = histograms.ColumnEntropy(j);
    const double max_freq = static_cast<double>(histograms.MaxFrequency(j));
    if (max_freq > tolerance) {
      result.compressible_mask |= 1ull << j;
    }
  }
  return result;
}

}  // namespace isobar
