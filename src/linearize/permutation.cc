#include "linearize/permutation.h"

#include <numeric>

#include "util/random.h"

namespace isobar {

std::vector<uint64_t> RandomPermutation(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0ull);
  Xoshiro256 rng(seed);
  for (uint64_t i = n; i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<uint64_t> InvertPermutation(const std::vector<uint64_t>& perm) {
  std::vector<uint64_t> inv(perm.size());
  for (uint64_t i = 0; i < perm.size(); ++i) inv[perm[i]] = i;
  return inv;
}

Status ApplyPermutation(ByteSpan data, size_t width,
                        const std::vector<uint64_t>& perm, Bytes* out) {
  if (width == 0) return Status::InvalidArgument("width must be > 0");
  if (data.size() != perm.size() * width) {
    return Status::InvalidArgument("data size does not match permutation");
  }
  out->resize(data.size());
  for (uint64_t i = 0; i < perm.size(); ++i) {
    const uint8_t* src = data.data() + perm[i] * width;
    std::copy(src, src + width, out->data() + i * width);
  }
  return Status::OK();
}

}  // namespace isobar
