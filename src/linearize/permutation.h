#ifndef ISOBAR_LINEARIZE_PERMUTATION_H_
#define ISOBAR_LINEARIZE_PERMUTATION_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Deterministic Fisher–Yates permutation of [0, n) driven by `seed`.
/// §III.G uses a fully random element order as the worst-case
/// linearization; a fixed seed keeps the experiments reproducible.
std::vector<uint64_t> RandomPermutation(uint64_t n, uint64_t seed);

/// Returns the inverse permutation (inv[perm[i]] == i).
std::vector<uint64_t> InvertPermutation(const std::vector<uint64_t>& perm);

/// Reorders `width`-byte elements: out element i = input element perm[i].
/// Fails if data.size() != perm.size() * width.
Status ApplyPermutation(ByteSpan data, size_t width,
                        const std::vector<uint64_t>& perm, Bytes* out);

}  // namespace isobar

#endif  // ISOBAR_LINEARIZE_PERMUTATION_H_
