#include "linearize/transpose.h"

#include <array>

namespace isobar {
namespace {

// Expands a mask into the list of selected column indices.
Status SelectedColumns(uint64_t mask, size_t width,
                       std::array<uint8_t, 64>* columns, size_t* count) {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (width < 64 && (mask >> width) != 0) {
    return Status::InvalidArgument("column mask has bits beyond element width");
  }
  *count = 0;
  for (size_t j = 0; j < width; ++j) {
    if (mask & (1ull << j)) (*columns)[(*count)++] = static_cast<uint8_t>(j);
  }
  return Status::OK();
}

}  // namespace

std::string_view LinearizationToString(Linearization lin) {
  switch (lin) {
    case Linearization::kRow:
      return "row";
    case Linearization::kColumn:
      return "column";
  }
  return "unknown";
}

int PopcountMask(uint64_t column_mask, size_t width) {
  if (width < 64) column_mask &= (1ull << width) - 1;
  return __builtin_popcountll(column_mask);
}

Status GatherColumns(ByteSpan data, size_t width, uint64_t column_mask,
                     Linearization lin, Bytes* out) {
  std::array<uint8_t, 64> columns;
  size_t k = 0;
  ISOBAR_RETURN_NOT_OK(SelectedColumns(column_mask, width, &columns, &k));
  if (data.size() % width != 0) {
    return Status::InvalidArgument("data size is not a multiple of width");
  }
  const size_t n = data.size() / width;
  out->resize(n * k);
  if (k == 0) return Status::OK();

  const uint8_t* src = data.data();
  uint8_t* dst = out->data();
  if (lin == Linearization::kRow) {
    for (size_t i = 0; i < n; ++i, src += width) {
      for (size_t c = 0; c < k; ++c) *dst++ = src[columns[c]];
    }
  } else {
    for (size_t c = 0; c < k; ++c) {
      const uint8_t* p = src + columns[c];
      for (size_t i = 0; i < n; ++i, p += width) *dst++ = *p;
    }
  }
  return Status::OK();
}

Status ScatterColumns(ByteSpan packed, size_t width, uint64_t column_mask,
                      Linearization lin, MutableByteSpan dest) {
  std::array<uint8_t, 64> columns;
  size_t k = 0;
  ISOBAR_RETURN_NOT_OK(SelectedColumns(column_mask, width, &columns, &k));
  if (dest.size() % width != 0) {
    return Status::InvalidArgument("dest size is not a multiple of width");
  }
  const size_t n = dest.size() / width;
  if (packed.size() != n * k) {
    return Status::InvalidArgument(
        "packed size " + std::to_string(packed.size()) + " != " +
        std::to_string(n * k) + " (N * selected columns)");
  }
  if (k == 0) return Status::OK();

  const uint8_t* src = packed.data();
  uint8_t* dst = dest.data();
  if (lin == Linearization::kRow) {
    for (size_t i = 0; i < n; ++i, dst += width) {
      for (size_t c = 0; c < k; ++c) dst[columns[c]] = *src++;
    }
  } else {
    for (size_t c = 0; c < k; ++c) {
      uint8_t* p = dst + columns[c];
      for (size_t i = 0; i < n; ++i, p += width) *p = *src++;
    }
  }
  return Status::OK();
}

}  // namespace isobar
