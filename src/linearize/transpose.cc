#include "linearize/transpose.h"

#include <array>
#include <cstring>

#include "simd/dispatch.h"

namespace isobar {
namespace {

// Expands a mask into the list of selected column indices.
Status SelectedColumns(uint64_t mask, size_t width,
                       std::array<uint8_t, 64>* columns, size_t* count) {
  if (width == 0 || width > 64) {
    return Status::InvalidArgument("element width must be in [1, 64]");
  }
  if (width < 64 && (mask >> width) != 0) {
    return Status::InvalidArgument("column mask has bits beyond element width");
  }
  *count = 0;
  for (size_t j = 0; j < width; ++j) {
    if (mask & (1ull << j)) (*columns)[(*count)++] = static_cast<uint8_t>(j);
  }
  return Status::OK();
}

}  // namespace

std::string_view LinearizationToString(Linearization lin) {
  switch (lin) {
    case Linearization::kRow:
      return "row";
    case Linearization::kColumn:
      return "column";
  }
  return "unknown";
}

int PopcountMask(uint64_t column_mask, size_t width) {
  if (width < 64) column_mask &= (1ull << width) - 1;
  return __builtin_popcountll(column_mask);
}

Status GatherColumns(ByteSpan data, size_t width, uint64_t column_mask,
                     Linearization lin, Bytes* out) {
  std::array<uint8_t, 64> columns;
  size_t k = 0;
  ISOBAR_RETURN_NOT_OK(SelectedColumns(column_mask, width, &columns, &k));
  if (data.size() % width != 0) {
    return Status::InvalidArgument("data size is not a multiple of width");
  }
  const size_t n = data.size() / width;
  if (k == 0 || n == 0) {
    out->clear();
    return Status::OK();
  }
  const bool full_mask = (k == width);
  if (full_mask && lin == Linearization::kRow) {
    // Full-mask row order is the identity layout. assign() copies in a
    // single pass and, unlike resize-then-write, never value-initializes.
    out->assign(data.begin(), data.end());
    return Status::OK();
  }
  // resize() value-initializes any growth even though every byte below is
  // overwritten; C++ offers no standard way around that for std::vector.
  // Reused buffers (ScratchArena) reach steady-state capacity after the
  // first chunk, after which this is a pure size update — the zero-fill
  // is a warm-up cost, not a per-chunk one.
  out->resize(n * k);

  const uint8_t* src = data.data();
  uint8_t* dst = out->data();
  if (full_mask && lin == Linearization::kColumn) {
    const simd::KernelTable& kernels = simd::Kernels();
    if (width == 4) {
      kernels.gather_col_w4(src, n, dst);
      return Status::OK();
    }
    if (width == 8) {
      kernels.gather_col_w8(src, n, dst);
      return Status::OK();
    }
  }
  if (lin == Linearization::kRow) {
    for (size_t i = 0; i < n; ++i, src += width) {
      for (size_t c = 0; c < k; ++c) *dst++ = src[columns[c]];
    }
  } else {
    for (size_t c = 0; c < k; ++c) {
      const uint8_t* p = src + columns[c];
      for (size_t i = 0; i < n; ++i, p += width) *dst++ = *p;
    }
  }
  return Status::OK();
}

Status ScatterColumns(ByteSpan packed, size_t width, uint64_t column_mask,
                      Linearization lin, MutableByteSpan dest) {
  std::array<uint8_t, 64> columns;
  size_t k = 0;
  ISOBAR_RETURN_NOT_OK(SelectedColumns(column_mask, width, &columns, &k));
  if (dest.size() % width != 0) {
    return Status::InvalidArgument("dest size is not a multiple of width");
  }
  const size_t n = dest.size() / width;
  if (packed.size() != n * k) {
    return Status::InvalidArgument(
        "packed size " + std::to_string(packed.size()) + " != " +
        std::to_string(n * k) + " (N * selected columns)");
  }
  if (k == 0 || n == 0) return Status::OK();

  const uint8_t* src = packed.data();
  uint8_t* dst = dest.data();
  const bool full_mask = (k == width);
  if (full_mask && lin == Linearization::kRow) {
    std::memcpy(dst, src, packed.size());
    return Status::OK();
  }
  if (full_mask && lin == Linearization::kColumn) {
    const simd::KernelTable& kernels = simd::Kernels();
    if (width == 4) {
      kernels.scatter_col_w4(src, n, dst);
      return Status::OK();
    }
    if (width == 8) {
      kernels.scatter_col_w8(src, n, dst);
      return Status::OK();
    }
  }
  if (lin == Linearization::kRow) {
    for (size_t i = 0; i < n; ++i, dst += width) {
      for (size_t c = 0; c < k; ++c) dst[columns[c]] = *src++;
    }
  } else {
    for (size_t c = 0; c < k; ++c) {
      uint8_t* p = dst + columns[c];
      for (size_t i = 0; i < n; ++i, p += width) *p = *src++;
    }
  }
  return Status::OK();
}

}  // namespace isobar
