#include "linearize/hilbert.h"

#include <cassert>

namespace isobar {
namespace {

// Skilling's transpose representation: X[i] holds the bits of dimension i.
// AxesToTranspose turns coordinates into the transposed Hilbert index;
// TransposeToAxes is its inverse.
void AxesToTranspose(uint32_t* x, int bits, int n) {
  const uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

void TransposeToAxes(uint32_t* x, int bits, int n) {
  const uint32_t big = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != big; q <<= 1) {
    const uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

HilbertCurve::HilbertCurve(int dimensions, int bits_per_dim)
    : dimensions_(dimensions), bits_per_dim_(bits_per_dim) {
  assert(dimensions >= 1 && dimensions <= 8);
  assert(bits_per_dim >= 1 && bits_per_dim <= 20);
  assert(dimensions * bits_per_dim <= 62);
}

uint64_t HilbertCurve::IndexFromCoords(std::span<const uint32_t> coords) const {
  assert(coords.size() == static_cast<size_t>(dimensions_));
  uint32_t x[8];
  for (int i = 0; i < dimensions_; ++i) x[i] = coords[i];
  if (dimensions_ == 1) return x[0];
  AxesToTranspose(x, bits_per_dim_, dimensions_);
  // Interleave transposed bits, most significant level first.
  uint64_t index = 0;
  for (int q = bits_per_dim_ - 1; q >= 0; --q) {
    for (int i = 0; i < dimensions_; ++i) {
      index = (index << 1) | ((x[i] >> q) & 1u);
    }
  }
  return index;
}

void HilbertCurve::CoordsFromIndex(uint64_t index,
                                   std::span<uint32_t> coords) const {
  assert(coords.size() == static_cast<size_t>(dimensions_));
  if (dimensions_ == 1) {
    coords[0] = static_cast<uint32_t>(index);
    return;
  }
  uint32_t x[8] = {};
  int bit = dimensions_ * bits_per_dim_ - 1;
  for (int q = bits_per_dim_ - 1; q >= 0; --q) {
    for (int i = 0; i < dimensions_; ++i, --bit) {
      x[i] |= static_cast<uint32_t>((index >> bit) & 1ull) << q;
    }
  }
  TransposeToAxes(x, bits_per_dim_, dimensions_);
  for (int i = 0; i < dimensions_; ++i) coords[i] = x[i];
}

Status HilbertReorder(ByteSpan data, size_t width,
                      std::span<const uint32_t> grid_dims, Bytes* out) {
  if (width == 0) return Status::InvalidArgument("width must be > 0");
  const int n = static_cast<int>(grid_dims.size());
  if (n < 1 || n > 8) {
    return Status::InvalidArgument("grid must have 1..8 dimensions");
  }
  uint64_t total = 1;
  uint32_t max_dim = 0;
  for (uint32_t d : grid_dims) {
    if (d == 0) return Status::InvalidArgument("grid dimension must be > 0");
    total *= d;
    max_dim = std::max(max_dim, d);
  }
  if (data.size() != total * width) {
    return Status::InvalidArgument("data size does not match grid shape");
  }

  // Enclosing power-of-two cube.
  int bits = 1;
  while ((1u << bits) < max_dim) ++bits;
  if (n * bits > 62) return Status::InvalidArgument("grid too large");

  HilbertCurve curve(n, bits);
  out->clear();
  out->reserve(data.size());

  uint32_t coords[8];
  const uint64_t cells = curve.cell_count();
  for (uint64_t h = 0; h < cells; ++h) {
    curve.CoordsFromIndex(h, std::span<uint32_t>(coords, n));
    bool inside = true;
    uint64_t offset = 0;
    for (int i = 0; i < n; ++i) {
      if (coords[i] >= grid_dims[i]) {
        inside = false;
        break;
      }
      offset = offset * grid_dims[i] + coords[i];  // row-major
    }
    if (!inside) continue;
    const uint8_t* src = data.data() + offset * width;
    out->insert(out->end(), src, src + width);
  }
  return Status::OK();
}

}  // namespace isobar
