#ifndef ISOBAR_LINEARIZE_HILBERT_H_
#define ISOBAR_LINEARIZE_HILBERT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// n-dimensional Hilbert space-filling curve (Skilling's compact
/// transpose algorithm, AIP Conf. Proc. 707, 2004).
///
/// Scientific I/O layers linearize multi-dimensional fields with Hilbert
/// curves to preserve spatial locality on disk; §III.G of the paper shows
/// ISOBAR's improvement is robust to that reordering (Figs. 9 and 10).
class HilbertCurve {
 public:
  /// `dimensions` in [1, 8], `bits_per_dim` in [1, 20]. The curve visits
  /// the 2^(dimensions*bits_per_dim) cells of a hypercube grid.
  HilbertCurve(int dimensions, int bits_per_dim);

  int dimensions() const { return dimensions_; }
  int bits_per_dim() const { return bits_per_dim_; }

  /// Total number of cells on the curve.
  uint64_t cell_count() const {
    return 1ull << (static_cast<unsigned>(dimensions_ * bits_per_dim_));
  }

  /// Distance along the curve of the cell at `coords` (coords.size() must
  /// equal dimensions(); each coordinate < 2^bits_per_dim).
  uint64_t IndexFromCoords(std::span<const uint32_t> coords) const;

  /// Inverse of IndexFromCoords.
  void CoordsFromIndex(uint64_t index, std::span<uint32_t> coords) const;

 private:
  int dimensions_;
  int bits_per_dim_;
};

/// Reorders a row-major `grid_dims`-shaped array of `width`-byte elements
/// into Hilbert-curve order. Grid dimensions need not be powers of two:
/// the walk covers the enclosing power-of-two hypercube and skips cells
/// outside the grid, so exactly all elements appear once. Fails if
/// data.size() != width * prod(grid_dims).
Status HilbertReorder(ByteSpan data, size_t width,
                      std::span<const uint32_t> grid_dims, Bytes* out);

}  // namespace isobar

#endif  // ISOBAR_LINEARIZE_HILBERT_H_
