#ifndef ISOBAR_LINEARIZE_TRANSPOSE_H_
#define ISOBAR_LINEARIZE_TRANSPOSE_H_

#include <cstdint>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace isobar {

/// Byte-level linearization strategy applied to the bytes handed to the
/// solver (§II.B-C of the paper).
///
/// kRow keeps the selected bytes of each element adjacent (element-major);
/// kColumn lays each selected byte-column out contiguously (column-major,
/// the "shuffle" layout). Which one compresses better is data dependent,
/// which is exactly why the EUPA-selector measures both.
enum class Linearization : uint8_t {
  kRow = 0,
  kColumn = 1,
};

std::string_view LinearizationToString(Linearization lin);

/// Number of selected columns in a mask restricted to `width` columns.
int PopcountMask(uint64_t column_mask, size_t width);

/// Gathers the bytes of the columns selected by `column_mask` (bit j =
/// column j) from `data` (elements of `width` bytes) into `*out`, laid out
/// according to `lin`. The output holds N * popcount(mask) bytes.
Status GatherColumns(ByteSpan data, size_t width, uint64_t column_mask,
                     Linearization lin, Bytes* out);

/// Inverse of GatherColumns: writes the packed bytes back into the selected
/// column positions of `dest` (which must hold N full elements; bytes of
/// unselected columns are left untouched).
Status ScatterColumns(ByteSpan packed, size_t width, uint64_t column_mask,
                      Linearization lin, MutableByteSpan dest);

}  // namespace isobar

#endif  // ISOBAR_LINEARIZE_TRANSPOSE_H_
