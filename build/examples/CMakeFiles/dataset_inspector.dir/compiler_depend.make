# Empty compiler generated dependencies file for dataset_inspector.
# This may be replaced when dependencies are built.
