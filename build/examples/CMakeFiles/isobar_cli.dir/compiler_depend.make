# Empty compiler generated dependencies file for isobar_cli.
# This may be replaced when dependencies are built.
