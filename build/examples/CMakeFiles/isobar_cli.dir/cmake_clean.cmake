file(REMOVE_RECURSE
  "CMakeFiles/isobar_cli.dir/isobar_cli.cpp.o"
  "CMakeFiles/isobar_cli.dir/isobar_cli.cpp.o.d"
  "isobar_cli"
  "isobar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
