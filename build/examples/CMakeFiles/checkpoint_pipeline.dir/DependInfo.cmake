
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/checkpoint_pipeline.cpp" "examples/CMakeFiles/checkpoint_pipeline.dir/checkpoint_pipeline.cpp.o" "gcc" "examples/CMakeFiles/checkpoint_pipeline.dir/checkpoint_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isobar_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_fpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_fpzip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_pfor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_insitu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_compressors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_linearize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
