file(REMOVE_RECURSE
  "CMakeFiles/insitu_planner.dir/insitu_planner.cpp.o"
  "CMakeFiles/insitu_planner.dir/insitu_planner.cpp.o.d"
  "insitu_planner"
  "insitu_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
