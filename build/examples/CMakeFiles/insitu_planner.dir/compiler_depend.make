# Empty compiler generated dependencies file for insitu_planner.
# This may be replaced when dependencies are built.
