
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analyzer_test.cc" "tests/CMakeFiles/isobar_tests.dir/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/analyzer_test.cc.o.d"
  "/root/repo/tests/bwt_test.cc" "tests/CMakeFiles/isobar_tests.dir/bwt_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/bwt_test.cc.o.d"
  "/root/repo/tests/chunk_codec_test.cc" "tests/CMakeFiles/isobar_tests.dir/chunk_codec_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/chunk_codec_test.cc.o.d"
  "/root/repo/tests/chunker_test.cc" "tests/CMakeFiles/isobar_tests.dir/chunker_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/chunker_test.cc.o.d"
  "/root/repo/tests/compressors_test.cc" "tests/CMakeFiles/isobar_tests.dir/compressors_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/compressors_test.cc.o.d"
  "/root/repo/tests/container_test.cc" "tests/CMakeFiles/isobar_tests.dir/container_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/container_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/isobar_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/eupa_test.cc" "tests/CMakeFiles/isobar_tests.dir/eupa_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/eupa_test.cc.o.d"
  "/root/repo/tests/field_test.cc" "tests/CMakeFiles/isobar_tests.dir/field_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/field_test.cc.o.d"
  "/root/repo/tests/file_io_test.cc" "tests/CMakeFiles/isobar_tests.dir/file_io_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/file_io_test.cc.o.d"
  "/root/repo/tests/fpc_test.cc" "tests/CMakeFiles/isobar_tests.dir/fpc_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/fpc_test.cc.o.d"
  "/root/repo/tests/fpzip_test.cc" "tests/CMakeFiles/isobar_tests.dir/fpzip_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/fpzip_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/isobar_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/huffman_test.cc" "tests/CMakeFiles/isobar_tests.dir/huffman_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/huffman_test.cc.o.d"
  "/root/repo/tests/in_situ_test.cc" "tests/CMakeFiles/isobar_tests.dir/in_situ_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/in_situ_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/isobar_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/isobar_pipeline_test.cc" "tests/CMakeFiles/isobar_tests.dir/isobar_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/isobar_pipeline_test.cc.o.d"
  "/root/repo/tests/isobar_roundtrip_test.cc" "tests/CMakeFiles/isobar_tests.dir/isobar_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/isobar_roundtrip_test.cc.o.d"
  "/root/repo/tests/linearize_test.cc" "tests/CMakeFiles/isobar_tests.dir/linearize_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/linearize_test.cc.o.d"
  "/root/repo/tests/partitioner_test.cc" "tests/CMakeFiles/isobar_tests.dir/partitioner_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/partitioner_test.cc.o.d"
  "/root/repo/tests/pfor_test.cc" "tests/CMakeFiles/isobar_tests.dir/pfor_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/pfor_test.cc.o.d"
  "/root/repo/tests/records_test.cc" "tests/CMakeFiles/isobar_tests.dir/records_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/records_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/isobar_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/isobar_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/isobar_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/width_detector_test.cc" "tests/CMakeFiles/isobar_tests.dir/width_detector_test.cc.o" "gcc" "tests/CMakeFiles/isobar_tests.dir/width_detector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isobar_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_fpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_fpzip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_pfor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_insitu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_compressors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_linearize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
