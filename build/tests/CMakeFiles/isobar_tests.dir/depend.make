# Empty dependencies file for isobar_tests.
# This may be replaced when dependencies are built.
