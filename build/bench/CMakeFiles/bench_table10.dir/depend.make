# Empty dependencies file for bench_table10.
# This may be replaced when dependencies are built.
