# Empty dependencies file for isobar_util.
# This may be replaced when dependencies are built.
