file(REMOVE_RECURSE
  "CMakeFiles/isobar_util.dir/util/crc32c.cc.o"
  "CMakeFiles/isobar_util.dir/util/crc32c.cc.o.d"
  "CMakeFiles/isobar_util.dir/util/status.cc.o"
  "CMakeFiles/isobar_util.dir/util/status.cc.o.d"
  "CMakeFiles/isobar_util.dir/util/stopwatch.cc.o"
  "CMakeFiles/isobar_util.dir/util/stopwatch.cc.o.d"
  "libisobar_util.a"
  "libisobar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
