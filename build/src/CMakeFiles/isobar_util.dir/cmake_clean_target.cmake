file(REMOVE_RECURSE
  "libisobar_util.a"
)
