file(REMOVE_RECURSE
  "libisobar_linearize.a"
)
