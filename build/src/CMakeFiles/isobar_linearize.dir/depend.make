# Empty dependencies file for isobar_linearize.
# This may be replaced when dependencies are built.
