file(REMOVE_RECURSE
  "CMakeFiles/isobar_linearize.dir/linearize/hilbert.cc.o"
  "CMakeFiles/isobar_linearize.dir/linearize/hilbert.cc.o.d"
  "CMakeFiles/isobar_linearize.dir/linearize/permutation.cc.o"
  "CMakeFiles/isobar_linearize.dir/linearize/permutation.cc.o.d"
  "CMakeFiles/isobar_linearize.dir/linearize/transpose.cc.o"
  "CMakeFiles/isobar_linearize.dir/linearize/transpose.cc.o.d"
  "libisobar_linearize.a"
  "libisobar_linearize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_linearize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
