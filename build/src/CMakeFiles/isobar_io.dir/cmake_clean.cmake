file(REMOVE_RECURSE
  "CMakeFiles/isobar_io.dir/io/file_io.cc.o"
  "CMakeFiles/isobar_io.dir/io/file_io.cc.o.d"
  "CMakeFiles/isobar_io.dir/io/sink.cc.o"
  "CMakeFiles/isobar_io.dir/io/sink.cc.o.d"
  "libisobar_io.a"
  "libisobar_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
