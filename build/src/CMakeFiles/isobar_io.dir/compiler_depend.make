# Empty compiler generated dependencies file for isobar_io.
# This may be replaced when dependencies are built.
