file(REMOVE_RECURSE
  "libisobar_io.a"
)
