file(REMOVE_RECURSE
  "CMakeFiles/isobar_stats.dir/stats/bit_frequency.cc.o"
  "CMakeFiles/isobar_stats.dir/stats/bit_frequency.cc.o.d"
  "CMakeFiles/isobar_stats.dir/stats/byte_histogram.cc.o"
  "CMakeFiles/isobar_stats.dir/stats/byte_histogram.cc.o.d"
  "CMakeFiles/isobar_stats.dir/stats/summary.cc.o"
  "CMakeFiles/isobar_stats.dir/stats/summary.cc.o.d"
  "CMakeFiles/isobar_stats.dir/stats/width_detector.cc.o"
  "CMakeFiles/isobar_stats.dir/stats/width_detector.cc.o.d"
  "libisobar_stats.a"
  "libisobar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
