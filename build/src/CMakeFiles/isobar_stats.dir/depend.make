# Empty dependencies file for isobar_stats.
# This may be replaced when dependencies are built.
