file(REMOVE_RECURSE
  "libisobar_stats.a"
)
