
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bit_frequency.cc" "src/CMakeFiles/isobar_stats.dir/stats/bit_frequency.cc.o" "gcc" "src/CMakeFiles/isobar_stats.dir/stats/bit_frequency.cc.o.d"
  "/root/repo/src/stats/byte_histogram.cc" "src/CMakeFiles/isobar_stats.dir/stats/byte_histogram.cc.o" "gcc" "src/CMakeFiles/isobar_stats.dir/stats/byte_histogram.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/isobar_stats.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/isobar_stats.dir/stats/summary.cc.o.d"
  "/root/repo/src/stats/width_detector.cc" "src/CMakeFiles/isobar_stats.dir/stats/width_detector.cc.o" "gcc" "src/CMakeFiles/isobar_stats.dir/stats/width_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isobar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
