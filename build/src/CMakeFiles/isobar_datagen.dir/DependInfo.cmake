
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dataset.cc" "src/CMakeFiles/isobar_datagen.dir/datagen/dataset.cc.o" "gcc" "src/CMakeFiles/isobar_datagen.dir/datagen/dataset.cc.o.d"
  "/root/repo/src/datagen/field.cc" "src/CMakeFiles/isobar_datagen.dir/datagen/field.cc.o" "gcc" "src/CMakeFiles/isobar_datagen.dir/datagen/field.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/CMakeFiles/isobar_datagen.dir/datagen/generators.cc.o" "gcc" "src/CMakeFiles/isobar_datagen.dir/datagen/generators.cc.o.d"
  "/root/repo/src/datagen/records.cc" "src/CMakeFiles/isobar_datagen.dir/datagen/records.cc.o" "gcc" "src/CMakeFiles/isobar_datagen.dir/datagen/records.cc.o.d"
  "/root/repo/src/datagen/registry.cc" "src/CMakeFiles/isobar_datagen.dir/datagen/registry.cc.o" "gcc" "src/CMakeFiles/isobar_datagen.dir/datagen/registry.cc.o.d"
  "/root/repo/src/datagen/time_series.cc" "src/CMakeFiles/isobar_datagen.dir/datagen/time_series.cc.o" "gcc" "src/CMakeFiles/isobar_datagen.dir/datagen/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isobar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
