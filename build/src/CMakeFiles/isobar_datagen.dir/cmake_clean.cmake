file(REMOVE_RECURSE
  "CMakeFiles/isobar_datagen.dir/datagen/dataset.cc.o"
  "CMakeFiles/isobar_datagen.dir/datagen/dataset.cc.o.d"
  "CMakeFiles/isobar_datagen.dir/datagen/field.cc.o"
  "CMakeFiles/isobar_datagen.dir/datagen/field.cc.o.d"
  "CMakeFiles/isobar_datagen.dir/datagen/generators.cc.o"
  "CMakeFiles/isobar_datagen.dir/datagen/generators.cc.o.d"
  "CMakeFiles/isobar_datagen.dir/datagen/records.cc.o"
  "CMakeFiles/isobar_datagen.dir/datagen/records.cc.o.d"
  "CMakeFiles/isobar_datagen.dir/datagen/registry.cc.o"
  "CMakeFiles/isobar_datagen.dir/datagen/registry.cc.o.d"
  "CMakeFiles/isobar_datagen.dir/datagen/time_series.cc.o"
  "CMakeFiles/isobar_datagen.dir/datagen/time_series.cc.o.d"
  "libisobar_datagen.a"
  "libisobar_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
