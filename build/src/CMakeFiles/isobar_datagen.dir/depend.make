# Empty dependencies file for isobar_datagen.
# This may be replaced when dependencies are built.
