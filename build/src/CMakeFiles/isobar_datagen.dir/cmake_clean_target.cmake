file(REMOVE_RECURSE
  "libisobar_datagen.a"
)
