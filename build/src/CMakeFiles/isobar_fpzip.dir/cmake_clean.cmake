file(REMOVE_RECURSE
  "CMakeFiles/isobar_fpzip.dir/fpzip/fpzip_codec.cc.o"
  "CMakeFiles/isobar_fpzip.dir/fpzip/fpzip_codec.cc.o.d"
  "CMakeFiles/isobar_fpzip.dir/fpzip/lorenzo.cc.o"
  "CMakeFiles/isobar_fpzip.dir/fpzip/lorenzo.cc.o.d"
  "libisobar_fpzip.a"
  "libisobar_fpzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_fpzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
