# Empty dependencies file for isobar_fpzip.
# This may be replaced when dependencies are built.
