file(REMOVE_RECURSE
  "libisobar_fpzip.a"
)
