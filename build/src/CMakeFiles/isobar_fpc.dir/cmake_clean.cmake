file(REMOVE_RECURSE
  "CMakeFiles/isobar_fpc.dir/fpc/fpc_codec.cc.o"
  "CMakeFiles/isobar_fpc.dir/fpc/fpc_codec.cc.o.d"
  "CMakeFiles/isobar_fpc.dir/fpc/predictor.cc.o"
  "CMakeFiles/isobar_fpc.dir/fpc/predictor.cc.o.d"
  "libisobar_fpc.a"
  "libisobar_fpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_fpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
