# Empty compiler generated dependencies file for isobar_fpc.
# This may be replaced when dependencies are built.
