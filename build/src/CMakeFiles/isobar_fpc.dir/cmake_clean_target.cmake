file(REMOVE_RECURSE
  "libisobar_fpc.a"
)
