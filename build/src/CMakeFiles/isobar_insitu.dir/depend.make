# Empty dependencies file for isobar_insitu.
# This may be replaced when dependencies are built.
