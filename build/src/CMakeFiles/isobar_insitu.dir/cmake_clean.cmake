file(REMOVE_RECURSE
  "CMakeFiles/isobar_insitu.dir/io/in_situ.cc.o"
  "CMakeFiles/isobar_insitu.dir/io/in_situ.cc.o.d"
  "libisobar_insitu.a"
  "libisobar_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
