file(REMOVE_RECURSE
  "libisobar_insitu.a"
)
