# Empty dependencies file for isobar_pfor.
# This may be replaced when dependencies are built.
