file(REMOVE_RECURSE
  "libisobar_pfor.a"
)
