file(REMOVE_RECURSE
  "CMakeFiles/isobar_pfor.dir/pfor/pfor_codec.cc.o"
  "CMakeFiles/isobar_pfor.dir/pfor/pfor_codec.cc.o.d"
  "libisobar_pfor.a"
  "libisobar_pfor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_pfor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
