# Empty compiler generated dependencies file for isobar_core.
# This may be replaced when dependencies are built.
