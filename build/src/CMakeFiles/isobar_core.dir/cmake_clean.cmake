file(REMOVE_RECURSE
  "CMakeFiles/isobar_core.dir/core/analyzer.cc.o"
  "CMakeFiles/isobar_core.dir/core/analyzer.cc.o.d"
  "CMakeFiles/isobar_core.dir/core/chunk_codec.cc.o"
  "CMakeFiles/isobar_core.dir/core/chunk_codec.cc.o.d"
  "CMakeFiles/isobar_core.dir/core/chunker.cc.o"
  "CMakeFiles/isobar_core.dir/core/chunker.cc.o.d"
  "CMakeFiles/isobar_core.dir/core/container.cc.o"
  "CMakeFiles/isobar_core.dir/core/container.cc.o.d"
  "CMakeFiles/isobar_core.dir/core/eupa_selector.cc.o"
  "CMakeFiles/isobar_core.dir/core/eupa_selector.cc.o.d"
  "CMakeFiles/isobar_core.dir/core/isobar.cc.o"
  "CMakeFiles/isobar_core.dir/core/isobar.cc.o.d"
  "CMakeFiles/isobar_core.dir/core/partitioner.cc.o"
  "CMakeFiles/isobar_core.dir/core/partitioner.cc.o.d"
  "CMakeFiles/isobar_core.dir/core/stream.cc.o"
  "CMakeFiles/isobar_core.dir/core/stream.cc.o.d"
  "libisobar_core.a"
  "libisobar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
