file(REMOVE_RECURSE
  "libisobar_core.a"
)
