
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cc" "src/CMakeFiles/isobar_core.dir/core/analyzer.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/analyzer.cc.o.d"
  "/root/repo/src/core/chunk_codec.cc" "src/CMakeFiles/isobar_core.dir/core/chunk_codec.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/chunk_codec.cc.o.d"
  "/root/repo/src/core/chunker.cc" "src/CMakeFiles/isobar_core.dir/core/chunker.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/chunker.cc.o.d"
  "/root/repo/src/core/container.cc" "src/CMakeFiles/isobar_core.dir/core/container.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/container.cc.o.d"
  "/root/repo/src/core/eupa_selector.cc" "src/CMakeFiles/isobar_core.dir/core/eupa_selector.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/eupa_selector.cc.o.d"
  "/root/repo/src/core/isobar.cc" "src/CMakeFiles/isobar_core.dir/core/isobar.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/isobar.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/CMakeFiles/isobar_core.dir/core/partitioner.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/partitioner.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/CMakeFiles/isobar_core.dir/core/stream.cc.o" "gcc" "src/CMakeFiles/isobar_core.dir/core/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isobar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_compressors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_linearize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isobar_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
