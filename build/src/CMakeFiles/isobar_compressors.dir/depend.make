# Empty dependencies file for isobar_compressors.
# This may be replaced when dependencies are built.
