file(REMOVE_RECURSE
  "libisobar_compressors.a"
)
