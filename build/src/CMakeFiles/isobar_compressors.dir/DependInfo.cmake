
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compressors/bwt_codec.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/bwt_codec.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/bwt_codec.cc.o.d"
  "/root/repo/src/compressors/bzip2_codec.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/bzip2_codec.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/bzip2_codec.cc.o.d"
  "/root/repo/src/compressors/codec.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/codec.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/codec.cc.o.d"
  "/root/repo/src/compressors/huffman_codec.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/huffman_codec.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/huffman_codec.cc.o.d"
  "/root/repo/src/compressors/lzss_codec.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/lzss_codec.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/lzss_codec.cc.o.d"
  "/root/repo/src/compressors/registry.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/registry.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/registry.cc.o.d"
  "/root/repo/src/compressors/rle_codec.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/rle_codec.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/rle_codec.cc.o.d"
  "/root/repo/src/compressors/zlib_codec.cc" "src/CMakeFiles/isobar_compressors.dir/compressors/zlib_codec.cc.o" "gcc" "src/CMakeFiles/isobar_compressors.dir/compressors/zlib_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isobar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
