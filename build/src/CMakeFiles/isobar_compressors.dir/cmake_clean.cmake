file(REMOVE_RECURSE
  "CMakeFiles/isobar_compressors.dir/compressors/bwt_codec.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/bwt_codec.cc.o.d"
  "CMakeFiles/isobar_compressors.dir/compressors/bzip2_codec.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/bzip2_codec.cc.o.d"
  "CMakeFiles/isobar_compressors.dir/compressors/codec.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/codec.cc.o.d"
  "CMakeFiles/isobar_compressors.dir/compressors/huffman_codec.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/huffman_codec.cc.o.d"
  "CMakeFiles/isobar_compressors.dir/compressors/lzss_codec.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/lzss_codec.cc.o.d"
  "CMakeFiles/isobar_compressors.dir/compressors/registry.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/registry.cc.o.d"
  "CMakeFiles/isobar_compressors.dir/compressors/rle_codec.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/rle_codec.cc.o.d"
  "CMakeFiles/isobar_compressors.dir/compressors/zlib_codec.cc.o"
  "CMakeFiles/isobar_compressors.dir/compressors/zlib_codec.cc.o.d"
  "libisobar_compressors.a"
  "libisobar_compressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isobar_compressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
