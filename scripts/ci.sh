#!/usr/bin/env bash
# CI driver: build and run the test suite in the configurations that
# matter — an optimized Release build (what users run) and an
# AddressSanitizer build (what catches memory bugs the tests would
# otherwise miss). Usage:
#
#   scripts/ci.sh                # Release + ASan
#   scripts/ci.sh release        # one configuration only
#   scripts/ci.sh asan
#   scripts/ci.sh ubsan          # optional extra configuration
#
# Each configuration builds into its own directory (build-ci-<name>) so
# repeat runs are incremental and never disturb a developer's ./build.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  echo "=== [${name}] OK ==="
}

release() {
  run_config release \
    -DCMAKE_BUILD_TYPE=Release \
    -DISOBAR_WERROR=ON
}

asan() {
  run_config asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DISOBAR_SANITIZE=address \
    -DISOBAR_BUILD_BENCHMARKS=OFF
}

ubsan() {
  run_config ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DISOBAR_SANITIZE=undefined \
    -DISOBAR_BUILD_BENCHMARKS=OFF
}

if [ "$#" -eq 0 ]; then
  release
  asan
else
  for config in "$@"; do
    case "${config}" in
      release) release ;;
      asan) asan ;;
      ubsan) ubsan ;;
      *)
        echo "unknown configuration '${config}' (release|asan|ubsan)" >&2
        exit 2
        ;;
    esac
  done
fi
