#!/usr/bin/env bash
# CI driver: build and run the test suite in the configurations that
# matter — an optimized Release build (what users run), an
# AddressSanitizer build (what catches memory bugs the tests would
# otherwise miss), and a ThreadSanitizer build that runs the whole suite
# with the chunk pipeline forced multi-threaded. Usage:
#
#   scripts/ci.sh                  # Release + ASan + TSan
#   scripts/ci.sh release          # one configuration only
#   scripts/ci.sh asan
#   scripts/ci.sh tsan
#   scripts/ci.sh scalar           # Release suite with ISOBAR_SIMD=scalar,
#                                  # pinning the kernel dispatch to the
#                                  # reference tier
#   scripts/ci.sh lzans            # Release suite with
#                                  # ISOBAR_FORCE_CODEC=lzans: every
#                                  # pipeline-level test runs with the
#                                  # LZ77+tANS solver forced
#   scripts/ci.sh notelemetry      # Release suite with telemetry compiled
#                                  # out (-DISOBAR_TELEMETRY=OFF): the
#                                  # instrumentation must vanish cleanly
#   scripts/ci.sh ubsan            # optional extra configuration
#   scripts/ci.sh fuzz             # fuzz smoke: corpus replay (+ short
#                                  # libFuzzer run when clang is available)
#   scripts/ci.sh bench            # bench smoke: run the kernel
#                                  # microbenchmarks and compare against
#                                  # BENCH_baseline.json (warn-only)
#   scripts/ci.sh server           # serving smoke: protocol-conformance
#                                  # tests, then a saturation run of a real
#                                  # isobard under isobar_loadgen (asserts
#                                  # zero protocol errors and a sane
#                                  # reject/accept split)
#   scripts/ci.sh asan -R telemetry  # extra args are forwarded to ctest
#
# The tsan configuration exports ISOBAR_TEST_THREADS (default 4) so every
# test that leaves num_threads at 0 exercises the parallel pipeline under
# the race detector; set ISOBAR_TEST_THREADS yourself to override the
# worker count.
#
# Each configuration builds into its own directory (build-ci-<name>) so
# repeat runs are incremental and never disturb a developer's ./build.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Arguments that are not configuration names are passed through to ctest
# (e.g. `scripts/ci.sh asan -R telemetry`).
CONFIGS=()
CTEST_ARGS=()

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] test ==="
  if [ "${name}" = "tsan" ]; then
    # Force the chunk pipeline multi-threaded for every test that leaves
    # the thread count at its default, so TSan actually sees the races.
    ISOBAR_TEST_THREADS="${ISOBAR_TEST_THREADS:-4}" \
      ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  elif [ "${name}" = "scalar" ]; then
    # Pin kernel dispatch to the scalar reference tier: every suite result
    # (and container byte) must match the vectorized tiers.
    ISOBAR_SIMD=scalar \
      ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  elif [ "${name}" = "lzans" ]; then
    # Force the LZ77+tANS solver for every pipeline that doesn't pick a
    # codec explicitly: the whole suite must round-trip through it.
    ISOBAR_FORCE_CODEC=lzans \
      ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  fi
  echo "=== [${name}] OK ==="
}

release() {
  run_config release \
    -DCMAKE_BUILD_TYPE=Release \
    -DISOBAR_WERROR=ON
}

asan() {
  run_config asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DISOBAR_SANITIZE=address \
    -DISOBAR_BUILD_BENCHMARKS=OFF
  # Second, focused pass over the seekable-container suites: the
  # range/column planners do exactly the offset arithmetic the index
  # footer enables, which is where an off-by-one becomes a heap
  # over-read — worth a dedicated lane entry so a failure names the
  # feature, not just the build.
  echo "=== [asan] range/column focus ==="
  ctest --test-dir build-ci-asan --output-on-failure -j "${JOBS}" \
    -R 'RangeReadTest|ColumnReadTest|SeekToChunkTest|FooterIdentityTest'
  echo "=== [asan] range/column focus OK ==="
}

tsan() {
  run_config tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DISOBAR_SANITIZE=thread \
    -DISOBAR_BUILD_BENCHMARKS=OFF
}

ubsan() {
  run_config ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DISOBAR_SANITIZE=undefined \
    -DISOBAR_BUILD_BENCHMARKS=OFF
  # Second pass with the LZ77+tANS solver forced: the tANS bit readers
  # and state machines are exactly where a shift-width or overflow bug
  # would hide, so the whole suite runs through them under UBSan too.
  echo "=== [ubsan] lzans-forced pass ==="
  ISOBAR_FORCE_CODEC=lzans \
    ctest --test-dir build-ci-ubsan --output-on-failure -j "${JOBS}" \
      ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  echo "=== [ubsan] lzans-forced pass OK ==="
}

scalar() {
  run_config scalar \
    -DCMAKE_BUILD_TYPE=Release \
    -DISOBAR_WERROR=ON
}

lzans() {
  run_config lzans \
    -DCMAKE_BUILD_TYPE=Release \
    -DISOBAR_WERROR=ON
}

# Telemetry compiled out: spans, the timeline, and the metrics registry
# all collapse to no-ops, and the suite (minus the telemetry-only tests,
# which skip themselves) must still pass. Guards against instrumentation
# creeping into hot paths without a kCompiledIn gate.
notelemetry() {
  run_config notelemetry \
    -DCMAKE_BUILD_TYPE=Release \
    -DISOBAR_TELEMETRY=OFF \
    -DISOBAR_WERROR=ON
}

# Bench smoke: run the kernel microbenchmarks briefly and compare against
# the committed BENCH_baseline.json — strict for the stable single-thread
# kernel/codec rows (a >40% drop fails CI), warn-only for anything matched
# by the noisy-row pattern. The end-to-end scenario sweep (bench_pipeline)
# is always compared warn-only against BENCH_e2e.json: whole-pipeline,
# multi-threaded numbers swing too much with machine load to gate on. The
# JSON artifacts are kept (paths in ISOBAR_BENCH_JSON /
# ISOBAR_BENCH_E2E_JSON) so trends are inspectable.
bench() {
  local name=bench
  local dir="build-ci-${name}"
  local out="${ISOBAR_BENCH_JSON:-${dir}/bench_smoke.json}"
  local e2e_out="${ISOBAR_BENCH_E2E_JSON:-${dir}/bench_e2e_smoke.json}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}" --target bench_micro bench_pipeline
  echo "=== [${name}] run ==="
  "${dir}/bench/bench_micro" \
    --benchmark_filter='Kernel|Crc32c|BwtCompressRepetitive|^BM_HistogramUpdate$|^BM_GatherColumns|^BM_ScatterColumns|^BM_HuffmanEncode$|^BM_HuffmanDecode$|^BM_LzssEncode$|^BM_LzssDecode$|^BM_LzAnsCompress$|^BM_LzAnsDecompress$|^BM_TansEncode$|^BM_TansDecode$|^BM_MtfEncode$|^BM_RunScan$' \
    --benchmark_min_time="${ISOBAR_BENCH_MIN_TIME:-0.1}" \
    --benchmark_format=json > "${out}"
  echo "=== [${name}] compare ==="
  python3 scripts/bench_regression.py "${out}" --strict \
    --warn-only-pattern 'MT/|/threads:|^BM_E2e'
  echo "=== [${name}] e2e run ==="
  "${dir}/bench/bench_pipeline" \
    --benchmark_min_time="${ISOBAR_BENCH_MIN_TIME:-0.1}" \
    --benchmark_format=json > "${e2e_out}"
  echo "=== [${name}] e2e compare ==="
  python3 scripts/bench_regression.py "${e2e_out}" --baseline BENCH_e2e.json
  echo "=== [${name}] timeline trace ==="
  # One 8-worker scenario with the cross-thread timeline on: the Chrome
  # trace JSON (load it at ui.perfetto.dev) is kept as a CI artifact so a
  # scheduling regression can be eyeballed, not just inferred from rates.
  local trace_out="${ISOBAR_BENCH_TIMELINE:-${dir}/bench_timeline_trace.json}"
  "${dir}/bench/bench_pipeline" \
    --threads=8 \
    --trace-timeline="${trace_out}" \
    --benchmark_filter='^BM_E2eCompress/solver:zlib/threads:8' \
    --benchmark_min_time="${ISOBAR_BENCH_MIN_TIME:-0.1}" \
    --benchmark_format=console > /dev/null
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${trace_out}"
  echo "timeline trace written to ${trace_out}"
  echo "=== [${name}] OK ==="
}

# Serving smoke: the protocol/admission/server conformance tests, then a
# saturation run against a real daemon — isobard with a deliberately small
# queue, isobar_loadgen closed-loop on 4 connections for
# ISOBAR_SERVER_SMOKE_SECONDS (default 10). The loadgen's exit code
# asserts zero protocol errors, zero byte-identity failures, and zero
# dropped replies; the Python check then asserts the reject/accept split
# is sane (some work served, some shed — a saturated bounded queue must do
# both) and that the STATS snapshot agrees with the client-side counts.
# The loadgen report and STATS snapshot land in build-ci-server/ (paths
# overridable via ISOBAR_SERVER_REPORT / ISOBAR_SERVER_STATS) and are kept
# as CI artifacts.
server() {
  local name=server
  local dir="build-ci-${name}"
  local sock="/tmp/isobard-ci-$$.sock"
  local report="${ISOBAR_SERVER_REPORT:-${dir}/server_loadgen.json}"
  local stats="${ISOBAR_SERVER_STATS:-${dir}/server_stats.json}"
  local seconds="${ISOBAR_SERVER_SMOKE_SECONDS:-10}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release -DISOBAR_WERROR=ON
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}" \
    --target isobard isobar_loadgen isobar_stat bench_server isobar_tests
  echo "=== [${name}] conformance tests ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    -R 'ProtocolTest|JobQueueTest|ServerTest' \
    ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  echo "=== [${name}] saturation smoke (${seconds}s) ==="
  rm -f "${sock}"
  "${dir}/examples/isobard" --unix="${sock}" --threads=2 --queue-depth=8 &
  local daemon_pid=$!
  trap 'kill "${daemon_pid}" 2>/dev/null || true; rm -f "${sock}"' RETURN
  for _ in $(seq 1 50); do
    [ -S "${sock}" ] && break
    sleep 0.1
  done
  [ -S "${sock}" ] || { echo "isobard never bound ${sock}" >&2; return 1; }
  # Exit code 1 on any protocol error / verify failure / dropped reply.
  "${dir}/examples/isobar_loadgen" --unix="${sock}" \
    --connections=4 --duration="${seconds}" \
    --json="${report}" --stats-out="${stats}" --shutdown
  wait "${daemon_pid}"
  trap - RETURN
  rm -f "${sock}"
  echo "=== [${name}] check report ==="
  python3 - "${report}" "${stats}" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
stats = json.load(open(sys.argv[2]))
assert report["protocol_errors"] == 0, report
assert report["verify_failures"] == 0, report
assert report["unanswered"] == 0, report
# The workload is entirely valid requests: any kError is a server bug.
assert report["errors"] == 0, report
# A saturated bounded queue both serves and sheds: an all-OK run means the
# smoke never reached saturation, an all-BUSY run means nothing was served.
assert report["ok"] > 0, report
assert report["busy"] > 0, report
# Every request got exactly one reply.
answered = report["ok"] + report["busy"] + report["errors"]
assert answered == report["requests_sent"], report
counters = stats["counters"]
# Server-side accounting must agree with the client-side tally. BUSY
# replies map 1:1 to admission rejections (the rejection is tallied
# before the reply is enqueued, so the count is exact). Completed jobs
# may lag the OK replies by up to the worker count: the response callback
# runs before the job is marked complete, and the STATS snapshot can land
# in that window.
assert counters["server.rejected"] == report["busy"], (counters, report)
lag = report["ok"] - counters["server.completed"]
assert 0 <= lag <= counters["server.workers"], (counters, report)
assert counters["server.requests"] > 0
# 4 loadgen workers + the stats/shutdown connection.
assert counters["server.connections.accepted"] >= 5, counters
print("serving smoke OK: %d ok, %d busy of %d requests (%.0f req/s)" % (
    report["ok"], report["busy"], report["requests_sent"],
    report["requests_per_second"]))
EOF
  echo "=== [${name}] stats inspector ==="
  "${dir}/examples/isobar_stat" print "${stats}" | grep -q 'server\.requests'
  echo "=== [${name}] OK ==="
}

# Fuzz smoke: build the decompress fuzzer (ASan-instrumented), generate
# the seed corpus with make_corpus — including the v1, damaged-footer,
# and streamed-container seeds that steer exploration at the index
# footer — and replay it. With clang — the only compiler shipping
# libFuzzer — also run a short time-boxed fuzz session; with other
# compilers the target is a plain replay driver, which still exercises
# every corpus seed through all three chunk-error policies (and the
# range/column/seek entry points).
fuzz() {
  local name=fuzz
  local dir="build-ci-${name}"
  local fuzz_seconds="${ISOBAR_FUZZ_SECONDS:-30}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DISOBAR_FUZZ=ON \
    -DISOBAR_SANITIZE=address \
    -DISOBAR_BUILD_TESTS=OFF \
    -DISOBAR_BUILD_BENCHMARKS=OFF \
    -DISOBAR_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}" \
    --target decompress_fuzzer codec_roundtrip_fuzzer make_corpus
  echo "=== [${name}] corpus ==="
  "${dir}/fuzz/make_corpus" "${dir}/corpus"
  echo "=== [${name}] replay ==="
  for fuzzer in decompress_fuzzer codec_roundtrip_fuzzer; do
    if "${dir}/fuzz/${fuzzer}" -help=1 >/dev/null 2>&1; then
      # libFuzzer binary: corpus replay plus a bounded fuzzing session.
      "${dir}/fuzz/${fuzzer}" -runs=0 "${dir}/corpus"
      "${dir}/fuzz/${fuzzer}" -max_total_time="${fuzz_seconds}" \
        -max_len=65536 "${dir}/corpus"
    else
      "${dir}/fuzz/${fuzzer}" "${dir}/corpus"
    fi
  done
  echo "=== [${name}] OK ==="
}

for arg in "$@"; do
  case "${arg}" in
    release|asan|tsan|scalar|lzans|notelemetry|ubsan|fuzz|bench|server) CONFIGS+=("${arg}") ;;
    *) CTEST_ARGS+=("${arg}") ;;
  esac
done

if [ "${#CONFIGS[@]}" -eq 0 ]; then
  CONFIGS=(release asan tsan)
fi

for config in "${CONFIGS[@]}"; do
  "${config}"
done
