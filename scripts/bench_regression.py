#!/usr/bin/env python3
"""Compare a bench_micro JSON run against the committed throughput baseline.

Usage:
  bench_micro --benchmark_format=json ... > run.json
  scripts/bench_regression.py run.json                  # warn-only compare
  scripts/bench_regression.py run.json --strict         # nonzero exit on drop
  scripts/bench_regression.py run.json --update         # rewrite the baseline

The baseline (BENCH_baseline.json at the repo root) maps benchmark name to
bytes_per_second. Comparisons are warn-only by default because microbenchmark
numbers move with the host: the committed numbers document the machine they
were measured on, and the tolerance is generous (default 40% below baseline
warns). Regenerate with scripts/update_bench_baseline.sh after intentional
performance changes.
"""

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"


def load_run(path):
    """Extracts {name: bytes_per_second} from google-benchmark JSON output.

    When the run used --benchmark_repetitions, the median aggregate is
    preferred over individual iterations: medians are what tame the noise
    of shared CI machines.
    """
    with open(path) as f:
        data = json.load(f)
    results = {}
    medians = {}
    for bench in data.get("benchmarks", []):
        bps = bench.get("bytes_per_second")
        if bps is None:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench.get("run_name", bench["name"])] = bps
        else:
            results[bench["name"]] = bps
    results.update(medians)
    return data.get("context", {}), results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run_json", help="bench_micro --benchmark_format=json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.40,
        help="fraction below baseline that triggers a warning (default 0.40)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any benchmark regresses past the tolerance",
    )
    parser.add_argument(
        "--warn-only-pattern",
        metavar="REGEX",
        help="benchmarks matching this regex only warn, even under --strict "
             "(for rows too noisy to gate on, e.g. multi-threaded sweeps)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline file from this run instead of comparing",
    )
    args = parser.parse_args()

    context, run = load_run(args.run_json)
    if not run:
        print("bench_regression: run contains no byte-throughput benchmarks",
              file=sys.stderr)
        return 1

    if args.update:
        if "e2e" in args.baseline.name:
            comment = ("End-to-end scenario throughput baseline "
                       "(bytes/second), threads x solver. Regenerate with "
                       "scripts/update_bench_baseline.sh; compared warn-only "
                       "by scripts/bench_regression.py.")
        else:
            comment = ("Per-kernel throughput baseline (bytes/second). "
                       "Regenerate with scripts/update_bench_baseline.sh; "
                       "compared by scripts/bench_regression.py (strict in "
                       "CI for these rows).")
        baseline = {
            "comment": comment,
            "host": {
                "num_cpus": context.get("num_cpus"),
                "mhz_per_cpu": context.get("mhz_per_cpu"),
                "library_build_type": context.get("library_build_type"),
            },
            "benchmarks": {name: run[name] for name in sorted(run)},
        }
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"bench_regression: wrote {len(run)} entries to {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"bench_regression: no baseline at {args.baseline}; "
              "run with --update to create one", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())["benchmarks"]

    warn_only = re.compile(args.warn_only_pattern) if args.warn_only_pattern \
        else None
    regressions = []
    warnings = []
    for name in sorted(baseline):
        base_bps = baseline[name]
        run_bps = run.get(name)
        if run_bps is None:
            print(f"  MISSING  {name} (in baseline, not in run)")
            continue
        ratio = run_bps / base_bps if base_bps else float("inf")
        marker = "ok"
        if ratio < 1.0 - args.tolerance:
            if warn_only is not None and warn_only.search(name):
                marker = "WARN"
                warnings.append(name)
            else:
                marker = "REGRESSED"
                regressions.append(name)
        print(f"  {marker:9s} {name}: {run_bps / 1e9:.2f} GB/s "
              f"(baseline {base_bps / 1e9:.2f} GB/s, {ratio:.2f}x)")
    for name in sorted(set(run) - set(baseline)):
        print(f"  NEW      {name} (not in baseline)")

    if warnings:
        print(f"bench_regression: {len(warnings)} warn-only benchmark(s) "
              f"below tolerance: {', '.join(warnings)}", file=sys.stderr)
    if regressions:
        print(f"bench_regression: {len(regressions)} benchmark(s) more than "
              f"{args.tolerance:.0%} below baseline: {', '.join(regressions)}",
              file=sys.stderr)
        if args.strict:
            return 1
        print("bench_regression: warn-only mode (pass --strict to fail)",
              file=sys.stderr)
    elif not warnings:
        print("bench_regression: all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
