#!/usr/bin/env bash
# Regenerates BENCH_baseline.json from a Release build of bench_micro.
# Run on an otherwise idle machine; the committed numbers document the
# host they were measured on (see the "host" block in the JSON).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
BUILD_DIR="${ISOBAR_BENCH_BUILD_DIR:-build-ci-bench}"
MIN_TIME="${ISOBAR_BENCH_MIN_TIME:-0.5}"

# The baseline tracks the per-kernel rows (every dispatch tier), the CRC
# paths, the BWT worst-case block, the solver codec hot paths, and the
# end-to-end stage benchmarks the kernels feed.
FILTER='Kernel|Crc32c|BwtCompressRepetitive|^BM_HistogramUpdate$|^BM_GatherColumns|^BM_ScatterColumns|^BM_HuffmanEncode$|^BM_HuffmanDecode$|^BM_LzssEncode$|^BM_LzssDecode$|^BM_LzAnsCompress$|^BM_LzAnsDecompress$|^BM_TansEncode$|^BM_TansDecode$|^BM_MtfEncode$|^BM_RunScan$'

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_micro bench_pipeline

OUT="$(mktemp)"
trap 'rm -f "${OUT}"' EXIT
# Median of repeated runs: single measurements on shared machines swing by
# tens of percent; the median is what the baseline should remember.
"${BUILD_DIR}/bench/bench_micro" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions="${ISOBAR_BENCH_REPETITIONS:-5}" \
  --benchmark_format=json > "${OUT}"

python3 scripts/bench_regression.py "${OUT}" --update

# End-to-end scenario sweep (threads x solver): snapshotted separately so
# the strict kernel gate never keys off whole-pipeline numbers, which move
# with scheduler behaviour as much as with the code.
"${BUILD_DIR}/bench/bench_pipeline" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json > "${OUT}"

python3 scripts/bench_regression.py "${OUT}" --update --baseline BENCH_e2e.json
