// isobar_cli: file compressor built on the public API — the "black box
// solution" usage of §II.C. Compresses any raw binary file of fixed-width
// elements into a self-describing .isobar container and back.
//
//   ./isobar_cli c <input> <output.isobar> [--width=8] [--pref=speed|ratio]
//                 [--codec=<name>] [--lin=row|column]
//                 [--tau=1.42] [--chunk=375000] [--threads=N] [--verbose]
//                 [--metrics-json=<path>] [--metrics-csv=<path>]
//                 [--trace=<path>] [--trace-timeline=<path>]
//                 [--timeline-capacity=N] [--trace-max-pipelines=N]
//                 [--trace-max-chunks=N]
//   ./isobar_cli d <input.isobar> <output> [--threads=N]
//                 [--salvage=skip|zero-fill]
//                 [--range=<first>:<end>] [--columns=c0,c1,...]
//                 [--metrics-json=<path>] [--metrics-csv=<path>]
//                 [--trace=<path>] [--trace-timeline=<path>]
//                 [--timeline-capacity=N]
//
// --salvage decodes damaged containers best-effort: a chunk that fails to
// parse, decode, or checksum is skipped (or replaced with zero bytes)
// instead of aborting, and a per-chunk damage report is printed.
// --range decodes only elements [first, end) — on a v2 container the
// chunk-index footer locates the covering chunks and nothing else is
// decoded. --columns materializes only the listed byte-planes
// (concatenated in ascending column order); planes the partitioner stored
// raw are served without any solver work.
//   ./isobar_cli info <input.isobar>
//   ./isobar_cli verify <input.isobar>
//
// The telemetry flags enable the metrics/span/trace subsystem for the run
// and dump it afterwards ("-" writes to stdout): --metrics-json writes the
// combined report (counters, histograms, spans, per-chunk pipeline
// traces), --metrics-csv the flat instrument table, --trace the per-chunk
// trace CSV, --trace-timeline the cross-thread event timeline as Chrome
// trace-event JSON (load it in chrome://tracing or Perfetto, or summarize
// it with isobar_stat). --timeline-capacity bounds each thread's event
// ring, --trace-max-pipelines/--trace-max-chunks bound the chunk-trace
// recorder; overflow counts into the telemetry.events_dropped counter.
// See docs/OBSERVABILITY.md for the schema.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "compressors/registry.h"
#include "core/isobar.h"
#include "core/stream.h"
#include "io/file_io.h"
#include "linearize/transpose.h"
#include "simd/dispatch.h"
#include "telemetry/metrics.h"
#include "telemetry/timeline.h"
#include "telemetry/trace_export.h"

namespace {

using namespace isobar;

bool ReadFile(const char* path, Bytes* out) {
  auto file = ReadFileToBytes(path);
  if (!file.ok()) return false;
  *out = std::move(*file);
  return true;
}

bool WriteFile(const char* path, ByteSpan data) {
  return WriteBytesToFile(path, data).ok();
}

/// Telemetry output destinations, shared by the compress and decompress
/// commands. Parsing a telemetry flag switches the subsystem on for the
/// run; Dump() writes each requested artifact after the work is done.
struct TelemetryFlags {
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace_csv;
  std::string timeline_json;
  /// Set when a telemetry flag was given with an empty path; the command
  /// should exit with a usage error instead of silently dropping output.
  bool parse_error = false;

  /// Consumes `--metrics-json= / --metrics-csv= / --trace= /
  /// --trace-timeline=` and the recorder-capacity knobs; returns false
  /// for any other argument.
  bool Parse(const char* arg) {
    // Capacity knobs first: they tune the bounded recorders but do not by
    // themselves switch telemetry on.
    if (std::strncmp(arg, "--timeline-capacity=", 20) == 0) {
      telemetry::Timeline::Global().set_capacity_per_thread(
          static_cast<size_t>(std::strtoull(arg + 20, nullptr, 10)));
      return true;
    }
    if (std::strncmp(arg, "--trace-max-pipelines=", 22) == 0) {
      telemetry::TraceRecorder::Global().set_max_pipelines(
          static_cast<size_t>(std::strtoull(arg + 22, nullptr, 10)));
      return true;
    }
    if (std::strncmp(arg, "--trace-max-chunks=", 19) == 0) {
      telemetry::TraceRecorder::Global().set_max_chunks_per_pipeline(
          static_cast<size_t>(std::strtoull(arg + 19, nullptr, 10)));
      return true;
    }
    std::string* dest;
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      dest = &metrics_json;
      *dest = arg + 15;
    } else if (std::strncmp(arg, "--metrics-csv=", 14) == 0) {
      dest = &metrics_csv;
      *dest = arg + 14;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      dest = &trace_csv;
      *dest = arg + 8;
    } else if (std::strncmp(arg, "--trace-timeline=", 17) == 0) {
      dest = &timeline_json;
      *dest = arg + 17;
    } else {
      return false;
    }
    if (dest->empty()) {
      std::fprintf(stderr, "'%s' needs a path (use - for stdout)\n", arg);
      parse_error = true;
      return true;
    }
    telemetry::SetEnabled(true);
    telemetry::TraceRecorder::Global().SetEnabled(true);
    if (dest == &timeline_json) {
      telemetry::Timeline::Global().SetEnabled(true);
    }
    return true;
  }

  static bool WriteText(const std::string& path, const std::string& text) {
    if (path == "-") {
      std::fwrite(text.data(), 1, text.size(), stdout);
      return true;
    }
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << text;
    if (!file.good()) {
      std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
      return false;
    }
    return true;
  }

  bool Dump() const {
    bool ok = true;
    if (!metrics_json.empty()) {
      ok &= WriteText(metrics_json, telemetry::TelemetryReportJson());
    }
    if (!metrics_csv.empty()) {
      ok &= WriteText(metrics_csv, telemetry::MetricsToCsv(
                                       telemetry::MetricsRegistry::Global()
                                           .Snapshot()));
    }
    if (!trace_csv.empty()) {
      ok &= WriteText(trace_csv,
                      telemetry::TraceToCsv(
                          telemetry::TraceRecorder::Global().Snapshot()));
    }
    if (!timeline_json.empty()) {
      ok &= WriteText(timeline_json,
                      telemetry::TimelineToJson(
                          telemetry::Timeline::Global().Snapshot()));
    }
    return ok;
  }
};

/// Records the active SIMD dispatch tier into the metrics registry as a
/// `simd.tier.<name>` counter. Lives here (not in the telemetry library)
/// because telemetry cannot link against the simd library; any binary
/// that sees both records the tier once per run.
void RecordSimdTier() {
  if (!telemetry::Enabled()) return;
  const std::string name =
      "simd.tier." + std::string(simd::TierToString(simd::ActiveTier()));
  telemetry::GetCounter(name).Add(1);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s c <input> <output.isobar> [--width=8] [--pref=speed|ratio]\n"
      "          [--codec=%s] [--lin=row|column]\n"
      "          [--tau=1.42] [--chunk=375000] [--threads=N] [--verbose]\n"
      "          [--metrics-json=<path>] [--metrics-csv=<path>]\n"
      "          [--trace=<path>] [--trace-timeline=<path>]\n"
      "          [--timeline-capacity=N] [--trace-max-pipelines=N]\n"
      "          [--trace-max-chunks=N]\n"
      "       %s d <input.isobar> <output> [--threads=N]\n"
      "          [--salvage=skip|zero-fill]\n"
      "          [--range=<first>:<end>] [--columns=c0,c1,...]\n"
      "          [--metrics-json=<path>] [--metrics-csv=<path>]\n"
      "          [--trace=<path>] [--trace-timeline=<path>]\n"
      "          [--timeline-capacity=N]\n"
      "--threads=N uses N worker threads for the chunk pipeline (0 = one\n"
      "per hardware thread, the default; 1 = serial). Output is identical\n"
      "for every thread count. --verbose prints the EUPA decision table\n"
      "(every candidate's predicted and measured performance, and which\n"
      "trials the estimator gate pruned), the thread-pool scheduling\n"
      "summary, and the top-3 slowest chunks.\n"
      "--trace-timeline writes the cross-thread event timeline as Chrome\n"
      "trace-event JSON (chrome://tracing / Perfetto / isobar_stat).\n"
      "--salvage recovers what it can from a damaged container: bad\n"
      "chunks are skipped (or zero-filled) and reported instead of\n"
      "aborting the decode.\n"
      "--range=<first>:<end> decodes only that element range (v2\n"
      "containers seek straight to the covering chunks via the index\n"
      "footer). --columns=c0,c1,... writes only those byte-planes,\n"
      "concatenated in ascending column order.\n"
      "       %s info <input.isobar>\n"
      "       %s verify <input.isobar>\n",
      argv0, CodecNameList().c_str(), argv0, argv0, argv0);
  return 2;
}

/// --verbose: the EUPA decision table — every (solver, linearization)
/// candidate with its estimator prediction, measured sample performance,
/// and what the selector did with it. "pruned" rows were skipped by the
/// estimator gate and never ran a trial compression.
void PrintDecisionTable(const EupaDecision& decision) {
  std::fprintf(stderr, "EUPA decision table (%s preference):\n",
               std::string(PreferenceToString(decision.preference)).c_str());
  std::fprintf(stderr, "  %-8s %-7s %10s %9s %9s  %s\n", "solver", "lin",
               "predicted", "ratio", "MB/s", "outcome");
  char predicted[32], ratio[32], mbps[32];
  for (const auto& eval : decision.evaluations) {
    const bool selected = !eval.pruned && eval.codec == decision.codec &&
                          eval.linearization == decision.linearization;
    if (eval.predicted_ratio > 0.0) {
      std::snprintf(predicted, sizeof(predicted), "%.2f", eval.predicted_ratio);
    } else {
      std::snprintf(predicted, sizeof(predicted), "-");
    }
    // Pruned candidates never ran, so their measured fields are blank.
    if (eval.pruned) {
      std::snprintf(ratio, sizeof(ratio), "-");
      std::snprintf(mbps, sizeof(mbps), "-");
    } else {
      std::snprintf(ratio, sizeof(ratio), "%.2f", eval.ratio);
      std::snprintf(mbps, sizeof(mbps), "%.1f", eval.throughput_mbps);
    }
    std::fprintf(
        stderr, "  %-8s %-7s %10s %9s %9s  %s\n",
        std::string(CodecIdToString(eval.codec)).c_str(),
        std::string(LinearizationToString(eval.linearization)).c_str(),
        predicted, ratio, mbps,
        eval.pruned ? "pruned" : (selected ? "selected" : "trialed"));
  }
}

/// --verbose: thread-pool scheduling summary, read back from the pool.*
/// counters ThreadPool::PublishStats() recorded at the end of the run.
void PrintPoolStats() {
  const auto snapshot = telemetry::MetricsRegistry::Global().Snapshot();
  auto counter = [&snapshot](std::string_view name) -> long long {
    for (const auto& c : snapshot.counters) {
      if (c.name == name) return static_cast<long long>(c.value);
    }
    return -1;
  };
  const long long submitted = counter("pool.tasks_submitted");
  if (submitted < 0) {
    std::fprintf(stderr, "thread pool: not used (serial run)\n");
    return;
  }
  const long long idle = counter("pool.idle_nanos");
  std::fprintf(stderr,
               "thread pool: %lld tasks submitted, %lld executed; %lld "
               "steals, %lld failed steal scans; %.3fs aggregate idle\n",
               submitted, counter("pool.tasks_executed"),
               counter("pool.steals"), counter("pool.failed_steal_scans"),
               idle < 0 ? 0.0 : static_cast<double>(idle) / 1e9);
}

/// --verbose: the top-3 slowest chunks across the run's pipeline traces,
/// by summed stage time — the chunks a throughput investigation should
/// look at first.
void PrintSlowestChunks() {
  struct SlowChunk {
    uint64_t chunk_index;
    uint64_t input_bytes;
    double analysis, partition, codec;
    double total() const { return analysis + partition + codec; }
  };
  std::vector<SlowChunk> chunks;
  for (const auto& pipeline : telemetry::TraceRecorder::Global().Snapshot()) {
    for (const auto& chunk : pipeline.chunks) {
      chunks.push_back({chunk.chunk_index, chunk.input_bytes,
                        chunk.analysis_seconds, chunk.partition_seconds,
                        chunk.codec_seconds});
    }
  }
  if (chunks.empty()) return;
  const size_t top = std::min<size_t>(3, chunks.size());
  std::partial_sort(chunks.begin(), chunks.begin() + top, chunks.end(),
                    [](const SlowChunk& a, const SlowChunk& b) {
                      return a.total() > b.total();
                    });
  std::fprintf(stderr, "slowest chunks:\n");
  for (size_t i = 0; i < top; ++i) {
    const SlowChunk& c = chunks[i];
    std::fprintf(stderr,
                 "  chunk %llu: %.3fs (analyze %.3fs, partition %.3fs, "
                 "solve %.3fs) over %llu bytes\n",
                 static_cast<unsigned long long>(c.chunk_index), c.total(),
                 c.analysis, c.partition, c.codec,
                 static_cast<unsigned long long>(c.input_bytes));
  }
}

int Compress(int argc, char** argv) {
  size_t width = 8;
  bool verbose = false;
  CompressOptions options;
  TelemetryFlags telemetry_flags;
  for (int i = 4; i < argc; ++i) {
    const char* arg = argv[i];
    if (telemetry_flags.Parse(arg)) {
      continue;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
      // The verbose summaries are derived from telemetry (pool counters,
      // chunk traces), so verbose switches the subsystem on for the run.
      telemetry::SetEnabled(true);
      telemetry::TraceRecorder::Global().SetEnabled(true);
    } else if (std::strncmp(arg, "--width=", 8) == 0) {
      width = static_cast<size_t>(std::atoi(arg + 8));
    } else if (std::strcmp(arg, "--pref=speed") == 0) {
      options.eupa.preference = Preference::kSpeed;
    } else if (std::strcmp(arg, "--pref=ratio") == 0) {
      options.eupa.preference = Preference::kRatio;
    } else if (std::strncmp(arg, "--codec=", 8) == 0) {
      auto codec = GetCodecByName(arg + 8);
      if (!codec.ok()) {
        std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
        return 2;
      }
      options.eupa.forced_codec = (*codec)->id();
    } else if (std::strcmp(arg, "--lin=row") == 0) {
      options.eupa.forced_linearization = Linearization::kRow;
    } else if (std::strcmp(arg, "--lin=column") == 0) {
      options.eupa.forced_linearization = Linearization::kColumn;
    } else if (std::strncmp(arg, "--tau=", 6) == 0) {
      options.analyzer.tau = std::atof(arg + 6);
    } else if (std::strncmp(arg, "--chunk=", 8) == 0) {
      options.chunk_elements = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.num_threads =
          static_cast<uint32_t>(std::strtoul(arg + 10, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      return 2;
    }
  }
  if (telemetry_flags.parse_error) return 2;
  RecordSimdTier();

  Bytes input;
  if (!ReadFile(argv[2], &input)) {
    std::fprintf(stderr, "cannot read '%s'\n", argv[2]);
    return 1;
  }
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(input, width, &stats);
  if (!compressed.ok()) {
    std::fprintf(stderr, "%s\n", compressed.status().ToString().c_str());
    // Still dump what telemetry saw: a failed run is exactly when the
    // counters and spans are worth reading.
    telemetry_flags.Dump();
    return 1;
  }
  if (!WriteFile(argv[3], *compressed)) {
    std::fprintf(stderr, "cannot write '%s'\n", argv[3]);
    return 1;
  }
  std::fprintf(stderr,
               "%zu -> %zu bytes (ratio %.3f) at %.1f MB/s; solver %s/%s; "
               "%s, %.1f%% noise bytes\n",
               input.size(), compressed->size(), stats.ratio(),
               stats.compression_mbps(),
               std::string(CodecIdToString(stats.decision.codec)).c_str(),
               std::string(
                   LinearizationToString(stats.decision.linearization))
                   .c_str(),
               stats.improvable ? "improvable" : "undetermined",
               stats.mean_htc_fraction * 100.0);
  if (verbose) {
    PrintDecisionTable(stats.decision);
    PrintPoolStats();
    PrintSlowestChunks();
  }
  if (!telemetry_flags.Dump()) return 1;
  return 0;
}

int Decompress(int argc, char** argv) {
  TelemetryFlags telemetry_flags;
  DecompressOptions options;
  bool have_range = false;
  uint64_t range_first = 0, range_end = 0;
  uint64_t column_mask = 0;
  for (int i = 4; i < argc; ++i) {
    const char* arg = argv[i];
    if (telemetry_flags.Parse(arg)) {
      continue;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.num_threads =
          static_cast<uint32_t>(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--salvage=skip") == 0) {
      options.on_chunk_error = ChunkErrorPolicy::kSkip;
    } else if (std::strcmp(arg, "--salvage=zero-fill") == 0) {
      options.on_chunk_error = ChunkErrorPolicy::kZeroFill;
    } else if (std::strncmp(arg, "--range=", 8) == 0) {
      char* sep = nullptr;
      range_first = std::strtoull(arg + 8, &sep, 10);
      if (sep == nullptr || *sep != ':') {
        std::fprintf(stderr, "--range needs <first>:<end> (got '%s')\n", arg);
        return 2;
      }
      range_end = std::strtoull(sep + 1, nullptr, 10);
      have_range = true;
    } else if (std::strncmp(arg, "--columns=", 10) == 0) {
      const char* cursor = arg + 10;
      if (*cursor == '\0') {
        std::fprintf(stderr, "--columns needs a comma-separated list\n");
        return 2;
      }
      while (*cursor != '\0') {
        char* next = nullptr;
        const unsigned long long column = std::strtoull(cursor, &next, 10);
        if (next == cursor || column >= 64 ||
            (*next != '\0' && *next != ',')) {
          std::fprintf(stderr, "--columns: bad column list '%s'\n", arg + 10);
          return 2;
        }
        column_mask |= 1ull << column;
        cursor = (*next == ',') ? next + 1 : next;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      return 2;
    }
  }
  if (telemetry_flags.parse_error) return 2;
  if (have_range && column_mask != 0) {
    std::fprintf(stderr, "--range and --columns are mutually exclusive\n");
    return 2;
  }
  RecordSimdTier();
  Bytes input;
  if (!ReadFile(argv[2], &input)) {
    std::fprintf(stderr, "cannot read '%s'\n", argv[2]);
    return 1;
  }
  DecompressionStats stats;
  SalvageReport report;
  const bool salvaging = options.on_chunk_error != ChunkErrorPolicy::kFail;
  if (salvaging) options.salvage_report = &report;
  Result<Bytes> restored =
      have_range
          ? IsobarCompressor::DecompressRange(input, range_first, range_end,
                                              options, &stats)
          : column_mask != 0
                ? IsobarCompressor::DecompressColumns(input, column_mask,
                                                      options, &stats)
                : IsobarCompressor::Decompress(input, options, &stats);
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    // A corrupt container is exactly when the telemetry (e.g. the
    // pipeline.checksum_failures counter) is worth reading.
    telemetry_flags.Dump();
    return 1;
  }
  if (!WriteFile(argv[3], *restored)) {
    std::fprintf(stderr, "cannot write '%s'\n", argv[3]);
    return 1;
  }
  if (salvaging && !report.clean()) {
    std::fprintf(stderr,
                 "salvage: %llu of %llu chunks recovered (%llu skipped, "
                 "%llu zero-filled); %llu bytes recovered, %llu lost%s\n",
                 static_cast<unsigned long long>(report.chunks_recovered),
                 static_cast<unsigned long long>(report.chunks_total),
                 static_cast<unsigned long long>(report.chunks_skipped),
                 static_cast<unsigned long long>(report.chunks_zero_filled),
                 static_cast<unsigned long long>(report.bytes_recovered),
                 static_cast<unsigned long long>(report.bytes_lost),
                 report.truncated_tail ? "; tail framing destroyed" : "");
    for (const auto& damaged : report.damaged) {
      // The error already names the chunk and container offset.
      std::fprintf(stderr, "  [%s] %s\n",
                   damaged.action == ChunkErrorPolicy::kZeroFill
                       ? "zero-filled"
                       : "skipped",
                   damaged.error.ToString().c_str());
    }
  }
  std::fprintf(stderr,
               "%zu -> %zu bytes at %.1f MB/s (%s; "
               "parse %.3fs, decode %.3fs, scatter %.3fs)\n",
               input.size(), restored->size(), stats.decompression_mbps(),
               column_mask != 0
                   ? "column read: chunk CRCs cover full chunks only"
                   : "checksums verified",
               stats.parse_seconds, stats.decode_seconds,
               stats.scatter_seconds);
  if (!telemetry_flags.Dump()) return 1;
  return 0;
}

int Info(char** argv) {
  Bytes input;
  if (!ReadFile(argv[2], &input)) {
    std::fprintf(stderr, "cannot read '%s'\n", argv[2]);
    return 1;
  }
  size_t offset = 0;
  auto header = container::ParseHeader(input, &offset);
  if (!header.ok()) {
    std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
    return 1;
  }
  std::printf("ISOBAR container v%u\n", header->version);
  // A v2 chunk-index footer makes the container range/column addressable,
  // and supplies the totals a streamed (sentinel-header) container lacks.
  bool indexed = false;
  if (header->version >= container::kVersion) {
    auto index = container::ParseFooter(input, *header);
    if (index.ok()) {
      indexed = true;
      header->element_count = index->element_count;
      header->chunk_count = index->entries.size();
    }
  }
  std::printf("  chunk index   : %s\n",
              indexed ? "present (range/column addressable)"
                      : "absent (sequential access only)");
  std::printf("  element width : %u bytes\n", header->width);
  std::printf("  elements      : %llu\n",
              static_cast<unsigned long long>(header->element_count));
  std::printf("  chunks        : %llu x %llu elements\n",
              static_cast<unsigned long long>(header->chunk_count),
              static_cast<unsigned long long>(header->chunk_elements));
  std::printf("  solver        : %s, %s linearization (%s preference)\n",
              std::string(CodecIdToString(header->codec)).c_str(),
              std::string(LinearizationToString(header->linearization))
                  .c_str(),
              std::string(PreferenceToString(header->preference)).c_str());
  std::printf("  analyzer tau  : %.2f\n", header->tau_centi / 100.0);

  uint64_t improvable = 0, stored_raw = 0, compressed_bytes = 0,
           raw_bytes = 0;
  for (uint64_t i = 0; i < header->chunk_count; ++i) {
    auto chunk = container::ParseChunkHeader(input, &offset);
    if (!chunk.ok()) {
      std::fprintf(stderr, "chunk %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   chunk.status().ToString().c_str());
      return 1;
    }
    if (!(chunk->flags & container::kChunkUndetermined)) ++improvable;
    if (chunk->flags & container::kChunkStoredRaw) ++stored_raw;
    compressed_bytes += chunk->compressed_size;
    raw_bytes += chunk->raw_size;
    offset += chunk->compressed_size + chunk->raw_size;
  }
  std::printf("  improvable    : %llu of %llu chunks (%llu stored raw)\n",
              static_cast<unsigned long long>(improvable),
              static_cast<unsigned long long>(header->chunk_count),
              static_cast<unsigned long long>(stored_raw));
  std::printf("  payload       : %llu solver bytes + %llu raw noise bytes\n",
              static_cast<unsigned long long>(compressed_bytes),
              static_cast<unsigned long long>(raw_bytes));
  return 0;
}

// Chunk-by-chunk integrity check: decodes every chunk with CRC
// verification but never materializes more than one chunk of plaintext,
// so arbitrarily large archives verify in constant memory.
int Verify(char** argv) {
  Bytes input;
  if (!ReadFile(argv[2], &input)) {
    std::fprintf(stderr, "cannot read '%s'\n", argv[2]);
    return 1;
  }
  IsobarStreamReader reader(input);
  Status status = reader.Init();
  if (!status.ok()) {
    std::printf("BAD header: %s\n", status.ToString().c_str());
    return 1;
  }
  Bytes chunk;
  uint64_t bytes = 0;
  for (;;) {
    auto more = reader.NextChunk(&chunk);
    if (!more.ok()) {
      std::printf("BAD chunk %llu: %s\n",
                  static_cast<unsigned long long>(reader.chunks_read()),
                  more.status().ToString().c_str());
      return 1;
    }
    if (!*more) break;
    bytes += chunk.size();
  }
  std::printf("OK: %llu chunks, %llu bytes, all checksums verified\n",
              static_cast<unsigned long long>(reader.chunks_read()),
              static_cast<unsigned long long>(bytes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "c") == 0) return Compress(argc, argv);
  if (argc >= 4 && std::strcmp(argv[1], "d") == 0) {
    return Decompress(argc, argv);
  }
  if (argc == 3 && std::strcmp(argv[1], "info") == 0) return Info(argv);
  if (argc == 3 && std::strcmp(argv[1], "verify") == 0) return Verify(argv);
  return Usage(argv[0]);
}
