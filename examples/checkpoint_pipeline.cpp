// In-situ checkpoint pipeline: the workload that motivates the paper's
// introduction. A long-running simulation emits a checkpoint every few
// time steps; each must be compressed losslessly, fast enough not to
// stall the solver, and restored bit-exactly on restart.
//
//   ./checkpoint_pipeline [steps] [elements_per_step]
//
// Simulates `steps` GTS checkpoint dumps (zion particle data), compresses
// each through ISOBAR-compress with the speed preference, "restarts" from
// the middle checkpoint, and prints per-step and aggregate statistics —
// the same consistency property §III.F measures.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/isobar.h"
#include "datagen/registry.h"
#include "datagen/time_series.h"

int main(int argc, char** argv) {
  using namespace isobar;

  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  const uint64_t elements = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                     : 500'000;
  if (steps <= 0 || elements == 0) {
    std::fprintf(stderr, "usage: %s [steps] [elements_per_step]\n", argv[0]);
    return 1;
  }

  auto spec = FindDatasetSpec("gts_chkp_zion");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  TimeSeriesGenerator simulation(**spec, elements);

  const IsobarCompressor compressor;  // paper defaults, speed preference
  std::vector<Bytes> checkpoint_store;  // stands in for the parallel FS
  std::vector<Bytes> plaintexts;        // kept only to verify the restart

  uint64_t raw_total = 0, stored_total = 0;
  double compress_seconds = 0.0;
  std::printf("%-6s %12s %12s %8s %10s\n", "step", "raw bytes", "stored",
              "ratio", "MB/s");

  for (int t = 0; t < steps; ++t) {
    auto checkpoint = simulation.Step(static_cast<uint64_t>(t));
    if (!checkpoint.ok()) {
      std::fprintf(stderr, "%s\n", checkpoint.status().ToString().c_str());
      return 1;
    }
    CompressionStats stats;
    auto compressed = compressor.Compress(checkpoint->bytes(), 8, &stats);
    if (!compressed.ok()) {
      std::fprintf(stderr, "step %d: %s\n", t,
                   compressed.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6d %12zu %12zu %8.3f %10.1f\n", t,
                checkpoint->data.size(), compressed->size(), stats.ratio(),
                stats.compression_mbps());
    raw_total += checkpoint->data.size();
    stored_total += compressed->size();
    compress_seconds += stats.total_seconds;
    checkpoint_store.push_back(std::move(*compressed));
    plaintexts.push_back(std::move(checkpoint->data));
  }

  std::printf("\ncampaign: %.1f MB raw -> %.1f MB stored (ratio %.3f), "
              "%.1f MB/s sustained\n",
              raw_total / 1e6, stored_total / 1e6,
              static_cast<double>(raw_total) / stored_total,
              raw_total / 1e6 / compress_seconds);

  // Restart: restore the middle checkpoint and verify bit-exactness —
  // the property that makes lossy alternatives unusable here.
  const size_t restart_step = checkpoint_store.size() / 2;
  DecompressionStats dstats;
  auto restored = IsobarCompressor::Decompress(
      checkpoint_store[restart_step], DecompressOptions{}, &dstats);
  if (!restored.ok()) {
    std::fprintf(stderr, "restart failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  const bool exact = *restored == plaintexts[restart_step];
  std::printf("restart from step %zu: %zu bytes at %.1f MB/s — %s\n",
              restart_step, restored->size(), dstats.decompression_mbps(),
              exact ? "bit-exact, simulation can resume" : "MISMATCH!");
  return exact ? 0 : 1;
}
