// Dataset inspector: the ISOBAR-analyzer as a standalone diagnosis tool.
// Given a raw binary file of fixed-width elements (or the name of a
// built-in synthetic profile), prints the byte-column entropy profile,
// bit-level predictability, Table III statistics, the analyzer verdict,
// and the pipeline the EUPA-selector would pick.
//
//   ./dataset_inspector <file> <element_width>
//   ./dataset_inspector <file> auto              (infer the element width)
//   ./dataset_inspector --profile=<name>        (e.g. --profile=s3d_temp)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/analyzer.h"
#include "core/eupa_selector.h"
#include "datagen/registry.h"
#include "io/file_io.h"
#include "stats/bit_frequency.h"
#include "stats/summary.h"
#include "stats/width_detector.h"

namespace {

using namespace isobar;

void PrintBar(double fraction, int width) {
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::putchar('[');
  for (int i = 0; i < width; ++i) std::putchar(i < filled ? '#' : ' ');
  std::putchar(']');
}

int Inspect(const std::string& label, ByteSpan data, size_t width) {
  std::printf("dataset: %s — %zu bytes, %zu-byte elements, %zu elements\n\n",
              label.c_str(), data.size(), width, data.size() / width);

  // Table III statistics.
  auto summary = Summarize(data, width);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("unique values : %6.2f%%\n", summary->unique_value_percent);
  std::printf("entropy       : %6.2f bits/element\n",
              summary->shannon_entropy);
  std::printf("randomness    : %6.2f%% of a fully random vector\n\n",
              summary->randomness_percent);

  // Analyzer verdict with a per-column picture.
  const Analyzer analyzer;
  auto analysis = analyzer.Analyze(data, width);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("byte-column entropy (0-8 bits) and verdict (tau = %.2f):\n",
              analyzer.options().tau);
  for (size_t j = 0; j < width; ++j) {
    const bool compressible = analysis->compressible_mask & (1ull << j);
    std::printf("  column %2zu  %5.2f  ", j, analysis->column_entropy[j]);
    PrintBar(analysis->column_entropy[j] / 8.0, 32);
    std::printf("  %s\n", compressible ? "compressible" : "noise");
  }
  std::printf("\nverdict: %s (%.1f%% hard-to-compress bytes)\n",
              analysis->improvable()
                  ? "IMPROVABLE — partition before compressing"
                  : "undetermined — pass whole stream to the solver",
              analysis->htc_byte_fraction() * 100.0);

  // What would EUPA pick?
  const uint64_t full_mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
  const uint64_t mask = analysis->improvable() ? analysis->compressible_mask
                                               : full_mask;
  for (Preference pref : {Preference::kSpeed, Preference::kRatio}) {
    EupaOptions options;
    options.preference = pref;
    const EupaSelector selector(options);
    auto decision = selector.Select(data, width, mask);
    if (!decision.ok()) {
      std::fprintf(stderr, "%s\n", decision.status().ToString().c_str());
      return 1;
    }
    std::printf("EUPA (%s preference): %s with %s linearization\n",
                std::string(PreferenceToString(pref)).c_str(),
                std::string(CodecIdToString(decision->codec)).c_str(),
                std::string(
                    LinearizationToString(decision->linearization))
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strncmp(argv[1], "--profile=", 10) == 0) {
    auto spec = FindDatasetSpec(argv[1] + 10);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\navailable profiles:\n",
                   spec.status().ToString().c_str());
      for (const DatasetSpec& s : AllDatasetSpecs()) {
        std::fprintf(stderr, "  %s\n", std::string(s.name).c_str());
      }
      return 1;
    }
    auto dataset = GenerateDataset(**spec, 500'000);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    return Inspect(dataset->name, dataset->bytes(), dataset->width());
  }
  if (argc == 3) {
    auto file = ReadFileToBytes(argv[1]);
    if (!file.ok()) {
      std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
      return 1;
    }
    Bytes data = std::move(*file);
    size_t width;
    if (std::strcmp(argv[2], "auto") == 0) {
      auto detection = DetectElementWidth(data);
      if (!detection.ok()) {
        std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
        return 1;
      }
      if (!detection->confident) {
        std::printf("no periodic byte structure found; treating the file "
                    "as width-1 elements\n\n");
      } else {
        std::printf("detected element width: %zu bytes (column-entropy "
                    "scores:", detection->width);
        for (const WidthCandidate& candidate : detection->candidates) {
          std::printf(" w%zu=%.2f", candidate.width,
                      candidate.mean_column_entropy);
        }
        std::printf(")\n\n");
      }
      width = detection->width;
    } else {
      width = static_cast<size_t>(std::atoi(argv[2]));
      if (width == 0 || width > 64 || data.size() % width != 0) {
        std::fprintf(stderr,
                     "element width must be 1-64 and divide the file size\n");
        return 1;
      }
    }
    return Inspect(argv[1], data, width);
  }
  std::fprintf(stderr,
               "usage: %s <file> <element_width>\n"
               "       %s --profile=<dataset>   (built-in synthetic data)\n",
               argv[0], argv[0]);
  return 1;
}
