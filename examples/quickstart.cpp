// Quickstart: compress an array of doubles with the ISOBAR-compress
// preconditioner, decompress it, and inspect what the pipeline decided.
//
//   ./quickstart
//
// This is the 60-second tour of the public API: GenerateDataset (or your
// own buffer), IsobarCompressor::Compress/Decompress, CompressionStats.
#include <cstdio>

#include "core/isobar.h"
#include "datagen/registry.h"
#include "linearize/transpose.h"

int main() {
  using namespace isobar;

  // 1. Get some hard-to-compress doubles. Any contiguous buffer works;
  //    here we synthesize 1M elements of the GTS potential-fluctuation
  //    profile (75% of each element's bytes are noise).
  auto spec = FindDatasetSpec("gts_phi_l");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto dataset = GenerateDataset(**spec, 1'000'000);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("input: %s, %llu doubles (%zu bytes)\n",
              dataset->name.c_str(),
              static_cast<unsigned long long>(dataset->element_count()),
              dataset->data.size());

  // 2. Compress. Options default to the paper's configuration: tau = 1.42,
  //    375k-element chunks, EUPA choosing between zlib and bzip2 with the
  //    speed preference.
  CompressOptions options;
  options.eupa.preference = Preference::kSpeed;
  const IsobarCompressor compressor(options);

  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), /*width=*/8, &stats);
  if (!compressed.ok()) {
    std::fprintf(stderr, "%s\n", compressed.status().ToString().c_str());
    return 1;
  }

  std::printf("compressed: %zu bytes (ratio %.3f) at %.1f MB/s\n",
              compressed->size(), stats.ratio(), stats.compression_mbps());
  std::printf("pipeline: improvable=%s  htc_bytes=%.1f%%  solver=%s  "
              "linearization=%s\n",
              stats.improvable ? "yes" : "no",
              stats.mean_htc_fraction * 100.0,
              std::string(CodecIdToString(stats.decision.codec)).c_str(),
              std::string(
                  LinearizationToString(stats.decision.linearization))
                  .c_str());
  std::printf("time split: analysis %.1f%%  partition %.1f%%  solver %.1f%%\n",
              100.0 * stats.analysis_seconds / stats.total_seconds,
              100.0 * stats.partition_seconds / stats.total_seconds,
              100.0 * stats.codec_seconds / stats.total_seconds);

  // 3. Decompress. The container is self-describing — no options or side
  //    information needed — and every chunk is CRC-verified.
  DecompressionStats dstats;
  auto restored =
      IsobarCompressor::Decompress(*compressed, DecompressOptions{}, &dstats);
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::printf("decompressed: %zu bytes at %.1f MB/s — %s\n",
              restored->size(), dstats.decompression_mbps(),
              *restored == dataset->data ? "bit-exact" : "MISMATCH!");
  return *restored == dataset->data ? 0 : 1;
}
