// In-situ capacity planner: given a dataset profile (or raw file), the
// per-node storage bandwidth, and a checkpoint cadence, report which
// write strategy (raw / zlib / bzip2 / ISOBAR) meets the deadline and
// what it costs in storage — the planning question the paper's
// introduction poses for exascale checkpoint/restart.
//
//   ./insitu_planner [--profile=gts_chkp_zion] [--mb=64]
//                    [--bandwidth=100] [--interval=30]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/registry.h"
#include "io/in_situ.h"

int main(int argc, char** argv) {
  using namespace isobar;

  std::string profile = "gts_chkp_zion";
  double mb = 64.0;
  double bandwidth = 100.0;  // MB/s to the parallel file system
  double interval = 30.0;    // seconds between checkpoints

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--profile=", 10) == 0) {
      profile = arg + 10;
    } else if (std::strncmp(arg, "--mb=", 5) == 0) {
      mb = std::atof(arg + 5);
    } else if (std::strncmp(arg, "--bandwidth=", 12) == 0) {
      bandwidth = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--interval=", 11) == 0) {
      interval = std::atof(arg + 11);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--profile=<name>] [--mb=<size>] "
                   "[--bandwidth=<MB/s>] [--interval=<s>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (mb <= 0 || bandwidth <= 0 || interval <= 0) {
    std::fprintf(stderr, "sizes, bandwidth and interval must be positive\n");
    return 2;
  }

  auto spec = FindDatasetSpec(profile);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto dataset = GenerateDatasetMB(**spec, mb);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  std::printf("checkpoint: %s, %.1f MB every %.0f s; link %.0f MB/s\n\n",
              profile.c_str(), mb, interval, bandwidth);
  std::printf("%-8s %10s %10s %12s %12s  %s\n", "strategy", "stored MB",
              "ratio", "serial s", "pipelined s", "verdict");

  CompressOptions options;  // paper defaults, speed preference
  const WriteStrategy strategies[] = {WriteStrategy::kRaw,
                                      WriteStrategy::kZlib,
                                      WriteStrategy::kBzip2,
                                      WriteStrategy::kIsobar};
  double best_time = 1e300;
  const char* best = "none";
  for (WriteStrategy strategy : strategies) {
    auto report = SimulateInSituWrite(strategy, options, dataset->bytes(),
                                      dataset->width(), bandwidth);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    const double ratio = static_cast<double>(report->raw_bytes) /
                         static_cast<double>(report->stored_bytes);
    const bool fits = report->overlapped_seconds <= interval;
    std::printf("%-8s %10.2f %10.3f %12.3f %12.3f  %s\n",
                std::string(WriteStrategyToString(strategy)).c_str(),
                report->stored_bytes / 1e6, ratio, report->serial_seconds(),
                report->overlapped_seconds,
                fits ? "meets deadline" : "MISSES deadline");
    if (report->overlapped_seconds < best_time) {
      best_time = report->overlapped_seconds;
      best = WriteStrategyToString(strategy).data();
    }
  }
  std::printf("\nfastest end-to-end strategy at this bandwidth: %s "
              "(%.3f s per checkpoint)\n", best, best_time);
  return 0;
}
