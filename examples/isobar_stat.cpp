// isobar_stat: inspector for the telemetry artifacts the other tools
// write — the other half of the observability loop. Everything it reads
// is parsed with the strict telemetry JSON reader, so the exporters are
// continuously validated by their own consumer.
//
//   ./isobar_stat print <metrics.json>
//       Pretty-prints a metrics document (either the bare MetricsToJson
//       output or the combined --metrics-json report; the "metrics"
//       member is unwrapped automatically): counters as a name/value
//       table, histograms with count, mean, and interpolated
//       p50/p90/p99.
//
//   ./isobar_stat diff <before.json> <after.json>
//       Compares two metrics snapshots of the same workload: counter
//       deltas (new counters show as +value) and per-histogram shifts of
//       count, mean, and the percentiles — the regression-hunting view.
//
//   ./isobar_stat timeline <trace.json> [--top=N]
//       Summarizes a --trace-timeline Chrome trace-event file: per-stage
//       self time (each slice minus its nested children), per-worker
//       utilization over the traced interval, and the top-N longest
//       chunk slices (default 10).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "io/file_io.h"
#include "telemetry/json_reader.h"

namespace {

using isobar::telemetry::JsonValue;
using isobar::telemetry::ParseJson;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s print <metrics.json>\n"
               "       %s diff <before.json> <after.json>\n"
               "       %s timeline <trace.json> [--top=N]\n"
               "print     pretty-prints a metrics snapshot (bare or combined\n"
               "          --metrics-json report)\n"
               "diff      counter deltas and histogram percentile shifts\n"
               "          between two snapshots\n"
               "timeline  per-stage self time, per-worker utilization, and\n"
               "          the longest chunks of a --trace-timeline file\n",
               argv0, argv0, argv0);
  return 2;
}

/// Loads and parses one JSON document, reporting parse errors with the
/// file name prepended. Returns false on any failure.
bool LoadJson(const char* path, JsonValue* out) {
  auto bytes = isobar::ReadFileToBytes(path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", path,
                 bytes.status().ToString().c_str());
    return false;
  }
  auto parsed = ParseJson(std::string_view(
      reinterpret_cast<const char*>(bytes->data()), bytes->size()));
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

/// A combined --metrics-json report nests the metrics document under
/// "metrics"; a bare MetricsToJson document is already the metrics.
const JsonValue* UnwrapMetrics(const JsonValue& doc) {
  if (const JsonValue* nested = doc.Find("metrics")) return nested;
  if (doc.Find("counters") != nullptr || doc.Find("histograms") != nullptr) {
    return &doc;
  }
  return nullptr;
}

// --- print ---------------------------------------------------------------

int Print(const char* path) {
  JsonValue doc;
  if (!LoadJson(path, &doc)) return 1;
  const JsonValue* metrics = UnwrapMetrics(doc);
  if (metrics == nullptr) {
    std::fprintf(stderr, "%s: not a metrics document\n", path);
    return 1;
  }
  if (const JsonValue* counters = metrics->Find("counters")) {
    std::printf("counters:\n");
    for (const auto& [name, value] : counters->object_members()) {
      std::printf("  %-44s %14.0f\n", name.c_str(), value.NumberOr(0));
    }
  }
  if (const JsonValue* histograms = metrics->Find("histograms")) {
    std::printf("histograms:\n");
    std::printf("  %-36s %10s %12s %12s %12s %12s\n", "name", "count",
                "mean", "p50", "p90", "p99");
    for (const JsonValue& h : histograms->array_items()) {
      std::printf("  %-36s %10.0f %12.1f %12.1f %12.1f %12.1f\n",
                  h.FieldStringOr("name", "?").c_str(),
                  h.FieldNumberOr("count", 0), h.FieldNumberOr("mean", 0),
                  h.FieldNumberOr("p50", 0), h.FieldNumberOr("p90", 0),
                  h.FieldNumberOr("p99", 0));
    }
  }
  return 0;
}

// --- diff ----------------------------------------------------------------

int Diff(const char* before_path, const char* after_path) {
  JsonValue before_doc, after_doc;
  if (!LoadJson(before_path, &before_doc)) return 1;
  if (!LoadJson(after_path, &after_doc)) return 1;
  const JsonValue* before = UnwrapMetrics(before_doc);
  const JsonValue* after = UnwrapMetrics(after_doc);
  if (before == nullptr || after == nullptr) {
    std::fprintf(stderr, "inputs are not metrics documents\n");
    return 1;
  }

  // Counter deltas over the union of names; unchanged counters are
  // omitted so the interesting rows stand out.
  std::map<std::string, std::pair<double, double>> counters;
  if (const JsonValue* c = before->Find("counters")) {
    for (const auto& [name, v] : c->object_members()) {
      counters[name].first = v.NumberOr(0);
    }
  }
  if (const JsonValue* c = after->Find("counters")) {
    for (const auto& [name, v] : c->object_members()) {
      counters[name].second = v.NumberOr(0);
    }
  }
  std::printf("counters (delta = after - before):\n");
  bool any = false;
  for (const auto& [name, values] : counters) {
    const double delta = values.second - values.first;
    if (delta == 0) continue;
    any = true;
    std::printf("  %-44s %+14.0f  (%.0f -> %.0f)\n", name.c_str(), delta,
                values.first, values.second);
  }
  if (!any) std::printf("  (no counter changed)\n");

  // Histogram shifts: count delta plus mean/percentile movement.
  std::map<std::string, std::pair<const JsonValue*, const JsonValue*>> hists;
  if (const JsonValue* h = before->Find("histograms")) {
    for (const JsonValue& item : h->array_items()) {
      hists[item.FieldStringOr("name", "?")].first = &item;
    }
  }
  if (const JsonValue* h = after->Find("histograms")) {
    for (const JsonValue& item : h->array_items()) {
      hists[item.FieldStringOr("name", "?")].second = &item;
    }
  }
  std::printf("histograms:\n");
  std::printf("  %-36s %11s %12s %12s %12s %12s\n", "name", "count",
              "mean", "p50", "p90", "p99");
  auto shift = [](const JsonValue* b, const JsonValue* a, const char* key) {
    const double from = b == nullptr ? 0 : b->FieldNumberOr(key, 0);
    const double to = a == nullptr ? 0 : a->FieldNumberOr(key, 0);
    return to - from;
  };
  any = false;
  for (const auto& [name, pair] : hists) {
    const auto [b, a] = pair;
    const double count_delta = shift(b, a, "count");
    const double p50 = shift(b, a, "p50");
    const double p90 = shift(b, a, "p90");
    const double p99 = shift(b, a, "p99");
    if (count_delta == 0 && p50 == 0 && p90 == 0 && p99 == 0) continue;
    any = true;
    std::printf("  %-36s %+11.0f %+12.1f %+12.1f %+12.1f %+12.1f%s\n",
                name.c_str(), count_delta, shift(b, a, "mean"), p50, p90,
                p99,
                b == nullptr ? "  (new)" : (a == nullptr ? "  (gone)" : ""));
  }
  if (!any) std::printf("  (no histogram changed)\n");
  return 0;
}

// --- timeline ------------------------------------------------------------

/// One "X" slice from the trace, times in microseconds (the trace-event
/// unit; fractional part preserves the nanosecond precision).
struct Slice {
  std::string name;
  double start = 0;
  double dur = 0;
  uint64_t chunk = 0;  ///< args.chunk + 1, 0 when untagged.
  double end() const { return start + dur; }
};

struct StageStat {
  double self_us = 0;
  double total_us = 0;
  uint64_t count = 0;
};

int Timeline(int argc, char** argv) {
  size_t top_n = 10;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--top=", 6) == 0) {
      top_n = static_cast<size_t>(std::strtoull(argv[i] + 6, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  JsonValue doc;
  if (!LoadJson(argv[2], &doc)) return 1;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no traceEvents array (not a Chrome trace)\n",
                 argv[2]);
    return 1;
  }

  std::map<uint64_t, std::string> thread_names;
  std::map<uint64_t, std::vector<Slice>> threads;
  for (const JsonValue& e : events->array_items()) {
    const std::string ph = e.FieldStringOr("ph", "");
    const uint64_t tid =
        static_cast<uint64_t>(e.FieldNumberOr("tid", 0));
    if (ph == "M") {
      if (const JsonValue* args = e.Find("args")) {
        thread_names[tid] = args->FieldStringOr("name", "");
      }
      continue;
    }
    if (ph != "X") continue;  // instants don't carry duration
    Slice slice;
    slice.name = e.FieldStringOr("name", "?");
    slice.start = e.FieldNumberOr("ts", 0);
    slice.dur = e.FieldNumberOr("dur", 0);
    if (const JsonValue* args = e.Find("args")) {
      if (const JsonValue* chunk = args->Find("chunk")) {
        slice.chunk = static_cast<uint64_t>(chunk->NumberOr(0)) + 1;
      }
    }
    threads[tid].push_back(std::move(slice));
  }
  if (threads.empty()) {
    std::fprintf(stderr, "%s: no complete events\n", argv[2]);
    return 1;
  }

  // Walk each thread's slices in start order with an enclosing-slice
  // stack: a slice contained in the previous unfinished one is a child
  // (its duration leaves the parent's self time); a top-level slice is
  // worker busy time.
  std::map<std::string, StageStat> stages;
  std::map<uint64_t, double> busy_us;
  double trace_begin = 0, trace_end = 0;
  bool first_slice = true;
  std::vector<Slice> longest_chunks;
  for (auto& [tid, slices] : threads) {
    std::sort(slices.begin(), slices.end(), [](const Slice& a, const Slice& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.dur > b.dur;  // parent sorts before same-start child
    });
    struct Open {
      const Slice* slice;
      double child_us = 0;
    };
    std::vector<Open> stack;
    auto close_until = [&](double start) {
      while (!stack.empty() &&
             stack.back().slice->end() <= start + 1e-9) {
        StageStat& stat = stages[stack.back().slice->name];
        stat.self_us += stack.back().slice->dur - stack.back().child_us;
        stack.pop_back();
      }
    };
    for (const Slice& slice : slices) {
      close_until(slice.start);
      if (first_slice || slice.start < trace_begin) trace_begin = slice.start;
      if (first_slice || slice.end() > trace_end) trace_end = slice.end();
      first_slice = false;
      StageStat& stat = stages[slice.name];
      stat.total_us += slice.dur;
      stat.count += 1;
      if (stack.empty()) {
        busy_us[tid] += slice.dur;
      } else {
        stack.back().child_us += slice.dur;
      }
      stack.push_back(Open{&slice});
      if (slice.chunk != 0 &&
          (slice.name == "compress.chunk" ||
           slice.name == "decompress.chunk")) {
        longest_chunks.push_back(slice);
      }
    }
    close_until(trace_end + 1);
  }

  const double span_us = trace_end - trace_begin;
  std::printf("trace: %zu threads over %.3f ms\n", threads.size(),
              span_us / 1e3);

  std::printf("per-stage self time (slice minus nested children):\n");
  std::printf("  %-24s %8s %12s %12s %7s\n", "stage", "count", "self ms",
              "total ms", "self%");
  std::vector<std::pair<std::string, StageStat>> by_self(stages.begin(),
                                                         stages.end());
  std::sort(by_self.begin(), by_self.end(),
            [](const auto& a, const auto& b) {
              return a.second.self_us > b.second.self_us;
            });
  double all_self = 0;
  for (const auto& [name, stat] : by_self) all_self += stat.self_us;
  for (const auto& [name, stat] : by_self) {
    std::printf("  %-24s %8llu %12.3f %12.3f %6.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(stat.count),
                stat.self_us / 1e3, stat.total_us / 1e3,
                all_self > 0 ? 100.0 * stat.self_us / all_self : 0.0);
  }

  std::printf("per-worker utilization (busy / traced interval):\n");
  for (const auto& [tid, slices] : threads) {
    const auto name_it = thread_names.find(tid);
    const std::string label =
        name_it != thread_names.end() && !name_it->second.empty()
            ? name_it->second
            : "thread-" + std::to_string(tid);
    const double busy = busy_us.count(tid) ? busy_us.at(tid) : 0;
    std::printf("  %-12s %10.3f ms busy  %6.1f%%  (%zu slices)\n",
                label.c_str(), busy / 1e3,
                span_us > 0 ? 100.0 * busy / span_us : 0.0, slices.size());
  }

  if (!longest_chunks.empty() && top_n > 0) {
    const size_t top = std::min(top_n, longest_chunks.size());
    std::partial_sort(longest_chunks.begin(), longest_chunks.begin() + top,
                      longest_chunks.end(),
                      [](const Slice& a, const Slice& b) {
                        return a.dur > b.dur;
                      });
    std::printf("longest chunks:\n");
    for (size_t i = 0; i < top; ++i) {
      const Slice& slice = longest_chunks[i];
      std::printf("  chunk %llu: %10.3f ms  (%s)\n",
                  static_cast<unsigned long long>(slice.chunk - 1),
                  slice.dur / 1e3, slice.name.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "print") == 0) return Print(argv[2]);
  if (argc == 4 && std::strcmp(argv[1], "diff") == 0) {
    return Diff(argv[2], argv[3]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "timeline") == 0) {
    return Timeline(argc, argv);
  }
  return Usage(argv[0]);
}
