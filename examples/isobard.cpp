// isobard: the ISOBAR compression-as-a-service daemon. Serves concurrent
// compress/decompress jobs over a Unix or TCP socket using the
// length-prefixed binary protocol of docs/SERVING.md, with bounded-queue
// admission control (saturation answers BUSY instead of buffering) and
// live telemetry snapshots via the STATS op.
//
//   ./isobard --unix=/tmp/isobard.sock [options]
//   ./isobard --tcp=7421 [options]           # 127.0.0.1 only; 0 = ephemeral
//
// Options:
//   --threads=N        worker threads (0 = hardware concurrency)
//   --queue-depth=N    admitted-but-waiting job bound (default 64)
//   --per-conn=N       in-flight jobs per connection (default 8)
//   --max-payload=N    per-frame payload cap in bytes (default 256 MiB)
//   --max-conns=N      concurrent connections (default 64)
//   --quiet            suppress the startup/shutdown banner
//
// The daemon exits on SIGINT/SIGTERM (drains running jobs first) or when
// a client sends the shutdown op (drains queued jobs and flushes every
// pending response first). Drive it with isobar_loadgen; read its STATS
// snapshots with `isobar_stat print`.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "telemetry/metrics.h"

namespace {

isobar::server::IsobarServer* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: a single write() on the server's wake pipe.
  if (g_server != nullptr) g_server->RequestStop();
}

int Usage() {
  std::fprintf(stderr,
               "usage: isobard --unix=<path> | --tcp=<port> [--threads=N]\n"
               "               [--queue-depth=N] [--per-conn=N]\n"
               "               [--max-payload=BYTES] [--max-conns=N] "
               "[--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  isobar::server::ServerOptions options;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--unix=", 7) == 0) {
      options.unix_socket_path = arg + 7;
    } else if (std::strncmp(arg, "--tcp=", 6) == 0) {
      options.listen_tcp = true;
      options.tcp_port = static_cast<uint16_t>(std::atoi(arg + 6));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.jobs.num_threads = static_cast<uint32_t>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--queue-depth=", 14) == 0) {
      options.jobs.max_queue_depth =
          static_cast<size_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--per-conn=", 11) == 0) {
      options.jobs.max_inflight_per_connection =
          static_cast<size_t>(std::atoll(arg + 11));
    } else if (std::strncmp(arg, "--max-payload=", 14) == 0) {
      options.max_payload_bytes = static_cast<uint64_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--max-conns=", 12) == 0) {
      options.max_connections = static_cast<size_t>(std::atoll(arg + 12));
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage();
    }
  }
  if (options.unix_socket_path.empty() && !options.listen_tcp) return Usage();

  // The daemon is an observability endpoint: STATS snapshots are only
  // meaningful with the metrics registry recording.
  isobar::telemetry::SetEnabled(true);

  isobar::server::IsobarServer server(options);
  const isobar::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "isobard: %s\n", started.ToString().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!quiet) {
    if (!options.unix_socket_path.empty()) {
      std::fprintf(stderr, "isobard: serving on %s (%zu workers, queue %zu)\n",
                   options.unix_socket_path.c_str(),
                   server.job_queue().worker_count(),
                   options.jobs.max_queue_depth);
    } else {
      std::fprintf(stderr,
                   "isobard: serving on 127.0.0.1:%u (%zu workers, queue "
                   "%zu)\n",
                   server.bound_tcp_port(), server.job_queue().worker_count(),
                   options.jobs.max_queue_depth);
    }
  }

  server.Wait();
  g_server = nullptr;
  server.Stop();

  if (!quiet) {
    const auto stats = server.job_queue().Stats();
    std::fprintf(stderr,
                 "isobard: done (admitted %llu, completed %llu, rejected "
                 "%llu)\n",
                 static_cast<unsigned long long>(stats.admitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.rejected_total()));
  }
  return 0;
}
