// isobar_loadgen: load-generator client for isobard. Replays a mixed
// compress/decompress workload from N pipelined connections, optionally
// paced toward a target request rate, and reports requests/s plus
// latency percentiles — the client half of the saturation story.
//
//   ./isobar_loadgen --unix=/tmp/isobard.sock [options]
//   ./isobar_loadgen --tcp=7421 [options]
//
// Workload options:
//   --connections=N     worker threads / connections (default 4)
//   --pipeline=N        outstanding requests per connection (default 4)
//   --duration=SECS     run length (default 5)
//   --rate=RPS          aggregate pacing target, 0 = closed loop (default)
//   --mix=F             compress fraction in [0,1] (default 0.7)
//   --elements=N        elements per payload (default 4096)
//   --width=N           element width in bytes (default 8)
//   --codec=NAME        forced solver (any registered codec name, or auto;
//                       default zlib — auto disables --verify)
//   --no-verify         skip byte-identity checks against the library
//   --seed=N            workload seed (default 42)
//   --timeout=SECS      per-receive timeout (default 30)
//
// Output options:
//   --json=PATH         write the report JSON ("-" = stdout)
//   --stats-out=PATH    fetch a STATS snapshot after the run and save the
//                       metrics JSON (readable by `isobar_stat print`)
//   --shutdown          send the shutdown op after the run (and after
//                       --stats-out)
//   --quiet             suppress the human-readable summary
//
// Exit status: 0 on a clean run, 1 when any protocol error, verify
// failure, or unanswered request was observed — so CI can assert "zero
// protocol errors" by exit code alone.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "compressors/registry.h"
#include "io/file_io.h"
#include "server/loadgen.h"
#include "util/bytes.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: isobar_loadgen --unix=<path> | --tcp=<port>\n"
      "  [--connections=N] [--pipeline=N] [--duration=SECS] [--rate=RPS]\n"
      "  [--mix=F] [--elements=N] [--width=N] [--codec=NAME] [--no-verify]\n"
      "  [--seed=N] [--timeout=SECS] [--json=PATH] [--stats-out=PATH]\n"
      "  [--shutdown] [--quiet]\n"
      "--codec accepts %s, or auto.\n",
      isobar::CodecNameList().c_str());
  return 2;
}

bool WriteOut(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  const isobar::ByteSpan bytes(
      reinterpret_cast<const uint8_t*>(content.data()), content.size());
  const isobar::Status st = isobar::WriteBytesToFile(path, bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "isobar_loadgen: cannot write %s: %s\n",
                 path.c_str(), st.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  isobar::server::LoadgenOptions options;
  std::string json_path;
  std::string stats_path;
  bool shutdown_after = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--unix=", 7) == 0) {
      options.unix_socket_path = arg + 7;
    } else if (std::strncmp(arg, "--tcp=", 6) == 0) {
      options.use_tcp = true;
      options.tcp_port = static_cast<uint16_t>(std::atoi(arg + 6));
    } else if (std::strncmp(arg, "--connections=", 14) == 0) {
      options.connections = static_cast<size_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--pipeline=", 11) == 0) {
      options.pipeline_depth = static_cast<size_t>(std::atoll(arg + 11));
    } else if (std::strncmp(arg, "--duration=", 11) == 0) {
      options.duration_seconds = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--rate=", 7) == 0) {
      options.target_rps = std::atof(arg + 7);
    } else if (std::strncmp(arg, "--mix=", 6) == 0) {
      options.compress_fraction = std::atof(arg + 6);
    } else if (std::strncmp(arg, "--elements=", 11) == 0) {
      options.payload_elements = static_cast<size_t>(std::atoll(arg + 11));
    } else if (std::strncmp(arg, "--width=", 8) == 0) {
      options.width = static_cast<size_t>(std::atoll(arg + 8));
    } else if (std::strncmp(arg, "--codec=", 8) == 0) {
      const std::string name = arg + 8;
      if (name == "auto") {
        options.codec.reset();
        options.linearization.reset();
        options.verify = false;
      } else {
        auto codec = isobar::GetCodecByName(name);
        if (!codec.ok()) {
          std::fprintf(stderr, "isobar_loadgen: unknown codec '%s'\n",
                       name.c_str());
          return Usage();
        }
        options.codec = (*codec)->id();
      }
    } else if (std::strcmp(arg, "--no-verify") == 0) {
      options.verify = false;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--timeout=", 10) == 0) {
      options.recv_timeout_seconds = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--stats-out=", 12) == 0) {
      stats_path = arg + 12;
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      shutdown_after = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage();
    }
  }
  if (options.unix_socket_path.empty() && !options.use_tcp) return Usage();

  auto run = isobar::server::RunLoadgen(options);
  if (!run.ok()) {
    std::fprintf(stderr, "isobar_loadgen: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const isobar::server::LoadgenReport& report = *run;

  if (!quiet) {
    std::fprintf(stderr,
                 "%llu requests in %.2fs: %.0f req/s | ok %llu, busy %llu, "
                 "errors %llu, protocol errors %llu\n",
                 static_cast<unsigned long long>(report.requests_sent),
                 report.wall_seconds, report.requests_per_second,
                 static_cast<unsigned long long>(report.ok),
                 static_cast<unsigned long long>(report.busy),
                 static_cast<unsigned long long>(report.errors),
                 static_cast<unsigned long long>(report.protocol_errors));
    std::fprintf(stderr,
                 "latency us: p50 %.0f, p90 %.0f, p99 %.0f, max %.0f "
                 "(mean %.0f over %llu ok)\n",
                 report.latency_p50_us, report.latency_p90_us,
                 report.latency_p99_us, report.latency_max_us,
                 report.latency_mean_us,
                 static_cast<unsigned long long>(report.ok));
    if (report.verify_failures != 0 || report.unanswered != 0) {
      std::fprintf(stderr, "verify failures %llu, unanswered %llu\n",
                   static_cast<unsigned long long>(report.verify_failures),
                   static_cast<unsigned long long>(report.unanswered));
    }
  }

  bool io_ok = true;
  if (!json_path.empty()) io_ok &= WriteOut(json_path, report.ToJson());
  if (!stats_path.empty()) {
    auto stats = isobar::server::FetchServerStats(options);
    if (!stats.ok()) {
      std::fprintf(stderr, "isobar_loadgen: STATS failed: %s\n",
                   stats.status().ToString().c_str());
      io_ok = false;
    } else {
      io_ok &= WriteOut(stats_path, *stats);
    }
  }
  if (shutdown_after) {
    const isobar::Status st =
        isobar::server::RequestServerShutdown(options);
    if (!st.ok()) {
      std::fprintf(stderr, "isobar_loadgen: shutdown failed: %s\n",
                   st.ToString().c_str());
      io_ok = false;
    }
  }

  const bool clean = report.protocol_errors == 0 &&
                     report.verify_failures == 0 && report.unanswered == 0 &&
                     io_ok;
  return clean ? 0 : 1;
}
