// Reproduces Table VI: improvement of the ISOBAR-Sp (speed) preference on
// the improvable double/integer datasets — the linearization strategy the
// EUPA-selector chose, the compression-ratio improvement over the
// highest-throughput standard alternative, and the speed-up over it.
#include "bench_common.h"

#include "linearize/transpose.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table VI: improvement of ISOBAR-Sp preference "
              "(%.1f MB per dataset)\n", args.mb);
  std::printf("%-15s | %-6s %8s %8s %-6s | %-6s %8s %8s\n", "", "LS",
              "dCR(%)", "Sp", "codec", "LS", "dCR(%)", "Sp");
  std::printf("%-15s | %31s | %24s\n", "Dataset", "measured", "paper");
  PrintRule(78);

  const struct {
    const char* name;
    const char* paper_ls;
    double paper_dcr, paper_sp;
  } rows[] = {
      {"gts_chkp_zeon", "Row", 9.62, 7.447},
      {"gts_chkp_zion", "Row", 10.15, 8.050},
      {"gts_phi_l", "Row", 11.43, 4.673},
      {"gts_phi_nl", "Row", 10.72, 4.653},
      {"xgc_iphase", "Column", 15.35, 11.450},
      {"flash_gamc", "Row", 18.85, 12.576},
      {"flash_velx", "Row", 17.52, 35.899},
      {"flash_vely", "Row", 15.15, 37.032},
      {"msg_lu", "Column", 17.88, 16.199},
      {"msg_sp", "Column", 17.267, 6.087},
      {"msg_sweep3d", "Column", 17.75, 5.859},
      {"num_brain", "Row", 16.35, 16.168},
      {"num_comet", "Row", 4.74, 1.533},
      {"num_control", "Row", 6.53, 4.405},
      {"obs_info", "Row", 7.95, 14.845},
      {"obs_temp", "Row", 8.70, 6.573},
  };

  for (const auto& row : rows) {
    auto spec = FindDatasetSpec(row.name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);
    const SolverRun zlib = RunSolver(CodecId::kZlib, dataset.bytes());
    const SolverRun bzip2 = RunSolver(CodecId::kBzip2, dataset.bytes());
    const IsobarRun isobar =
        RunIsobar(SpeedOptions(), dataset.bytes(), dataset.width());

    // Eq. 3 footnote: "compared to the alternative with the highest
    // compression throughput".
    const SolverRun& fastest =
        zlib.compress_mbps >= bzip2.compress_mbps ? zlib : bzip2;
    const double dcr = (isobar.ratio() / fastest.ratio - 1.0) * 100.0;
    const double sp = isobar.compress_mbps() / fastest.compress_mbps;
    std::printf("%-15s | %-6s %8.2f %8.3f %-6s | %-6s %8.2f %8.3f\n",
                row.name,
                std::string(LinearizationToString(
                                isobar.stats.decision.linearization))
                    .c_str(),
                dcr, sp,
                std::string(CodecIdToString(isobar.stats.decision.codec))
                    .c_str(),
                row.paper_ls, row.paper_dcr, row.paper_sp);
  }
  std::printf(
      "\nPaper shape: every improvable dataset gains ratio (dCR > 0) while\n"
      "compressing several times faster than the fastest standard solver;\n"
      "the EUPA-selector chose zlib for every row.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
