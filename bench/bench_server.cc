// bench_server: saturation sweep for the isobard serving path. Starts an
// in-process IsobarServer on a temporary unix socket, then runs the
// loadgen workload at 1..8 worker connections (closed loop) and reports
// requests/s plus latency percentiles per point. The snapshot lives in
// BENCH_server.json; scripts/ci.sh server runs a shortened sweep.
//
// Plain main (no google-benchmark): each point is one wall-clock loadgen
// run, so the framework's repeat/estimate machinery adds nothing here.
//
//   ./bench_server [--duration=SECS] [--elements=N] [--max-workers=N]
//                  [--threads=N] [--json=PATH]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "io/file_io.h"
#include "server/loadgen.h"
#include "server/server.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"

namespace {

struct SweepPoint {
  size_t workers = 0;
  isobar::server::LoadgenReport report;
};

std::string SweepToJson(const std::vector<SweepPoint>& points,
                        const isobar::server::ServerOptions& server,
                        double duration_seconds, size_t elements) {
  std::string json = "{\"bench\":\"server_saturation\",";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"server_threads\":%zu,\"queue_depth\":%zu,"
                "\"duration_seconds\":%.2f,\"payload_elements\":%zu,"
                "\"sweep\":[",
                static_cast<size_t>(server.jobs.num_threads),
                server.jobs.max_queue_depth, duration_seconds, elements);
  json += buffer;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i != 0) json += ',';
    const auto& p = points[i];
    std::snprintf(buffer, sizeof(buffer), "{\"workers\":%zu,\"report\":",
                  p.workers);
    json += buffer;
    json += p.report.ToJson();
    json += '}';
  }
  json += "]}";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_seconds = 2.0;
  size_t elements = 4096;
  size_t max_workers = 8;
  uint32_t threads = 0;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--duration=", 11) == 0) {
      duration_seconds = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--elements=", 11) == 0) {
      elements = static_cast<size_t>(std::atoll(arg + 11));
    } else if (std::strncmp(arg, "--max-workers=", 14) == 0) {
      max_workers = static_cast<size_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else {
      std::fprintf(stderr,
                   "usage: bench_server [--duration=SECS] [--elements=N] "
                   "[--max-workers=N] [--threads=N] [--json=PATH]\n");
      return 2;
    }
  }

  isobar::telemetry::SetEnabled(true);

  isobar::server::ServerOptions server_options;
  server_options.unix_socket_path =
      "/tmp/isobar_bench_server." + std::to_string(getpid()) + ".sock";
  server_options.jobs.num_threads = threads;
  isobar::server::IsobarServer server(server_options);
  const isobar::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_server: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("# isobard saturation sweep: %.1fs per point, %zu elements, "
              "%zu server workers\n",
              duration_seconds, elements, server.job_queue().worker_count());
  std::printf("%-8s %12s %10s %10s %10s %8s %8s\n", "workers", "req/s",
              "p50_us", "p90_us", "p99_us", "busy", "errors");

  std::vector<SweepPoint> points;
  int exit_code = 0;
  for (size_t workers = 1; workers <= max_workers; ++workers) {
    isobar::server::LoadgenOptions load;
    load.unix_socket_path = server_options.unix_socket_path;
    load.connections = workers;
    load.duration_seconds = duration_seconds;
    load.payload_elements = elements;
    load.seed = 42 + workers;
    auto run = isobar::server::RunLoadgen(load);
    if (!run.ok()) {
      std::fprintf(stderr, "bench_server: sweep point %zu failed: %s\n",
                   workers, run.status().ToString().c_str());
      exit_code = 1;
      break;
    }
    if (run->protocol_errors != 0 || run->verify_failures != 0 ||
        run->unanswered != 0) {
      std::fprintf(stderr,
                   "bench_server: point %zu unclean (protocol %llu, verify "
                   "%llu, unanswered %llu)\n",
                   workers,
                   static_cast<unsigned long long>(run->protocol_errors),
                   static_cast<unsigned long long>(run->verify_failures),
                   static_cast<unsigned long long>(run->unanswered));
      exit_code = 1;
    }
    std::printf("%-8zu %12.0f %10.0f %10.0f %10.0f %8llu %8llu\n", workers,
                run->requests_per_second, run->latency_p50_us,
                run->latency_p90_us, run->latency_p99_us,
                static_cast<unsigned long long>(run->busy),
                static_cast<unsigned long long>(run->errors));
    points.push_back({workers, *run});
  }

  server.RequestStop();
  server.Wait();
  server.Stop();

  if (!json_path.empty() && exit_code == 0) {
    const std::string json =
        SweepToJson(points, server_options, duration_seconds, elements);
    const isobar::ByteSpan bytes(
        reinterpret_cast<const uint8_t*>(json.data()), json.size());
    const isobar::Status st = isobar::WriteBytesToFile(json_path, bytes);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_server: cannot write %s: %s\n",
                   json_path.c_str(), st.ToString().c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}
