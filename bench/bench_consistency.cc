// Reproduces §III.F: consistent improvement over an entire simulation.
// Runs the GTS linear and nonlinear potential-fluctuation profiles over
// consecutive time steps and reports mean and standard deviation of the
// ratio improvement and speed-up, plus whether the EUPA choice and the
// improvable verdict stayed constant.
#include "bench_common.h"

#include <cmath>

#include "datagen/time_series.h"
#include "linearize/transpose.h"

namespace isobar::bench {
namespace {

struct Series {
  double mean = 0.0, stddev = 0.0;
};

Series Reduce(const std::vector<double>& values) {
  Series s;
  for (double v : values) s.mean += v;
  s.mean /= static_cast<double>(values.size());
  for (double v : values) s.stddev += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(s.stddev / static_cast<double>(values.size()));
  return s;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const uint64_t elements_per_step =
      static_cast<uint64_t>(args.mb * 1e6 / 8.0);

  std::printf("Section III.F: consistency over %d simulation time steps "
              "(%.1f MB per step)\n\n", args.steps, args.mb);
  std::printf("Paper: linear dCR 14.4%% +/- 1.8%%, Sp 5.952 +/- 0.065;\n");
  std::printf("       nonlinear dCR 13.4%% +/- 2.7%%, Sp 3.749 +/- 0.053;\n");
  std::printf("       identical EUPA choice and improvable verdict at every "
              "step.\n\n");

  for (const char* name : {"gts_phi_l", "gts_phi_nl"}) {
    auto spec = FindDatasetSpec(name);
    if (!spec.ok()) return 1;
    TimeSeriesGenerator series(**spec, elements_per_step);

    std::vector<double> dcr, sp;
    int improvable_steps = 0;
    bool same_choice = true;
    CodecId first_codec{};
    Linearization first_lin{};

    for (int t = 0; t < args.steps; ++t) {
      auto step = series.Step(static_cast<uint64_t>(t));
      if (!step.ok()) return 1;
      const SolverRun zlib = RunSolver(CodecId::kZlib, step->bytes());
      const SolverRun bzip2 = RunSolver(CodecId::kBzip2, step->bytes());
      const IsobarRun isobar =
          RunIsobar(SpeedOptions(), step->bytes(), step->width());

      const SolverRun& fastest =
          zlib.compress_mbps >= bzip2.compress_mbps ? zlib : bzip2;
      dcr.push_back((isobar.ratio() / fastest.ratio - 1.0) * 100.0);
      sp.push_back(isobar.compress_mbps() / fastest.compress_mbps);
      if (isobar.stats.improvable) ++improvable_steps;
      if (t == 0) {
        first_codec = isobar.stats.decision.codec;
        first_lin = isobar.stats.decision.linearization;
      } else if (isobar.stats.decision.codec != first_codec ||
                 isobar.stats.decision.linearization != first_lin) {
        same_choice = false;
      }
    }

    const Series dcr_stats = Reduce(dcr);
    const Series sp_stats = Reduce(sp);
    std::printf("%-12s dCR %6.2f%% +/- %.2f%%   Sp %6.3f +/- %.3f   "
                "improvable %d/%d   EUPA stable: %s (%s/%s)\n",
                name, dcr_stats.mean, dcr_stats.stddev, sp_stats.mean,
                sp_stats.stddev, improvable_steps, args.steps,
                YesNo(same_choice),
                std::string(CodecIdToString(first_codec)).c_str(),
                std::string(LinearizationToString(first_lin)).c_str());
  }
  std::printf(
      "\nShape check: low relative deviation of dCR and Sp across steps,\n"
      "every step improvable, one EUPA choice for the whole run.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
