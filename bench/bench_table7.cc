// Reproduces Table VII: improvement of the ISOBAR-CR (ratio) preference —
// chosen linearization, ratio improvement over the best-ratio standard
// alternative, and speed-up relative to that same alternative.
#include "bench_common.h"

#include "linearize/transpose.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table VII: improvement of ISOBAR-CR preference "
              "(%.1f MB per dataset)\n", args.mb);
  std::printf("%-15s | %-6s %8s %8s %-6s | %-6s %8s %8s\n", "", "LS",
              "dCR(%)", "Sp", "codec", "LS", "dCR(%)", "Sp");
  std::printf("%-15s | %31s | %24s\n", "Dataset", "measured", "paper");
  PrintRule(78);

  const struct {
    const char* name;
    const char* paper_ls;
    double paper_dcr, paper_sp;
  } rows[] = {
      {"gts_chkp_zeon", "Row", 13.65, 1.727},
      {"gts_chkp_zion", "Row", 13.69, 1.774},
      {"gts_phi_l", "Row", 13.93, 1.051},
      {"gts_phi_nl", "Row", 12.92, 1.092},
      {"xgc_iphase", "Column", 15.39, 1.160},
      {"flash_gamc", "Row", 20.79, 0.841},
      {"flash_velx", "Row", 18.51, 1.362},
      {"flash_vely", "Row", 16.21, 5.006},
      {"msg_lu", "Column", 22.80, 1.390},
      {"msg_sp", "Column", 19.60, 0.295},
      {"msg_sweep3d", "Column", 5.24, 1.410},
      {"num_brain", "Row", 19.92, 0.719},
      {"num_comet", "Row", 5.46, 1.319},
      {"num_control", "Row", 8.13, 0.847},
      {"obs_info", "Row", 6.512, 1.548},
      {"obs_temp", "Row", 10.34, 1.557},
  };

  for (const auto& row : rows) {
    auto spec = FindDatasetSpec(row.name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);
    const SolverRun zlib = RunSolver(CodecId::kZlib, dataset.bytes());
    const SolverRun bzip2 = RunSolver(CodecId::kBzip2, dataset.bytes());
    const IsobarRun isobar =
        RunIsobar(RatioOptions(), dataset.bytes(), dataset.width());

    // Eq. 3 footnote: "compared to the alternative with the best
    // compression ratio".
    const SolverRun& best = zlib.ratio >= bzip2.ratio ? zlib : bzip2;
    const double dcr = (isobar.ratio() / best.ratio - 1.0) * 100.0;
    const double sp = isobar.compress_mbps() / best.compress_mbps;
    std::printf("%-15s | %-6s %8.2f %8.3f %-6s | %-6s %8.2f %8.3f\n",
                row.name,
                std::string(LinearizationToString(
                                isobar.stats.decision.linearization))
                    .c_str(),
                dcr, sp,
                std::string(CodecIdToString(isobar.stats.decision.codec))
                    .c_str(),
                row.paper_ls, row.paper_dcr, row.paper_sp);
  }
  std::printf(
      "\nPaper shape: the ratio preference squeezes out a further ratio\n"
      "improvement (dCR > 0 everywhere) at speed-ups near 1x, since the\n"
      "chosen solver is the slower, better-compressing one.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
