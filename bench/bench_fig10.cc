// Reproduces Fig. 10: compression speed-up (Sp, Eq. 2, vs standard zlib)
// under the original, Hilbert-linearized, and random element orders —
// companion to Fig. 9, showing throughput is as order-robust as ratio.
#include "bench_common.h"

#include "linearize/hilbert.h"
#include "linearize/permutation.h"

namespace isobar::bench {
namespace {

constexpr const char* kDatasets[] = {"gts_phi_l",  "gts_chkp_zeon",
                                     "flash_velx", "flash_gamc",
                                     "msg_lu",     "num_brain"};

double SpeedUp(ByteSpan data, size_t width) {
  CompressOptions options = SpeedOptions();
  options.eupa.forced_codec = CodecId::kZlib;
  const IsobarRun isobar = RunIsobar(options, data, width);
  const SolverRun standard = RunSolver(CodecId::kZlib, data);
  return isobar.compress_mbps() / standard.compress_mbps;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Fig. 10: compression speed-up vs zlib under different data "
              "linearizations (%.1f MB per dataset)\n\n", args.mb);
  std::printf("%-15s %10s %10s %10s\n", "Dataset", "original", "hilbert",
              "random");
  PrintRule(48);

  for (const char* name : kDatasets) {
    auto spec = FindDatasetSpec(name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);

    const uint64_t n = dataset.element_count();
    uint32_t side = 1;
    while (static_cast<uint64_t>(side * 2) * (side * 2) <= n) side *= 2;
    const uint32_t dims[] = {side, side};
    Bytes hilbert;
    ByteSpan trimmed(dataset.data.data(),
                     static_cast<uint64_t>(side) * side * dataset.width());
    if (!HilbertReorder(trimmed, dataset.width(), dims, &hilbert).ok()) return 1;
    Bytes random;
    if (!ApplyPermutation(dataset.bytes(), dataset.width(),
                          RandomPermutation(n, 0xF16B), &random).ok()) {
      return 1;
    }

    std::printf("%-15s %10.2f %10.2f %10.2f\n", name,
                SpeedUp(dataset.bytes(), dataset.width()),
                SpeedUp(hilbert, dataset.width()),
                SpeedUp(random, dataset.width()));
  }
  std::printf(
      "\nPaper shape: the speed-up over standard zlib is essentially\n"
      "constant across orderings — partitioning cost and solver input size\n"
      "do not depend on element order.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
