// Reproduces Table VIII: ISOBAR-compress on the two single-precision
// (4-byte float) S3D datasets under both preferences, demonstrating the
// method is not tied to double-precision elements.
#include "bench_common.h"

#include "linearize/transpose.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table VIII: performance on single-precision datasets "
              "(%.1f MB per dataset)\n", args.mb);
  std::printf("%-10s %-10s | %-6s %8s %8s | %-6s %8s %8s\n", "", "", "LS",
              "dCR(%)", "Sp", "LS", "dCR(%)", "Sp");
  std::printf("%-10s %-10s | %24s | %24s\n", "Preference", "Dataset",
              "measured", "paper");
  PrintRule(74);

  const struct {
    Preference preference;
    const char* name;
    const char* paper_ls;
    double paper_dcr, paper_sp;
  } rows[] = {
      {Preference::kRatio, "s3d_temp", "Column", 42.08, 2.758},
      {Preference::kRatio, "s3d_vmag", "Row", 46.67, 2.552},
      {Preference::kSpeed, "s3d_temp", "Column", 37.05, 7.329},
      {Preference::kSpeed, "s3d_vmag", "Row", 34.79, 9.418},
  };

  for (const auto& row : rows) {
    auto spec = FindDatasetSpec(row.name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);
    const SolverRun zlib = RunSolver(CodecId::kZlib, dataset.bytes());
    const SolverRun bzip2 = RunSolver(CodecId::kBzip2, dataset.bytes());

    CompressOptions options = row.preference == Preference::kRatio
                                  ? RatioOptions()
                                  : SpeedOptions();
    const IsobarRun isobar =
        RunIsobar(options, dataset.bytes(), dataset.width());

    // CR preference compares against the better-ratio standard, speed
    // preference against the faster one (§III.E).
    const SolverRun& reference =
        row.preference == Preference::kRatio
            ? (zlib.ratio >= bzip2.ratio ? zlib : bzip2)
            : (zlib.compress_mbps >= bzip2.compress_mbps ? zlib : bzip2);
    const double dcr = (isobar.ratio() / reference.ratio - 1.0) * 100.0;
    const double sp = isobar.compress_mbps() / reference.compress_mbps;
    std::printf("%-10s %-10s | %-6s %8.2f %8.3f | %-6s %8.2f %8.3f\n",
                row.preference == Preference::kRatio ? "ISOBAR-CR"
                                                     : "ISOBAR-Sp",
                row.name,
                std::string(LinearizationToString(
                                isobar.stats.decision.linearization))
                    .c_str(),
                dcr, sp, row.paper_ls, row.paper_dcr, row.paper_sp);
  }
  std::printf(
      "\nPaper shape: both float datasets are identified as improvable and\n"
      "gain substantially in both ratio and throughput.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
