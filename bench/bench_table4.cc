// Reproduces Table IV: the ISOBAR-analyzer's predictions per dataset —
// hard-to-compress or not, the fraction of hard-to-compress bytes, and
// whether the dataset is improvable by partitioning.
#include "bench_common.h"

#include "core/analyzer.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table IV: ISOBAR-analyzer predictions (tau = 1.42, "
              "%.1f MB per dataset)\n", args.mb);
  std::printf("%-15s | %5s %10s %12s | %5s %10s %12s\n", "", "HTC?",
              "HTC bytes", "Improvable?", "HTC?", "HTC bytes", "Improvable?");
  std::printf("%-15s | %29s | %29s\n", "Dataset", "measured", "paper");
  PrintRule(79);

  const Analyzer analyzer;
  int matches = 0;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const Dataset dataset = Generate(spec, args);
    auto analysis = analyzer.Analyze(dataset.bytes(), dataset.width());
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.name.c_str(),
                   analysis.status().ToString().c_str());
      return 1;
    }
    // A dataset is "hard to compress" when the analyzer finds noise
    // byte-columns in it (HTC bytes > 0).
    const bool htc = analysis->htc_byte_fraction() > 0.0 &&
                     analysis->improvable();
    const bool improvable = analysis->improvable();
    if (improvable == spec.paper_verdict.improvable) ++matches;
    std::printf("%-15s | %5s %9.1f%% %12s | %5s %9.1f%% %12s\n",
                dataset.name.c_str(), YesNo(htc),
                improvable ? analysis->htc_byte_fraction() * 100.0 : 0.0,
                YesNo(improvable), YesNo(spec.paper_verdict.hard_to_compress),
                spec.paper_verdict.htc_bytes_percent,
                YesNo(spec.paper_verdict.improvable));
  }
  std::printf("\nVerdict agreement with the paper: %d / 24 datasets\n",
              matches);
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
