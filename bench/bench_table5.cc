// Reproduces Table V: per-dataset comparison of standard zlib and bzip2
// (CR + compression throughput), the ISOBAR-analysis throughput TP_A, and
// ISOBAR-compress under both end-user preferences. Non-improvable
// datasets print "NI", as in the paper.
#include "bench_common.h"

#include "core/analyzer.h"
#include "util/stopwatch.h"

namespace isobar::bench {
namespace {

// Pure analyzer throughput over the dataset (TP_A column).
double AnalysisThroughput(ByteSpan data, size_t width) {
  const Analyzer analyzer;
  Stopwatch timer;
  auto analysis = analyzer.Analyze(data, width);
  if (!analysis.ok()) return 0.0;
  return timer.ThroughputMBps(data.size());
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table V: performance comparison (%.1f MB per dataset)\n",
              args.mb);
  std::printf("%-15s | %6s %8s | %6s %8s | %8s | %6s %8s | %6s %8s\n",
              "", "CR", "TPc", "CR", "TPc", "TPa", "CR", "TPc", "CR", "TPc");
  std::printf("%-15s | %15s | %15s | %8s | %15s | %15s\n", "Dataset", "zlib",
              "bzip2", "analyze", "ISOBAR-CR", "ISOBAR-Sp");
  PrintRule(92);

  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const Dataset dataset = Generate(spec, args);
    const SolverRun zlib = RunSolver(CodecId::kZlib, dataset.bytes());
    const SolverRun bzip2 = RunSolver(CodecId::kBzip2, dataset.bytes());
    const double tpa = AnalysisThroughput(dataset.bytes(), dataset.width());

    const IsobarRun ratio_run =
        RunIsobar(RatioOptions(), dataset.bytes(), dataset.width());
    const IsobarRun speed_run =
        RunIsobar(SpeedOptions(), dataset.bytes(), dataset.width());

    if (ratio_run.stats.improvable) {
      std::printf(
          "%-15s | %6.3f %8.2f | %6.3f %8.2f | %8.1f | %6.3f %8.2f | %6.3f %8.2f\n",
          dataset.name.c_str(), zlib.ratio, zlib.compress_mbps, bzip2.ratio,
          bzip2.compress_mbps, tpa, ratio_run.ratio(),
          ratio_run.compress_mbps(), speed_run.ratio(),
          speed_run.compress_mbps());
    } else {
      std::printf(
          "%-15s | %6.3f %8.2f | %6.3f %8.2f | %8.1f | %6s %8s | %6s %8s\n",
          dataset.name.c_str(), zlib.ratio, zlib.compress_mbps, bzip2.ratio,
          bzip2.compress_mbps, tpa, "NI", "NI", "NI", "NI");
    }
  }
  std::printf(
      "\nPaper shape: 19 of 24 datasets improvable; on those, both ISOBAR\n"
      "columns beat the corresponding standard CR, and ISOBAR-Sp's\n"
      "throughput is a multiple of both standard solvers'.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
