// Reproduces Fig. 1: per-bit-position probability of the more common bit
// value for four representative datasets. Hard-to-compress datasets show
// long stretches of ~0.5 (coin-flip) positions in the mantissa; easy ones
// are predictable nearly everywhere.
//
// Output: a CSV block (bit position vs probability per dataset) suitable
// for plotting, followed by an ASCII sparkline per dataset. Bit positions
// follow the paper's convention: 1 = sign bit, then exponent, then
// mantissa (most significant first).
#include "bench_common.h"

#include "stats/bit_frequency.h"

namespace isobar::bench {
namespace {

// Reverses memory-order byte groups so position 1 is the sign bit of a
// little-endian IEEE value.
std::vector<double> PaperOrder(const BitFrequencyProfile& profile,
                               size_t width) {
  std::vector<double> out;
  out.reserve(profile.probability.size());
  for (size_t byte = width; byte-- > 0;) {
    for (size_t bit = 0; bit < 8; ++bit) {
      out.push_back(profile.probability[byte * 8 + bit]);
    }
  }
  return out;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const char* names[] = {"xgc_igid", "gts_chkp_zeon", "flash_gamc",
                         "msg_sppm"};

  std::vector<std::vector<double>> profiles;
  size_t max_bits = 0;
  for (const char* name : names) {
    auto spec = FindDatasetSpec(name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);
    auto profile = ComputeBitFrequency(dataset.bytes(), dataset.width());
    if (!profile.ok()) return 1;
    profiles.push_back(PaperOrder(*profile, dataset.width()));
    max_bits = std::max(max_bits, profiles.back().size());
  }

  std::printf("Fig. 1: bit-position probability profiles "
              "(%.1f MB per dataset)\n\n", args.mb);
  std::printf("bit,%s,%s,%s,%s\n", names[0], names[1], names[2], names[3]);
  for (size_t k = 0; k < max_bits; ++k) {
    std::printf("%zu", k + 1);
    for (const auto& profile : profiles) {
      if (k < profile.size()) {
        std::printf(",%.4f", profile[k]);
      } else {
        std::printf(",");
      }
    }
    std::printf("\n");
  }

  std::printf("\nSparklines (one char per bit; '#'=certain 1.0 ... '.'=0.5):\n");
  const char* ramp = ".:-=+*%#";
  for (size_t d = 0; d < profiles.size(); ++d) {
    std::printf("%-14s ", names[d]);
    for (double p : profiles[d]) {
      int level = static_cast<int>((p - 0.5) / 0.5 * 7.999);
      if (level < 0) level = 0;
      if (level > 7) level = 7;
      std::putchar(ramp[level]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: xgc_igid / gts_chkp_zeon / flash_gamc end in long\n"
      "runs of 0.5-probability mantissa bits (hard to compress), while\n"
      "msg_sppm stays predictable across nearly all 64 positions.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
