// Reproduces the Related Work comparison (§IV): PFOR / PFOR-DELTA
// (Zukowski et al., ICDE 2006) against the standard solvers and
// ISOBAR-compress. The paper's claims to check:
//   - "PFOR performs approximately 4 times faster than zlib and bzlib2
//      for most data sets tested";
//   - "its compression ratios hardly beat those obtained with zlib and
//      bzlib2 (in some cases, the ratio is even 3 times worse)";
//   - ISOBAR improves both ratio and throughput over the standard
//     solvers, so it dominates the standalone tools on improvable data.
#include "bench_common.h"

#include "pfor/pfor_codec.h"
#include "util/stopwatch.h"

namespace isobar::bench {
namespace {

struct PforRun {
  double ratio = 0.0, compress_mbps = 0.0, decompress_mbps = 0.0;
};

PforRun RunPfor(PforMode mode, ByteSpan data) {
  const PforCodec codec(mode);
  PforRun run;
  Bytes compressed, restored;
  Stopwatch timer;
  Status status = codec.Compress(data, &compressed);
  if (!status.ok()) std::exit(1);
  run.compress_mbps = timer.ThroughputMBps(data.size());
  run.ratio = static_cast<double>(data.size()) /
              static_cast<double>(compressed.size());
  timer.Reset();
  status = codec.Decompress(compressed, data.size(), &restored);
  if (!status.ok() ||
      !std::equal(restored.begin(), restored.end(), data.begin())) {
    std::fprintf(stderr, "pfor round trip failed\n");
    std::exit(1);
  }
  run.decompress_mbps = timer.ThroughputMBps(data.size());
  return run;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Related work (Sec. IV): PFOR family vs standard solvers vs "
              "ISOBAR (%.1f MB per dataset)\n", args.mb);
  std::printf("%-13s | %6s %7s | %6s %7s | %6s %7s | %6s %7s | %6s %7s\n",
              "", "CR", "TPc", "CR", "TPc", "CR", "TPc", "CR", "TPc", "CR",
              "TPc");
  std::printf("%-13s | %14s | %14s | %14s | %14s | %14s\n", "Dataset",
              "zlib", "bzip2", "PFOR", "PFOR-DELTA", "ISOBAR-Sp");
  PrintRule(95);

  // 64-bit integer data (PFOR's home turf) plus hard doubles.
  const char* names[] = {"xgc_igid", "gts_chkp_zion", "msg_lu",
                         "flash_gamc", "num_plasma"};
  for (const char* name : names) {
    auto spec = FindDatasetSpec(name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);

    const SolverRun zlib = RunSolver(CodecId::kZlib, dataset.bytes());
    const SolverRun bzip2 = RunSolver(CodecId::kBzip2, dataset.bytes());
    const PforRun pfor = RunPfor(PforMode::kFor, dataset.bytes());
    const PforRun pfor_delta = RunPfor(PforMode::kDelta, dataset.bytes());
    const IsobarRun isobar =
        RunIsobar(SpeedOptions(), dataset.bytes(), dataset.width());

    std::printf(
        "%-13s | %6.3f %7.1f | %6.3f %7.1f | %6.3f %7.1f | %6.3f %7.1f | "
        "%6.3f %7.1f\n",
        name, zlib.ratio, zlib.compress_mbps, bzip2.ratio,
        bzip2.compress_mbps, pfor.ratio, pfor.compress_mbps,
        pfor_delta.ratio, pfor_delta.compress_mbps,
        isobar.stats.improvable ? isobar.ratio() : zlib.ratio,
        isobar.stats.improvable ? isobar.compress_mbps()
                                : zlib.compress_mbps);
  }
  std::printf(
      "\nPaper shape: PFOR is several times faster than zlib/bzip2 but its\n"
      "ratio only wins on narrow integers (xgc_igid); on doubles it can be\n"
      "far worse. ISOBAR improves ratio AND throughput simultaneously on\n"
      "every improvable dataset (num_plasma is non-improvable and falls\n"
      "back to the standard solver).\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
