// Reproduces Table X: ISOBAR-compress (speed preference) against the FPC
// and fpzip floating-point compressors on the GTS / XGC / FLASH datasets —
// compression ratio and compression/decompression throughput, plus the
// column means the paper reports.
#include "bench_common.h"

#include "fpc/fpc_codec.h"
#include "fpzip/fpzip_codec.h"
#include "util/stopwatch.h"

namespace isobar::bench {
namespace {

struct BaselineRun {
  double ratio = 0.0, compress_mbps = 0.0, decompress_mbps = 0.0;
};

template <typename CodecT>
BaselineRun RunBaseline(const CodecT& codec, ByteSpan data) {
  BaselineRun run;
  Bytes compressed, restored;
  Stopwatch timer;
  Status status = codec.Compress(data, &compressed);
  if (!status.ok()) {
    std::fprintf(stderr, "baseline compress: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  run.compress_mbps = timer.ThroughputMBps(data.size());
  run.ratio = static_cast<double>(data.size()) /
              static_cast<double>(compressed.size());
  timer.Reset();
  status = codec.Decompress(compressed, data.size(), &restored);
  if (!status.ok() || !std::equal(restored.begin(), restored.end(),
                                  data.begin())) {
    std::fprintf(stderr, "baseline round trip failed\n");
    std::exit(1);
  }
  run.decompress_mbps = timer.ThroughputMBps(data.size());
  return run;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table X: ISOBAR-Sp vs FPC vs fpzip "
              "(%.1f MB per dataset; paper CR in last column)\n", args.mb);
  std::printf("%-15s | %6s %8s %8s | %6s %8s %8s | %6s %8s %8s | %s\n", "",
              "CR", "TPc", "TPd", "CR", "TPc", "TPd", "CR", "TPc", "TPd",
              "paper CR i/f/z");
  std::printf("%-15s | %24s | %24s | %24s |\n", "Dataset", "ISOBAR-Sp", "FPC",
              "fpzip");
  PrintRule(110);

  const struct {
    const char* name;
    double paper_isobar_cr, paper_fpc_cr, paper_fpzip_cr;
  } rows[] = {
      {"gts_chkp_zeon", 1.140, 1.018, 1.096},
      {"gts_chkp_zion", 1.150, 1.025, 1.100},
      {"gts_phi_l", 1.160, 1.077, 1.182},
      {"gts_phi_nl", 1.157, 1.072, 1.177},
      {"xgc_igid", 2.962, 1.960, 2.736},
      {"xgc_iphase", 1.571, 1.360, 1.535},
      {"flash_gamc", 1.532, 1.416, 1.620},
      {"flash_velx", 1.308, 1.265, 1.342},
      {"flash_vely", 1.307, 1.294, 1.435},
  };

  const FpcCodec fpc(20);  // the original's large-table configuration
  const FpzipCodec fpzip(8);

  double sum_isobar[3] = {}, sum_fpc[3] = {}, sum_fpzip[3] = {};
  int count = 0;
  for (const auto& row : rows) {
    auto spec = FindDatasetSpec(row.name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);

    const IsobarRun isobar =
        RunIsobar(SpeedOptions(), dataset.bytes(), dataset.width());
    const BaselineRun fpc_run = RunBaseline(fpc, dataset.bytes());
    const BaselineRun fpzip_run = RunBaseline(fpzip, dataset.bytes());

    std::printf(
        "%-15s | %6.3f %8.2f %8.2f | %6.3f %8.2f %8.2f | %6.3f %8.2f %8.2f "
        "| %.3f/%.3f/%.3f\n",
        row.name, isobar.ratio(), isobar.compress_mbps(),
        isobar.decompress_mbps(), fpc_run.ratio, fpc_run.compress_mbps,
        fpc_run.decompress_mbps, fpzip_run.ratio, fpzip_run.compress_mbps,
        fpzip_run.decompress_mbps, row.paper_isobar_cr, row.paper_fpc_cr,
        row.paper_fpzip_cr);

    sum_isobar[0] += isobar.ratio();
    sum_isobar[1] += isobar.compress_mbps();
    sum_isobar[2] += isobar.decompress_mbps();
    sum_fpc[0] += fpc_run.ratio;
    sum_fpc[1] += fpc_run.compress_mbps;
    sum_fpc[2] += fpc_run.decompress_mbps;
    sum_fpzip[0] += fpzip_run.ratio;
    sum_fpzip[1] += fpzip_run.compress_mbps;
    sum_fpzip[2] += fpzip_run.decompress_mbps;
    ++count;
  }
  PrintRule(110);
  std::printf(
      "%-15s | %6.3f %8.2f %8.2f | %6.3f %8.2f %8.2f | %6.3f %8.2f %8.2f "
      "| 1.476/1.276/1.469\n",
      "mean", sum_isobar[0] / count, sum_isobar[1] / count,
      sum_isobar[2] / count, sum_fpc[0] / count, sum_fpc[1] / count,
      sum_fpc[2] / count, sum_fpzip[0] / count, sum_fpzip[1] / count,
      sum_fpzip[2] / count);
  std::printf(
      "\nPaper shape: ISOBAR's mean CR edges out both predictors while its\n"
      "decompression throughput is an order of magnitude higher.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
