#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "simd/dispatch.h"
#include "telemetry/timeline.h"
#include "util/stopwatch.h"

namespace isobar::bench {
namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "benchmark failed: %s\n", message.c_str());
  std::exit(1);
}

// Destination of the --telemetry-json at-exit dump (static storage:
// atexit handlers take no arguments).
std::string& TelemetryDumpPath() {
  static std::string& path = *new std::string();
  return path;
}

void DumpTelemetryAtExit() {
  if (!TelemetryDumpPath().empty()) DumpTelemetryJson(TelemetryDumpPath());
}

std::string& TimelineDumpPath() {
  static std::string& path = *new std::string();
  return path;
}

void DumpTimelineAtExit() {
  if (TimelineDumpPath().empty()) return;
  const std::string json = telemetry::TimelineToJson(
      telemetry::Timeline::Global().Snapshot());
  std::ofstream file(TimelineDumpPath(),
                     std::ios::binary | std::ios::trunc);
  file << json;
  if (!file.good()) {
    std::fprintf(stderr, "warning: cannot write timeline to '%s'\n",
                 TimelineDumpPath().c_str());
  }
}

// The active SIMD dispatch tier as a metrics-registry counter
// (simd.tier.<name> = 1). Recorded here because the telemetry library
// cannot link against the simd library.
void RecordSimdTier() {
  const std::string name =
      "simd.tier." + std::string(simd::TierToString(simd::ActiveTier()));
  telemetry::GetCounter(name).Add(1);
}

}  // namespace

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--mb=", 5) == 0) {
      args.mb = std::atof(arg + 5);
      if (args.mb <= 0.0) Die("--mb must be positive");
    } else if (std::strncmp(arg, "--steps=", 8) == 0) {
      args.steps = std::atoi(arg + 8);
      if (args.steps <= 0) Die("--steps must be positive");
    } else if (std::strncmp(arg, "--telemetry-json=", 17) == 0) {
      args.telemetry_json = arg + 17;
      if (args.telemetry_json.empty()) Die("--telemetry-json needs a path");
    } else if (std::strncmp(arg, "--timeline-json=", 16) == 0) {
      args.timeline_json = arg + 16;
      if (args.timeline_json.empty()) Die("--timeline-json needs a path");
    } else if (std::strncmp(arg, "--timeline-capacity=", 20) == 0) {
      telemetry::Timeline::Global().set_capacity_per_thread(
          static_cast<size_t>(std::strtoull(arg + 20, nullptr, 10)));
    } else {
      Die(std::string("unknown argument '") + arg +
          "' (supported: --mb=<float>, --steps=<int>, "
          "--telemetry-json=<path>, --timeline-json=<path>, "
          "--timeline-capacity=<int>)");
    }
  }
  if (!args.telemetry_json.empty()) {
    telemetry::SetEnabled(true);
    telemetry::TraceRecorder::Global().SetEnabled(true);
    TelemetryDumpPath() = args.telemetry_json;
    std::atexit(DumpTelemetryAtExit);
  }
  if (!args.timeline_json.empty()) {
    telemetry::SetEnabled(true);
    telemetry::Timeline::Global().SetEnabled(true);
    TimelineDumpPath() = args.timeline_json;
    std::atexit(DumpTimelineAtExit);
  }
  if (telemetry::Enabled()) RecordSimdTier();
  return args;
}

TelemetrySnapshot TelemetrySnapshot::Capture() {
  TelemetrySnapshot snapshot;
  snapshot.metrics = telemetry::MetricsRegistry::Global().Snapshot();
  return snapshot;
}

telemetry::MetricsSnapshot TelemetrySnapshot::Since(
    const TelemetrySnapshot& before) const {
  return telemetry::Delta(before.metrics, metrics);
}

void DumpTelemetryJson(const std::string& path) {
  const std::string report = telemetry::TelemetryReportJson();
  if (path == "-") {
    std::fwrite(report.data(), 1, report.size(), stdout);
    return;
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << report;
  if (!file.good()) {
    std::fprintf(stderr, "warning: cannot write telemetry to '%s'\n",
                 path.c_str());
  }
}

SolverRun RunSolver(CodecId id, ByteSpan data) {
  auto codec = GetCodec(id);
  if (!codec.ok()) Die(codec.status().ToString());

  SolverRun run;
  Bytes compressed;
  Stopwatch timer;
  Status status = (*codec)->Compress(data, &compressed);
  if (!status.ok()) Die(status.ToString());
  run.compress_mbps = timer.ThroughputMBps(data.size());
  run.ratio = static_cast<double>(data.size()) /
              static_cast<double>(compressed.size());

  Bytes restored;
  timer.Reset();
  status = (*codec)->Decompress(compressed, data.size(), &restored);
  if (!status.ok()) Die(status.ToString());
  run.decompress_mbps = timer.ThroughputMBps(data.size());
  if (!std::equal(restored.begin(), restored.end(), data.begin())) {
    Die("solver round trip produced different bytes");
  }
  return run;
}

IsobarRun RunIsobar(const CompressOptions& options, ByteSpan data,
                    size_t width) {
  const IsobarCompressor compressor(options);
  IsobarRun run;
  auto compressed = compressor.Compress(data, width, &run.stats);
  if (!compressed.ok()) Die(compressed.status().ToString());
  auto restored =
      IsobarCompressor::Decompress(*compressed, DecompressOptions{}, &run.dstats);
  if (!restored.ok()) Die(restored.status().ToString());
  if (restored->size() != data.size() ||
      !std::equal(restored->begin(), restored->end(), data.begin())) {
    Die("ISOBAR round trip produced different bytes");
  }
  return run;
}

Dataset Generate(const DatasetSpec& spec, const Args& args) {
  auto dataset = GenerateDatasetMB(spec, args.mb);
  if (!dataset.ok()) Die(dataset.status().ToString());
  return std::move(*dataset);
}

CompressOptions SpeedOptions() {
  CompressOptions options;
  options.eupa.preference = Preference::kSpeed;
  return options;
}

CompressOptions RatioOptions() {
  CompressOptions options;
  options.eupa.preference = Preference::kRatio;
  // Ratio decisions deserve a bigger training sample: bzip2's advantage
  // only materializes once its BWT blocks fill, and sampling cost is
  // irrelevant when the user asked for the best ratio.
  options.eupa.sample_elements = 128 * 1024;
  return options;
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace isobar::bench
