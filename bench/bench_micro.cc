// Component microbenchmarks (google-benchmark): the per-stage throughputs
// behind the end-to-end numbers of Tables II/V/IX — analyzer, transposes,
// CRC, solvers, and the FPC/fpzip baselines.
//
// A thread-sweep mode measures the parallel chunk pipeline: pass
// --threads=1,2,4,8 (the default sweep) to emit one
// BM_IsobarCompressMT/BM_IsobarDecompressMT row per thread count, each
// labeled "threads=N". The flag is consumed here, before google-benchmark
// parses the remaining arguments.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "compressors/registry.h"
#include "compressors/tans.h"
#include "core/analyzer.h"
#include "core/eupa_selector.h"
#include "core/isobar.h"
#include "datagen/registry.h"
#include "fpc/fpc_codec.h"
#include "fpzip/fpzip_codec.h"
#include "pfor/pfor_codec.h"
#include "linearize/transpose.h"
#include "simd/dispatch.h"
#include "stats/byte_histogram.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace isobar {
namespace {

Dataset HardDataset(size_t elements) {
  auto spec = FindDatasetSpec("gts_phi_l");
  auto dataset = GenerateDataset(**spec, elements);
  return std::move(*dataset);
}

void BM_AnalyzerThroughput(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  const Analyzer analyzer;
  for (auto _ : state) {
    auto result = analyzer.Analyze(dataset.bytes(), 8);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_AnalyzerThroughput);

void BM_GatherColumns(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  const Linearization lin = static_cast<Linearization>(state.range(0));
  Bytes packed;
  for (auto _ : state) {
    Status status = GatherColumns(dataset.bytes(), 8, 0xC0, lin, &packed);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_GatherColumns)->Arg(0)->Arg(1);

void BM_ScatterColumns(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  Bytes packed;
  (void)GatherColumns(dataset.bytes(), 8, 0xC0, Linearization::kColumn,
                      &packed);
  Bytes dest(dataset.data.size());
  for (auto _ : state) {
    Status status = ScatterColumns(packed, 8, 0xC0, Linearization::kColumn,
                                   MutableByteSpan(dest));
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dest.size()));
}
BENCHMARK(BM_ScatterColumns);

void BM_Crc32c(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(dataset.bytes()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_Crc32c);

void BM_Crc32cPortable(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::internal::ExtendPortable(
        0, dataset.data.data(), dataset.data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_Crc32cPortable);

// The paper's BWT solver on its pathological input shape: a maximally
// repetitive block used to cost O(n^2 log n) comparator time in the
// rotation sort; the radix prefix-doubling sort makes it ordinary.
void BM_BwtCompressRepetitive(benchmark::State& state) {
  const Bytes data(1 << 20, 0xAB);
  auto codec = GetCodec(CodecId::kBwt);
  Bytes out;
  for (auto _ : state) {
    Status status = (*codec)->Compress(data, &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_BwtCompressRepetitive);

void BM_SolverCompress(benchmark::State& state) {
  const Dataset dataset = HardDataset(131072);
  auto codec = GetCodec(static_cast<CodecId>(state.range(0)));
  Bytes out;
  for (auto _ : state) {
    Status status = (*codec)->Compress(dataset.bytes(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
  state.SetLabel(std::string(CodecIdToString((*codec)->id())));
}
BENCHMARK(BM_SolverCompress)
    ->Arg(static_cast<int>(CodecId::kZlib))
    ->Arg(static_cast<int>(CodecId::kBzip2))
    ->Arg(static_cast<int>(CodecId::kRle))
    ->Arg(static_cast<int>(CodecId::kLzss))
    ->Arg(static_cast<int>(CodecId::kHuffman))
    ->Arg(static_cast<int>(CodecId::kLzans));

void BM_SolverDecompress(benchmark::State& state) {
  const Dataset dataset = HardDataset(131072);
  auto codec = GetCodec(static_cast<CodecId>(state.range(0)));
  Bytes compressed, out;
  (void)(*codec)->Compress(dataset.bytes(), &compressed);
  for (auto _ : state) {
    Status status =
        (*codec)->Decompress(compressed, dataset.data.size(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
  state.SetLabel(std::string(CodecIdToString((*codec)->id())));
}
BENCHMARK(BM_SolverDecompress)
    ->Arg(static_cast<int>(CodecId::kZlib))
    ->Arg(static_cast<int>(CodecId::kBzip2))
    ->Arg(static_cast<int>(CodecId::kHuffman))
    ->Arg(static_cast<int>(CodecId::kLzans));

// Compressible solver input: the structured, repetitive byte-planes the
// partitioner actually hands the homegrown solvers (noise columns are
// stored raw and never reach them).
Bytes CompressibleBytes(size_t elements) {
  auto spec = FindDatasetSpec("msg_sppm");
  auto dataset = GenerateDataset(**spec, elements);
  return std::move(dataset->data);
}

void BM_HuffmanEncode(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  auto codec = GetCodec(CodecId::kHuffman);
  Bytes out;
  for (auto _ : state) {
    Status status = (*codec)->Compress(data, &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  auto codec = GetCodec(CodecId::kHuffman);
  Bytes compressed, out;
  (void)(*codec)->Compress(data, &compressed);
  for (auto _ : state) {
    Status status = (*codec)->Decompress(compressed, data.size(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_HuffmanDecode);

void BM_LzssEncode(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  auto codec = GetCodec(CodecId::kLzss);
  Bytes out;
  for (auto _ : state) {
    Status status = (*codec)->Compress(data, &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzssEncode);

void BM_LzssDecode(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  auto codec = GetCodec(CodecId::kLzss);
  Bytes compressed, out;
  (void)(*codec)->Compress(data, &compressed);
  for (auto _ : state) {
    Status status = (*codec)->Decompress(compressed, data.size(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzssDecode);

void BM_LzAnsCompress(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  auto codec = GetCodec(CodecId::kLzans);
  Bytes out;
  for (auto _ : state) {
    Status status = (*codec)->Compress(data, &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.SetLabel("ratio=" + std::to_string(static_cast<double>(data.size()) /
                                           static_cast<double>(out.size())));
}
BENCHMARK(BM_LzAnsCompress);

void BM_LzAnsDecompress(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  auto codec = GetCodec(CodecId::kLzans);
  Bytes compressed, out;
  (void)(*codec)->Compress(data, &compressed);
  for (auto _ : state) {
    Status status = (*codec)->Decompress(compressed, data.size(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzAnsDecompress);

// The tANS entropy-coder core in isolation (no LZ parse): the 4-way
// interleaved stream over the literal distribution of the compressible
// corpus, same shape the lzans literal section uses.
tans::NormalizedHistogram TansLiteralHistogram(const Bytes& data) {
  std::array<uint64_t, 256> counts{};
  for (uint8_t b : data) ++counts[b];
  size_t alphabet = 0;
  for (size_t s = 0; s < 256; ++s) {
    if (counts[s] != 0) alphabet = s + 1;
  }
  tans::NormalizedHistogram hist;
  Status st = tans::Normalize(counts.data(), alphabet, 11, &hist);
  if (!st.ok()) std::abort();
  return hist;
}

void BM_TansEncode(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  const tans::NormalizedHistogram hist = TansLiteralHistogram(data);
  tans::EncodeTable table;
  if (!table.Init(hist).ok()) std::abort();
  Bytes stream;
  for (auto _ : state) {
    Status status =
        tans::EncodeInterleaved(data.data(), data.size(), table, 4, &stream);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_TansEncode);

void BM_TansDecode(benchmark::State& state) {
  const Bytes data = CompressibleBytes(131072);
  const tans::NormalizedHistogram hist = TansLiteralHistogram(data);
  tans::EncodeTable enc;
  tans::DecodeTable dec;
  if (!enc.Init(hist).ok() || !dec.Init(hist).ok()) std::abort();
  Bytes stream;
  if (!tans::EncodeInterleaved(data.data(), data.size(), enc, 4, &stream)
           .ok()) {
    std::abort();
  }
  Bytes out(data.size());
  for (auto _ : state) {
    Status status =
        tans::DecodeInterleaved(stream, dec, 4, data.size(), out.data());
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_TansDecode);

// EUPA selection cost on a mixed dataset (6 noise + 2 structured byte
// columns): arg 0 runs the estimator-gated default, arg 1 the exhaustive
// trial matrix — the gap is what pruning saves per Compress() call.
void BM_EupaSelect(benchmark::State& state) {
  Bytes data;
  data.reserve(375000 * 8);
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < 375000; ++i) {
    for (int b = 0; b < 6; ++b) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      data.push_back(static_cast<uint8_t>(rng));
    }
    data.push_back(static_cast<uint8_t>((i / 64) % 16));
    data.push_back(0x3F);
  }
  EupaOptions options;
  options.preference = Preference::kRatio;
  if (state.range(0) != 0) options.prune_margin = 0.0;
  const EupaSelector selector(options);
  for (auto _ : state) {
    auto decision = selector.Select(data, 8, 0xC0);
    benchmark::DoNotOptimize(decision);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.SetLabel(state.range(0) == 0 ? "gated" : "exhaustive");
}
BENCHMARK(BM_EupaSelect)->Arg(0)->Arg(1);

void BM_PforCompress(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  const PforCodec codec(static_cast<PforMode>(state.range(0)));
  Bytes out;
  for (auto _ : state) {
    Status status = codec.Compress(dataset.bytes(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
  state.SetLabel(state.range(0) == 0 ? "for" : "delta");
}
BENCHMARK(BM_PforCompress)->Arg(0)->Arg(1);

void BM_IsobarCompress(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  CompressOptions options;
  options.eupa.preference = Preference::kSpeed;
  const IsobarCompressor compressor(options);
  for (auto _ : state) {
    auto out = compressor.Compress(dataset.bytes(), 8);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_IsobarCompress);

void BM_IsobarDecompress(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  CompressOptions options;
  options.eupa.preference = Preference::kSpeed;
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(dataset.bytes(), 8);
  for (auto _ : state) {
    auto out = IsobarCompressor::Decompress(*compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_IsobarDecompress);

void BM_FpcCompress(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  const FpcCodec codec(static_cast<int>(state.range(0)));
  Bytes out;
  for (auto _ : state) {
    Status status = codec.Compress(dataset.bytes(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_FpcCompress)->Arg(16)->Arg(20);

void BM_FpzipCompress(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  const FpzipCodec codec(8);
  Bytes out;
  for (auto _ : state) {
    Status status = codec.Compress(dataset.bytes(), &out);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_FpzipCompress);

void BM_HistogramUpdate(benchmark::State& state) {
  const Dataset dataset = HardDataset(375000);
  ColumnHistogramSet set(8);
  for (auto _ : state) {
    set.Reset();
    Status status = set.Update(dataset.bytes());
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}
BENCHMARK(BM_HistogramUpdate);

void BM_MtfEncode(benchmark::State& state) {
  // BWT-shaped input: long runs over a small alphabet, where the rank-0
  // fast path dominates, mixed with noise that exercises the rank search.
  Bytes data(1 << 20);
  Xoshiro256 rng(0x317F);
  size_t i = 0;
  while (i < data.size()) {
    const uint8_t value = static_cast<uint8_t>(rng.Next() % 16);
    const size_t run = std::min<size_t>(1 + rng.Next() % 64, data.size() - i);
    std::fill_n(data.begin() + i, run, value);
    i += run;
  }
  Bytes work(data.size());
  std::array<uint8_t, 256> order;
  for (auto _ : state) {
    work = data;
    std::iota(order.begin(), order.end(), 0);
    simd::Kernels().mtf_encode(work.data(), work.size(), order.data());
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_MtfEncode);

void BM_RunScan(benchmark::State& state) {
  // RLE-shaped input scanned run by run with the codec's 130-byte cap.
  Bytes data(1 << 20);
  Xoshiro256 rng(0x52AB);
  size_t i = 0;
  while (i < data.size()) {
    const uint8_t value = static_cast<uint8_t>(rng.Next());
    const size_t run = std::min<size_t>(1 + rng.Next() % 200, data.size() - i);
    std::fill_n(data.begin() + i, run, value);
    i += run;
  }
  const auto& kernels = simd::Kernels();
  for (auto _ : state) {
    size_t pos = 0;
    uint64_t runs = 0;
    while (pos < data.size()) {
      pos += kernels.run_scan(data.data() + pos,
                              std::min<size_t>(130, data.size() - pos));
      ++runs;
    }
    benchmark::DoNotOptimize(runs);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RunScan);

// --- Thread sweep: end-to-end pipeline throughput vs worker count, on a
// dataset wide enough (4 chunks) that the chunk fan-out has work to steal.

constexpr size_t kSweepElements = 1'500'000;

void BM_IsobarCompressMT(benchmark::State& state, uint32_t threads) {
  const Dataset dataset = HardDataset(kSweepElements);
  CompressOptions options;
  options.eupa.preference = Preference::kSpeed;
  options.num_threads = threads;
  const IsobarCompressor compressor(options);
  for (auto _ : state) {
    auto out = compressor.Compress(dataset.bytes(), 8);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
  state.SetLabel("threads=" + std::to_string(threads));
}

void BM_IsobarDecompressMT(benchmark::State& state, uint32_t threads) {
  const Dataset dataset = HardDataset(kSweepElements);
  CompressOptions options;
  options.eupa.preference = Preference::kSpeed;
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(dataset.bytes(), 8);
  DecompressOptions decompress_options;
  decompress_options.num_threads = threads;
  for (auto _ : state) {
    auto out = IsobarCompressor::Decompress(*compressed, decompress_options);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
  state.SetLabel("threads=" + std::to_string(threads));
}

// --- Per-tier kernel benchmarks: the same kernel table entry measured
// once per dispatch tier the host supports, so a run records the scalar
// baseline next to the vector speedup (rows: BM_<Kernel>/tier:<name>).

// Two workload shapes: the mostly-noise phi dataset (few histogram-counter
// collisions, cost dominated by raw increment throughput) and the highly
// repetitive sppm dataset, where near-constant byte-columns hammer one
// counter and the scalar loop serializes on store-to-load forwarding —
// the case the interleaved lanes exist for.
void BM_HistogramUpdateKernel(benchmark::State& state, simd::Tier tier,
                              const char* profile) {
  auto spec = FindDatasetSpec(profile);
  const Dataset dataset = std::move(*GenerateDataset(**spec, 375000));
  const simd::KernelTable& kernels = simd::KernelsForTier(tier);
  const size_t n = dataset.data.size() / 8;
  std::vector<ByteHistogram> hists(8);
  for (auto _ : state) {
    for (auto& h : hists) h.fill(0);
    kernels.histogram_update(dataset.data.data(), n, 8,
                             hists.data()->data());
    benchmark::DoNotOptimize(hists.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * 8));
}

void BM_TransposeKernel(benchmark::State& state, simd::Tier tier,
                        size_t width, bool scatter) {
  const Dataset dataset = HardDataset(375000);
  const simd::KernelTable& kernels = simd::KernelsForTier(tier);
  const size_t n = dataset.data.size() / width;
  Bytes out(n * width);
  const auto kernel =
      width == 8 ? (scatter ? kernels.scatter_col_w8 : kernels.gather_col_w8)
                 : (scatter ? kernels.scatter_col_w4 : kernels.gather_col_w4);
  for (auto _ : state) {
    kernel(dataset.data.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * width));
}

}  // namespace

/// Registers the per-kernel benchmarks once per dispatch tier this machine
/// supports. Rows appear as e.g. BM_HistogramUpdateKernel/tier:avx2.
void RegisterSimdTierBenches() {
  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse42, simd::Tier::kAvx2}) {
    if (!simd::TierSupported(tier)) continue;
    const std::string suffix =
        "/tier:" + std::string(simd::TierToString(tier));
    benchmark::RegisterBenchmark(
        ("BM_HistogramUpdateKernel" + suffix).c_str(),
        [tier](benchmark::State& state) {
          BM_HistogramUpdateKernel(state, tier, "gts_phi_l");
        });
    benchmark::RegisterBenchmark(
        ("BM_HistogramUpdateKernelHtc" + suffix).c_str(),
        [tier](benchmark::State& state) {
          BM_HistogramUpdateKernel(state, tier, "msg_sppm");
        });
    struct Shape {
      const char* name;
      size_t width;
      bool scatter;
    };
    for (const Shape& shape :
         {Shape{"BM_GatherW8ColumnKernel", 8, false},
          Shape{"BM_ScatterW8ColumnKernel", 8, true},
          Shape{"BM_GatherW4ColumnKernel", 4, false},
          Shape{"BM_ScatterW4ColumnKernel", 4, true}}) {
      benchmark::RegisterBenchmark(
          (shape.name + suffix).c_str(),
          [tier, shape](benchmark::State& state) {
            BM_TransposeKernel(state, tier, shape.width, shape.scatter);
          });
    }
  }
}

/// Registers one compress + one decompress benchmark per swept thread
/// count; rows appear as BM_IsobarCompressMT/threads:N.
void RegisterThreadSweep(const std::vector<uint32_t>& sweep) {
  for (uint32_t threads : sweep) {
    benchmark::RegisterBenchmark(
        ("BM_IsobarCompressMT/threads:" + std::to_string(threads)).c_str(),
        [threads](benchmark::State& state) {
          BM_IsobarCompressMT(state, threads);
        });
    benchmark::RegisterBenchmark(
        ("BM_IsobarDecompressMT/threads:" + std::to_string(threads)).c_str(),
        [threads](benchmark::State& state) {
          BM_IsobarDecompressMT(state, threads);
        });
  }
}

}  // namespace isobar

int main(int argc, char** argv) {
  // Consume --threads=<comma list> before google-benchmark rejects it as
  // an unknown flag.
  std::vector<uint32_t> sweep = {1, 2, 4, 8};
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      sweep.clear();
      const char* cursor = argv[i] + 10;
      while (*cursor != '\0') {
        char* end = nullptr;
        const unsigned long value = std::strtoul(cursor, &end, 10);
        if (end == cursor || value == 0) {
          std::fprintf(stderr,
                       "--threads expects a comma-separated list of "
                       "positive thread counts, e.g. --threads=1,2,4,8\n");
          return 1;
        }
        sweep.push_back(static_cast<uint32_t>(value));
        cursor = (*end == ',') ? end + 1 : end;
      }
      if (sweep.empty()) {
        std::fprintf(stderr, "--threads list must not be empty\n");
        return 1;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  isobar::RegisterSimdTierBenches();
  isobar::RegisterThreadSweep(sweep);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
