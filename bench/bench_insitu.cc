// In-situ write-out study: the paper's motivating scenario (§I: "an
// increasing imbalance between the FLOPS of the machine and the file
// system bandwidth") quantified. For a sweep of storage-link bandwidths,
// compare the end-to-end checkpoint throughput of writing raw data,
// standard zlib/bzip2, and ISOBAR-compress, under both a serial
// (compress-then-ship) and an overlapped (compress chunk i+1 while chunk
// i is on the wire) execution model.
//
// Expected crossovers: on slow links every compressor beats raw and the
// best ratio wins; as bandwidth grows, compression throughput becomes the
// ceiling, ISOBAR overtakes the standard solvers, and on effectively
// infinite links raw wins.
#include "bench_common.h"

#include "io/in_situ.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  auto spec = FindDatasetSpec("gts_chkp_zion");
  if (!spec.ok()) return 1;
  const Dataset dataset = Generate(**spec, args);

  CompressOptions options = SpeedOptions();

  std::printf("In-situ checkpoint write-out on a simulated storage link "
              "(%.1f MB GTS checkpoint)\n", args.mb);
  std::printf("Effective end-to-end throughput in raw MB/s; higher is "
              "better.\n\n");
  std::printf("%-10s | %28s | %28s\n", "", "serial (compress, then ship)",
              "overlapped (pipelined)");
  std::printf("%-10s | %6s %6s %6s %6s | %6s %6s %6s %6s\n",
              "link MB/s", "raw", "zlib", "bzip2", "isobar", "raw", "zlib",
              "bzip2", "isobar");
  PrintRule(73);

  const double bandwidths[] = {10, 25, 50, 100, 200, 400, 800, 1600, 1e8};
  const WriteStrategy strategies[] = {WriteStrategy::kRaw,
                                      WriteStrategy::kZlib,
                                      WriteStrategy::kBzip2,
                                      WriteStrategy::kIsobar};
  for (double bw : bandwidths) {
    double serial[4], overlapped[4];
    for (int s = 0; s < 4; ++s) {
      auto report = SimulateInSituWrite(strategies[s], options,
                                        dataset.bytes(), dataset.width(), bw);
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
        return 1;
      }
      serial[s] = report->serial_mbps();
      overlapped[s] = report->overlapped_mbps();
    }
    if (bw >= 1e8) {
      std::printf("%-10s |", "infinite");
    } else {
      std::printf("%-10.0f |", bw);
    }
    for (int s = 0; s < 4; ++s) std::printf(" %6.1f", serial[s]);
    std::printf(" |");
    for (int s = 0; s < 4; ++s) std::printf(" %6.1f", overlapped[s]);
    std::printf("\n");
  }

  std::printf(
      "\nShape check: below the crossover bandwidth ISOBAR delivers the\n"
      "highest end-to-end throughput of all strategies (it ships ~25%%\n"
      "fewer bytes at a compression speed far above zlib's); overlap\n"
      "hides compression cost until the link is faster than the\n"
      "compressor itself; with an infinite link raw wins.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
