// Reproduces Table II: ISOBAR-compress performance summary on one
// representative dataset per application (speed preference), reporting
// compression-ratio improvement and compression/decompression speed-ups
// over the faster standard solver.
#include "bench_common.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  // The paper's Table II rows trace to gts_chkp_zion (Table VI/IX),
  // xgc_iphase, s3d_vmag, and flash_velx.
  const struct {
    const char* app;
    const char* dataset;
    double paper_dcr, paper_tpc, paper_spc, paper_tpd, paper_spd;
  } rows[] = {
      {"GTS", "gts_chkp_zion", 10.15, 111.7, 8.05, 551.90, 5.01},
      {"XGC", "xgc_iphase", 14.09, 76.83, 21.17, 388.87, 51.92},
      {"S3D", "s3d_vmag", 32.56, 104.73, 31.45, 424.79, 63.12},
      {"FLASH", "flash_velx", 17.52, 455.83, 35.89, 1617.02, 14.19},
  };

  std::printf("Table II: ISOBAR-compress performance summary "
              "(speed preference, %.1f MB per dataset)\n", args.mb);
  std::printf("%-7s | %8s %8s %7s %9s %7s | %8s %8s %7s %9s %7s\n", "",
              "dCR(%)", "TPc", "SpC", "TPd", "SpD",
              "dCR(%)", "TPc", "SpC", "TPd", "SpD");
  std::printf("%-7s | %44s | %44s\n", "Dataset", "measured", "paper");
  PrintRule(103);

  for (const auto& row : rows) {
    auto spec = FindDatasetSpec(row.dataset);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);

    const SolverRun zlib = RunSolver(CodecId::kZlib, dataset.bytes());
    const SolverRun bzip2 = RunSolver(CodecId::kBzip2, dataset.bytes());
    const IsobarRun isobar =
        RunIsobar(SpeedOptions(), dataset.bytes(), dataset.width());

    // Eq. 3 vs the best standard alternative; Eq. 2 vs the faster one.
    const double best_cr = std::max(zlib.ratio, bzip2.ratio);
    const double fast_tpc = std::max(zlib.compress_mbps, bzip2.compress_mbps);
    const double fast_tpd =
        std::max(zlib.decompress_mbps, bzip2.decompress_mbps);
    const double dcr = (isobar.ratio() / best_cr - 1.0) * 100.0;
    std::printf(
        "%-7s | %8.2f %8.2f %7.2f %9.2f %7.2f | %8.2f %8.2f %7.2f %9.2f %7.2f\n",
        row.app, dcr, isobar.compress_mbps(),
        isobar.compress_mbps() / fast_tpc, isobar.decompress_mbps(),
        isobar.decompress_mbps() / fast_tpd, row.paper_dcr, row.paper_tpc,
        row.paper_spc, row.paper_tpd, row.paper_spd);
  }
  std::printf(
      "\nShape check: positive dCR on all four applications, multi-fold\n"
      "compression and decompression speed-ups over the standard solvers.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
