// Reproduces Fig. 8: compression ratio as a function of the chunk size,
// sweeping chunks from 1,000 to 1,500,000 elements over five datasets.
// The paper's conclusion: ratios settle once chunks reach about 375,000
// doubles (~3 MB), which is this library's default.
#include "bench_common.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  // The sweep needs several of the largest chunks to be meaningful.
  if (args.mb < 8.0) args.mb = 8.0;

  const char* names[] = {"gts_phi_l", "flash_velx", "msg_lu", "s3d_vmag",
                         "num_brain"};
  const uint64_t chunk_sizes[] = {1000,   4000,   16000,  64000,
                                  187500, 375000, 750000, 1500000};

  std::printf("Fig. 8: compression ratio vs chunk size "
              "(%.1f MB per dataset, speed preference)\n\n", args.mb);
  std::printf("%-12s", "chunk_elems");
  for (const char* name : names) std::printf(" %12s", name);
  std::printf("\n");
  PrintRule(12 + 13 * 5);

  std::vector<Dataset> datasets;
  for (const char* name : names) {
    auto spec = FindDatasetSpec(name);
    if (!spec.ok()) return 1;
    datasets.push_back(Generate(**spec, args));
  }

  for (uint64_t chunk : chunk_sizes) {
    std::printf("%-12llu", static_cast<unsigned long long>(chunk));
    for (const Dataset& dataset : datasets) {
      CompressOptions options = SpeedOptions();
      options.chunk_elements = chunk;
      // Fix the pipeline so the sweep isolates the chunking effect.
      options.eupa.forced_codec = CodecId::kZlib;
      options.eupa.forced_linearization = Linearization::kRow;
      const IsobarRun run =
          RunIsobar(options, dataset.bytes(), dataset.width());
      std::printf(" %12.4f", run.ratio());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: ratios climb with chunk size while the per-chunk\n"
      "tolerance statistics are under-sampled, then flatten by ~375,000\n"
      "elements (3 MB) — the default chunk size of this library.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
