#ifndef ISOBAR_BENCH_BENCH_COMMON_H_
#define ISOBAR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "compressors/registry.h"
#include "core/isobar.h"
#include "datagen/registry.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_export.h"

namespace isobar::bench {

/// Common command-line arguments of the table/figure benchmarks.
///
///   --mb=<float>            synthetic data per dataset in MB (default 2.0)
///   --steps=<int>           time steps for the consistency study (default 20)
///   --telemetry-json=<path> enable telemetry + tracing for the whole run
///                           and dump the combined report at exit
///   --timeline-json=<path>  enable the cross-thread event timeline and
///                           dump it as Chrome trace-event JSON at exit
///   --timeline-capacity=N   events per thread ring (default 8192)
///
/// The paper ran on full datasets (18 MB - 1.1 GB) on a 2009-era Opteron;
/// a few MB per dataset reproduces every ratio and verdict to the
/// reported precision while keeping the whole harness interactive.
struct Args {
  double mb = 2.0;
  int steps = 20;
  std::string telemetry_json;
  std::string timeline_json;
};

Args ParseArgs(int argc, char** argv);

/// Point-in-time capture of the global telemetry state. Capture one
/// before and one after a measured region and diff them to attribute
/// per-stage work (spans, codec bytes, chunk counts) to exactly that
/// region — the machine-readable per-stage breakdown behind every
/// wall-clock number a bench target prints.
struct TelemetrySnapshot {
  telemetry::MetricsSnapshot metrics;

  static TelemetrySnapshot Capture();

  /// Counter/histogram deltas accumulated since `before` was captured.
  telemetry::MetricsSnapshot Since(const TelemetrySnapshot& before) const;
};

/// Writes the combined telemetry report (metrics + spans + traces) as
/// JSON. Used by the --telemetry-json at-exit hook; also callable
/// directly around a single table's measurement.
void DumpTelemetryJson(const std::string& path);

/// One measured run of a standalone general-purpose solver: compress,
/// decompress, verify losslessness. Aborts the benchmark with a message on
/// any failure — a harness must never report numbers for a broken run.
struct SolverRun {
  double ratio = 0.0;
  double compress_mbps = 0.0;
  double decompress_mbps = 0.0;
};

SolverRun RunSolver(CodecId id, ByteSpan data);

/// One measured run of the full ISOBAR pipeline (compress + decompress +
/// verify).
struct IsobarRun {
  CompressionStats stats;
  DecompressionStats dstats;

  double ratio() const { return stats.ratio(); }
  double compress_mbps() const { return stats.compression_mbps(); }
  double decompress_mbps() const { return dstats.decompression_mbps(); }
};

IsobarRun RunIsobar(const CompressOptions& options, ByteSpan data,
                    size_t width);

/// Materializes a dataset profile at the benchmark scale.
Dataset Generate(const DatasetSpec& spec, const Args& args);

/// Pipeline options for the two end-user preferences with defaults used
/// throughout the harness.
CompressOptions SpeedOptions();
CompressOptions RatioOptions();

inline const char* YesNo(bool b) { return b ? "Yes" : "No"; }

/// Prints a horizontal rule of the given width.
void PrintRule(int width);

}  // namespace isobar::bench

#endif  // ISOBAR_BENCH_BENCH_COMMON_H_
