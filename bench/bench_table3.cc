// Reproduces Table III: statistical information about the 24 test
// datasets — unique-value percentage (Eq. 4), Shannon entropy (Eq. 5) and
// randomness (Eq. 6) — for the synthetic profiles, next to the paper's
// values for the original data.
#include "bench_common.h"

#include "stats/summary.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table III: statistical information about test datasets "
              "(%.1f MB per dataset)\n", args.mb);
  std::printf("%-15s %-8s | %9s %8s %7s | %9s %8s %7s\n", "", "",
              "unique%%", "H", "rand%%", "unique%%", "H", "rand%%");
  std::printf("%-15s %-8s | %26s | %26s\n", "Dataset", "Type", "measured",
              "paper");
  PrintRule(82);

  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const Dataset dataset = Generate(spec, args);
    auto summary = Summarize(dataset.bytes(), dataset.width());
    if (!summary.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.name.c_str(),
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("%-15s %-8s | %8.1f %8.2f %7.1f | %8.1f %8.2f %7.1f\n",
                dataset.name.c_str(),
                std::string(ElementTypeToString(spec.type)).c_str(),
                summary->unique_value_percent, summary->shannon_entropy,
                summary->randomness_percent, spec.paper_stats.unique_percent,
                spec.paper_stats.shannon_entropy,
                spec.paper_stats.randomness_percent);
  }
  std::printf(
      "\nNote: Shannon entropy depends on the element count, so measured\n"
      "values at %.1f MB differ from the paper's full-size datasets by\n"
      "roughly log2(N_paper/N_here); unique%% and randomness%% are\n"
      "size-invariant shape targets (xgc_iphase is generated with a lower\n"
      "duplicate rate than the paper's 92.3%% — see EXPERIMENTS.md).\n",
      args.mb);
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
