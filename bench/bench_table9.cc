// Reproduces Table IX: decompression throughput of standard zlib and
// bzip2 versus ISOBAR-compress (speed preference), with the speed-up over
// the faster standard decompressor.
#include "bench_common.h"

namespace isobar::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Table IX: decompression throughput comparison "
              "(%.1f MB per dataset, MB/s)\n", args.mb);
  std::printf("%-15s | %9s %9s %9s %6s | %9s %9s %9s %6s\n", "", "zlib",
              "bzip2", "ISOBAR", "Sp", "zlib", "bzip2", "ISOBAR", "Sp");
  std::printf("%-15s | %36s | %36s\n", "Dataset", "measured", "paper");
  PrintRule(95);

  const struct {
    const char* name;
    double paper_zlib, paper_bzip2, paper_isobar, paper_sp;
  } rows[] = {
      {"gts_chkp_zeon", 115.22, 10.48, 517.89, 4.5},
      {"gts_chkp_zion", 110.38, 10.57, 551.90, 5.0},
      {"gts_phi_l", 114.41, 10.00, 366.25, 3.2},
      {"gts_phi_nl", 117.97, 9.90, 358.21, 3.0},
      {"xgc_igid", 177.69, 21.08, 341.50, 1.9},
      {"xgc_iphase", 138.99, 7.49, 388.87, 2.8},
      {"s3d_temp", 113.80, 6.26, 250.46, 2.2},
      {"s3d_vmag", 103.69, 6.73, 424.79, 4.1},
      {"flash_velx", 113.95, 10.51, 1617.02, 14.2},
      {"flash_vely", 112.03, 10.53, 1538.98, 13.7},
      {"flash_gamc", 113.41, 12.02, 940.91, 8.3},
      {"msg_lu", 112.51, 10.51, 866.21, 7.7},
      {"msg_sp", 106.77, 10.68, 527.18, 4.9},
      {"msg_sweep3d", 114.43, 6.89, 446.49, 3.9},
      {"num_brain", 114.47, 6.55, 908.65, 7.9},
      {"num_comet", 123.08, 7.69, 145.73, 1.2},
      {"num_control", 122.13, 7.28, 373.63, 3.1},
      {"obs_info", 118.61, 7.27, 910.12, 7.7},
      {"obs_temp", 114.10, 6.59, 511.98, 4.5},
  };

  for (const auto& row : rows) {
    auto spec = FindDatasetSpec(row.name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);
    const SolverRun zlib = RunSolver(CodecId::kZlib, dataset.bytes());
    const SolverRun bzip2 = RunSolver(CodecId::kBzip2, dataset.bytes());
    const IsobarRun isobar =
        RunIsobar(SpeedOptions(), dataset.bytes(), dataset.width());

    const double fast_standard =
        std::max(zlib.decompress_mbps, bzip2.decompress_mbps);
    std::printf("%-15s | %9.2f %9.2f %9.2f %6.1f | %9.2f %9.2f %9.2f %6.1f\n",
                row.name, zlib.decompress_mbps, bzip2.decompress_mbps,
                isobar.decompress_mbps(),
                isobar.decompress_mbps() / fast_standard, row.paper_zlib,
                row.paper_bzip2, row.paper_isobar, row.paper_sp);
  }
  std::printf(
      "\nPaper shape: ISOBAR decompression is a multiple of the faster\n"
      "standard decompressor on every improvable dataset, because only the\n"
      "compressible fraction of the bytes passes through the solver.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
