// Reproduces Fig. 9: compression-ratio improvement (dCR%, Eq. 3, vs
// standard zlib) under three element orderings — the original simulation
// order, a Hilbert space-filling-curve order, and a fully random
// permutation. The paper's claim (§III.G): the improvement barely moves.
#include "bench_common.h"

#include "linearize/hilbert.h"
#include "linearize/permutation.h"

namespace isobar::bench {
namespace {

constexpr const char* kDatasets[] = {"gts_phi_l",  "gts_chkp_zeon",
                                     "flash_velx", "flash_gamc",
                                     "msg_lu",     "num_brain"};

struct OrderedVariants {
  Bytes original;
  Bytes hilbert;
  Bytes random;
};

OrderedVariants MakeVariants(const Dataset& dataset) {
  OrderedVariants v;
  v.original.assign(dataset.data.begin(), dataset.data.end());

  // Square 2-D grid for the Hilbert walk (truncate to a full square).
  const uint64_t n = dataset.element_count();
  uint32_t side = 1;
  while (static_cast<uint64_t>(side * 2) * (side * 2) <= n) side *= 2;
  const uint64_t square = static_cast<uint64_t>(side) * side;
  const uint32_t dims[] = {side, side};
  ByteSpan trimmed(dataset.data.data(), square * dataset.width());
  Status status = HilbertReorder(trimmed, dataset.width(), dims, &v.hilbert);
  if (!status.ok()) std::exit(1);

  status = ApplyPermutation(dataset.bytes(), dataset.width(),
                            RandomPermutation(n, 0xF16A), &v.random);
  if (!status.ok()) std::exit(1);
  return v;
}

double DeltaCr(ByteSpan data, size_t width) {
  CompressOptions options = SpeedOptions();
  options.eupa.forced_codec = CodecId::kZlib;
  const IsobarRun isobar = RunIsobar(options, data, width);
  const SolverRun standard = RunSolver(CodecId::kZlib, data);
  return (isobar.ratio() / standard.ratio - 1.0) * 100.0;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Fig. 9: dCR(%%) vs zlib under different data linearizations "
              "(%.1f MB per dataset)\n\n", args.mb);
  std::printf("%-15s %10s %10s %10s\n", "Dataset", "original", "hilbert",
              "random");
  PrintRule(48);

  for (const char* name : kDatasets) {
    auto spec = FindDatasetSpec(name);
    if (!spec.ok()) return 1;
    const Dataset dataset = Generate(**spec, args);
    const OrderedVariants variants = MakeVariants(dataset);
    std::printf("%-15s %10.2f %10.2f %10.2f\n", name,
                DeltaCr(variants.original, dataset.width()),
                DeltaCr(variants.hilbert, dataset.width()),
                DeltaCr(variants.random, dataset.width()));
  }
  std::printf(
      "\nPaper shape: dCR stays positive and nearly constant across\n"
      "orderings; even the fully random order retains roughly a 10%%+\n"
      "improvement, because the analyzer's byte-column statistics are\n"
      "order-invariant.\n");
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
