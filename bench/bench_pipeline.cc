// End-to-end pipeline scenario benchmarks (google-benchmark): whole
// container compress + decompress runs over the synthetic datagen
// workload, swept across worker-thread counts and solver configurations
// (EUPA auto-selection under both preferences, plus each solver forced).
//
// Rows appear as BM_E2eCompress/solver:auto-speed/threads:4 and the
// matching BM_E2eDecompress rows. scripts/update_bench_baseline.sh
// snapshots them into BENCH_e2e.json; scripts/ci.sh compares that file
// warn-only, since end-to-end numbers swing with machine load far more
// than the kernel rows of BENCH_baseline.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/isobar.h"
#include "datagen/registry.h"

namespace isobar {
namespace {

// ~4 MB of the mostly-noise phi profile: small enough that the bzip2
// rows stay interactive, and chunked finely enough (below) that an
// 8-thread sweep still has work to steal.
constexpr size_t kElements = 500'000;
constexpr uint64_t kChunkElements = 125'000;

const Dataset& Workload() {
  static const Dataset dataset = [] {
    auto spec = FindDatasetSpec("gts_phi_l");
    return std::move(*GenerateDataset(**spec, kElements));
  }();
  return dataset;
}

struct Solver {
  const char* name;
  Preference preference;
  std::optional<CodecId> forced;
};

constexpr Solver kSolvers[] = {
    {"auto-speed", Preference::kSpeed, std::nullopt},
    {"auto-ratio", Preference::kRatio, std::nullopt},
    {"zlib", Preference::kSpeed, CodecId::kZlib},
    {"bzip2", Preference::kSpeed, CodecId::kBzip2},
    {"lzss", Preference::kSpeed, CodecId::kLzss},
    {"huffman", Preference::kSpeed, CodecId::kHuffman},
};

CompressOptions MakeOptions(const Solver& solver, uint32_t threads) {
  CompressOptions options;
  options.eupa.preference = solver.preference;
  options.eupa.forced_codec = solver.forced;
  options.chunk_elements = kChunkElements;
  options.num_threads = threads;
  return options;
}

void BM_E2eCompress(benchmark::State& state, const Solver& solver,
                    uint32_t threads) {
  const Dataset& dataset = Workload();
  const IsobarCompressor compressor(MakeOptions(solver, threads));
  for (auto _ : state) {
    auto container = compressor.Compress(dataset.bytes(), dataset.width());
    if (!container.ok()) {
      state.SkipWithError(std::string(container.status().message()).c_str());
      return;
    }
    benchmark::DoNotOptimize(container->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}

void BM_E2eDecompress(benchmark::State& state, const Solver& solver,
                      uint32_t threads) {
  const Dataset& dataset = Workload();
  const IsobarCompressor compressor(MakeOptions(solver, 0));
  auto container = compressor.Compress(dataset.bytes(), dataset.width());
  if (!container.ok()) {
    state.SkipWithError(std::string(container.status().message()).c_str());
    return;
  }
  DecompressOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    auto out = IsobarCompressor::Decompress(*container, options);
    if (!out.ok()) {
      state.SkipWithError(std::string(out.status().message()).c_str());
      return;
    }
    benchmark::DoNotOptimize(out->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}

void RegisterScenarios() {
  for (const Solver& solver : kSolvers) {
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      const std::string suffix = "/solver:" + std::string(solver.name) +
                                 "/threads:" + std::to_string(threads);
      // Wall-clock timing: the worker pool runs outside the bench thread,
      // so CPU-time rows would overstate multi-threaded throughput.
      benchmark::RegisterBenchmark(
          ("BM_E2eCompress" + suffix).c_str(),
          [&solver, threads](benchmark::State& state) {
            BM_E2eCompress(state, solver, threads);
          })
          ->UseRealTime();
      benchmark::RegisterBenchmark(
          ("BM_E2eDecompress" + suffix).c_str(),
          [&solver, threads](benchmark::State& state) {
            BM_E2eDecompress(state, solver, threads);
          })
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace isobar

int main(int argc, char** argv) {
  isobar::RegisterScenarios();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
