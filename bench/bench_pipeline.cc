// End-to-end pipeline scenario benchmarks (google-benchmark): whole
// container compress + decompress runs over the synthetic datagen
// workload, swept across worker-thread counts and solver configurations
// (EUPA auto-selection under both preferences, plus each solver forced).
//
// Rows appear as BM_E2eCompress/solver:auto-speed/threads:4 and the
// matching BM_E2eDecompress rows. scripts/update_bench_baseline.sh
// snapshots them into BENCH_e2e.json; scripts/ci.sh compares that file
// warn-only, since end-to-end numbers swing with machine load far more
// than the kernel rows of BENCH_baseline.json.
//
// Harness flags (consumed before google-benchmark parses argv):
//   --threads=N              run only the N-worker scenarios
//   --trace-timeline=<path>  record the cross-thread event timeline for
//                            the whole run and write it as Chrome
//                            trace-event JSON at exit (the rings keep the
//                            most recent window; size with
//                            --timeline-capacity)
//   --timeline-capacity=N    events per thread ring (default 8192)
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/isobar.h"
#include "datagen/registry.h"
#include "telemetry/metrics.h"
#include "telemetry/timeline.h"
#include "telemetry/trace_export.h"

namespace isobar {
namespace {

// ~4 MB of the mostly-noise phi profile: small enough that the bzip2
// rows stay interactive, and chunked finely enough (below) that an
// 8-thread sweep still has work to steal.
constexpr size_t kElements = 500'000;
constexpr uint64_t kChunkElements = 125'000;

const Dataset& Workload() {
  static const Dataset dataset = [] {
    auto spec = FindDatasetSpec("gts_phi_l");
    return std::move(*GenerateDataset(**spec, kElements));
  }();
  return dataset;
}

struct Solver {
  const char* name;
  Preference preference;
  std::optional<CodecId> forced;
};

constexpr Solver kSolvers[] = {
    {"auto-speed", Preference::kSpeed, std::nullopt},
    {"auto-ratio", Preference::kRatio, std::nullopt},
    {"zlib", Preference::kSpeed, CodecId::kZlib},
    {"bzip2", Preference::kSpeed, CodecId::kBzip2},
    {"lzss", Preference::kSpeed, CodecId::kLzss},
    {"huffman", Preference::kSpeed, CodecId::kHuffman},
    {"lzans", Preference::kSpeed, CodecId::kLzans},
};

CompressOptions MakeOptions(const Solver& solver, uint32_t threads) {
  CompressOptions options;
  options.eupa.preference = solver.preference;
  options.eupa.forced_codec = solver.forced;
  options.chunk_elements = kChunkElements;
  options.num_threads = threads;
  return options;
}

void BM_E2eCompress(benchmark::State& state, const Solver& solver,
                    uint32_t threads) {
  const Dataset& dataset = Workload();
  const IsobarCompressor compressor(MakeOptions(solver, threads));
  for (auto _ : state) {
    auto container = compressor.Compress(dataset.bytes(), dataset.width());
    if (!container.ok()) {
      state.SkipWithError(std::string(container.status().message()).c_str());
      return;
    }
    benchmark::DoNotOptimize(container->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}

void BM_E2eDecompress(benchmark::State& state, const Solver& solver,
                      uint32_t threads) {
  const Dataset& dataset = Workload();
  const IsobarCompressor compressor(MakeOptions(solver, 0));
  auto container = compressor.Compress(dataset.bytes(), dataset.width());
  if (!container.ok()) {
    state.SkipWithError(std::string(container.status().message()).c_str());
    return;
  }
  DecompressOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    auto out = IsobarCompressor::Decompress(*container, options);
    if (!out.ok()) {
      state.SkipWithError(std::string(out.status().message()).c_str());
      return;
    }
    benchmark::DoNotOptimize(out->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.data.size()));
}

void RegisterScenarios(uint32_t only_threads) {
  for (const Solver& solver : kSolvers) {
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      if (only_threads != 0 && threads != only_threads) continue;
      const std::string suffix = "/solver:" + std::string(solver.name) +
                                 "/threads:" + std::to_string(threads);
      // Wall-clock timing: the worker pool runs outside the bench thread,
      // so CPU-time rows would overstate multi-threaded throughput.
      benchmark::RegisterBenchmark(
          ("BM_E2eCompress" + suffix).c_str(),
          [&solver, threads](benchmark::State& state) {
            BM_E2eCompress(state, solver, threads);
          })
          ->UseRealTime();
      benchmark::RegisterBenchmark(
          ("BM_E2eDecompress" + suffix).c_str(),
          [&solver, threads](benchmark::State& state) {
            BM_E2eDecompress(state, solver, threads);
          })
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace isobar

int main(int argc, char** argv) {
  // Strip the harness flags before benchmark::Initialize consumes argv.
  std::string timeline_path;
  uint32_t only_threads = 0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-timeline=", 17) == 0) {
      timeline_path = arg + 17;
      if (timeline_path.empty()) {
        std::fprintf(stderr, "--trace-timeline needs a path\n");
        return 1;
      }
    } else if (std::strncmp(arg, "--timeline-capacity=", 20) == 0) {
      isobar::telemetry::Timeline::Global().set_capacity_per_thread(
          static_cast<size_t>(std::strtoull(arg + 20, nullptr, 10)));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      only_threads =
          static_cast<uint32_t>(std::strtoul(arg + 10, nullptr, 10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!timeline_path.empty()) {
    isobar::telemetry::SetEnabled(true);
    isobar::telemetry::Timeline::Global().SetEnabled(true);
  }

  isobar::RegisterScenarios(only_threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!timeline_path.empty()) {
    const std::string json = isobar::telemetry::TimelineToJson(
        isobar::telemetry::Timeline::Global().Snapshot());
    std::ofstream file(timeline_path, std::ios::binary | std::ios::trunc);
    file << json;
    if (!file.good()) {
      std::fprintf(stderr, "cannot write timeline to '%s'\n",
                   timeline_path.c_str());
      return 1;
    }
  }
  return 0;
}
