// Ablation studies for the design choices DESIGN.md calls out:
//   1. Analyzer tolerance tau: sweep around the paper's fixed 1.42 and
//      check verdicts and ratios are stable in [1.4, 1.5].
//   2. Solver x linearization matrix, including the homegrown RLE and
//      LZSS codecs, quantifying what the EUPA-selector chooses between.
//   3. Preconditioning value per solver: standard solver vs ISOBAR+solver
//      on one hard-to-compress dataset.
#include "bench_common.h"

#include "core/analyzer.h"
#include "linearize/transpose.h"

namespace isobar::bench {
namespace {

void TauSweep(const Args& args) {
  std::printf("Ablation 1: analyzer tolerance tau "
              "(improvable verdicts over 24 profiles + flash_gamc ratio)\n");
  std::printf("%8s %12s %12s\n", "tau", "improvable", "gamc ratio");
  PrintRule(34);

  auto gamc_spec = FindDatasetSpec("flash_gamc");
  const Dataset gamc = Generate(**gamc_spec, args);

  for (double tau : {1.05, 1.2, 1.4, 1.42, 1.45, 1.5, 2.0, 4.0, 16.0}) {
    const Analyzer analyzer(AnalyzerOptions{.tau = tau});
    int improvable = 0;
    for (const DatasetSpec& spec : AllDatasetSpecs()) {
      const Dataset dataset = Generate(spec, args);
      auto analysis = analyzer.Analyze(dataset.bytes(), dataset.width());
      if (analysis.ok() && analysis->improvable()) ++improvable;
    }
    CompressOptions options = SpeedOptions();
    options.analyzer.tau = tau;
    options.eupa.forced_codec = CodecId::kZlib;
    options.eupa.forced_linearization = Linearization::kRow;
    const IsobarRun run = RunIsobar(options, gamc.bytes(), gamc.width());
    std::printf("%8.2f %9d/24 %12.4f\n", tau, improvable, run.ratio());
  }
  std::printf("\nExpected: a plateau containing [1.4, 1.5] (the paper's "
              "justification\nfor fixing tau = 1.42); extreme tau collapses "
              "the verdicts.\n\n");
}

void SolverMatrix(const Args& args) {
  std::printf("Ablation 2: solver x linearization on gts_phi_l "
              "(ratio / compress MB/s)\n");
  std::printf("%-8s %18s %18s\n", "solver", "row", "column");
  PrintRule(46);

  auto spec = FindDatasetSpec("gts_phi_l");
  const Dataset dataset = Generate(**spec, args);
  for (CodecId codec : {CodecId::kZlib, CodecId::kBzip2, CodecId::kRle,
                        CodecId::kLzss, CodecId::kBwt}) {
    std::printf("%-8s", std::string(CodecIdToString(codec)).c_str());
    for (Linearization lin : {Linearization::kRow, Linearization::kColumn}) {
      CompressOptions options = SpeedOptions();
      options.eupa.forced_codec = codec;
      options.eupa.forced_linearization = lin;
      const IsobarRun run =
          RunIsobar(options, dataset.bytes(), dataset.width());
      std::printf("  %7.4f / %7.1f", run.ratio(), run.compress_mbps());
    }
    std::printf("\n");
  }
  std::printf("\nExpected: bzip2 best ratio, zlib best ratio-per-second;\n"
              "the homegrown codecs trade ratio for simplicity, showing the\n"
              "preconditioner is solver-agnostic.\n\n");
}

void PreconditioningValue(const Args& args) {
  std::printf("Ablation 3: standard solver vs ISOBAR+solver on "
              "gts_chkp_zion\n");
  std::printf("%-8s %10s %12s %10s %12s\n", "solver", "std CR", "std MB/s",
              "iso CR", "iso MB/s");
  PrintRule(56);

  auto spec = FindDatasetSpec("gts_chkp_zion");
  const Dataset dataset = Generate(**spec, args);
  for (CodecId codec : {CodecId::kZlib, CodecId::kBzip2, CodecId::kRle,
                        CodecId::kLzss, CodecId::kBwt}) {
    const SolverRun standard = RunSolver(codec, dataset.bytes());
    CompressOptions options = SpeedOptions();
    options.eupa.forced_codec = codec;
    options.eupa.forced_linearization = Linearization::kRow;
    const IsobarRun isobar =
        RunIsobar(options, dataset.bytes(), dataset.width());
    std::printf("%-8s %10.4f %12.2f %10.4f %12.2f\n",
                std::string(CodecIdToString(codec)).c_str(), standard.ratio,
                standard.compress_mbps, isobar.ratio(),
                isobar.compress_mbps());
  }
  std::printf("\nExpected: for every real entropy/dictionary/block-sorting\n"
              "solver, preconditioning improves both the ratio and the\n"
              "throughput — the paper's core claim of solver independence.\n"
              "(RLE is the degenerate case: it finds nothing in this data,\n"
              "so the stored-raw fallback pins its ratio at 1.0 and its\n"
              "throughput is memcpy-bound either way.)\n");
}

// Blanket byte-shuffle (Blosc/bitshuffle-style: transpose ALL byte
// columns, then compress everything) against ISOBAR's selective
// partition-and-store-noise. The shuffle helps the solver see each
// column's statistics, but it still pays to compress the noise bytes;
// ISOBAR's contribution is *not* compressing them at all.
void ShuffleVsPartition(const Args& args) {
  std::printf("Ablation 4: blanket byte-shuffle vs selective partitioning "
              "(zlib solver)\n");
  std::printf("%-15s %18s %18s %18s\n", "dataset", "plain zlib",
              "shuffle+zlib", "ISOBAR+zlib");
  std::printf("%-15s %18s %18s %18s\n", "", "CR / MB/s", "CR / MB/s",
              "CR / MB/s");
  PrintRule(73);

  for (const char* name : {"gts_phi_l", "flash_gamc", "s3d_vmag",
                           "num_comet"}) {
    auto spec = FindDatasetSpec(name);
    const Dataset dataset = Generate(**spec, args);
    const SolverRun plain = RunSolver(CodecId::kZlib, dataset.bytes());

    // Blanket shuffle = the undetermined path with column linearization
    // and an always-compressible analyzer (tau -> 256 flags nothing, so
    // force it via tau slightly above 1... instead emulate directly with
    // a full-mask gather and plain zlib).
    Bytes shuffled;
    Status status = GatherColumns(
        dataset.bytes(), dataset.width(),
        dataset.width() >= 64 ? ~0ull : ((1ull << dataset.width()) - 1),
        Linearization::kColumn, &shuffled);
    if (!status.ok()) std::exit(1);
    const SolverRun shuffle = RunSolver(CodecId::kZlib, shuffled);

    CompressOptions options = SpeedOptions();
    options.eupa.forced_codec = CodecId::kZlib;
    options.eupa.forced_linearization = Linearization::kColumn;
    const IsobarRun isobar =
        RunIsobar(options, dataset.bytes(), dataset.width());

    std::printf("%-15s %9.4f / %6.1f %9.4f / %6.1f %9.4f / %6.1f\n", name,
                plain.ratio, plain.compress_mbps, shuffle.ratio,
                shuffle.compress_mbps, isobar.ratio(),
                isobar.compress_mbps());
  }
  std::printf("\nExpected: the blanket shuffle recovers most of the ratio\n"
              "gain (columns become visible to the solver) but every noise\n"
              "byte still crawls through the entropy coder; selective\n"
              "partitioning reaches the same ratio several times faster by\n"
              "not compressing the noise at all — and that gap widens\n"
              "further on decompression.\n");
}

// How the gains scale with the amount of noise in the data: sweep the
// injected hard-to-compress byte fraction from 0/8 to 7/8 and record the
// ratio improvement plus compression/decompression speed-ups over zlib.
void NoiseFractionSweep(const Args& args) {
  std::printf("Ablation 5: gains vs hard-to-compress byte fraction "
              "(zlib solver, doubles)\n");
  std::printf("%8s %10s %10s %10s %10s %10s\n", "HTC b/8", "zlib CR",
              "iso CR", "dCR(%)", "SpC", "SpD");
  PrintRule(62);

  const uint64_t elements =
      static_cast<uint64_t>(args.mb * 1e6 / 8.0);
  for (int noise = 0; noise <= 7; ++noise) {
    GeneratorParams params;
    params.noise_bytes = noise;
    auto dataset = GenerateArray(ElementType::kFloat64, params, elements,
                                 900 + noise);
    if (!dataset.ok()) std::exit(1);

    const SolverRun standard = RunSolver(CodecId::kZlib, dataset->bytes());
    CompressOptions options = SpeedOptions();
    options.eupa.forced_codec = CodecId::kZlib;
    options.eupa.forced_linearization = Linearization::kRow;
    const IsobarRun isobar = RunIsobar(options, dataset->bytes(), 8);

    std::printf("%8d %10.4f %10.4f %10.2f %10.2f %10.2f\n", noise,
                standard.ratio, isobar.ratio(),
                (isobar.ratio() / standard.ratio - 1.0) * 100.0,
                isobar.compress_mbps() / standard.compress_mbps,
                isobar.decompress_mbps() / standard.decompress_mbps);
  }
  std::printf("\nExpected: with no noise the data is undetermined and gains\n"
              "vanish; dCR is largest when a little noise poisons otherwise\n"
              "highly compressible data, and the decompression speed-up\n"
              "climbs monotonically with the noise fraction (ever less data\n"
              "passes through the solver).\n\n");
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  TauSweep(args);
  SolverMatrix(args);
  PreconditioningValue(args);
  ShuffleVsPartition(args);
  NoiseFractionSweep(args);
  return 0;
}

}  // namespace
}  // namespace isobar::bench

int main(int argc, char** argv) { return isobar::bench::Run(argc, argv); }
