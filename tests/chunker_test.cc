#include <gtest/gtest.h>

#include "core/chunker.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes SequentialBytes(size_t n) {
  Bytes out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(i);
  return out;
}

TEST(ChunkerTest, ExactMultipleSplitsEvenly) {
  const Bytes data = SequentialBytes(8 * 100);
  Chunker chunker(data, 8, 25);
  EXPECT_EQ(chunker.chunk_count(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunker.chunk_elements(i), 25u);
    EXPECT_EQ(chunker.chunk(i).size(), 200u);
  }
}

TEST(ChunkerTest, RemainderGoesToLastChunk) {
  const Bytes data = SequentialBytes(8 * 103);
  Chunker chunker(data, 8, 25);
  EXPECT_EQ(chunker.chunk_count(), 5u);
  EXPECT_EQ(chunker.chunk_elements(3), 25u);
  EXPECT_EQ(chunker.chunk_elements(4), 3u);
  EXPECT_EQ(chunker.chunk(4).size(), 24u);
}

TEST(ChunkerTest, ChunksViewOriginalBytes) {
  const Bytes data = SequentialBytes(16 * 10);
  Chunker chunker(data, 16, 4);
  // Chunk 1 starts at element 4, byte 64.
  ByteSpan c1 = chunker.chunk(1);
  ASSERT_EQ(c1.size(), 64u);
  EXPECT_EQ(c1.data(), data.data() + 64);
  EXPECT_EQ(c1[0], 64);
}

TEST(ChunkerTest, SingleOversizedChunk) {
  const Bytes data = SequentialBytes(8 * 10);
  Chunker chunker(data, 8, 1000000);
  EXPECT_EQ(chunker.chunk_count(), 1u);
  EXPECT_EQ(chunker.chunk_elements(0), 10u);
}

TEST(ChunkerTest, EmptyDataHasNoChunks) {
  Chunker chunker({}, 8, 100);
  EXPECT_EQ(chunker.chunk_count(), 0u);
}

TEST(ChunkerTest, InvalidGeometryYieldsNoChunks) {
  const Bytes data = SequentialBytes(15);
  EXPECT_EQ(Chunker(data, 8, 100).chunk_count(), 0u);   // misaligned
  EXPECT_EQ(Chunker(data, 0, 100).chunk_count(), 0u);   // zero width
  EXPECT_EQ(Chunker(SequentialBytes(16), 8, 0).chunk_count(), 0u);  // zero chunk
}

TEST(ChunkerTest, OutOfRangeChunkIsEmpty) {
  const Bytes data = SequentialBytes(8 * 10);
  Chunker chunker(data, 8, 4);
  EXPECT_TRUE(chunker.chunk(99).empty());
  EXPECT_EQ(chunker.chunk_elements(99), 0u);
}

TEST(ChunkerTest, DefaultChunkSizeMatchesPaper) {
  // Fig. 8: ratios settle at ~375,000 doubles ≈ 3 MB.
  EXPECT_EQ(kDefaultChunkElements, 375000u);
}

TEST(ChunkerTest, ChunksConcatenateToOriginal) {
  const Bytes data = SequentialBytes(8 * 97);
  Chunker chunker(data, 8, 13);
  Bytes reassembled;
  for (uint64_t i = 0; i < chunker.chunk_count(); ++i) {
    ByteSpan c = chunker.chunk(i);
    reassembled.insert(reassembled.end(), c.begin(), c.end());
  }
  EXPECT_EQ(reassembled, data);
}

}  // namespace
}  // namespace isobar
