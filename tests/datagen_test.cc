#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/analyzer.h"
#include "datagen/generators.h"
#include "datagen/registry.h"
#include "datagen/time_series.h"
#include "stats/summary.h"

namespace isobar {
namespace {

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorParams params;
  auto a = GenerateArray(ElementType::kFloat64, params, 1000, 42);
  auto b = GenerateArray(ElementType::kFloat64, params, 1000, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->data, b->data);
  auto c = GenerateArray(ElementType::kFloat64, params, 1000, 43);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->data, c->data);
}

TEST(GeneratorTest, ProducesRequestedGeometry) {
  GeneratorParams params;
  params.noise_bytes = 2;  // within the 4-byte float element
  auto d = GenerateArray(ElementType::kFloat32, params, 2500, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->width(), 4u);
  EXPECT_EQ(d->element_count(), 2500u);
  EXPECT_EQ(d->data.size(), 10000u);
}

TEST(GeneratorTest, SmoothValuesStayInOneBinade) {
  GeneratorParams params;
  params.noise_bytes = 0;  // pure signal
  auto d = GenerateArray(ElementType::kFloat64, params, 5000, 11);
  ASSERT_TRUE(d.ok());
  for (uint64_t i = 0; i < d->element_count(); ++i) {
    double v;
    std::memcpy(&v, d->data.data() + i * 8, 8);
    ASSERT_GE(v, 1.0);
    ASSERT_LT(v, 2.0);
  }
}

TEST(GeneratorTest, NoiseBytesAreHighEntropy) {
  GeneratorParams params;
  params.noise_bytes = 6;
  auto d = GenerateArray(ElementType::kFloat64, params, 100000, 3);
  ASSERT_TRUE(d.ok());
  ColumnHistogramSet hist(8);
  ASSERT_TRUE(hist.Update(d->bytes()).ok());
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_GT(hist.ColumnEntropy(j), 7.9) << "noise column " << j;
  }
  // Signal columns have strong structure.
  EXPECT_LT(hist.ColumnEntropy(6), 6.0);
  EXPECT_LT(hist.ColumnEntropy(7), 1.0);
}

TEST(GeneratorTest, QuantizedColumnsAreZero) {
  GeneratorParams params;
  params.noise_bytes = 3;
  params.smooth_bytes = 2;
  auto d = GenerateArray(ElementType::kFloat64, params, 10000, 4);
  ASSERT_TRUE(d.ok());
  // Columns 3..5 lie between the noise region and the signal region.
  for (uint64_t i = 0; i < d->element_count(); ++i) {
    for (size_t j = 3; j < 6; ++j) {
      ASSERT_EQ(d->data[i * 8 + j], 0) << "element " << i << " col " << j;
    }
  }
}

TEST(GeneratorTest, RepeatFractionControlsUniqueness) {
  GeneratorParams params;
  params.noise_bytes = 6;
  params.repeat_fraction = 0.75;
  auto d = GenerateArray(ElementType::kFloat64, params, 50000, 5);
  ASSERT_TRUE(d.ok());
  auto summary = Summarize(d->bytes(), 8);
  ASSERT_TRUE(summary.ok());
  EXPECT_NEAR(summary->unique_value_percent, 25.0, 2.5);
}

TEST(GeneratorTest, ZeroRepeatIsAllUnique) {
  GeneratorParams params;
  params.noise_bytes = 6;
  params.repeat_fraction = 0.0;
  auto d = GenerateArray(ElementType::kFloat64, params, 50000, 6);
  ASSERT_TRUE(d.ok());
  auto summary = Summarize(d->bytes(), 8);
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary->unique_value_percent, 99.9);
}

TEST(GeneratorTest, ParticleIdsHaveZeroHighBytes) {
  GeneratorParams params;
  params.kind = GeneratorKind::kParticleIds;
  auto d = GenerateArray(ElementType::kInt64, params, 10000, 7);
  ASSERT_TRUE(d.ok());
  for (uint64_t i = 0; i < d->element_count(); ++i) {
    for (size_t j = 3; j < 8; ++j) {
      ASSERT_EQ(d->data[i * 8 + j], 0);
    }
  }
}

TEST(GeneratorTest, InvalidParamsRejected) {
  GeneratorParams params;
  params.noise_bytes = 9;
  EXPECT_FALSE(GenerateArray(ElementType::kFloat64, params, 10, 1).ok());
  params = {};
  params.noise_bytes = 5;  // > width of float32
  EXPECT_FALSE(GenerateArray(ElementType::kFloat32, params, 10, 1).ok());
  params = {};
  params.repeat_fraction = 1.0;
  EXPECT_FALSE(GenerateArray(ElementType::kFloat64, params, 10, 1).ok());
  params = {};
  params.smooth_bytes = 0;
  EXPECT_FALSE(GenerateArray(ElementType::kFloat64, params, 10, 1).ok());
}

TEST(RegistryTest, HasAll24PaperDatasets) {
  EXPECT_EQ(AllDatasetSpecs().size(), 24u);
}

TEST(RegistryTest, FindByName) {
  auto spec = FindDatasetSpec("flash_velx");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->application, "FLASH");
  EXPECT_EQ((*spec)->type, ElementType::kFloat64);
  EXPECT_FALSE(FindDatasetSpec("does_not_exist").ok());
}

TEST(RegistryTest, EveryProfileGenerates) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    auto d = GenerateDataset(spec, 4096);
    ASSERT_TRUE(d.ok()) << spec.name;
    EXPECT_EQ(d->element_count(), 4096u) << spec.name;
    EXPECT_EQ(d->name, spec.name);
  }
}

TEST(RegistryTest, GenerateByMegabytes) {
  auto spec = FindDatasetSpec("s3d_temp");
  ASSERT_TRUE(spec.ok());
  auto d = GenerateDatasetMB(**spec, 1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(static_cast<double>(d->data.size()), 1e6, 4.0);
  EXPECT_FALSE(GenerateDatasetMB(**spec, -1.0).ok());
}

TEST(RegistryTest, AnalyzerVerdictMatchesPaperTableIV) {
  // The central fidelity requirement of the synthetic profiles: the
  // ISOBAR-analyzer must reach the paper's Table IV verdict (improvable or
  // not, and the HTC byte percentage) on every one of the 24 profiles.
  const Analyzer analyzer;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    auto d = GenerateDataset(spec, 375000);
    ASSERT_TRUE(d.ok()) << spec.name;
    auto analysis = analyzer.Analyze(d->bytes(), d->width());
    ASSERT_TRUE(analysis.ok()) << spec.name;
    EXPECT_EQ(analysis->improvable(), spec.paper_verdict.improvable)
        << spec.name;
    if (spec.paper_verdict.improvable) {
      EXPECT_NEAR(analysis->htc_byte_fraction() * 100.0,
                  spec.paper_verdict.htc_bytes_percent, 1e-9)
          << spec.name;
    }
  }
}

TEST(TimeSeriesTest, StepsAreDeterministicAndDistinct) {
  auto spec = FindDatasetSpec("gts_phi_l");
  ASSERT_TRUE(spec.ok());
  TimeSeriesGenerator gen(**spec, 10000);
  auto t0 = gen.Step(0);
  auto t0_again = gen.Step(0);
  auto t1 = gen.Step(1);
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t0_again.ok());
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t0->data, t0_again->data);
  EXPECT_NE(t0->data, t1->data);
  EXPECT_EQ(t0->name, "gts_phi_l@t0");
}

TEST(TimeSeriesTest, VerdictStableAcrossSteps) {
  auto spec = FindDatasetSpec("gts_phi_nl");
  ASSERT_TRUE(spec.ok());
  TimeSeriesGenerator gen(**spec, 100000);
  const Analyzer analyzer;
  for (uint64_t t = 0; t < 5; ++t) {
    auto d = gen.Step(t);
    ASSERT_TRUE(d.ok());
    auto analysis = analyzer.Analyze(d->bytes(), d->width());
    ASSERT_TRUE(analysis.ok());
    EXPECT_TRUE(analysis->improvable()) << "step " << t;
    EXPECT_NEAR(analysis->htc_byte_fraction(), 0.75, 1e-9) << "step " << t;
  }
}

TEST(ElementTypeTest, WidthsAndNames) {
  EXPECT_EQ(ElementWidth(ElementType::kFloat32), 4u);
  EXPECT_EQ(ElementWidth(ElementType::kFloat64), 8u);
  EXPECT_EQ(ElementWidth(ElementType::kInt64), 8u);
  EXPECT_EQ(ElementTypeToString(ElementType::kFloat32), "single");
  EXPECT_EQ(ElementTypeToString(ElementType::kFloat64), "double");
}

}  // namespace
}  // namespace isobar
