// End-to-end tests for the isobard serving path: a real IsobarServer on a
// unix socket in-process, driven through the blocking Client (and a raw
// socket where the point is sending bytes Client would refuse to frame).
// Saturation is made deterministic by pausing the server's JobQueue —
// admission keeps filling the bounded queue while dispatch is frozen —
// not by racing timers.
#include "server/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/isobar.h"
#include "server/client.h"
#include "server/job_queue.h"
#include "server/protocol.h"
#include "telemetry/json_reader.h"
#include "util/bytes.h"

namespace isobar::server {
namespace {

std::string TestSocketPath(const std::string& name) {
  return "/tmp/isobar_server_test." + std::to_string(getpid()) + "." + name +
         ".sock";
}

ServerOptions BaseOptions(const std::string& name) {
  ServerOptions options;
  options.unix_socket_path = TestSocketPath(name);
  options.jobs.num_threads = 2;
  return options;
}

Bytes SmoothDoubles(size_t elements) {
  Bytes data(elements * sizeof(double));
  for (size_t i = 0; i < elements; ++i) {
    const double value = static_cast<double>(i) * 0.25 + 100.0;
    std::memcpy(data.data() + i * sizeof(double), &value, sizeof(double));
  }
  return data;
}

CompressAux ForcedAux() {
  CompressAux aux;
  aux.width = 8;
  aux.codec = CodecId::kZlib;
  aux.linearization = Linearization::kColumn;
  return aux;
}

Client MustConnect(const ServerOptions& options) {
  auto client = Client::ConnectUnix(options.unix_socket_path);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->SetReceiveTimeout(30.0).ok());
  return std::move(*client);
}

/// Unframed escape hatch: Client always emits well-formed frames, so the
/// framing-violation tests need a socket that sends arbitrary bytes.
class RawConnection {
 public:
  explicit RawConnection(const std::string& socket_path) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      close(fd_);
      fd_ = -1;
    }
    timeval tv{10, 0};
    if (fd_ >= 0) setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConnection() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendAll(ByteSpan data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks for the next recv; 0 = clean EOF, -1 = error/timeout.
  ssize_t RecvSome() {
    uint8_t buffer[4096];
    return recv(fd_, buffer, sizeof(buffer), 0);
  }

 private:
  int fd_ = -1;
};

TEST(ServerTest, PingEchoesPayload) {
  const ServerOptions options = BaseOptions("ping");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(options);
  const Bytes payload = {1, 2, 3, 250};
  auto response = client.Call(Op::kPing, 0xABCD, payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok());
  EXPECT_EQ(response->payload, payload);
  EXPECT_EQ(response->aux, 0xABCDu);
}

// The acceptance bar for the daemon: with the solver forced (EUPA's
// throughput measurements never run), a served compress is byte-identical
// to calling the library directly in this process.
TEST(ServerTest, CompressMatchesDirectLibraryCall) {
  const ServerOptions options = BaseOptions("identity");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const Bytes data = SmoothDoubles(2048);
  const CompressAux aux = ForcedAux();

  Client client = MustConnect(options);
  auto served = client.Compress(data, aux);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  CompressOptions direct_options;
  direct_options.eupa.forced_codec = aux.codec;
  direct_options.eupa.forced_linearization = aux.linearization;
  direct_options.num_threads = 1;
  IsobarCompressor compressor(direct_options);
  auto direct = compressor.Compress(data, aux.width);
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(*served, *direct);
}

TEST(ServerTest, DecompressRoundTripsThroughServer) {
  const ServerOptions options = BaseOptions("roundtrip");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const Bytes data = SmoothDoubles(1024);
  Client client = MustConnect(options);
  auto container = client.Compress(data, ForcedAux());
  ASSERT_TRUE(container.ok());
  auto restored = client.Decompress(*container);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, data);
}

TEST(ServerTest, PipelinedRequestsAllAnsweredById) {
  const ServerOptions options = BaseOptions("pipeline");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const Bytes data = SmoothDoubles(512);
  const uint64_t aux = PackCompressAux(ForcedAux());
  Client client = MustConnect(options);

  constexpr uint64_t kRequests = 6;
  for (uint64_t rid = 1; rid <= kRequests; ++rid) {
    ASSERT_TRUE(client.Send(Op::kCompress, rid, aux, data).ok());
  }
  std::vector<bool> answered(kRequests + 1, false);
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->ok()) << response->ToStatus().ToString();
    ASSERT_GE(response->request_id, 1u);
    ASSERT_LE(response->request_id, kRequests);
    EXPECT_FALSE(answered[response->request_id]) << "duplicate response";
    answered[response->request_id] = true;
  }
}

TEST(ServerTest, UnknownOpGetsErrorAndConnectionSurvives) {
  const ServerOptions options = BaseOptions("unknown_op");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(options);
  auto response = client.Call(static_cast<Op>(200), 0, {});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, ResponseStatus::kError);
  EXPECT_EQ(response->aux,
            static_cast<uint64_t>(StatusCode::kInvalidArgument));

  // Well-framed garbage is answered, not dropped: the same connection
  // still serves real requests.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, MalformedCompressRequestsGetErrorResponses) {
  const ServerOptions options = BaseOptions("bad_compress");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(options);

  // Width 0 is invalid in any aux packing.
  auto bad_aux = client.Call(Op::kCompress, 0, SmoothDoubles(16));
  ASSERT_TRUE(bad_aux.ok());
  EXPECT_EQ(bad_aux->status, ResponseStatus::kError);

  // 127 bytes is not a multiple of width 8.
  Bytes misaligned = SmoothDoubles(16);
  misaligned.pop_back();
  auto bad_size =
      client.Call(Op::kCompress, PackCompressAux(ForcedAux()), misaligned);
  ASSERT_TRUE(bad_size.ok());
  EXPECT_EQ(bad_size->status, ResponseStatus::kError);

  // A decompress of non-container bytes fails in the pipeline, not the
  // protocol: still a kError response on a usable connection.
  auto bad_container = client.Call(Op::kDecompress, 0, SmoothDoubles(16));
  ASSERT_TRUE(bad_container.ok());
  EXPECT_EQ(bad_container->status, ResponseStatus::kError);

  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, FramingViolationDropsConnectionWithoutReply) {
  const ServerOptions options = BaseOptions("framing");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Nonzero reserved bits poison the connection: EOF, never a response.
  {
    RawConnection raw(options.unix_socket_path);
    ASSERT_TRUE(raw.connected());
    Bytes poison = EncodeRequest(Op::kPing, 7, 0, {});
    poison[6] = 0xEE;
    ASSERT_TRUE(raw.SendAll(poison));
    EXPECT_EQ(raw.RecvSome(), 0) << "expected EOF after framing violation";
  }

  // Wrong magic (a response frame on the request channel) likewise.
  {
    RawConnection raw(options.unix_socket_path);
    ASSERT_TRUE(raw.connected());
    ASSERT_TRUE(raw.SendAll(EncodeResponse(ResponseStatus::kOk, 1, 0, {})));
    EXPECT_EQ(raw.RecvSome(), 0);
  }

  // An oversized length prefix is shed at header-parse time.
  {
    RawConnection raw(options.unix_socket_path);
    ASSERT_TRUE(raw.connected());
    Bytes poison = EncodeRequest(Op::kCompress, 9, 8, {});
    const uint64_t huge = options.max_payload_bytes + 1;
    std::memcpy(poison.data() + 24, &huge, sizeof(huge));
    ASSERT_TRUE(raw.SendAll(poison));
    EXPECT_EQ(raw.RecvSome(), 0);
  }

  // The server itself is unharmed: fresh connections serve normally.
  Client client = MustConnect(options);
  EXPECT_TRUE(client.Ping().ok());
}

// Saturation, deterministically: freeze dispatch, fill the admission
// queue to its bound through one connection, and assert that exactly the
// overflow requests are answered BUSY (kQueueFull) while every admitted
// request is answered OK after the queue thaws. No reply is ever dropped.
TEST(ServerTest, SaturationShedsBusyThenDrainsCleanly) {
  ServerOptions options = BaseOptions("saturation");
  options.jobs.max_queue_depth = 3;
  options.jobs.max_inflight_per_connection = 100;  // Queue bound under test.
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.job_queue().Pause();

  const Bytes data = SmoothDoubles(256);
  const uint64_t aux = PackCompressAux(ForcedAux());
  Client client = MustConnect(options);

  // Paused queue, 2 workers idle but frozen: every request is admitted
  // until the queue bound, then shed.
  const uint64_t total = options.jobs.max_queue_depth + 4;
  for (uint64_t rid = 1; rid <= total; ++rid) {
    ASSERT_TRUE(client.Send(Op::kCompress, rid, aux, data).ok());
  }

  // The BUSY responses arrive while the queue is still frozen — load
  // shedding must not wait for capacity.
  uint64_t busy = 0;
  for (uint64_t i = 0; i < total - options.jobs.max_queue_depth; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->busy());
    EXPECT_EQ(response->aux,
              static_cast<uint64_t>(Admission::kQueueFull));
    ++busy;
  }

  server.job_queue().Resume();
  uint64_t ok = 0;
  for (uint64_t i = 0; i < options.jobs.max_queue_depth; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->ok()) << response->ToStatus().ToString();
    ++ok;
  }
  EXPECT_EQ(busy + ok, total);

  const auto stats = server.job_queue().Stats();
  EXPECT_EQ(stats.admitted, options.jobs.max_queue_depth);
  EXPECT_EQ(stats.rejected_queue_full, busy);
}

TEST(ServerTest, PerConnectionLimitAnswersBusy) {
  ServerOptions options = BaseOptions("per_conn");
  options.jobs.max_queue_depth = 100;
  options.jobs.max_inflight_per_connection = 2;
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.job_queue().Pause();

  const Bytes data = SmoothDoubles(256);
  const uint64_t aux = PackCompressAux(ForcedAux());
  Client greedy = MustConnect(options);
  for (uint64_t rid = 1; rid <= 3; ++rid) {
    ASSERT_TRUE(greedy.Send(Op::kCompress, rid, aux, data).ok());
  }
  auto shed = greedy.ReadResponse();
  ASSERT_TRUE(shed.ok());
  ASSERT_TRUE(shed->busy());
  EXPECT_EQ(shed->aux, static_cast<uint64_t>(Admission::kConnectionLimit));

  // A second connection is not affected by the first one's cap.
  Client other = MustConnect(options);
  ASSERT_TRUE(other.Send(Op::kCompress, 1, aux, data).ok());

  server.job_queue().Resume();
  for (int i = 0; i < 2; ++i) {
    auto response = greedy.ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok());
  }
  auto response = other.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok());
}

TEST(ServerTest, StatsSnapshotIsStrictJsonWithServerCounters) {
  const ServerOptions options = BaseOptions("stats");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(options);
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  auto container = client.Compress(SmoothDoubles(512), ForcedAux());
  ASSERT_TRUE(container.ok());

  auto stats_json = client.Stats();
  ASSERT_TRUE(stats_json.ok()) << stats_json.status().ToString();

  // The STATS payload must parse under the repo's strict reader (the
  // same DOM isobar_stat uses).
  auto doc = telemetry::ParseJson(*stats_json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const telemetry::JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());

  // 2 pings + 1 compress + this STATS request itself.
  const telemetry::JsonValue* requests = counters->Find("server.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->number_value(), 4.0);
  EXPECT_EQ(counters->FieldNumberOr("server.requests.ping", -1), 2.0);
  EXPECT_EQ(counters->FieldNumberOr("server.requests.compress", -1), 1.0);
  EXPECT_EQ(counters->FieldNumberOr("server.admitted", -1), 1.0);
  EXPECT_EQ(counters->FieldNumberOr("server.rejected", -1), 0.0);
  EXPECT_EQ(counters->FieldNumberOr("server.queue_depth", -1), 0.0);
  EXPECT_EQ(counters->FieldNumberOr("server.queue_capacity", -1),
            static_cast<double>(options.jobs.max_queue_depth));
  EXPECT_GE(counters->FieldNumberOr("server.connections.accepted", -1), 1.0);

  const telemetry::JsonValue* histograms = doc->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_TRUE(histograms->is_array());
}

TEST(ServerTest, ShutdownOpDrainsAndStopsTheServer) {
  const ServerOptions options = BaseOptions("shutdown");
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(options);
  auto container = client.Compress(SmoothDoubles(512), ForcedAux());
  ASSERT_TRUE(container.ok());
  ASSERT_TRUE(client.ShutdownServer().ok());

  // Wait() returns because a client asked for shutdown — not because of
  // Stop() from this thread.
  server.Wait();
  server.Stop();
  const auto stats = server.job_queue().Stats();
  EXPECT_EQ(stats.admitted, stats.completed);
}

TEST(ServerTest, TcpEndpointServesOnEphemeralPort) {
  ServerOptions options;
  options.listen_tcp = true;
  options.tcp_port = 0;
  options.jobs.num_threads = 2;
  IsobarServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.bound_tcp_port(), 0);

  auto client = Client::ConnectTcp(server.bound_tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->SetReceiveTimeout(30.0).ok());
  EXPECT_TRUE(client->Ping().ok());

  const Bytes data = SmoothDoubles(512);
  auto served = client->Compress(data, ForcedAux());
  ASSERT_TRUE(served.ok());
  auto restored = client->Decompress(*served);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, data);
}

}  // namespace
}  // namespace isobar::server
